"""Measurement: everything one experiment run produces.

Mirrors the paper's observables: the primary throughput metric (TPS or
QPS), MPKI, per-second bandwidth series with means and CDFs (Figs 3, 4),
wait-time breakdowns (Table 3), per-query latencies (Figs 6, 8), and the
plan signatures actually used (pitfall #6: detect optimizer adaptation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.knobs import ResourceAllocation
from repro.engine.locks import WaitType
from repro.hardware.counters import (
    CounterSeries,
    DRAM_READ_BYTES,
    DRAM_WRITE_BYTES,
    SSD_READ_BYTES,
    SSD_WRITE_BYTES,
)
from repro.sim.stats import Cdf
from repro.units import to_mb_per_s
from repro.workloads.base import ThroughputTracker

#: Measurement.source values: a point either ran through the simulator
#: or was backfilled by the learned surrogate (repro.surrogate).
SOURCE_SIMULATED = "simulated"
SOURCE_PREDICTED = "predicted"


@dataclass
class Measurement:
    """The result of one (workload, allocation) experiment run."""

    workload: str
    scale_factor: int
    allocation: ResourceAllocation
    duration: float
    primary_metric: float               # TPS (OLTP/HTAP) or QPS (DSS)
    counters: CounterSeries
    tracker: ThroughputTracker
    wait_times: Dict[WaitType, float] = field(default_factory=dict)
    plan_signatures: Dict[str, str] = field(default_factory=dict)
    secondary_metric: Optional[float] = None  # e.g. HTAP analytics QPH
    smt_multiplier: float = 1.0
    mpki_model: float = 0.0
    #: Fault-injection counters (None for fault-free runs); see
    #: :meth:`repro.faults.injector.FaultInjector.summary`.
    fault_summary: Optional[Dict[str, float]] = None
    # -- RESOURCE_SEMAPHORE overload counters (all zero with overload
    # -- protection off); see repro.engine.semaphore.ResourceSemaphore.
    grant_waits: int = 0                #: requests that queued for a grant
    grant_wait_seconds: float = 0.0     #: total RESOURCE_SEMAPHORE wait time
    grant_timeouts: int = 0             #: waits that hit grant_timeout_s
    grant_degrades: int = 0             #: grants shrunk to free memory (spill)
    grant_bypasses: int = 0             #: small-query bypass admissions
    grant_throttles: int = 0            #: requests refused a full queue
    grant_queue_peak: int = 0           #: max concurrent grant waiters
    # -- backend / routing provenance (repro.backends); a single-backend
    # -- run carries its personality name and empty routing counters.
    backend: str = "rowstore-oltp"      #: personality, or "router:<policy>"
    router_policy: Optional[str] = None  #: placement policy (routed runs)
    #: per-backend query placements made by the router this run
    router_decisions: Dict[str, int] = field(default_factory=dict)
    router_fallbacks: int = 0           #: rule-based default-route count
    router_reroutes: int = 0            #: placements moved off a suspended backend
    # -- fleet resilience provenance (repro.fleet / repro.faults.chaos);
    # -- zero / None for ordinary single-engine and routed runs.
    failovers: int = 0                  #: primary promotions during the run
    hedges: int = 0                     #: hedged read attempts launched
    hedge_wins: int = 0                 #: hedges that beat the primary attempt
    unavailable_seconds: float = 0.0    #: client-observed write outage time
    #: Full fleet counter snapshot (ReplicaGroup.summary()), None outside
    #: chaos/fleet runs.
    fleet_summary: Optional[Dict[str, float]] = None
    # -- open-loop arrival / fleet-SLO observables (repro.workloads
    # -- .arrivals, repro.fleet.cluster); zero / empty for closed-loop
    # -- runs, so the defaults keep seed measurements bit-identical.
    offered_tps: float = 0.0            #: open-loop offered rate (0 = closed-loop)
    arrival_sheds: int = 0              #: arrivals dropped at the admission bound
    #: per-tenant shed counts (empty without declared tenants) — SLO
    #: post-mortems need whose traffic was dropped, not just how much
    sheds_by_tenant: Dict[str, int] = field(default_factory=dict)
    # -- surrogate provenance (repro.surrogate); every simulated run is
    # -- SOURCE_SIMULATED.  Predicted points are synthesized by the
    # -- adaptive planner / what-if server, carry the surrogate's
    # -- uncertainty estimate, and are never written to the ResultCache.
    source: str = "simulated"           #: "simulated" | "predicted"
    predicted_uncertainty: Optional[float] = None

    # -- derived observables -------------------------------------------------

    @property
    def is_predicted(self) -> bool:
        """True when this point came from the surrogate, not the simulator."""
        return self.source == SOURCE_PREDICTED

    @property
    def mpki(self) -> float:
        """Measured misses-per-kilo-instruction over the run."""
        return self.counters.mean_mpki()

    def mean_bandwidth_mb(self, counter: str) -> float:
        return to_mb_per_s(self.counters.mean(counter))

    @property
    def ssd_read_mb(self) -> float:
        return self.mean_bandwidth_mb(SSD_READ_BYTES)

    @property
    def ssd_write_mb(self) -> float:
        return self.mean_bandwidth_mb(SSD_WRITE_BYTES)

    @property
    def dram_read_mb(self) -> float:
        return self.mean_bandwidth_mb(DRAM_READ_BYTES)

    @property
    def dram_write_mb(self) -> float:
        return self.mean_bandwidth_mb(DRAM_WRITE_BYTES)

    def bandwidth_cdf(self, counter: str) -> Cdf:
        """Per-second bandwidth distribution (Fig 4 series)."""
        return self.counters.cdf(counter)

    def query_latency(self, name: str, percentile: float = 50.0) -> float:
        """Latency percentile of one completion class (e.g. "Q20")."""
        return self.tracker.percentile_latency(name, percentile)

    def tail_latency_ms(self, percentile: float) -> float:
        """Latency percentile (ms) of the primary completion class.

        The fleet story is about tails: p99 hides the 1-in-1000 requests
        that autoscaling and shedding exist to protect, so p999 is a
        first-class observable alongside p50/p99.  NaN when the run
        recorded no completions (a fully-shed tenant, a failed point).
        """
        kind = "txn" if "txn" in self.tracker.latencies else "query"
        cdf = self.tracker.latencies.get(kind)
        if cdf is None or len(cdf) == 0:
            return float("nan")
        return cdf.percentile(percentile) * 1000.0

    @property
    def p50_latency_ms(self) -> float:
        return self.tail_latency_ms(50.0)

    @property
    def p99_latency_ms(self) -> float:
        return self.tail_latency_ms(99.0)

    @property
    def p999_latency_ms(self) -> float:
        return self.tail_latency_ms(99.9)

    def mean_query_latency(self, name: str) -> float:
        cdf = self.tracker.latencies.get(name)
        if cdf is None or len(cdf) == 0:
            return float("nan")
        return cdf.mean()

    def wait_time(self, wait_type: WaitType) -> float:
        return self.wait_times.get(wait_type, 0.0)

    def lock_latch_pagelatch_total(self) -> float:
        return (
            self.wait_time(WaitType.LOCK)
            + self.wait_time(WaitType.LATCH)
            + self.wait_time(WaitType.PAGELATCH)
        )

    @property
    def degraded_gracefully(self) -> bool:
        """True when overload protection absorbed pressure this run —
        some request waited, timed out, degraded, or was throttled."""
        return (
            self.grant_waits > 0
            or self.grant_timeouts > 0
            or self.grant_degrades > 0
            or self.grant_throttles > 0
        )
