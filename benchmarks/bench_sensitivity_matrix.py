"""The condensed study: the workload x resource sensitivity matrix.

Not a single paper artifact but the paper's thesis — "the wide spectrum
of resource sensitivities" (§1/abstract) — made quantitative across the
full Table 2 study matrix.
"""

from repro.core.report import format_table
from repro.core.sensitivity import RESOURCES, sensitivity_matrix, spectrum_width


def test_sensitivity_matrix(benchmark, duration_scale, emit):
    rows = benchmark.pedantic(
        sensitivity_matrix, kwargs={"duration_scale": duration_scale},
        rounds=1, iterations=1,
    )
    emit(
        "Sensitivity matrix — fraction of performance lost under stress "
        "(cores 32->2, LLC 40->6 MB, read 200 MB/s, write 50 MB/s, grant 5%)",
        format_table(
            ["workload", "SF"] + list(RESOURCES) + ["most sensitive"],
            [
                [row.workload, row.scale_factor]
                + [f"{row.indices[r]:.2f}" for r in RESOURCES]
                + [row.most_sensitive()]
                for row in rows
            ],
        ),
    )
    by_key = {(r.workload, r.scale_factor): r for r in rows}

    # Everyone cares about cores (§4: "performance scales well with the
    # number of cores" for every class).
    for row in rows:
        assert row.indices["cores"] > 0.3, (row.workload, row.scale_factor)

    # Write bandwidth matters to transactional workloads, not to TPC-H's
    # read-mostly streams (§6).
    assert by_key[("asdb", 2000)].indices["write_bw"] > 0.15
    assert by_key[("tpch", 10)].indices["write_bw"] < 0.10

    # Read bandwidth dominates for out-of-memory analytics (§6, Fig 5).
    assert by_key[("tpch", 300)].indices["read_bw"] > \
        by_key[("tpch", 10)].indices["read_bw"]

    # The spectrum is wide: for most resources, some workload cares a lot
    # and some barely at all (the paper's core claim).
    spread = spectrum_width(rows)
    emit("Sensitivity spread per resource (max - min across workloads)",
         format_table(["resource", "spread"], sorted(spread.items())))
    wide = [resource for resource, value in spread.items() if value > 0.3]
    assert len(wide) >= 3, spread
