"""Tests for the experiment runner and measurement surface."""

import pytest

from repro.core.experiment import Experiment, ExperimentConfig, run_experiment
from repro.core.knobs import ResourceAllocation
from repro.core.sweeps import core_sweep, grant_sweep, llc_sweep, maxdop_sweep, run_sweep
from repro.engine.locks import WaitType
from repro.hardware.counters import SSD_READ_BYTES


class TestExperiment:
    def test_basic_run_produces_measurement(self):
        m = run_experiment("asdb", 2000, duration=3.0)
        assert m.workload == "asdb"
        assert m.primary_metric > 0
        assert m.duration == 3.0
        assert len(m.counters.series("instructions_retired")) >= 2

    def test_deterministic_given_seed(self):
        a = run_experiment("tpce", 5000, duration=3.0, seed=7)
        b = run_experiment("tpce", 5000, duration=3.0, seed=7)
        assert a.primary_metric == b.primary_metric
        assert a.wait_times == b.wait_times

    def test_different_seeds_differ(self):
        a = run_experiment("tpce", 5000, duration=3.0, seed=1)
        b = run_experiment("tpce", 5000, duration=3.0, seed=2)
        assert a.primary_metric != b.primary_metric

    def test_allocation_respected(self):
        m = run_experiment(
            "asdb", 2000,
            allocation=ResourceAllocation(logical_cores=4, llc_mb=8),
            duration=3.0,
        )
        assert m.allocation.logical_cores == 4

    def test_tpch_plan_signatures_recorded(self):
        m = run_experiment("tpch", 10, duration=20.0)
        assert len(m.plan_signatures) == 22
        assert all(sig for sig in m.plan_signatures.values())

    def test_htap_reports_secondary_metric(self):
        m = run_experiment("htap", 5000, duration=5.0)
        assert m.secondary_metric is not None

    def test_measurement_derived_metrics(self):
        m = run_experiment("asdb", 2000, duration=3.0)
        assert m.ssd_write_mb > 0          # logging traffic
        assert m.dram_read_mb > 0
        assert m.mpki > 0
        assert len(m.bandwidth_cdf(SSD_READ_BYTES)) >= 2
        assert m.wait_time(WaitType.LOCK) >= 0

    def test_workload_kwargs_forwarded(self):
        config = ExperimentConfig(
            workload="tpch", scale_factor=10, duration=10.0,
            workload_kwargs={"streams": 1},
        )
        m = Experiment(config).run()
        assert m.primary_metric >= 0


class TestSweepBuilders:
    def test_core_sweep_follows_paper_axis(self):
        configs = core_sweep("tpch", 10)
        assert [c.allocation.logical_cores for c in configs] == [1, 2, 4, 8, 16, 32]
        assert all(c.allocation.llc_mb == 40 for c in configs)

    def test_llc_sweep_keeps_cores_fixed(self):
        configs = llc_sweep("asdb", 2000)
        assert all(c.allocation.logical_cores == 32 for c in configs)
        assert configs[0].allocation.llc_mb == 2

    def test_maxdop_sweep_limits_cores_too(self):
        """§7: 'We also limit the number of cores to the same number as
        MAXDOP', single stream."""
        configs = maxdop_sweep(10)
        for config in configs:
            assert config.allocation.logical_cores == config.allocation.max_dop
            assert config.workload_kwargs["streams"] == 1

    def test_grant_sweep_percents(self):
        configs = grant_sweep()
        assert [c.allocation.grant_percent for c in configs] == [25.0, 15.0, 5.0, 2.0]

    def test_run_sweep_preserves_order(self):
        configs = core_sweep("asdb", 2000, cores=(4, 8), duration_scale=0.2)
        measurements = run_sweep(configs)
        assert [m.allocation.logical_cores for m in measurements] == [4, 8]
