"""Ablation benches: remove one model mechanism at a time and show which
paper result it carries.

The calibrated simulator reproduces the paper's shapes through specific
mechanisms (DESIGN.md §3).  Each ablation disables one mechanism and
checks the corresponding shape *disappears* — evidence the behaviour is
mechanism-driven rather than curve-fit into unrelated constants.
"""

import pytest

from repro.core.experiment import Experiment, ExperimentConfig
from repro.core.knobs import ResourceAllocation
from repro.core.report import format_table
from repro.engine.engine import SqlEngine
from repro.engine.optimizer.cost_model import CostModel
from repro.engine.plan.operators import OpKind
from repro.engine.resource_governor import ResourceGovernor
from repro.hardware.machine import Machine, MachineSpec
from repro.workloads import make_workload
from repro.workloads.tpch import tpch_query


def _tpch_ratio(spec: MachineSpec, sf: int, duration: float) -> float:
    """perf16/perf32 for TPC-H on a given machine spec."""
    values = {}
    for cores in (16, 32):
        config = ExperimentConfig(
            workload="tpch", scale_factor=sf,
            allocation=ResourceAllocation(logical_cores=cores),
            duration=duration, machine_spec=spec,
        )
        values[cores] = Experiment(config).run().primary_metric
    return values[16] / values[32]


def test_ablation_smt_model_carries_ht_crossover(benchmark, emit):
    """With a neutral SMT model (multiplier == 1), the §4 hyper-threading
    detriment at SF=10 collapses toward the startup-overhead-only level."""
    def run():
        full = _tpch_ratio(MachineSpec(), 10, 150.0)
        neutral = _tpch_ratio(
            MachineSpec(smt_gain_span=0.0, smt_interference_span=0.0),
            10, 150.0,
        )
        return full, neutral
    full, neutral = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Ablation — SMT yield model (TPC-H SF=10 perf16/perf32)",
        format_table(
            ["model", "ratio"],
            [("calibrated SMT", full), ("neutral SMT (ablated)", neutral),
             ("paper", 1.72)],
        ),
    )
    assert full > 1.35
    assert neutral < full - 0.2


def test_ablation_broadcast_cost_carries_q20_flip(benchmark, emit):
    """Without the DOP-scaled broadcast term and with free IO, the
    optimizer no longer switches Q20's part join to nested loops."""
    def plans_for(cost_model):
        workload = make_workload("tpch", 300)
        machine = Machine()
        ResourceAllocation().apply_to(machine)
        engine = SqlEngine(
            machine, workload.database, workload.execution_characteristics(),
            governor=ResourceGovernor(max_dop=32), cost_model=cost_model,
            **workload.engine_parameters(),
        )
        spec = tpch_query(20, 300)
        parallel = engine.optimizer.optimize(spec, max_dop=32)
        return parallel.plan.uses(OpKind.NESTED_LOOPS)

    def run():
        with_mechanism = plans_for(CostModel())
        ablated = plans_for(
            CostModel(sequential_io_per_mib=0.0, random_io_per_miss=0.0)
        )
        return with_mechanism, ablated
    with_mechanism, ablated = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Ablation — IO-aware costing (Q20 parallel NLJ at SF=300)",
        format_table(
            ["cost model", "parallel plan uses NLJ"],
            [("with IO costs", with_mechanism), ("IO costs ablated", ablated)],
        ),
    )
    assert with_mechanism is True
    assert ablated is False


def test_ablation_lock_scaling_carries_table3(benchmark, emit):
    """With scale-independent hot-slot counts, the Table 3 LOCK dilution
    disappears."""
    from repro.workloads.tpce import TpceWorkload

    class FixedSlots(TpceWorkload):
        def hot_lock_rows(self):
            return 5  # same contention surface at every SF

        def hot_latch_pages(self):
            return 40

    def waits_ratio(workload_cls):
        waits = {}
        for sf in (5000, 15000):
            workload = workload_cls(sf)
            machine = Machine()
            ResourceAllocation().apply_to(machine)
            engine = SqlEngine(
                machine, workload.database,
                workload.execution_characteristics(),
                governor=ResourceGovernor(),
                **workload.engine_parameters(),
            )
            from repro.workloads.base import ThroughputTracker
            tracker = ThroughputTracker()
            workload.spawn_clients(engine, tracker, until=15.0)
            machine.sim.run(until=15.0)
            from repro.engine.locks import WaitType
            waits[sf] = engine.locks.accounting.wait_time[WaitType.LOCK]
        return waits[15000] / max(1e-9, waits[5000])

    def run():
        return waits_ratio(TpceWorkload), waits_ratio(FixedSlots)
    scaled, fixed = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Ablation — scale-proportional hot slots (Table 3 LOCK ratio)",
        format_table(
            ["model", "LOCK ratio 15000/5000"],
            [("slots scale with SF", scaled), ("slots fixed (ablated)", fixed),
             ("paper", 0.15)],
        ),
    )
    assert scaled < 0.7
    assert fixed > scaled


def test_ablation_grant_reservation_couples_memory_to_io(benchmark, emit):
    """§8/§9 pitfall 5: reserving grant memory shrinks the buffer pool.
    Without the coupling, TPC-H SF=100 runs as if fully resident."""
    def run():
        workload = make_workload("tpch", 100)
        machine = Machine()
        ResourceAllocation().apply_to(machine)
        coupled = SqlEngine(
            machine, workload.database, workload.execution_characteristics(),
            governor=ResourceGovernor(), concurrent_grant_slots=3,
        )
        decoupled = SqlEngine(
            machine, workload.database, workload.execution_characteristics(),
            governor=ResourceGovernor(), concurrent_grant_slots=0,
        )
        table = workload.database.table("lineitem")
        return (
            coupled.buffer_pool.scan_read_bytes(table),
            decoupled.buffer_pool.scan_read_bytes(table),
        )
    coupled, decoupled = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Ablation — grant/buffer-pool coupling (TPC-H SF=100 lineitem scan)",
        format_table(
            ["model", "cold bytes per scan"],
            [("grants reserved", coupled), ("coupling ablated", decoupled)],
        ),
    )
    assert coupled > decoupled


def test_join_search_strategies(benchmark, emit):
    """Greedy vs DP join ordering: how much estimated cost does the fast
    search leave on the table?  (Both are the engine's own strategies;
    the experiments default to greedy.)"""
    from repro.engine.bufferpool import BufferPool
    from repro.engine.optimizer.optimizer import Optimizer, PlanningContext
    from repro.engine.schemas import build_tpch
    from repro.units import GIB
    from repro.workloads.tpch import TPCH_QUERIES, tpch_query

    def run():
        db = build_tpch(100)
        pool = BufferPool(db, server_memory_bytes=64 * GIB)
        greedy = Optimizer(PlanningContext(db, pool, max_dop=32,
                                           search_strategy="greedy"))
        dp = Optimizer(PlanningContext(db, pool, max_dop=32,
                                       search_strategy="dp"))
        gaps = {}
        for number in TPCH_QUERIES:
            spec = tpch_query(number, 100)
            g = greedy.optimize(spec).estimated_elapsed_cost
            d = dp.optimize(spec).estimated_elapsed_cost
            gaps[f"Q{number}"] = g / d if d > 0 else 1.0
        return gaps
    gaps = benchmark.pedantic(run, rounds=1, iterations=1)
    worst = max(gaps, key=gaps.get)
    emit(
        "Join-order search: greedy estimated cost relative to DP (1.0 = "
        "greedy already optimal among left-deep orders)",
        format_table(
            ["query", "greedy/dp"],
            sorted(gaps.items(), key=lambda kv: -kv[1])[:8],
        ),
    )
    assert all(v >= 0.999 for v in gaps.values())   # DP is a lower bound
    assert gaps[worst] < 3.0                        # greedy is never awful
