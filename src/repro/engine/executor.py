"""The executor: plans and transactions onto the simulated hardware.

Two execution paths:

* **Queries** (DSS / the analytical side of HTAP): an
  :class:`~repro.engine.optimizer.optimizer.OptimizedQuery` is converted
  into a :class:`QueryDemand` — instructions, cold sequential reads,
  random reads, spill IO — and executed with CPU and IO overlapped.
* **Transactions** (OLTP): a :class:`TransactionDemand` describes the
  instruction budget, lock/latch critical sections, buffer-pool page
  misses (PAGEIOLATCH), and commit log bytes; the executor threads it
  through the lock manager, core pool, SSD, and WAL in order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Optional, Tuple

from repro.calibration import INSTRUCTIONS_PER_COST_UNIT
from repro.engine.bufferpool import BufferPool
from repro.engine.locks import LockManager, WaitType
from repro.engine.memory_grants import MemoryGrant
from repro.engine.optimizer.optimizer import OptimizedQuery
from repro.engine.plan.operators import OpKind
from repro.engine.sqlos import SqlOs
from repro.errors import SimulationError
from repro.hardware.machine import Machine
from repro.sim.process import Simulator, Timeout
from repro.units import PAGE_SIZE


@dataclass(frozen=True)
class QueryDemand:
    """Resource demand vector for one query execution."""

    name: str
    instructions: float
    dop: int
    seq_read_bytes: float
    random_read_bytes: float
    spill_read_bytes: float
    spill_write_bytes: float
    grant: MemoryGrant

    @property
    def total_read_bytes(self) -> float:
        return self.seq_read_bytes + self.random_read_bytes + self.spill_read_bytes

    @property
    def total_write_bytes(self) -> float:
        return self.spill_write_bytes


@dataclass(frozen=True)
class ContentionPoint:
    """One critical section a transaction passes through."""

    wait_type: WaitType
    slot: int
    hold_seconds: float


@dataclass(frozen=True)
class TransactionDemand:
    """Resource demand vector for one OLTP transaction.

    ``latches`` are short critical sections released during execution
    (LATCH / PAGELATCH); ``locks`` are row locks acquired before the
    update and held until the commit record is durable — which is why
    hot-row contention couples to log latency, and why spreading rows
    over a larger scale factor reduces LOCK waits (Table 3).
    """

    name: str
    instructions: float
    page_reads: float           # expected cold page reads (count)
    log_bytes: float
    latches: Tuple[ContentionPoint, ...] = ()
    locks: Tuple[ContentionPoint, ...] = ()
    dirty_page_writes: float = 0.0  # checkpoint writes attributed per txn


@dataclass
class ExecutionResult:
    """Timing record of a completed query or transaction.

    ``grant_wait`` is time spent queued behind RESOURCE_SEMAPHORE before
    execution started (always 0 with overload protection off); it is
    *not* part of ``start``..``end``, so ``elapsed + grant_wait`` is the
    client-observed latency.
    """

    name: str
    start: float
    end: float
    io_wait: float = 0.0
    lock_wait: float = 0.0
    grant_wait: float = 0.0

    @property
    def elapsed(self) -> float:
        return self.end - self.start

    @property
    def client_latency(self) -> float:
        """Latency as the submitting client saw it: queue + execution."""
        return self.grant_wait + self.elapsed


#: Wall-clock startup/coordination cost of a parallel query: thread
#: spawn, grant setup, and exchange wiring grow superlinearly with the
#: worker count (barrier synchronization).  Short queries at high DOP pay
#: this disproportionately — one §4/§7 mechanism behind small scale
#: factors disliking MAXDOP=32.
PARALLEL_STARTUP_COEFF = 0.0025
PARALLEL_STARTUP_EXPONENT = 1.7


def parallel_startup_seconds(dop: int) -> float:
    """Coordination delay before a parallel query starts producing."""
    if dop <= 1:
        return 0.0
    return PARALLEL_STARTUP_COEFF * (dop - 1) ** PARALLEL_STARTUP_EXPONENT


class Executor:
    """Runs demand vectors against the hardware inside the simulation."""

    def __init__(
        self,
        sim: Simulator,
        machine: Machine,
        sqlos: SqlOs,
        buffer_pool: BufferPool,
        lock_manager: Optional[LockManager] = None,
        wal=None,
        checkpoint=None,
    ):
        self._sim = sim
        self._machine = machine
        self._sqlos = sqlos
        self._buffer_pool = buffer_pool
        self._locks = lock_manager
        self._wal = wal
        self._checkpoint = checkpoint
        # Memoized per-plan scan reads (see _scan_seq_read_bytes).
        self._scan_read_memo: dict = {}
        self._scan_memo_residency: Optional[tuple] = None

    # -- demand derivation -------------------------------------------------------

    def _scan_seq_read_bytes(self, optimized: OptimizedQuery) -> float:
        """Cold sequential-read bytes of a plan's scans, memoized.

        A TPC-H stream re-runs the same optimized plans hundreds of times
        per experiment, and this plan walk (plus a residency probe per
        scan node) used to repeat per execution.  Plans are deterministic
        per ``(query name, dop)`` within one engine, so that pair keys
        the memo; the whole memo drops whenever the buffer pool's
        residency inputs (capacity or catalog size sums) change.
        """
        pool = self._buffer_pool
        residency = (pool.server_memory_bytes, pool.reserved_grant_bytes,
                     pool.database.sizes_version)
        if residency != self._scan_memo_residency:
            self._scan_read_memo.clear()
            self._scan_memo_residency = residency
        key = (optimized.spec.name, optimized.dop)
        seq_read = self._scan_read_memo.get(key)
        if seq_read is None:
            spec = optimized.spec
            seq_read = 0.0
            scan_ops = (OpKind.COLUMNSTORE_SCAN, OpKind.TABLE_SCAN)
            for node in optimized.plan.walk():
                if node.op in scan_ops and node.table is not None:
                    ref = spec.table_ref(node.table)
                    table = pool.database.table(ref.table)
                    seq_read += pool.scan_read_bytes(table, ref.column_fraction)
            self._scan_read_memo[key] = seq_read
        return seq_read

    def demand_for_query(self, optimized: OptimizedQuery, grant: MemoryGrant) -> QueryDemand:
        """Convert an optimized plan + admitted grant into raw demands."""
        spec = optimized.spec
        passes = spec.correlated_passes
        cost_units = optimized.plan.total_cpu_cost() * passes + grant.spill_cpu_cost
        instructions = cost_units * INSTRUCTIONS_PER_COST_UNIT

        seq_read = self._scan_seq_read_bytes(optimized)
        random_read = optimized.random_reads * PAGE_SIZE * passes

        return QueryDemand(
            name=spec.name,
            instructions=instructions,
            dop=optimized.dop,
            seq_read_bytes=seq_read * passes,
            random_read_bytes=random_read,
            spill_read_bytes=grant.spill_read_bytes,
            spill_write_bytes=grant.spill_write_bytes,
            grant=grant,
        )

    # -- query execution -----------------------------------------------------------

    def execute_query(self, demand: QueryDemand) -> Generator:
        """Generator: run a query with CPU and IO overlapped.

        Returns an :class:`ExecutionResult`.
        """
        start = self._sim.now
        if demand.dop > 1:
            yield Timeout(parallel_startup_seconds(demand.dop))
        # Scan IO pipelines with computation; spill IO does not — sort
        # runs and hash partitions must be written out before they can be
        # merged back, so spills add directly to elapsed time (the Fig 8
        # degradation mechanism).
        io_proc = self._sim.spawn(self._scan_io(demand), name=f"{demand.name}-io")
        cpu_proc = self._sim.spawn(self._query_cpu(demand), name=f"{demand.name}-cpu")
        yield cpu_proc
        cpu_done = self._sim.now
        yield io_proc
        if demand.spill_write_bytes > 0:
            yield from self._machine.ssd.write(demand.spill_write_bytes)
        if demand.spill_read_bytes > 0:
            yield from self._machine.ssd.read(demand.spill_read_bytes)
        end = self._sim.now
        return ExecutionResult(
            name=demand.name, start=start, end=end, io_wait=max(0.0, end - cpu_done)
        )

    def _query_cpu(self, demand: QueryDemand) -> Generator:
        yield from self._sqlos.run_on_cpu(demand.instructions, dop=demand.dop)
        return None

    def _scan_io(self, demand: QueryDemand) -> Generator:
        reads = demand.seq_read_bytes + demand.random_read_bytes
        if reads > 0:
            yield from self._machine.ssd.read(reads)
        return None

    # -- transaction execution --------------------------------------------------------

    def execute_transaction(self, demand: TransactionDemand) -> Generator:
        """Generator: run one OLTP transaction end to end.

        Order: acquire/hold critical sections (lock manager accounts
        queueing), run the instruction budget, perform cold page reads
        (charged as PAGEIOLATCH waits), then harden the commit record.
        Returns an :class:`ExecutionResult`.
        """
        if self._locks is None:
            raise SimulationError("transaction execution requires a lock manager")
        start = self._sim.now
        lock_wait = 0.0

        # Short latch critical sections during execution.
        for point in demand.latches:
            before = self._sim.now
            yield from self._locks.critical_section(
                point.wait_type, point.slot, point.hold_seconds
            )
            lock_wait += max(0.0, self._sim.now - before - point.hold_seconds)

        yield from self._sqlos.run_transaction_cpu(demand.instructions)

        io_wait = 0.0
        if demand.page_reads > 0:
            before = self._sim.now
            yield from self._machine.ssd.read_pages(demand.page_reads, PAGE_SIZE)
            io_wait = self._sim.now - before
            self._locks.charge_io_latch(io_wait)

        # Row locks: acquired for the update, held across the commit.
        held = []
        for point in demand.locks:
            before = self._sim.now
            yield from self._locks.acquire(point.wait_type, point.slot)
            lock_wait += self._sim.now - before
            held.append(point)
            if point.hold_seconds > 0:
                yield Timeout(point.hold_seconds)

        if demand.dirty_page_writes > 0:
            if self._checkpoint is not None:
                # The background checkpoint writer flushes dirty pages;
                # mark_dirty only blocks when the backlog exceeds the
                # recovery-interval limit (write-cap back-pressure, §6).
                yield from self._checkpoint.mark_dirty(demand.dirty_page_writes)
            else:
                self._sim.spawn(
                    self._background_write(demand.dirty_page_writes * PAGE_SIZE),
                    name="checkpoint",
                )
        if self._wal is not None and demand.log_bytes > 0:
            yield from self._wal.commit(demand.log_bytes)
        for point in reversed(held):
            self._locks.release(point.wait_type, point.slot)
        end = self._sim.now
        return ExecutionResult(
            name=demand.name, start=start, end=end, io_wait=io_wait, lock_wait=lock_wait
        )

    def _background_write(self, nbytes: float) -> Generator:
        yield from self._machine.ssd.write(nbytes)
        return None
