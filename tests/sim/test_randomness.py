"""Tests for deterministic random streams."""

from repro.sim.randomness import RandomStreams


def test_same_name_same_stream_object():
    streams = RandomStreams(seed=1)
    assert streams.get("a") is streams.get("a")


def test_streams_are_independent_by_name():
    streams = RandomStreams(seed=1)
    a = streams.get("a").random(5).tolist()
    b = streams.get("b").random(5).tolist()
    assert a != b


def test_reproducible_across_instances():
    a = RandomStreams(seed=9).get("x").random(3).tolist()
    b = RandomStreams(seed=9).get("x").random(3).tolist()
    assert a == b


def test_seed_changes_draws():
    a = RandomStreams(seed=1).get("x").random(3).tolist()
    b = RandomStreams(seed=2).get("x").random(3).tolist()
    assert a != b


def test_adding_consumers_does_not_perturb_existing():
    """Common-random-numbers property: draws from stream 'a' are the same
    whether or not stream 'b' was ever created."""
    lone = RandomStreams(seed=5)
    lone_draws = lone.get("a").random(4).tolist()
    crowded = RandomStreams(seed=5)
    crowded.get("b").random(100)
    crowded_draws = crowded.get("a").random(4).tolist()
    assert lone_draws == crowded_draws


def test_fork_creates_independent_family():
    base = RandomStreams(seed=3)
    fork1 = base.fork("experiment-1")
    fork2 = base.fork("experiment-2")
    same_fork = RandomStreams(seed=3).fork("experiment-1")
    assert fork1.get("x").random(3).tolist() == same_fork.get("x").random(3).tolist()
    assert fork1.get("x").random(3).tolist() != fork2.get("x").random(3).tolist()
