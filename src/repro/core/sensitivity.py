"""The sensitivity matrix: the paper's thesis in one table.

The paper's Figure 1 frames the study as a cross product of workloads,
resources, sizes, and configurations; its abstract promises "the wide
spectrum of resource sensitivities".  This module condenses the whole
study into one matrix: for every (workload, scale factor), the fraction
of performance lost when each resource is cut to a stress level —

* cores: 32 logical -> 2 (§4 shows every class scales with physical
  cores, even those that dislike hyper-threading),
* LLC: 40 MB -> 6 MB,
* read bandwidth: unlimited -> 200 MB/s,
* write bandwidth: unlimited -> 50 MB/s,
* memory grant: 25% -> 5%.

An index of 0.0 means the workload does not care; 0.75 means it runs at
a quarter of full performance.  The matrix is what a DBaaS placement
engine would precompute per tenant (§1's motivation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.experiment import ExperimentConfig
from repro.core.knobs import ResourceAllocation
from repro.core.resultcache import ResultCache
from repro.core.sweeps import STUDY_MATRIX, duration_for, run_sweep
from repro.units import mb_per_s

#: The stress allocation per resource axis.
STRESS_ALLOCATIONS: Dict[str, ResourceAllocation] = {
    "cores": ResourceAllocation(logical_cores=2),
    "llc": ResourceAllocation(llc_mb=6),
    "read_bw": ResourceAllocation(read_bw_limit=mb_per_s(200)),
    "write_bw": ResourceAllocation(write_bw_limit=mb_per_s(50)),
    "grant": ResourceAllocation(grant_percent=5.0),
}

RESOURCES: Tuple[str, ...] = tuple(STRESS_ALLOCATIONS)


@dataclass(frozen=True)
class SensitivityRow:
    """One workload's sensitivity indices."""

    workload: str
    scale_factor: int
    baseline: float
    indices: Dict[str, float]

    def most_sensitive(self) -> str:
        return max(self.indices, key=self.indices.get)

    def least_sensitive(self) -> str:
        return min(self.indices, key=self.indices.get)


def sensitivity_index(baseline: float, stressed: float) -> float:
    """Fraction of performance lost under stress (clamped to [0, 1])."""
    if baseline <= 0:
        return 0.0
    return min(1.0, max(0.0, 1.0 - stressed / baseline))


def sensitivity_matrix(
    matrix: Tuple[Tuple[str, int], ...] = STUDY_MATRIX,
    duration_scale: float = 1.0,
    seed: int = 0,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
) -> List[SensitivityRow]:
    """Compute the full workload x resource sensitivity matrix.

    The grid — one baseline plus one stressed run per resource, for
    every (workload, SF) — is flattened into a single sweep so it can
    fan out over ``jobs`` workers and reuse cached grid points (the
    baselines are the same full-allocation runs Fig 4 measures).
    """
    configs: List[ExperimentConfig] = []
    for workload, sf in matrix:
        duration = duration_for(workload, sf, duration_scale)
        configs.append(ExperimentConfig(workload=workload, scale_factor=sf,
                                        duration=duration, seed=seed))
        configs.extend(
            ExperimentConfig(workload=workload, scale_factor=sf,
                             allocation=allocation, duration=duration, seed=seed)
            for allocation in STRESS_ALLOCATIONS.values()
        )
    measurements = iter(run_sweep(configs, jobs=jobs, cache=cache))

    rows: List[SensitivityRow] = []
    for workload, sf in matrix:
        baseline = next(measurements).primary_metric
        indices: Dict[str, float] = {
            resource: sensitivity_index(baseline, next(measurements).primary_metric)
            for resource in STRESS_ALLOCATIONS
        }
        rows.append(SensitivityRow(workload=workload, scale_factor=sf,
                                   baseline=baseline, indices=indices))
    return rows


def spectrum_width(rows: List[SensitivityRow]) -> Dict[str, float]:
    """Per-resource spread across workloads (max - min index).

    A wide spread is exactly the paper's point: no single workload class
    predicts another's sensitivities, so servers must be provisioned for
    the envelope.
    """
    spread: Dict[str, float] = {}
    for resource in RESOURCES:
        values = [row.indices[resource] for row in rows]
        spread[resource] = max(values) - min(values)
    return spread
