"""Tests for the CPU/SMT performance model."""

import pytest
from hypothesis import given, strategies as st

from repro.hardware.cpu import CpuModel, SmtModel, ThreadCharacteristics
from repro.hardware.topology import CpuTopology


def make_chars(mpki=2.0, cpi_base=0.8):
    return ThreadCharacteristics(cpi_base=cpi_base, mpki=mpki)


class TestThreadCharacteristics:
    def test_cpi_increases_with_mpki(self):
        low = make_chars(mpki=1.0).cpi()
        high = make_chars(mpki=10.0).cpi()
        assert high > low

    def test_zero_mpki_gives_base_cpi(self):
        chars = make_chars(mpki=0.0, cpi_base=0.7)
        assert chars.cpi() == pytest.approx(0.7)
        assert chars.memory_stall_fraction() == 0.0

    def test_stall_fraction_bounded(self):
        chars = make_chars(mpki=100.0)
        assert 0.0 < chars.memory_stall_fraction() < 1.0

    @given(st.floats(min_value=0.0, max_value=200.0))
    def test_stall_fraction_monotone_in_mpki(self, mpki):
        lower = make_chars(mpki=mpki).memory_stall_fraction()
        higher = make_chars(mpki=mpki + 1.0).memory_stall_fraction()
        assert higher >= lower


class TestSmtModel:
    def test_memory_bound_threads_benefit(self):
        smt = SmtModel()
        assert smt.multiplier(0.8) > 1.0

    def test_compute_bound_threads_can_lose(self):
        smt = SmtModel()
        assert smt.multiplier(0.0) < 1.0

    def test_multiplier_monotone_in_stall(self):
        smt = SmtModel()
        values = [smt.multiplier(s / 10) for s in range(11)]
        assert values == sorted(values)

    def test_multiplier_floor(self):
        smt = SmtModel(gain_span=0.0, interference_span=10.0)
        assert smt.multiplier(0.0) == 0.5


class TestCpuModel:
    def test_turbo_at_low_core_count(self):
        cpu = CpuModel()
        assert cpu.frequency(1, 16) == pytest.approx(3.0e9)

    def test_allcore_turbo_at_full_load(self):
        cpu = CpuModel()
        assert cpu.frequency(16, 16) == pytest.approx(2.3e9)

    def test_frequency_monotone_decreasing(self):
        cpu = CpuModel()
        freqs = [cpu.frequency(n, 16) for n in range(1, 17)]
        assert freqs == sorted(freqs, reverse=True)

    def test_capacity_counts_smt_multiplier(self):
        cpu = CpuModel()
        topo = CpuTopology()
        chars = make_chars(mpki=8.0)
        shape16 = topo.describe_allocation(topo.paper_allocation(16))
        shape32 = topo.describe_allocation(topo.paper_allocation(32))
        cap16 = cpu.capacity_core_equivalents(chars, shape16)
        cap32 = cpu.capacity_core_equivalents(chars, shape32)
        assert cap16 == pytest.approx(16.0)
        expected = 16.0 * cpu.smt.multiplier(chars.memory_stall_fraction())
        assert cap32 == pytest.approx(expected)

    def test_aggregate_ips_scales_with_cores(self):
        cpu = CpuModel()
        topo = CpuTopology()
        chars = make_chars()
        ips = [
            cpu.aggregate_ips(
                chars, topo.describe_allocation(topo.paper_allocation(n)), 16
            )
            for n in (1, 2, 4, 8, 16)
        ]
        assert all(b > a for a, b in zip(ips, ips[1:]))
        # Sub-linear because of turbo decay.
        assert ips[4] < 16 * ips[0]
