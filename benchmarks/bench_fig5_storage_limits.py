"""Fig 5: nonlinear QPS response to SSD read-bandwidth limits, and the
§6 write-bandwidth results for transactional workloads."""

from repro.core.figures import fig5_read_limits, write_limit_drops
from repro.core.report import format_series, format_table


def test_fig5_read_bandwidth_response(benchmark, duration_scale, emit):
    result = benchmark.pedantic(
        fig5_read_limits, kwargs={"duration_scale": duration_scale},
        rounds=1, iterations=1,
    )
    linear = [
        result.comparison.performance[-1] * l / result.limits_mb[-1]
        for l in result.limits_mb
    ]
    emit(
        "Fig 5 — TPC-H SF=300 QPS vs read-BW limit (dashed = linear model)",
        format_series("limit_MB/s", result.limits_mb,
                      {"qps": result.qps, "linear_model": linear}),
    )
    emit(
        "Fig 5 — linear-model comparison (the paper's ~20% savings point)",
        format_table(
            ["probe QPS", "linear needs MB/s", "actual needs MB/s", "savings"],
            [(result.comparison.probe_performance,
              result.comparison.linear_bandwidth,
              result.comparison.actual_bandwidth,
              f"{result.comparison.savings_fraction:.0%}")],
        ),
    )
    # Nonlinear with diminishing returns: the linear model over-allocates.
    # Allow small sampling inversions between adjacent points.
    for a, b in zip(result.qps, result.qps[1:]):
        assert b >= a * 0.9, result.qps
    assert result.qps[-1] > result.qps[0]
    assert result.comparison.savings_fraction > 0.05


def test_write_bandwidth_limits_on_asdb(benchmark, duration_scale, emit):
    drops = benchmark.pedantic(
        write_limit_drops, kwargs={"duration_scale": duration_scale},
        rounds=1, iterations=1,
    )
    emit(
        "§6 — ASDB SF=2000 TPS drop under write-bandwidth caps",
        format_table(
            ["cap MB/s", "measured drop", "paper"],
            [(100, f"{drops[100]:.0%}", "6%"), (50, f"{drops[50]:.0%}", "44%")],
        ),
    )
    assert drops[100] < 0.2
    assert 0.25 < drops[50] < 0.65
