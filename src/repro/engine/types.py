"""Shared engine-level types: storage formats, index kinds, workload
classes (Table 1 of the paper)."""

from __future__ import annotations

import enum


class WorkloadClass(enum.Enum):
    """The paper's three workload categories (§2)."""

    OLTP = "oltp"
    DSS = "dss"
    HTAP = "htap"


class StorageFormat(enum.Enum):
    """Row store vs column store (Table 1)."""

    ROW = "row"
    COLUMN = "column"


class IndexKind(enum.Enum):
    """Index organizations used across the workload designs (Table 1)."""

    BTREE_CLUSTERED = "btree_clustered"
    BTREE_NONCLUSTERED = "btree_nonclustered"
    COLUMNSTORE_CLUSTERED = "columnstore_clustered"
    #: Updateable non-clustered columnstore — the HTAP design (§2.3.1).
    COLUMNSTORE_NONCLUSTERED = "columnstore_nonclustered"


#: Typical compression ratio achieved by columnstore segments relative to
#: uncompressed row data (§2.2.1 cites high compression as a key benefit).
COLUMNSTORE_COMPRESSION = 3.2

#: Batch-mode execution speedup for columnstore scans relative to
#: row-by-row processing (SIMD + batched operators, §2.2.1).
BATCH_MODE_CPU_FACTOR = 0.35
