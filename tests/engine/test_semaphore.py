"""Tests for the RESOURCE_SEMAPHORE grant queue (overload tentpole).

The harness uses a tiny float pool so the geometry is easy to reason
about: ``QueryMemoryPool(server_memory_bytes=100.0, grant_percent=25.0)``
yields a 57.6-byte pool with a 14.4-byte per-query cap — exactly four
cap-sized grants fit, a fifth waits.
"""

import pytest

from repro.engine.memory_grants import QueryMemoryPool
from repro.engine.resource_governor import ResourceGovernor
from repro.engine.semaphore import GrantTicket, ResourceSemaphore
from repro.errors import GrantTimeoutError, SimulationError
from repro.sim.process import Simulator, Timeout


def make_semaphore(**governor_knobs):
    sim = Simulator()
    grant_percent = governor_knobs.get("grant_percent", 25.0)
    pool = QueryMemoryPool(server_memory_bytes=100.0,
                           grant_percent=grant_percent)
    governor = ResourceGovernor(**governor_knobs)
    return sim, ResourceSemaphore(sim, pool, governor)


def holder(sim, sem, nbytes, hold, tickets, releases=None):
    """Acquire, hold for `hold` seconds, release; record the ticket."""
    def proc():
        ticket = yield from sem.acquire(nbytes, name=f"q{len(tickets)}")
        tickets.append(ticket)
        yield Timeout(hold)
        sem.release(ticket)
        if releases is not None:
            releases.append(sim.now)
    return proc


class TestPassThrough:
    def test_disabled_by_default(self):
        _, sem = make_semaphore()
        assert not sem.enabled

    def test_disabled_acquire_never_charges_or_yields(self):
        sim, sem = make_semaphore()
        tickets = []
        # Six cap-sized requests against a four-slot pool: with the
        # semaphore off, all are admitted instantly and nothing queues.
        for _ in range(6):
            sim.spawn(holder(sim, sem, 50.0, 1.0, tickets)())
        sim.run()
        assert len(tickets) == 6
        assert all(t.charged_bytes == 0.0 for t in tickets)
        assert all(t.waited == 0.0 for t in tickets)
        assert sem.requests == 6
        assert sem.waits == 0
        assert sem.queue_peak == 0

    def test_enabled_flag_follows_governor(self):
        for knobs in (
            dict(grant_timeout_s=10.0),
            dict(small_query_bypass_bytes=1.0),
            dict(max_queue_depth=4),
        ):
            _, sem = make_semaphore(**knobs)
            assert sem.enabled


class TestUncontendedInvariance:
    def test_enabled_but_uncontended_never_suspends(self):
        """The key invariance property: with protection on but the pool
        never full, acquire() runs start to finish without yielding, so
        timing is bit-identical to the pass-through path."""
        sim, sem = make_semaphore(grant_timeout_s=10.0)
        finish_times = []
        tickets = []
        for _ in range(4):   # exactly fills the pool, nobody waits
            sim.spawn(holder(sim, sem, 50.0, 1.0, tickets, finish_times)())
        sim.run()
        assert finish_times == [1.0, 1.0, 1.0, 1.0]
        assert sem.waits == 0
        assert sem.wait_seconds == 0.0
        assert all(t.waited == 0.0 and not t.degraded for t in tickets)
        # ... but the pool accounting was live:
        assert all(t.charged_bytes == pytest.approx(14.4) for t in tickets)
        assert sem.free_bytes == pytest.approx(sem.pool_bytes)


class TestFifoQueue:
    def test_fifth_request_waits_for_first_release(self):
        sim, sem = make_semaphore(grant_timeout_s=100.0)
        tickets, releases = [], []
        for _ in range(6):
            sim.spawn(holder(sim, sem, 50.0, 2.0, tickets, releases)())
        sim.run()
        # Four run at t=0; two wait until the t=2.0 releases free slots.
        assert len(tickets) == 6
        waits = sorted(t.waited for t in tickets)
        assert waits == pytest.approx([0.0, 0.0, 0.0, 0.0, 2.0, 2.0])
        assert sem.waits == 2
        assert sem.wait_seconds == pytest.approx(4.0)
        assert sem.timeouts == 0
        assert sem.queue_peak == 2
        assert not any(t.degraded for t in tickets)

    def test_grants_are_fifo_ordered(self):
        sim, sem = make_semaphore(grant_timeout_s=100.0)
        order = []

        def client(label, hold):
            def proc():
                ticket = yield from sem.acquire(50.0, name=label)
                order.append((label, sim.now))
                yield Timeout(hold)
                sem.release(ticket)
            return proc

        # Four holders with staggered hold times, then three waiters
        # spawned in a known order: waiters must be granted in spawn
        # order even though releases happen one at a time.
        for i, hold in enumerate((1.0, 2.0, 3.0, 4.0)):
            sim.spawn(client(f"h{i}", hold)())
        for i in range(3):
            sim.spawn(client(f"w{i}", 0.5)())
        sim.run()
        granted_waiters = [lbl for lbl, _ in order if lbl.startswith("w")]
        assert granted_waiters == ["w0", "w1", "w2"]
        grant_times = {lbl: t for lbl, t in order}
        # w0 rides h0's release; w1 rides w0's own release at 1.5 (a
        # released waiter slot is a slot like any other); w2 rides the
        # t=2.0 releases.
        assert grant_times["w0"] == 1.0
        assert grant_times["w1"] == 1.5
        assert grant_times["w2"] == 2.0

    def test_head_of_line_blocks_smaller_request(self):
        """Strict FIFO: a small request behind a big one waits even when
        the small one would fit — that head-of-line convoy is the real
        semaphore's behavior."""
        sim, sem = make_semaphore(
            grant_timeout_s=100.0, grant_percent=100.0
        )
        order = []

        def client(label, nbytes, hold):
            def proc():
                ticket = yield from sem.acquire(nbytes, name=label)
                order.append(label)
                yield Timeout(hold)
                sem.release(ticket)
            return proc

        sim.spawn(client("holder", 40.0, 2.0)())   # leaves 17.6 free
        sim.spawn(client("big", 30.0, 1.0)())      # does not fit: queues
        sim.spawn(client("small", 5.0, 1.0)())     # would fit, but FIFO
        sim.run()
        assert order == ["holder", "big", "small"]


class TestSmallQueryBypass:
    def test_bypass_boundary_is_inclusive(self):
        sim, sem = make_semaphore(
            small_query_bypass_bytes=5.0, grant_timeout_s=100.0
        )
        tickets = []

        def one(nbytes):
            def proc():
                ticket = yield from sem.acquire(nbytes)
                tickets.append(ticket)
                sem.release(ticket)
            return proc

        sim.spawn(one(5.0)())    # exactly at the boundary: bypasses
        sim.spawn(one(5.0001)()) # just over: normal path
        sim.run()
        assert tickets[0].bypassed
        assert not tickets[1].bypassed
        assert sem.bypasses == 1

    def test_bypass_jumps_a_full_queue(self):
        sim, sem = make_semaphore(
            small_query_bypass_bytes=5.0, grant_timeout_s=100.0
        )
        order = []

        def client(label, nbytes, hold):
            def proc():
                ticket = yield from sem.acquire(nbytes, name=label)
                order.append((label, sim.now))
                yield Timeout(hold)
                sem.release(ticket)
            return proc

        for i in range(4):
            sim.spawn(client(f"h{i}", 50.0, 2.0)())
        sim.spawn(client("queued", 50.0, 1.0)())
        sim.spawn(client("tiny", 2.0, 1.0)())
        sim.run()
        grant_times = dict(order)
        assert grant_times["tiny"] == 0.0      # bypassed the convoy
        assert grant_times["queued"] == 2.0    # waited for a release
        assert sem.bypasses == 1

    def test_zero_byte_request_is_not_a_bypass(self):
        sim, sem = make_semaphore(small_query_bypass_bytes=5.0)
        tickets = []

        def proc():
            ticket = yield from sem.acquire(0.0)
            tickets.append(ticket)
            sem.release(ticket)

        sim.spawn(proc())
        sim.run()
        assert not tickets[0].bypassed
        assert sem.bypasses == 0


class TestTimeoutPolicies:
    def test_timeout_degrades_to_free_memory(self):
        sim, sem = make_semaphore(grant_timeout_s=1.0)
        tickets = []
        for _ in range(6):
            sim.spawn(holder(sim, sem, 50.0, 2.0, tickets)())
        sim.run()
        degraded = [t for t in tickets if t.degraded]
        assert len(degraded) == 2
        assert sem.timeouts == 2
        assert sem.degrades == 2
        for t in degraded:
            assert t.waited == pytest.approx(1.0)
            # Nothing was free when the timer fired, so the grant shrank
            # to zero and the query takes the full spill path.
            assert t.grant.granted_bytes == 0.0
            assert t.grant.spills

    def test_timeout_fail_raises_grant_timeout_error(self):
        sim, sem = make_semaphore(
            grant_timeout_s=1.0, on_grant_timeout="fail"
        )
        errors = []
        tickets = []

        def failing():
            try:
                ticket = yield from sem.acquire(50.0, name="victim")
            except GrantTimeoutError as exc:
                errors.append(exc)
                return
            tickets.append(ticket)
            yield Timeout(2.0)
            sem.release(ticket)

        for _ in range(5):
            sim.spawn(failing())
        sim.run()
        assert len(errors) == 1
        err = errors[0]
        assert err.query == "victim"
        assert err.waited == pytest.approx(1.0)
        assert err.required_bytes == 50.0
        assert sem.timeouts == 1
        assert sem.degrades == 0

    def test_granted_waiter_cancels_its_timer(self):
        """A waiter granted before its deadline must not later 'expire';
        the run ends cleanly with no timeout counted."""
        sim, sem = make_semaphore(grant_timeout_s=5.0)
        tickets = []
        for _ in range(5):
            sim.spawn(holder(sim, sem, 50.0, 2.0, tickets)())
        sim.run()
        assert sem.timeouts == 0
        assert sem.waits == 1
        assert len(tickets) == 5

    def test_expired_waiter_unblocks_queue_behind_it(self):
        """When the head times out, _drain runs so a fitting request
        behind it is granted at the same instant."""
        sim, sem = make_semaphore(grant_timeout_s=1.0, grant_percent=100.0)
        order = []

        def client(label, nbytes, hold):
            def proc():
                ticket = yield from sem.acquire(nbytes, name=label)
                order.append((label, sim.now, ticket.degraded))
                yield Timeout(hold)
                sem.release(ticket)
            return proc

        # holder takes 40 of the 57.6-byte pool for 3s; "big" (30)
        # queues at the head and times out at t=1; "small" (10) fits as
        # soon as the head departs.
        sim.spawn(client("holder", 40.0, 3.0)())
        sim.spawn(client("big", 30.0, 1.0)())
        sim.spawn(client("small", 10.0, 1.0)())
        sim.run()
        granted = {lbl: (t, deg) for lbl, t, deg in order}
        assert granted["big"] == (1.0, True)
        assert granted["small"] == (1.0, False)
        assert sem.timeouts == 1


class TestAdmissionThrottle:
    def test_full_queue_degrades_immediately(self):
        sim, sem = make_semaphore(max_queue_depth=1, grant_timeout_s=100.0)
        tickets = []
        for _ in range(6):
            sim.spawn(holder(sim, sem, 50.0, 2.0, tickets)())
        sim.run()
        # 4 admitted, 1 queued; the 6th hits the depth-1 queue and is
        # throttled into an instant degraded grant.
        assert sem.throttles == 1
        assert sem.degrades == 1
        throttled = [t for t in tickets if t.degraded]
        assert len(throttled) == 1
        assert throttled[0].waited == 0.0

    def test_full_queue_fails_under_fail_policy(self):
        sim, sem = make_semaphore(
            max_queue_depth=0, grant_timeout_s=100.0, on_grant_timeout="fail"
        )
        errors = []

        def impatient():
            try:
                ticket = yield from sem.acquire(50.0, name="turned-away")
            except GrantTimeoutError as exc:
                errors.append(exc)
                return
            yield Timeout(2.0)
            sem.release(ticket)

        for _ in range(5):
            sim.spawn(impatient())
        sim.run()
        assert len(errors) == 1
        assert errors[0].waited == 0.0
        assert sem.throttles == 1
        assert sem.timeouts == 0

    def test_queue_peak_tracks_high_water_mark(self):
        sim, sem = make_semaphore(grant_timeout_s=100.0)
        tickets = []
        for _ in range(9):
            sim.spawn(holder(sim, sem, 50.0, 1.0, tickets)())
        sim.run()
        assert sem.queue_peak == 5
        assert len(tickets) == 9


class TestReleaseAccounting:
    def test_release_restores_free_bytes(self):
        sim, sem = make_semaphore(grant_timeout_s=10.0)
        tickets = []
        sim.spawn(holder(sim, sem, 50.0, 1.0, tickets)())
        sim.run()
        assert sem.free_bytes == pytest.approx(sem.pool_bytes)

    def test_double_release_of_whole_grant_raises(self):
        sim, sem = make_semaphore(grant_timeout_s=10.0)
        tickets = []
        sim.spawn(holder(sim, sem, 50.0, 1.0, tickets)())
        sim.run()
        with pytest.raises(SimulationError):
            sem.release(tickets[0])

    def test_subbyte_drift_is_tolerated(self):
        """Float charges at GB magnitudes accumulate ulp-scale error;
        release clamps small negatives instead of crashing the run."""
        sim, sem = make_semaphore(grant_timeout_s=10.0)
        sem._charged = -0.5   # sub-byte drift, not a double release
        sem.release(GrantTicket(
            grant=sem._pool.admit(1.0), charged_bytes=0.4
        ))
        assert sem._charged == 0.0

    def test_pass_through_ticket_release_is_a_noop(self):
        sim, sem = make_semaphore()   # disabled
        tickets = []
        sim.spawn(holder(sim, sem, 50.0, 1.0, tickets)())
        sim.run()
        sem.release(tickets[0])   # idempotent: charged_bytes == 0
        assert sem._charged == 0.0


class TestSummary:
    def test_summary_keys_and_counts(self):
        sim, sem = make_semaphore(grant_timeout_s=1.0,
                                  small_query_bypass_bytes=5.0)
        tickets = []
        for _ in range(6):
            sim.spawn(holder(sim, sem, 50.0, 2.0, tickets)())
        sim.spawn(holder(sim, sem, 2.0, 0.5, tickets)())
        sim.run()
        summary = sem.summary()
        assert summary == {
            "grant_requests": 7.0,
            "grant_waits": 2.0,
            "grant_wait_seconds": pytest.approx(2.0),
            "grant_timeouts": 2.0,
            "grant_degrades": 2.0,
            "grant_bypasses": 1.0,
            "grant_throttles": 0.0,
            "grant_queue_peak": 2.0,
        }
