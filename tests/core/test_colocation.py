"""Tests for co-located tenants with partitioned CPU/LLC and shared SSD."""

import pytest

from repro.core.colocation import TenantSpec, run_colocated, tenant_machine
from repro.core.experiment import run_experiment
from repro.core.knobs import ResourceAllocation
from repro.errors import ConfigurationError
from repro.hardware.machine import Machine
from repro.units import MIB


class TestTenantMachine:
    def test_view_shares_simulator_and_ssd(self):
        base = Machine()
        view = tenant_machine(base, base.topology.paper_allocation(8), 10, 0.5)
        assert view.sim is base.sim
        assert view.ssd is base.ssd
        assert view.topology is base.topology

    def test_view_has_private_partitions(self):
        base = Machine()
        view = tenant_machine(base, base.topology.paper_allocation(8), 10, 0.5)
        assert len(view.cpuset) == 8
        assert len(base.cpuset) == 32           # base untouched
        assert view.llc.allocated_bytes() == 10 * MIB
        assert base.llc.allocated_bytes() == 40 * MIB
        assert view.dram.capacity_bytes == base.dram.capacity_bytes // 2


class TestRunColocated:
    def test_two_tenants_both_progress(self):
        results = run_colocated(
            [
                TenantSpec("oltp", "asdb", 2000, logical_cores=16, llc_mb=10),
                TenantSpec("dss", "tpch", 30, logical_cores=16, llc_mb=20),
            ],
            duration=8.0,
        )
        by_name = {r.name: r for r in results}
        assert by_name["oltp"].primary_metric > 0
        assert by_name["dss"].primary_metric > 0

    def test_partitioned_oltp_roughly_matches_standalone_slice(self):
        """With CAT + cpuset isolation and an in-memory DSS neighbour,
        the OLTP tenant performs close to running alone on the same
        slice (the Heracles-style claim)."""
        colocated = run_colocated(
            [
                TenantSpec("oltp", "asdb", 2000, logical_cores=16, llc_mb=10,
                           memory_fraction=0.8),
                TenantSpec("dss", "tpch", 10, logical_cores=16, llc_mb=30),
            ],
            duration=8.0,
        )
        oltp = next(r for r in colocated if r.name == "oltp")
        alone = run_experiment(
            "asdb", 2000,
            allocation=ResourceAllocation(logical_cores=16, llc_mb=10),
            duration=8.0,
        )
        assert oltp.primary_metric == pytest.approx(
            alone.primary_metric, rel=0.25
        )

    def test_ssd_interference_is_real(self):
        """An IO-hungry neighbour (TPC-H SF=300 scans + spills) does slow
        a write-heavy OLTP tenant — bandwidth has no CAT (§6)."""
        quiet = run_colocated(
            [
                TenantSpec("oltp", "asdb", 2000, logical_cores=16, llc_mb=10,
                           memory_fraction=0.8),
                TenantSpec("dss", "tpch", 10, logical_cores=16, llc_mb=30),
            ],
            duration=8.0,
        )
        noisy = run_colocated(
            [
                TenantSpec("oltp", "asdb", 2000, logical_cores=16, llc_mb=10,
                           memory_fraction=0.8),
                TenantSpec("dss", "tpch", 300, logical_cores=16, llc_mb=30,
                           memory_fraction=0.2),
            ],
            duration=8.0,
        )
        tps_quiet = next(r for r in quiet if r.name == "oltp").primary_metric
        tps_noisy = next(r for r in noisy if r.name == "oltp").primary_metric
        assert tps_noisy < tps_quiet

    def test_resource_overcommit_rejected(self):
        with pytest.raises(ConfigurationError):
            run_colocated(
                [TenantSpec("a", "asdb", 2000, logical_cores=20, llc_mb=10),
                 TenantSpec("b", "asdb", 2000, logical_cores=20, llc_mb=10)],
                duration=1.0,
            )
        with pytest.raises(ConfigurationError):
            run_colocated(
                [TenantSpec("a", "asdb", 2000, logical_cores=8, llc_mb=30),
                 TenantSpec("b", "asdb", 2000, logical_cores=8, llc_mb=30)],
                duration=1.0,
            )

    def test_empty_tenant_list_rejected(self):
        with pytest.raises(ConfigurationError):
            run_colocated([], duration=1.0)

    def test_bad_spec_rejected(self):
        with pytest.raises(ConfigurationError):
            TenantSpec("x", "asdb", 2000, logical_cores=0, llc_mb=10)
        with pytest.raises(ConfigurationError):
            TenantSpec("x", "asdb", 2000, logical_cores=4, llc_mb=10,
                       memory_fraction=0.0)


class TestTenantMachineLlcIsolation:
    def test_partitions_do_not_share_warmth(self):
        base = Machine()
        a = tenant_machine(base, base.topology.paper_allocation(8), 10, 0.5)
        b = tenant_machine(base, base.topology.paper_allocation(16), 20, 0.5)
        a.llc.warm_outside_mask(0.5)
        assert b.llc.effective_bytes() == 20 * MIB  # unaffected by a
