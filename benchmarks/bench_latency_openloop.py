"""Extension bench: open-loop tail-latency operating curve for ASDB.

Complements the closed-loop §3 methodology with the latency-versus-load
view a DBaaS SLO is written against: p99 latency stays flat until
utilization approaches saturation, then explodes (the queueing knee).
"""

from repro.core.knobs import ResourceAllocation
from repro.core.report import format_table
from repro.engine.engine import SqlEngine
from repro.engine.resource_governor import ResourceGovernor
from repro.hardware.machine import Machine
from repro.workloads.arrivals import OpenLoopDriver
from repro.workloads.asdb import AsdbWorkload

RATES = (200, 800, 1400, 1700)


def test_openloop_latency_knee(benchmark, emit):
    def run():
        rows = []
        for rate in RATES:
            workload = AsdbWorkload(2000, clients=1)
            machine = Machine()
            ResourceAllocation().apply_to(machine)
            engine = SqlEngine(
                machine, workload.database,
                workload.execution_characteristics(),
                governor=ResourceGovernor(), **workload.engine_parameters(),
            )
            result = OpenLoopDriver(workload, engine, offered_tps=rate).run(8.0)
            rows.append((rate, result.completed_tps, result.percentile_ms(50),
                         result.percentile_ms(99)))
        return rows
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Open-loop ASDB operating curve (full machine)",
        format_table(["offered TPS", "completed TPS", "p50 ms", "p99 ms"],
                     rows),
    )
    p99 = {rate: tail for rate, _, _, tail in rows}
    # Flat at low load, exploding near saturation.
    assert p99[800] < 2.5 * p99[200]
    assert p99[1700] > 3.0 * p99[800]
    # Completed throughput tracks offered load until the knee.
    for rate, completed, _, _ in rows[:3]:
        assert completed >= 0.9 * rate
