"""Tests for the exception hierarchy."""

import pytest

from repro.errors import (
    AllocationError,
    ChaosInvariantError,
    ConfigurationError,
    ExperimentTimeout,
    FaultInjectionError,
    GrantTimeoutError,
    PlanningError,
    RecoveryError,
    ReproError,
    SimulatedWorkerCrash,
    SimulationError,
    SweepExecutionError,
    TransientIOError,
    WorkloadError,
)

#: Every public exception the library raises, leaf and intermediate.
ALL_ERRORS = (
    AllocationError,
    ChaosInvariantError,
    ConfigurationError,
    ExperimentTimeout,
    FaultInjectionError,
    GrantTimeoutError,
    PlanningError,
    RecoveryError,
    SimulatedWorkerCrash,
    SimulationError,
    SweepExecutionError,
    TransientIOError,
    WorkloadError,
)


def test_all_errors_derive_from_repro_error():
    for exc in ALL_ERRORS:
        assert issubclass(exc, ReproError)


def test_hierarchy_is_complete():
    """Every ReproError subclass defined in repro.errors is in ALL_ERRORS."""
    import repro.errors as errors

    defined = {
        obj for obj in vars(errors).values()
        if isinstance(obj, type)
        and issubclass(obj, ReproError)
        and obj is not ReproError
    }
    assert defined == set(ALL_ERRORS)


def test_allocation_is_a_configuration_error():
    assert issubclass(AllocationError, ConfigurationError)


def test_fault_errors_nest_under_fault_injection():
    assert issubclass(TransientIOError, FaultInjectionError)
    assert issubclass(SimulatedWorkerCrash, FaultInjectionError)


def test_single_except_catches_library_errors():
    with pytest.raises(ReproError):
        raise AllocationError("no such core")
    with pytest.raises(ReproError):
        raise RecoveryError("lost a committed transaction")
    with pytest.raises(ReproError):
        raise ExperimentTimeout("attempt exceeded budget")


def test_sweep_execution_error_carries_grid_point():
    error = SweepExecutionError("item 3 failed", index=3, item="asdb sf=2000")
    assert error.index == 3
    assert error.item == "asdb sf=2000"
    assert "item 3 failed" in str(error)
    # Defaults identify "unknown grid point" without blowing up.
    bare = SweepExecutionError("boom")
    assert bare.index == -1 and bare.item == ""


def test_sweep_execution_error_chains_cause():
    try:
        try:
            raise ValueError("worker blew up")
        except ValueError as exc:
            raise SweepExecutionError("item 0 failed", index=0) from exc
    except SweepExecutionError as wrapped:
        assert isinstance(wrapped.__cause__, ValueError)


def test_library_raises_its_own_types():
    from repro.hardware.cache import LastLevelCache
    llc = LastLevelCache()
    with pytest.raises(ReproError):
        llc.set_allocation_mb_total(3)
    from repro.engine.optimizer.queryspec import TableRef
    with pytest.raises(ReproError):
        TableRef("t", "t", selectivity=2.0)


def test_fault_specs_validate_with_fault_injection_error():
    from repro.faults import StorageBrownout, WorkerCrash

    with pytest.raises(FaultInjectionError):
        StorageBrownout(start=-1.0, duration=1.0)
    with pytest.raises(FaultInjectionError):
        WorkerCrash(attempts=0)


def test_grant_timeout_carries_context():
    err = GrantTimeoutError("Q18: no grant", query="Q18", waited=30.0,
                            required_bytes=1024.0)
    assert err.query == "Q18"
    assert err.waited == 30.0
    assert err.required_bytes == 1024.0
    assert isinstance(err, ReproError)
