"""Tests for unit helpers and the calibration constants."""

import pytest

from repro import units
from repro.calibration import (
    ASDB_CLIENT_THREADS,
    ENGINE_MEMORY_FRACTION,
    HTAP_DSS_USERS,
    HTAP_OLTP_USERS,
    QUERY_MEMORY_POOL_FRACTION,
    TPCE_USERS,
    TPCH_QUERY_STREAMS,
)


class TestUnits:
    def test_binary_sizes(self):
        assert units.KIB == 1024
        assert units.MIB == 1024 ** 2
        assert units.GIB == 1024 ** 3
        assert units.mib(2) == 2 * 1024 ** 2
        assert units.gib(1.5) == int(1.5 * 1024 ** 3)

    def test_decimal_rates(self):
        assert units.mb_per_s(100) == 100e6
        assert units.gb_per_s(2.5) == 2.5e9
        assert units.to_mb_per_s(100e6) == pytest.approx(100.0)
        assert units.to_gb_per_s(2.5e9) == pytest.approx(2.5)

    def test_pages(self):
        assert units.PAGE_SIZE == 8192
        assert units.pages(8192) == 1
        assert units.pages(8192 * 2.4) == 2
        assert units.pages(1) == 1  # never zero

    def test_cache_line(self):
        assert units.CACHE_LINE == 64

    def test_time_units(self):
        assert units.HOUR == 3600.0
        assert units.MILLISECOND == pytest.approx(1e-3)


class TestSection3Constants:
    """§3's experimental populations, pinned."""

    def test_client_populations(self):
        assert ASDB_CLIENT_THREADS == 128
        assert TPCE_USERS == 100
        assert HTAP_OLTP_USERS + HTAP_DSS_USERS == 100
        assert TPCH_QUERY_STREAMS == 3

    def test_memory_policy_produces_9_2_gb_default_grant(self):
        """§8: default 25% grant ~ 9.2 GB on the 64 GB testbed."""
        grant = 64 * units.GIB * ENGINE_MEMORY_FRACTION \
            * QUERY_MEMORY_POOL_FRACTION * 0.25
        assert grant / units.GIB == pytest.approx(9.2, abs=0.05)
