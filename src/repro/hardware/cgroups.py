"""cgroup-style resource control front-ends.

The paper drives all resource knobs through Linux interfaces: cpuset for
core affinity (§4), systemd's BlockIO*Bandwidth (cgroup blkio) for storage
caps (§6), and pqos for CAT (§5).  This module provides the same surface:
experiments manipulate a :class:`CpuSet` and :class:`BlkioLimits`, which
then configure the underlying hardware models.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Optional

from repro.errors import AllocationError
from repro.hardware.topology import AllocationShape, CpuTopology


@dataclass
class CpuSet:
    """A cpuset cgroup: the set of logical CPUs a process tree may use."""

    topology: CpuTopology
    cpus: FrozenSet[int] = field(default_factory=frozenset)

    def __post_init__(self):
        if not self.cpus:
            self.cpus = frozenset(c.cpu_id for c in self.topology.cpus)
        self._validate(self.cpus)

    def _validate(self, cpus: FrozenSet[int]) -> None:
        valid = {c.cpu_id for c in self.topology.cpus}
        unknown = set(cpus) - valid
        if unknown:
            raise AllocationError(f"unknown cpu ids in cpuset: {sorted(unknown)}")
        if not cpus:
            raise AllocationError("cpuset cannot be empty")

    def set_cpus(self, cpus: FrozenSet[int]) -> None:
        self._validate(frozenset(cpus))
        self.cpus = frozenset(cpus)

    def set_paper_allocation(self, num_cpus: int) -> None:
        """Apply the paper's §4 allocation order for *num_cpus* CPUs."""
        self.cpus = self.topology.paper_allocation(num_cpus)

    def shape(self) -> AllocationShape:
        return self.topology.describe_allocation(self.cpus)

    def __len__(self) -> int:
        return len(self.cpus)


@dataclass
class BlkioLimits:
    """Block IO bandwidth limits, in bytes/sec (``None`` = unlimited)."""

    read_bps: Optional[float] = None
    write_bps: Optional[float] = None

    def __post_init__(self):
        for name, value in (("read_bps", self.read_bps), ("write_bps", self.write_bps)):
            if value is not None and value <= 0:
                raise AllocationError(f"{name} must be positive or None")
