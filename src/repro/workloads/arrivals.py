"""Open-loop arrival processes.

The benchmark configurations of §3 are *closed-loop*: a fixed client
population issues the next request when the previous one completes, so
offered load adapts to service capacity.  Cloud front-ends are often
better modelled *open-loop*: requests arrive at a fixed rate regardless
of completion, and latency explodes as utilization approaches one.

:class:`OpenLoopDriver` wraps any transactional workload's demand
generator with a Poisson (or deterministic) arrival process, enabling
latency-versus-offered-load studies — the operating-point view behind
the paper's SLA discussion (§10's first research question notes runtime
resource changes are easiest to evaluate against a fixed load).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, List, Optional

import numpy as np

from repro.engine.engine import SqlEngine
from repro.errors import WorkloadError
from repro.sim.process import Timeout
from repro.sim.stats import Cdf
from repro.workloads.oltp import OltpWorkloadBase


@dataclass
class OpenLoopResult:
    """Observables of one open-loop run."""

    offered_tps: float
    completed: int = 0
    dropped: int = 0
    latencies: Cdf = field(default_factory=Cdf)

    @property
    def completed_tps(self) -> float:
        return self._rate

    _rate: float = 0.0

    def finalize(self, duration: float) -> None:
        self._rate = self.completed / duration if duration > 0 else 0.0

    def percentile_ms(self, p: float) -> float:
        return self.latencies.percentile(p) * 1000.0


class OpenLoopDriver:
    """Issues transactions at a fixed rate against an engine.

    ``max_in_flight`` bounds concurrency (an admission queue); arrivals
    beyond the bound are dropped and counted, like a front-end shedding
    load.
    """

    def __init__(
        self,
        workload: OltpWorkloadBase,
        engine: SqlEngine,
        offered_tps: float,
        deterministic: bool = False,
        max_in_flight: int = 10_000,
        seed_stream: str = "openloop",
    ):
        if offered_tps <= 0:
            raise WorkloadError("offered rate must be positive")
        if max_in_flight < 1:
            raise WorkloadError("need at least one in-flight slot")
        self.workload = workload
        self.engine = engine
        self.offered_tps = offered_tps
        self.deterministic = deterministic
        self.max_in_flight = max_in_flight
        self._rng = engine.machine.streams.get(seed_stream)
        self._in_flight = 0
        self.result = OpenLoopResult(offered_tps=offered_tps)

    def start(self, until: float) -> None:
        self.engine.machine.sim.spawn(self._arrivals(until), name="open-loop")

    def run(self, duration: float) -> OpenLoopResult:
        """Convenience: start, simulate, finalize, return the result."""
        self.start(until=duration)
        self.engine.machine.sim.run(until=duration)
        self.result.finalize(duration)
        return self.result

    # -- internals -------------------------------------------------------------

    def _arrivals(self, until: float) -> Generator:
        sim = self.engine.machine.sim
        types = self.workload.transaction_types()
        weights = np.array([t.weight for t in types], dtype=float)
        weights /= weights.sum()
        while sim.now < until:
            gap = (
                1.0 / self.offered_tps
                if self.deterministic
                else float(self._rng.exponential(1.0 / self.offered_tps))
            )
            yield Timeout(gap)
            if sim.now >= until:
                break
            if self._in_flight >= self.max_in_flight:
                self.result.dropped += 1
                continue
            txn_type = types[self._rng.choice(len(types), p=weights)]
            demand = self.workload.build_demand(self.engine, txn_type, self._rng)
            self._in_flight += 1
            sim.spawn(self._execute(demand), name="open-loop-txn")
        return None

    def _execute(self, demand) -> Generator:
        result = yield from self.engine.run_transaction(demand)
        self._in_flight -= 1
        self.result.completed += 1
        self.result.latencies.add(result.elapsed)
        return None


def latency_curve(
    workload_factory,
    engine_factory,
    offered_rates: List[float],
    duration: float = 10.0,
) -> List[OpenLoopResult]:
    """Latency/throughput at each offered rate (fresh engine per point)."""
    results = []
    for rate in offered_rates:
        workload = workload_factory()
        engine = engine_factory(workload)
        driver = OpenLoopDriver(workload, engine, offered_tps=rate)
        results.append(driver.run(duration))
    return results
