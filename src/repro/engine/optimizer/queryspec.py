"""Declarative query specifications.

A :class:`QuerySpec` describes a query the way the optimizer sees it:
which tables it touches (with filter selectivities), how they join (a join
graph with per-edge key sides and fanouts), and what post-join work
remains (aggregation groups, sort, top).  The 22 TPC-H templates in
:mod:`repro.workloads.tpch` are expressed in this form.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.errors import PlanningError


class JoinKind(enum.Enum):
    INNER = "inner"
    SEMI = "semi"       # IN / EXISTS subqueries
    ANTI = "anti"       # NOT IN / NOT EXISTS
    OUTER = "outer"     # left outer join (Q13)


@dataclass(frozen=True)
class TableRef:
    """A table occurrence in a query.

    Attributes:
        table: catalog table name.
        alias: unique name within the query (a table may appear twice,
            e.g. nation in Q7, lineitem in Q21).
        selectivity: fraction of rows surviving the local predicate.
        column_fraction: fraction of the row width actually read —
            columnstore scans only fetch referenced columns (§2.2.1).
    """

    table: str
    alias: str
    selectivity: float = 1.0
    column_fraction: float = 1.0

    def __post_init__(self):
        if not 0.0 < self.selectivity <= 1.0:
            raise PlanningError(f"{self.alias}: selectivity must be in (0, 1]")
        if not 0.0 < self.column_fraction <= 1.0:
            raise PlanningError(f"{self.alias}: column fraction must be in (0, 1]")


@dataclass(frozen=True)
class JoinEdge:
    """A join between two table occurrences.

    ``key_side`` names the side whose join key is (close to) a primary
    key; the classic FK-join cardinality rule then gives
    ``|A join B| = |A| * |B| * fanout / unfiltered_rows(key_side)``.
    """

    left: str
    right: str
    key_side: str
    kind: JoinKind = JoinKind.INNER
    fanout: float = 1.0
    #: For semi/anti joins: which side survives the join.  Defaults to the
    #: non-key side (the usual ``fact IN (SELECT pk FROM dim)`` shape);
    #: Q20's ``supplier IN (SELECT ps_suppkey ...)`` preserves the key side.
    preserved: Optional[str] = None
    #: Semi/anti hash builds normally keep only join keys (bitmap); set
    #: this when the existence check compares additional attributes
    #: (Q21's "another supplier on the same order" predicates need the
    #: full row), forcing a full-width build.
    wide_build: bool = False

    def __post_init__(self):
        if self.key_side not in (self.left, self.right):
            raise PlanningError(
                f"key_side {self.key_side!r} not an endpoint of "
                f"({self.left}, {self.right})"
            )
        if self.fanout <= 0:
            raise PlanningError("fanout must be positive")
        if self.preserved is not None and self.preserved not in (self.left, self.right):
            raise PlanningError("preserved side must be an endpoint")

    @property
    def preserved_side(self) -> str:
        if self.preserved is not None:
            return self.preserved
        return self.other(self.key_side)

    def other(self, alias: str) -> str:
        if alias == self.left:
            return self.right
        if alias == self.right:
            return self.left
        raise PlanningError(f"{alias!r} is not an endpoint of this edge")


@dataclass(frozen=True)
class QuerySpec:
    """A whole query, ready for optimization.

    Attributes:
        name: e.g. ``"Q20"``.
        tables: all table occurrences.
        joins: the join graph (must keep the tables connected).
        agg_input_fraction: fraction of the final join output feeding the
            aggregate (after any residual predicates).
        group_rows: number of output groups (1 = scalar aggregate,
            0 = no aggregation).
        sort_rows: rows sorted at the end (0 = no sort).
        top: TOP-N row goal (0 = none).
        correlated_passes: extra passes over the join pipeline for
            correlated subqueries evaluated per outer row (Q17-style).
    """

    name: str
    tables: Tuple[TableRef, ...]
    joins: Tuple[JoinEdge, ...] = ()
    agg_input_fraction: float = 1.0
    group_rows: float = 1.0
    sort_rows: float = 0.0
    top: int = 0
    correlated_passes: float = 1.0
    #: Bias of the optimizer's *estimate* relative to true cost, applied
    #: only at the serial-vs-parallel threshold decision.  Models known
    #: estimation quirks: correlated IN-subquery chains are
    #: underestimated (Q20 < 1), complex OR predicates overestimated
    #: (Q19 > 1).  Execution costs are unaffected.
    optimizer_cost_scale: float = 1.0

    def __post_init__(self):
        aliases = [t.alias for t in self.tables]
        if len(set(aliases)) != len(aliases):
            raise PlanningError(f"{self.name}: duplicate aliases")
        known = set(aliases)
        for edge in self.joins:
            if edge.left not in known or edge.right not in known:
                raise PlanningError(f"{self.name}: edge references unknown alias")
        if self.tables and self.joins is not None:
            self._check_connected(known)

    def _check_connected(self, aliases: set) -> None:
        if len(aliases) <= 1:
            return
        adjacency: Dict[str, set] = {a: set() for a in aliases}
        for edge in self.joins:
            adjacency[edge.left].add(edge.right)
            adjacency[edge.right].add(edge.left)
        seen = set()
        stack = [next(iter(aliases))]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(adjacency[node] - seen)
        if seen != aliases:
            raise PlanningError(
                f"{self.name}: join graph is disconnected "
                f"(unreached: {sorted(aliases - seen)})"
            )

    def table_ref(self, alias: str) -> TableRef:
        for ref in self.tables:
            if ref.alias == alias:
                return ref
        raise PlanningError(f"{self.name}: no alias {alias!r}")

    def edges_between(self, placed: set, alias: str) -> Tuple[JoinEdge, ...]:
        """Edges connecting an unplaced *alias* to the placed set."""
        return tuple(
            e
            for e in self.joins
            if (e.left == alias and e.right in placed)
            or (e.right == alias and e.left in placed)
        )
