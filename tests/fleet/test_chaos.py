"""The seeded chaos scheduler: reproducible schedules, invariants,
journaling, and the sweep fault grid."""

import dataclasses

import pytest

from repro.core.experiment import ExperimentConfig
from repro.core.resultcache import canonical_json
from repro.errors import ChaosInvariantError, FaultInjectionError
from repro.faults.chaos import (
    SCENARIOS,
    ChaosConfig,
    chaos_fault_grid,
    episode_payload,
    generate_schedule,
    run_chaos,
)
from repro.faults.spec import CrashPoint, GrantStorm, StorageBrownout


class RecordingJournal:
    """Minimal journal double: collects note() events."""

    def __init__(self):
        self.notes = []

    def note(self, event, **fields):
        self.notes.append({"event": event, **fields})

    def events(self, event):
        return [n for n in self.notes if n["event"] == event]


class TestScheduleGeneration:
    def test_same_seed_same_schedule(self):
        a = generate_schedule(7, 3.0, ("crash", "brownout"), episodes=4)
        b = generate_schedule(7, 3.0, ("crash", "brownout"), episodes=4)
        assert a == b

    def test_different_seeds_differ(self):
        a = generate_schedule(1, 3.0, ("crash", "brownout"), episodes=4)
        b = generate_schedule(2, 3.0, ("crash", "brownout"), episodes=4)
        assert a != b

    def test_episodes_heal_before_the_next_fires(self):
        schedule = generate_schedule(3, 5.0, ("brownout", "partition"),
                                     episodes=5)
        for earlier, later in zip(schedule, schedule[1:]):
            assert earlier.at + earlier.duration < later.at

    def test_episodes_land_inside_the_chaos_window(self):
        duration = 4.0
        for episode in generate_schedule(5, duration, ("crash",), episodes=3):
            assert 0.2 * duration <= episode.at
            assert episode.at + episode.duration <= 0.9 * duration + 1e-9

    def test_kinds_and_targets_come_from_the_request(self):
        schedule = generate_schedule(9, 3.0, ("storm",), replicas=3,
                                     episodes=4)
        assert all(e.kind == "storm" for e in schedule)
        assert all(0 <= e.replica < 3 for e in schedule)
        assert all(isinstance(e.spec, GrantStorm) for e in schedule)

    def test_no_kinds_or_no_episodes_is_empty(self):
        assert generate_schedule(1, 3.0, ()) == ()
        assert generate_schedule(1, 3.0, ("crash",), episodes=0) == ()

    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultInjectionError):
            generate_schedule(1, 3.0, ("meteor",))

    def test_episode_payload_is_primitive(self):
        episode = generate_schedule(1, 3.0, ("crash",), episodes=1)[0]
        payload = episode_payload(episode)
        assert set(payload) == {"at", "kind", "replica", "duration"}
        canonical_json(payload)  # must be hashable/journalable


class TestChaosConfig:
    @pytest.mark.parametrize("kwargs", [
        dict(duration=0.0),
        dict(replicas=1),
        dict(episodes=-1),
        dict(scenario="meteor-strike"),
    ])
    def test_validation(self, kwargs):
        with pytest.raises(FaultInjectionError):
            ChaosConfig(**kwargs)

    def test_scenarios_cover_the_fault_vocabulary(self):
        assert set(SCENARIOS["mixed"]) == {
            "crash", "brownout", "partition", "storm"}
        assert SCENARIOS["none"] == ()


class TestInvariants:
    def test_empty_schedule_is_deterministic(self):
        report = run_chaos(ChaosConfig(seed=11, scenario="none",
                                       duration=1.0))
        assert report.invariants["determinism"] is True
        assert report.invariants["durability"] is True
        assert report.ok
        assert report.schedule == ()

    def test_failover_scenario_passes_all_gates(self):
        journal = RecordingJournal()
        report = run_chaos(ChaosConfig(seed=1, scenario="failover",
                                       duration=2.0), journal=journal)
        assert report.invariants["durability"] is True
        assert report.invariants["availability"] is True
        assert report.audit["lost"] == []
        assert report.ok
        for window in report.failover_windows:
            assert window <= report.availability_bound
        # The journal carries the full evidence trail.
        assert len(journal.events("chaos-schedule")) == 1
        assert len(journal.events("chaos-episode")) == len(report.episodes)
        assert len(journal.events("chaos-report")) == 1

    def test_hedging_beats_the_unhedged_tail(self):
        report = run_chaos(ChaosConfig(seed=2, scenario="hedging",
                                       duration=2.0), compare_hedging=True)
        assert report.invariants["hedging-p99"] is True
        assert report.hedging["hedges"] > 0
        assert report.read_p99 < report.unhedged_read_p99

    def test_report_ok_treats_not_applicable_as_passing(self):
        report = run_chaos(ChaosConfig(seed=1, scenario="failover",
                                       duration=2.0))
        assert report.invariants["hedging-p99"] is None
        assert report.ok

    def test_violation_raises_with_the_invariant_named(self):
        report = run_chaos(ChaosConfig(seed=11, scenario="none",
                                       duration=1.0))
        broken = dataclasses.replace(
            report, invariants=dict(report.invariants, durability=False))
        assert not broken.ok
        assert broken.violations() == ["durability"]
        with pytest.raises(ChaosInvariantError, match="durability"):
            broken.raise_on_violation()

    def test_summary_lines_are_greppable(self):
        report = run_chaos(ChaosConfig(seed=11, scenario="none",
                                       duration=1.0))
        lines = report.summary_lines()
        assert "invariant durability: ok" in lines
        assert "invariant determinism: ok" in lines
        assert "invariant hedging-p99: n/a" in lines


class TestReproducibility:
    def test_same_config_same_digest(self):
        config = ChaosConfig(seed=4, scenario="failover", duration=1.5)
        assert run_chaos(config).digest == run_chaos(config).digest


class TestChaosFaultGrid:
    def configs(self, n=4):
        return [
            ExperimentConfig(workload="asdb", scale_factor=2000,
                             duration=0.4, seed=seed)
            for seed in range(n)
        ]

    def test_deterministic_across_calls(self):
        a = chaos_fault_grid(self.configs(), seed=7)
        b = chaos_fault_grid(self.configs(), seed=7)
        assert a == b

    def test_each_config_gains_exactly_one_fault(self):
        for original, faulted in zip(self.configs(),
                                     chaos_fault_grid(self.configs(), seed=7)):
            assert len(faulted.faults) == len(original.faults) + 1
            assert isinstance(faulted.faults[-1],
                              (CrashPoint, StorageBrownout, GrantStorm))

    def test_fault_lands_inside_the_run(self):
        for faulted in chaos_fault_grid(self.configs(), seed=3):
            fault = faulted.faults[-1]
            at = getattr(fault, "at", getattr(fault, "start", None))
            assert 0.0 < at < faulted.duration

    def test_seed_changes_the_grid(self):
        a = chaos_fault_grid(self.configs(), seed=1)
        b = chaos_fault_grid(self.configs(), seed=2)
        assert a != b

    def test_partition_is_rejected_for_sweeps(self):
        with pytest.raises(FaultInjectionError):
            chaos_fault_grid(self.configs(), kinds=("partition",))
        with pytest.raises(FaultInjectionError):
            chaos_fault_grid(self.configs(), kinds=())
