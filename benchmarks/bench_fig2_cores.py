"""Fig 2 (a, d, g, j): average performance vs number of logical cores."""

import pytest

from repro.core.figures import fig2_cores
from repro.core.report import format_series
from repro.core.sweeps import STUDY_MATRIX

PANELS = {
    "a": [("tpch", 10), ("tpch", 30), ("tpch", 100), ("tpch", 300)],
    "d": [("asdb", 2000), ("asdb", 6000)],
    "g": [("tpce", 5000), ("tpce", 15000)],
    "j": [("htap", 5000), ("htap", 15000)],
}

#: §4: perf16/perf32 for TPC-H (hyper-threading crossover).
PAPER_HT_RATIOS = {10: 1.72, 30: 1.27, 100: 0.93, 300: 0.82}


@pytest.mark.parametrize("panel", sorted(PANELS))
def test_fig2_core_sensitivity(panel, benchmark, duration_scale, emit):
    def run():
        return {
            (w, sf): fig2_cores(w, sf, duration_scale=duration_scale)
            for w, sf in PANELS[panel]
        }
    series = benchmark.pedantic(run, rounds=1, iterations=1)
    for (w, sf), s in series.items():
        columns = {"perf": s.performance}
        if w == "htap":
            # The paper plots the DSS and OLTP components separately.
            columns["oltp_tps"] = s.performance
            columns["dss_qph"] = [
                m.secondary_metric or 0.0 for m in s.measurements
            ]
            del columns["perf"]
        emit(
            f"Fig 2{panel} — {w} SF={sf}: performance vs logical cores",
            format_series("cores", s.xs, columns),
        )
        # Performance scales with physical cores (1 -> 16).
        physical = s.performance[: s.xs.index(16.0) + 1]
        assert all(b > a for a, b in zip(physical, physical[1:])), (w, sf)
        if w == "tpch":
            ratio = s.performance[-2] / s.performance[-1]
            paper = PAPER_HT_RATIOS[sf]
            emit(f"Fig 2a HT check — tpch SF={sf}",
                 f"perf16/perf32 measured={ratio:.2f} paper={paper}")
            assert ratio == pytest.approx(paper, rel=0.2)
        else:
            # HT is beneficial for OLTP and HTAP workloads (§4).
            assert s.performance[-1] > s.performance[-2], (w, sf)
        if w == "htap":
            # "all components benefit from increased core allocations" (§4)
            qph = columns["dss_qph"]
            assert qph[-1] >= qph[1], (sf, qph)
