"""Tests for the query-memory pool and spill model (§8)."""

import pytest

from repro.calibration import (
    DEFAULT_GRANT_PERCENT,
    ENGINE_MEMORY_FRACTION,
    QUERY_MEMORY_POOL_FRACTION,
)
from repro.engine.memory_grants import (
    MemoryGrant,
    QueryMemoryPool,
    SPILL_IO_AMPLIFICATION,
)
from repro.errors import ConfigurationError
from repro.units import GIB


class TestQueryMemoryPool:
    def test_default_cap_matches_paper(self):
        """§8: the default 25% grant is approx. 9.2 GB with 64 GB RAM."""
        pool = QueryMemoryPool(server_memory_bytes=64 * GIB)
        assert pool.per_query_cap_bytes / GIB == pytest.approx(9.2, abs=0.05)

    def test_pool_fractions(self):
        pool = QueryMemoryPool(server_memory_bytes=64 * GIB)
        assert pool.pool_bytes == pytest.approx(
            64 * GIB * ENGINE_MEMORY_FRACTION * QUERY_MEMORY_POOL_FRACTION
        )

    def test_grant_percent_scales_cap(self):
        full = QueryMemoryPool(64 * GIB, grant_percent=25.0)
        small = QueryMemoryPool(64 * GIB, grant_percent=5.0)
        assert small.per_query_cap_bytes == pytest.approx(full.per_query_cap_bytes / 5)

    def test_admit_within_cap_grants_fully(self):
        pool = QueryMemoryPool(64 * GIB)
        grant = pool.admit(1 * GIB)
        assert grant.granted_bytes == 1 * GIB
        assert not grant.spills

    def test_admit_beyond_cap_spills(self):
        pool = QueryMemoryPool(64 * GIB)
        grant = pool.admit(20 * GIB)
        assert grant.granted_bytes == pytest.approx(pool.per_query_cap_bytes)
        assert grant.spills
        assert grant.deficit_bytes == pytest.approx(20 * GIB - pool.per_query_cap_bytes)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ConfigurationError):
            QueryMemoryPool(0)
        with pytest.raises(ConfigurationError):
            QueryMemoryPool(64 * GIB, grant_percent=0)
        with pytest.raises(ConfigurationError):
            QueryMemoryPool(64 * GIB).admit(-1.0)


class TestMemoryGrant:
    def test_spill_io_amplification(self):
        grant = MemoryGrant(required_bytes=10.0, granted_bytes=4.0)
        assert grant.spill_io_bytes == pytest.approx(6.0 * SPILL_IO_AMPLIFICATION)
        assert grant.spill_write_bytes == pytest.approx(6.0)
        assert grant.spill_read_bytes == pytest.approx(
            6.0 * (SPILL_IO_AMPLIFICATION - 1)
        )

    def test_no_spill_no_io(self):
        grant = MemoryGrant(required_bytes=4.0, granted_bytes=4.0)
        assert grant.spill_io_bytes == 0.0
        assert grant.spill_cpu_cost == 0.0

    def test_spill_cpu_scales_with_deficit(self):
        small = MemoryGrant(required_bytes=10.0, granted_bytes=9.0)
        big = MemoryGrant(required_bytes=10.0, granted_bytes=1.0)
        assert big.spill_cpu_cost > small.spill_cpu_cost

    def test_default_grant_percent_constant(self):
        assert DEFAULT_GRANT_PERCENT == 25.0
