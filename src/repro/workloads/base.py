"""Workload abstractions and throughput metrics.

A :class:`Workload` knows how to build its database, describe its
execution characteristics (the calibrated MRC and CPI parameters), and
spawn closed-loop client processes against a configured
:class:`~repro.engine.engine.SqlEngine`.  The experiment harness in
:mod:`repro.core.experiment` owns machine construction and knob
application; workloads only produce load.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List

from repro.engine.catalog import Database
from repro.engine.engine import SqlEngine
from repro.engine.sqlos import ExecutionCharacteristics
from repro.sim.stats import Cdf


@dataclass
class ThroughputTracker:
    """Collects completions for throughput and latency reporting.

    ``counts`` is keyed by completion class, e.g. ``"txn"`` for OLTP
    transactions, ``"query"`` for analytical queries — HTAP uses both,
    matching the paper's separate TPS and QPH reporting for it (§2.3).
    """

    counts: Dict[str, int] = field(default_factory=dict)
    latencies: Dict[str, Cdf] = field(default_factory=dict)

    def record(self, kind: str, latency: float) -> None:
        self.counts[kind] = self.counts.get(kind, 0) + 1
        self.latencies.setdefault(kind, Cdf()).add(latency)

    def count(self, kind: str) -> int:
        return self.counts.get(kind, 0)

    def rate(self, kind: str, elapsed_seconds: float) -> float:
        """Completions per second of *kind* over the run."""
        if elapsed_seconds <= 0:
            return 0.0
        return self.count(kind) / elapsed_seconds

    def percentile_latency(self, kind: str, p: float) -> float:
        return self.latencies[kind].percentile(p)


class Workload(abc.ABC):
    """Base class for all benchmark workloads."""

    #: Completion class of the workload's primary metric ("txn" for TPS,
    #: "query" for QPS).
    primary_kind: str = "txn"

    def __init__(self, scale_factor: int):
        self.scale_factor = scale_factor
        self._database: Database = None  # built lazily

    @property
    @abc.abstractmethod
    def name(self) -> str:
        """Short workload name ("tpch", "asdb", ...)."""

    @abc.abstractmethod
    def build_database(self) -> Database:
        """Construct the catalog for this workload at this scale factor."""

    @abc.abstractmethod
    def execution_characteristics(self) -> ExecutionCharacteristics:
        """Calibrated CPU/cache parameters for this workload and SF."""

    @abc.abstractmethod
    def spawn_clients(self, engine: SqlEngine, tracker: ThroughputTracker,
                      until: float) -> List:
        """Start the closed-loop client processes; return them."""

    # -- defaults -------------------------------------------------------------

    @property
    def database(self) -> Database:
        if self._database is None:
            self._database = self.build_database()
        return self._database

    def engine_parameters(self) -> Dict:
        """Extra keyword arguments for :class:`SqlEngine` construction
        (lock slot counts, reserved grants)."""
        return {}

    def primary_metric(self, tracker: ThroughputTracker, elapsed: float) -> float:
        """The workload's headline number: TPS or QPS."""
        return tracker.rate(self.primary_kind, elapsed)
