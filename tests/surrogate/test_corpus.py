"""Corpus harvesting: what gets in, what is skipped, and roundtrips."""

import dataclasses

import pytest

from repro.core.experiment import Experiment
from repro.core.resultcache import ResultCache
from repro.errors import ConfigurationError
from repro.surrogate.corpus import (
    CORPUS_FORMAT_VERSION,
    Corpus,
    TARGET_NAMES,
    harvest,
    targets_for_measurement,
)
from repro.surrogate.model import Prediction
from repro.surrogate.planner import predicted_measurement
from tests.surrogate.conftest import grid_config, training_grid


class TestHarvest:
    def test_every_clean_entry_harvested(self, seeded_cache, corpus):
        assert len(corpus) == len(training_grid())
        assert corpus.stats.scanned == len(training_grid())
        assert corpus.stats.skipped_faulted == 0
        assert corpus.stats.skipped_predicted == 0

    def test_sorted_by_digest(self, corpus):
        digests = [entry.digest for entry in corpus.entries]
        assert digests == sorted(digests)

    def test_targets_match_measurement(self, seeded_cache):
        digest, measurement = next(seeded_cache.iter_entries())
        entry = next(e for e in harvest(seeded_cache).entries
                     if e.digest == digest)
        assert entry.targets == tuple(
            targets_for_measurement(measurement).tolist())

    def test_faulted_entries_skipped(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        clean_config = grid_config(seed=1)
        cache.put(clean_config, Experiment(clean_config).run())
        faulted_config = grid_config(seed=2)
        faulted = dataclasses.replace(
            Experiment(faulted_config).run(),
            fault_summary={"crash_recoveries": 1.0},
        )
        cache.put(faulted_config, faulted)
        corpus = harvest(cache)
        assert len(corpus) == 1
        assert corpus.stats.skipped_faulted == 1
        assert len(harvest(cache, include_faulted=True)) == 2

    def test_predicted_entries_never_trained_on(self, tmp_path):
        """Even if a predicted measurement somehow reached the cache, the
        harvest must refuse it — no model trains on its own output."""
        cache = ResultCache(tmp_path / "cache")
        config = grid_config(seed=3)
        cache.put(config, Experiment(config).run())
        poisoned_config = grid_config(seed=4)
        prediction = Prediction(
            targets={name: 10.0 for name in TARGET_NAMES}, uncertainty=0.1)
        cache.put(poisoned_config,
                  predicted_measurement(poisoned_config, prediction))
        corpus = harvest(cache)
        assert len(corpus) == 1
        assert corpus.stats.skipped_predicted == 1

    def test_quarantined_files_counted(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        config = grid_config(seed=5)
        cache.put(config, Experiment(config).run())
        (cache.directory / ".corrupt-deadbeef").write_bytes(b"junk")
        corpus = harvest(cache)
        assert len(corpus) == 1
        assert corpus.stats.quarantined == 1


class TestSerialization:
    def test_roundtrip_is_exact(self, corpus, tmp_path):
        path = corpus.save(tmp_path / "corpus.jsonl")
        loaded = Corpus.load(path)
        assert loaded.entries == corpus.entries
        assert (loaded.feature_matrix().tobytes()
                == corpus.feature_matrix().tobytes())
        assert (loaded.target_matrix().tobytes()
                == corpus.target_matrix().tobytes())

    def test_rejects_other_format_versions(self, corpus, tmp_path):
        path = corpus.save(tmp_path / "corpus.jsonl")
        text = path.read_text()
        path.write_text(text.replace(
            f'"corpus_format": {CORPUS_FORMAT_VERSION}',
            f'"corpus_format": {CORPUS_FORMAT_VERSION + 1}', 1))
        with pytest.raises(ConfigurationError):
            Corpus.load(path)

    def test_rejects_foreign_feature_schema(self, corpus, tmp_path):
        path = corpus.save(tmp_path / "corpus.jsonl")
        path.write_text(path.read_text().replace("llc_mb", "llc_ways"))
        with pytest.raises(ConfigurationError):
            Corpus.load(path)

    def test_empty_file_rejected(self, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        with pytest.raises(ConfigurationError):
            Corpus.load(empty)
