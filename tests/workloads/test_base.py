"""Tests for the workload base protocol and throughput tracking."""

import pytest

from repro.errors import SimulationError
from repro.workloads.base import ThroughputTracker
from repro.workloads.tpce import TpceWorkload


class TestThroughputTracker:
    def test_counts_by_kind(self):
        tracker = ThroughputTracker()
        tracker.record("txn", 0.01)
        tracker.record("txn", 0.02)
        tracker.record("query", 1.5)
        assert tracker.count("txn") == 2
        assert tracker.count("query") == 1
        assert tracker.count("unknown") == 0

    def test_rates(self):
        tracker = ThroughputTracker()
        for _ in range(50):
            tracker.record("txn", 0.01)
        assert tracker.rate("txn", elapsed_seconds=10.0) == pytest.approx(5.0)
        assert tracker.rate("txn", elapsed_seconds=0.0) == 0.0

    def test_latency_percentiles(self):
        tracker = ThroughputTracker()
        for ms in range(1, 101):
            tracker.record("txn", ms / 1000.0)
        assert tracker.percentile_latency("txn", 50) == pytest.approx(0.0505, rel=0.02)
        assert tracker.percentile_latency("txn", 99) == pytest.approx(0.099, rel=0.02)

    def test_unknown_kind_percentile_raises(self):
        with pytest.raises(KeyError):
            ThroughputTracker().percentile_latency("nope", 50)


class TestWorkloadDefaults:
    def test_database_is_cached(self):
        workload = TpceWorkload(5000)
        assert workload.database is workload.database

    def test_primary_metric_uses_primary_kind(self):
        workload = TpceWorkload(5000)
        tracker = ThroughputTracker()
        tracker.record("txn", 0.01)
        tracker.record("query", 0.5)      # ignored for TPS
        assert workload.primary_metric(tracker, elapsed=1.0) == 1.0

    def test_per_type_latency_classes_recorded(self):
        """Clients record both the aggregate and per-type classes, so
        per-transaction-type latencies are available for analysis."""
        from repro.core.experiment import run_experiment
        m = run_experiment("tpce", 5000, duration=4.0)
        assert m.tracker.count("txn") > 0
        per_type = [k for k in m.tracker.counts if k not in ("txn",)]
        assert len(per_type) >= 5   # several mix members completed
        for kind in per_type:
            assert m.tracker.percentile_latency(kind, 50) > 0
