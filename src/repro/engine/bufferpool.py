"""Buffer pool model: residency, hit probabilities, and page IO volumes.

The model is analytic rather than page-by-page: what the experiments need
is (a) whether a database fits in memory — the axis Table 2 shades — and
(b) the *rate* of SSD reads implied by misses, which feeds the storage
bandwidth sensitivity analyses (§6).

Residency policy mirrors an LRU-ish pool: each table's *hot set* (its
``hot_fraction``) is kept resident first, in order of access temperature;
whatever capacity remains holds a fraction of the cold data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.calibration import ENGINE_MEMORY_FRACTION
from repro.engine.catalog import Database, Table
from repro.errors import ConfigurationError
from repro.units import PAGE_SIZE


@dataclass
class BufferPool:
    """Analytic buffer pool bound to one database.

    Attributes:
        database: the database served by this pool.
        server_memory_bytes: physical memory of the machine.
        reserved_grant_bytes: memory currently promised to query grants
            (shrinks the pool, coupling §8's memory-grant knob to IO).
        hot_access_fraction: fraction of point accesses that touch hot
            sets (OLTP skew).
    """

    database: Database
    server_memory_bytes: float
    reserved_grant_bytes: float = 0.0
    hot_access_fraction: float = 0.85
    _derived_key: Optional[tuple] = field(
        default=None, init=False, repr=False, compare=False
    )
    _derived: Tuple[float, float, float] = field(
        default=(1.0, 1.0, 1.0), init=False, repr=False, compare=False
    )

    def __post_init__(self):
        if self.server_memory_bytes <= 0:
            raise ConfigurationError("server memory must be positive")
        if self.reserved_grant_bytes < 0:
            raise ConfigurationError("reserved grants cannot be negative")

    @property
    def capacity_bytes(self) -> float:
        """Pool capacity: the engine's share of memory minus query grants."""
        engine = self.server_memory_bytes * ENGINE_MEMORY_FRACTION
        return max(0.0, engine - self.reserved_grant_bytes)

    # -- residency ---------------------------------------------------------------

    def _residency(self) -> Tuple[float, float, float]:
        """Memoized ``(resident, cold_resident, point_hit)`` triple.

        All three depend only on pool capacity and the catalog's size
        sums, yet they were re-derived per point access and per scan —
        about a third of an OLTP run's serial cost went to re-summing
        static table sizes here.  The memo re-keys on the capacity inputs
        and the database's ``sizes_version``, so grant-driven capacity
        changes and schema growth both invalidate it.
        """
        key = (self.server_memory_bytes, self.reserved_grant_bytes,
               self.hot_access_fraction, self.database.sizes_version)
        if key != self._derived_key:
            capacity = self.capacity_bytes
            total = self.database.total_bytes
            hot = sum(
                (t.data_bytes + t.index_bytes) * t.hot_fraction
                for t in self.database.tables.values()
            )
            resident = min(1.0, capacity / total) if total > 0 else 1.0
            cold = total - hot
            if cold <= 0:
                cold_resident = 1.0
            else:
                spare = capacity - hot
                cold_resident = (
                    min(1.0, spare / cold) if spare > 0 else 0.0
                )
            hot_resident = min(1.0, capacity / hot) if hot > 0 else 1.0
            point_hit = min(
                self.MAX_POINT_HIT,
                self.hot_access_fraction * hot_resident
                + (1.0 - self.hot_access_fraction) * cold_resident,
            )
            self._derived = (resident, cold_resident, point_hit)
            self._derived_key = key
        return self._derived

    def resident_fraction(self) -> float:
        """Overall fraction of the database resident in the pool."""
        return self._residency()[0]

    def cold_resident_fraction(self) -> float:
        """Fraction of the *cold* data that still fits after hot sets."""
        return self._residency()[1]

    # -- access-path hit probabilities -------------------------------------------

    #: Even a fully-resident database misses occasionally (first touches,
    #: page splits, checkpoint-evicted pages) — this keeps the baseline
    #: PAGEIOLATCH wait small but nonzero, as in the paper's Table 3.
    MAX_POINT_HIT = 0.997

    def point_hit_probability(self, table: Table) -> float:
        """Hit probability for a skewed point access (OLTP row lookup)."""
        return self._residency()[2]

    def scan_hit_fraction(self, table: Table) -> float:
        """Fraction of a sequential scan served from memory.

        Scans of a table larger than the pool evict themselves; the model
        charges the non-resident fraction as SSD reads.
        """
        size = table.data_bytes
        if size <= 0:
            return 1.0
        return min(1.0, self.resident_fraction())

    # -- IO volume ------------------------------------------------------------------

    def scan_read_bytes(self, table: Table, scanned_fraction: float = 1.0) -> float:
        """SSD bytes read for scanning *scanned_fraction* of a table."""
        if not 0.0 <= scanned_fraction <= 1.0:
            raise ConfigurationError("scanned_fraction must be in [0, 1]")
        return table.data_bytes * scanned_fraction * (1.0 - self.scan_hit_fraction(table))

    def point_read_bytes(self, table: Table, accesses: float) -> float:
        """SSD bytes read for *accesses* point lookups against a table."""
        miss = 1.0 - self.point_hit_probability(table)
        return accesses * miss * PAGE_SIZE
