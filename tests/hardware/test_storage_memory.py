"""Tests for the NVMe/blkio model, DRAM model, counters, and machine."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware.cgroups import BlkioLimits
from repro.hardware.counters import (
    CounterSampler,
    INSTRUCTIONS,
    SSD_READ_BYTES,
)
from repro.hardware.machine import Machine, MachineSpec
from repro.hardware.memory import DramModel
from repro.hardware.storage import NvmeDevice
from repro.sim.process import Simulator, Timeout
from repro.units import CACHE_LINE, MIB, gb_per_s, mb_per_s


class TestNvmeDevice:
    def test_read_paced_by_device_bandwidth(self):
        sim = Simulator()
        dev = NvmeDevice(sim, read_bw=mb_per_s(100), write_bw=mb_per_s(100))
        def reader():
            yield from dev.read(mb_per_s(100) * 2)  # 2 seconds of data
            return sim.now
        proc = sim.spawn(reader())
        sim.run()
        assert proc.result == pytest.approx(2.0, rel=0.02)

    def test_cgroup_read_limit_tightens(self):
        sim = Simulator()
        dev = NvmeDevice(sim, read_bw=mb_per_s(1000), write_bw=mb_per_s(1000))
        dev.set_read_limit(mb_per_s(10))
        def reader():
            yield from dev.read(mb_per_s(10) * 3)
            return sim.now
        proc = sim.spawn(reader())
        sim.run()
        assert proc.result == pytest.approx(3.0, rel=0.02)
        assert dev.effective_read_bw == mb_per_s(10)

    def test_clearing_limit_restores_device_bw(self):
        sim = Simulator()
        dev = NvmeDevice(sim)
        dev.set_read_limit(mb_per_s(10))
        dev.set_read_limit(None)
        assert dev.effective_read_bw == mb_per_s(2500)

    def test_write_limit_independent_of_read(self):
        sim = Simulator()
        dev = NvmeDevice(sim)
        dev.set_write_limit(mb_per_s(50))
        assert dev.effective_write_bw == mb_per_s(50)
        assert dev.effective_read_bw == mb_per_s(2500)

    def test_accounting(self):
        sim = Simulator()
        dev = NvmeDevice(sim)
        def worker():
            yield from dev.read(1000.0)
            yield from dev.write(500.0)
        sim.spawn(worker())
        sim.run()
        assert dev.bytes_read == pytest.approx(1000.0)
        assert dev.bytes_written == pytest.approx(500.0)

    def test_invalid_limit_rejected(self):
        sim = Simulator()
        dev = NvmeDevice(sim)
        with pytest.raises(ConfigurationError):
            dev.set_read_limit(-5.0)


class TestDramModel:
    def test_achievable_bandwidth_is_third_of_peak(self):
        dram = DramModel()
        assert dram.achievable_bw_per_socket == pytest.approx(gb_per_s(68.3) / 3)

    def test_read_demand_from_misses(self):
        dram = DramModel()
        assert dram.read_bandwidth_demand(1e6) == pytest.approx(1e6 * CACHE_LINE)

    def test_throttle_only_when_demand_exceeds(self):
        dram = DramModel()
        low = dram.throttle_factor(misses_per_second=1e6, sockets_used=2)
        assert low == 1.0
        # A miss rate implying more traffic than achievable gets throttled.
        huge = dram.achievable_bw_total / CACHE_LINE * 2
        assert dram.throttle_factor(huge, sockets_used=2) < 1.0

    def test_throttle_uses_only_allocated_sockets(self):
        dram = DramModel()
        rate = dram.achievable_bw_per_socket / CACHE_LINE  # saturates 1 socket
        one = dram.throttle_factor(rate * 1.2, sockets_used=1)
        two = dram.throttle_factor(rate * 1.2, sockets_used=2)
        assert one < 1.0
        assert two == 1.0


class _FakeSource:
    def __init__(self):
        self.totals = {INSTRUCTIONS: 0.0, SSD_READ_BYTES: 0.0}

    def counter_totals(self):
        return dict(self.totals)


class TestCounterSampler:
    def test_interval_rates(self):
        sim = Simulator()
        source = _FakeSource()
        sampler = CounterSampler(sim, source)
        def driver():
            for _ in range(3):
                source.totals[INSTRUCTIONS] += 100.0
                source.totals[SSD_READ_BYTES] += 10.0
                yield Timeout(1.0)
        sim.spawn(driver())
        sim.run(until=3.0)
        sampler.stop()
        rates = sampler.series.series(INSTRUCTIONS)
        assert len(rates) == 3
        assert all(r == pytest.approx(100.0) for r in rates)
        assert sampler.series.mean(SSD_READ_BYTES) == pytest.approx(10.0)


class TestMachine:
    def test_default_spec_matches_paper(self):
        machine = MachineSpec().build()
        assert machine.topology.total_logical_cpus == 32
        assert machine.llc.total_size == 40 * MIB
        assert machine.dram.capacity_bytes == pytest.approx(64 * 1024**3)

    def test_allocate_cores_updates_cpuset(self):
        machine = Machine()
        machine.allocate_cores(8)
        shape = machine.cpuset.shape()
        assert shape.physical_cores == 8
        assert shape.smt_paired_cores == 0

    def test_allocate_llc(self):
        machine = Machine()
        machine.allocate_llc_mb(6)
        assert machine.llc.allocated_bytes() == 6 * MIB

    def test_apply_blkio_configures_ssd(self):
        machine = Machine()
        machine.apply_blkio(BlkioLimits(read_bps=mb_per_s(200)))
        assert machine.ssd.effective_read_bw == mb_per_s(200)

    def test_reboot_flushes_residual(self):
        machine = Machine()
        machine.allocate_llc_mb(2)
        machine.llc.warm_outside_mask(0.9)
        machine.reboot()
        assert machine.llc.effective_bytes() == machine.llc.allocated_bytes()
