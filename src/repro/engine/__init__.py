"""SQL-Server-on-Linux stand-in: catalog, buffer pool, WAL, locks,
optimizer, memory grants, and the executor that maps query plans onto the
simulated hardware."""

from repro.engine.catalog import Database, Index, Table
from repro.engine.engine import SqlEngine
from repro.engine.resource_governor import ResourceGovernor
from repro.engine.types import IndexKind, StorageFormat, WorkloadClass

__all__ = [
    "Database",
    "Index",
    "Table",
    "SqlEngine",
    "ResourceGovernor",
    "IndexKind",
    "StorageFormat",
    "WorkloadClass",
]
