"""Deterministic feature extraction for the sensitivity surrogate.

A feature vector describes one experiment the way the *model* sees it:
the resource-allocation knob vector, the engine personality's resource
profile, and the workload's intrinsic footprint statistics (miss-ratio
curve knees, access density, Table 2 data/index sizes).  The same
physics the simulator runs forward, summarized as regressors.

Two entry points produce byte-identical vectors for the same run:

* :func:`features_for_config` — from an
  :class:`~repro.core.experiment.ExperimentConfig` (the planner / serve
  path, where the exact config is in hand);
* :func:`features_for_measurement` — from a cached
  :class:`~repro.core.measurement.Measurement` (the corpus-harvest path,
  where only the measurement's recorded fields survive).

The feature set is therefore restricted to fields a Measurement records
(workload, scale factor, allocation, duration, backend personality):
``workload_kwargs`` and the seed are deliberately *not* features, so a
harvested corpus and a live prediction can never disagree about what a
point looks like.  Everything is pure float64 arithmetic over calibrated
constants — no RNG, no wall clock — so extraction is bit-reproducible
across processes and job counts.
"""

from __future__ import annotations

import functools
import math
from typing import Tuple

import numpy as np

from repro.core.experiment import ExperimentConfig
from repro.core.knobs import ResourceAllocation
from repro.core.measurement import Measurement
from repro.units import GIB, MIB

#: Workload one-hot order (fixed; new workloads append, never reorder).
WORKLOAD_ORDER: Tuple[str, ...] = ("asdb", "htap", "tpce", "tpch")

#: The full LLC of the paper's machine (the Fig 2 right edge), in MB.
FULL_LLC_MB = 40

#: Feature vector layout, in order.  ``feature_names()`` returns this;
#: the model's coefficient report keys on it.
FEATURE_NAMES: Tuple[str, ...] = (
    "cores",
    "log2_cores",
    "llc_mb",
    "log2_llc_mb",
    "effective_max_dop",
    "grant_percent",
    "read_bw_limited",
    "log10_read_bw",
    "write_bw_limited",
    "log10_write_bw",
    "log10_scale_factor",
    "log10_duration",
    "routed",
) + tuple(f"workload_{name}" for name in WORKLOAD_ORDER) + (
    "backend_scan_score",
    "backend_point_score",
    "backend_parallel_efficiency",
    "backend_memory_elasticity",
    "backend_startup_seconds",
    "mrc_knee_first_mib",
    "mrc_knee_last_mib",
    "mrc_total_apki",
    "mrc_mpki_at_alloc",
    "mrc_mpki_at_full",
    "mrc_hit_ratio_at_alloc",
    "log10_data_gb",
    "log10_index_gb",
)


def feature_names() -> Tuple[str, ...]:
    """The ordered names of :func:`features_for_config`'s vector."""
    return FEATURE_NAMES


@functools.lru_cache(maxsize=64)
def _workload_stats(workload: str, scale_factor: int):
    """Memoized intrinsic footprint statistics for one (workload, sf).

    MRC construction and Table 2 schema sizing are deterministic pure
    functions of calibrated constants, so caching them is safe and keeps
    grid-scale extraction out of the schema builders.
    """
    from repro.engine.schemas import build
    from repro.workloads.profiles import execution_profile

    mrc = execution_profile(workload, scale_factor).mrc
    knees = [k for k in mrc.knee_bytes() if math.isfinite(k)]
    database = build(workload, scale_factor)
    return (
        mrc,
        (knees[0] / MIB) if knees else 0.0,
        (knees[-1] / MIB) if knees else 0.0,
        mrc.total_accesses_per_ki(),
        database.data_bytes / GIB,
        database.index_bytes / GIB,
    )


@functools.lru_cache(maxsize=16)
def _backend_profile(backend: str):
    """Resource-profile scores for a personality; routed runs (and any
    unknown label a future cache might carry) fall back to the rowstore
    baseline profile so extraction never raises on old entries."""
    from repro.backends import make_backend

    try:
        return make_backend(backend).resource_profile()
    except Exception:
        from repro.backends.base import BackendResourceProfile

        return BackendResourceProfile()


def _log10_limit(limit) -> Tuple[float, float]:
    """(limited flag, log10 bytes/s) encoding of an optional cap."""
    if limit is None or limit <= 0:
        return 0.0, 0.0
    return 1.0, math.log10(limit)


def feature_vector(
    workload: str,
    scale_factor: int,
    allocation: ResourceAllocation,
    duration: float,
    backend: str,
    routed: bool,
) -> np.ndarray:
    """The shared core: a float64 vector over recorded run fields."""
    mrc, knee_first, knee_last, total_apki, data_gb, index_gb = (
        _workload_stats(workload, scale_factor)
    )
    profile = _backend_profile(backend)
    llc_bytes = allocation.llc_mb * MIB
    read_flag, read_log = _log10_limit(allocation.read_bw_limit)
    write_flag, write_log = _log10_limit(allocation.write_bw_limit)
    values = [
        float(allocation.logical_cores),
        math.log2(allocation.logical_cores),
        float(allocation.llc_mb),
        math.log2(allocation.llc_mb),
        float(allocation.effective_max_dop),
        float(allocation.grant_percent),
        read_flag,
        read_log,
        write_flag,
        write_log,
        math.log10(scale_factor),
        math.log10(max(duration, 1e-9)),
        1.0 if routed else 0.0,
    ]
    values.extend(1.0 if workload == name else 0.0 for name in WORKLOAD_ORDER)
    values.extend([
        profile.scan_bandwidth_score,
        profile.point_lookup_score,
        profile.parallel_efficiency,
        profile.memory_elasticity,
        profile.startup_seconds,
        knee_first,
        knee_last,
        total_apki,
        mrc.mpki(llc_bytes),
        mrc.mpki(FULL_LLC_MB * MIB),
        mrc.hit_ratio(llc_bytes),
        math.log10(max(data_gb, 1e-9)),
        math.log10(max(index_gb, 1e-9)),
    ])
    vector = np.asarray(values, dtype=np.float64)
    assert vector.shape == (len(FEATURE_NAMES),)
    return vector


def features_for_config(config: ExperimentConfig) -> np.ndarray:
    """Feature vector for a fully-specified experiment config."""
    return feature_vector(
        config.workload,
        config.scale_factor,
        config.allocation,
        config.duration,
        config.backend if not config.routed else "rowstore-oltp",
        config.routed,
    )


def features_for_measurement(measurement: Measurement) -> np.ndarray:
    """Feature vector reconstructed from a cached measurement.

    ``Measurement.backend`` carries either a personality name or a
    ``router:<policy>`` label; routed entries use the baseline profile
    plus the ``routed`` flag, exactly as :func:`features_for_config`
    encodes a routed config — the two paths agree byte for byte.
    """
    routed = measurement.backend.startswith("router:")
    return feature_vector(
        measurement.workload,
        measurement.scale_factor,
        measurement.allocation,
        measurement.duration,
        measurement.backend if not routed else "rowstore-oltp",
        routed,
    )


def knee_adjacent_llc_mb(workload: str, scale_factor: int) -> Tuple[int, ...]:
    """The LLC grid sizes (MB, 2 MB granularity) bracketing MRC knees.

    The paper's §5 observation — and the adaptive planner's seed set:
    the response curve bends exactly at the cumulative working-set
    footprints, so those are the points a surrogate-guided sweep must
    *simulate* rather than interpolate.
    """
    mrc = _workload_stats(workload, scale_factor)[0]
    sizes = set()
    for knee in mrc.knee_bytes():
        if not math.isfinite(knee):
            continue
        mb = knee / MIB
        below = max(2, 2 * math.floor(mb / 2))
        above = 2 * math.ceil(mb / 2)
        sizes.add(int(below))
        sizes.add(int(max(2, above)))
    return tuple(sorted(sizes))
