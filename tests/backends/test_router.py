"""Router policy units: demand estimation, the three policies, counter
bookkeeping, and the peek/route distinction."""

import pytest

from repro.backends import build_routed_engine
from repro.backends.router import (
    BIG_SCAN_BYTES,
    POINT_LOOKUP_MAX_ROWS,
    SHORT_QUERY_MAX_ROWS,
    estimate_demand,
)
from repro.core.knobs import ResourceAllocation
from repro.engine.optimizer.queryspec import QuerySpec, TableRef
from repro.errors import ConfigurationError
from repro.hardware.machine import Machine
from repro.workloads import make_workload

FLEET = ("rowstore-oltp", "columnstore-dss", "elastic-serverless")


def routed(policy="rule-based", fleet=FLEET):
    machine = Machine()
    allocation = ResourceAllocation()
    allocation.apply_to(machine)
    workload = make_workload("tpch", 10)
    return build_routed_engine(machine, workload, allocation, fleet, policy)


def spec(name, table, selectivity=1.0, column_fraction=1.0):
    return QuerySpec(
        name=name,
        tables=(TableRef(table=table, alias=table, selectivity=selectivity,
                         column_fraction=column_fraction),),
    )


POINT = spec("point", "lineitem", selectivity=1e-7)
BIG_SCAN = spec("scan", "lineitem")
SHORT = spec("short", "supplier")
# Many rows but few bytes: misses every rule, lands on the fallback.
MEDIUM = spec("medium", "orders", column_fraction=0.01)


class TestDemandEstimate:
    def test_point_lookup_detected(self):
        engine = routed()
        demand = estimate_demand(POINT, engine.database)
        assert demand.point_lookup
        assert demand.scan_rows <= POINT_LOOKUP_MAX_ROWS

    def test_big_scan_detected(self):
        engine = routed()
        demand = estimate_demand(BIG_SCAN, engine.database)
        assert not demand.point_lookup
        assert demand.scan_bytes >= BIG_SCAN_BYTES

    def test_medium_is_neither(self):
        engine = routed()
        demand = estimate_demand(MEDIUM, engine.database)
        assert not demand.point_lookup
        assert not demand.short_query
        assert demand.scan_rows > SHORT_QUERY_MAX_ROWS
        assert demand.scan_bytes < BIG_SCAN_BYTES


class TestRuleBasedPolicy:
    def test_point_lookups_go_to_rowstore(self):
        router = routed().router
        assert router.route(POINT) == "rowstore-oltp"

    def test_big_scans_go_to_columnstore(self):
        router = routed().router
        assert router.route(BIG_SCAN) == "columnstore-dss"

    def test_short_queries_go_to_serverless(self):
        router = routed().router
        assert router.route(SHORT) == "elastic-serverless"

    def test_unmatched_demand_falls_back_to_first_backend(self):
        router = routed().router
        assert router.route(MEDIUM) == "rowstore-oltp"
        assert router.fallbacks == 1

    def test_decisions_counted_per_backend(self):
        router = routed().router
        for s in (POINT, POINT, BIG_SCAN, SHORT):
            router.route(s)
        assert router.decisions == {
            "rowstore-oltp": 2, "columnstore-dss": 1, "elastic-serverless": 1
        }
        assert router.fallbacks == 0

    def test_peek_does_not_record(self):
        router = routed().router
        assert router.peek(MEDIUM) == router.route(MEDIUM)
        assert sum(router.decisions.values()) == 1
        assert router.fallbacks == 1  # only route() counted the fallback


class TestPinnedPolicy:
    def test_always_pins_every_query(self):
        router = routed(policy="always-columnstore-dss").router
        for s in (POINT, BIG_SCAN, SHORT, MEDIUM):
            assert router.route(s) == "columnstore-dss"
        assert router.decisions["columnstore-dss"] == 4
        assert router.fallbacks == 0

    def test_always_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            routed(policy="always-hekaton")

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            routed(policy="round-robin")


class TestCostScoredPolicy:
    def test_deterministic_given_same_state(self):
        router = routed(policy="cost-scored").router
        assert router.peek(BIG_SCAN) == router.peek(BIG_SCAN)

    def test_prefers_cheap_backend_for_scans(self):
        router = routed(policy="cost-scored").router
        assert router.route(BIG_SCAN) == "columnstore-dss"

    def test_inflight_pressure_shifts_placement(self):
        engine = routed(policy="cost-scored")
        router = engine.router
        baseline = router.peek(SHORT)
        # Pile synthetic in-flight queries on the baseline choice until
        # the queue penalty overcomes its cost advantage.
        for _ in range(1000):
            router.note_start(baseline)
        assert router.peek(SHORT) != baseline
        for _ in range(1000):
            router.note_done(baseline)
        assert router.peek(SHORT) == baseline

    def test_inflight_never_negative(self):
        router = routed().router
        router.note_done("rowstore-oltp")
        assert router.inflight["rowstore-oltp"] == 0


class TestSummary:
    def test_summary_shape(self):
        router = routed().router
        router.route(BIG_SCAN)
        summary = router.summary()
        assert summary["router_policy"] == "rule-based"
        assert summary["router_decisions"]["columnstore-dss"] == 1
        assert summary["router_fallbacks"] == 0


class TestSuspension:
    """Fleet health signal: placements route around suspended backends
    while alternatives exist; total suspension degrades, not refuses."""

    def test_suspended_backend_is_rerouted_around(self):
        router = routed().router
        assert router.route(BIG_SCAN) == "columnstore-dss"
        router.suspend_backend("columnstore-dss")
        choice = router.route(BIG_SCAN)
        assert choice != "columnstore-dss"
        assert router.reroutes == 1

    def test_restore_clears_the_suspension(self):
        router = routed().router
        router.suspend_backend("columnstore-dss")
        router.route(BIG_SCAN)
        router.restore_backend("columnstore-dss")
        assert router.route(BIG_SCAN) == "columnstore-dss"
        assert router.reroutes == 1  # only the suspended-era placement

    def test_unaffected_placements_do_not_count_as_reroutes(self):
        router = routed().router
        router.suspend_backend("columnstore-dss")
        assert router.route(POINT) == "rowstore-oltp"
        assert router.reroutes == 0

    def test_suspending_unknown_backend_rejected(self):
        router = routed().router
        with pytest.raises(ConfigurationError):
            router.suspend_backend("no-such-backend")

    def test_all_suspended_degrades_to_the_full_order(self):
        router = routed().router
        for name in FLEET:
            router.suspend_backend(name)
        # Degraded service beats refusing to place.
        assert router.route(BIG_SCAN) == "columnstore-dss"

    def test_summary_reports_suspensions_and_reroutes(self):
        router = routed().router
        router.suspend_backend("columnstore-dss")
        router.route(BIG_SCAN)
        summary = router.summary()
        assert summary["router_suspended"] == ["columnstore-dss"]
        assert summary["router_reroutes"] == 1
