"""Miss-ratio curves from working-set mixtures.

A workload's LLC behaviour is modelled as a mixture of *working-set
components*, each with a footprint (bytes) and an access intensity
(accesses per kilo-instruction).  Under LRU-like replacement, hotter
components occupy the cache first; a component whose footprint fits in the
remaining allocation hits almost always, one that does not fit hits on the
resident fraction, and streaming components (footprint >> any cache) never
hit.

The resulting MPKI-versus-allocation curve is piecewise, with *knees* at
the cumulative component sizes — matching the paper's §5 observation that
miss-rate curves for database workloads show knees at small cache sizes
(cf. SPLASH-2 [29] and the sufficient-LLC sizes of Table 4).

Performance notes: these curves sit on the per-query, per-sample-tick hot
path, so everything derivable at construction time is precomputed —
component densities, the LRU fill order, cumulative footprints, knees —
and :meth:`MissRatioCurve.mpki_array` / :meth:`~MissRatioCurve.hit_ratio_array`
evaluate whole allocation grids in one numpy pass.  The scalar
:meth:`~MissRatioCurve.mpki` deliberately keeps the original sequential
arithmetic, so existing results stay bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class WorkingSetComponent:
    """One locality class of a workload's memory reference stream.

    Attributes:
        name: label for diagnostics ("btree-upper", "hash-buckets", ...).
        footprint_bytes: total bytes the component touches repeatedly.
            ``float('inf')`` marks a streaming component that can never be
            fully cached.
        accesses_per_ki: LLC accesses per kilo-instruction belonging to
            this component.
        reuse_efficiency: fraction of accesses that hit when the component
            is fully resident (captures conflict/coherence misses); 1.0
            means a perfectly cacheable component.
    """

    name: str
    footprint_bytes: float
    accesses_per_ki: float
    reuse_efficiency: float = 1.0

    def __post_init__(self):
        if self.footprint_bytes <= 0:
            raise ConfigurationError(f"{self.name}: footprint must be positive")
        if self.accesses_per_ki < 0:
            raise ConfigurationError(f"{self.name}: negative access intensity")
        if not 0.0 <= self.reuse_efficiency <= 1.0:
            raise ConfigurationError(f"{self.name}: reuse efficiency in [0,1]")
        # Memoized: the density is consulted once per component per curve
        # *sort comparison*, which used to recompute the division on a
        # per-query-per-tick path.  Not a dataclass field, so equality,
        # hashing, and pickling are unaffected.
        if self.footprint_bytes == float("inf"):
            density = 0.0
        else:
            density = self.accesses_per_ki / self.footprint_bytes
        object.__setattr__(self, "_density", density)

    def access_density(self) -> float:
        """Accesses per byte — the priority under LRU-like replacement."""
        return self._density

    def __getstate__(self):
        return {
            "name": self.name,
            "footprint_bytes": self.footprint_bytes,
            "accesses_per_ki": self.accesses_per_ki,
            "reuse_efficiency": self.reuse_efficiency,
        }

    def __setstate__(self, state):
        for key, value in state.items():
            object.__setattr__(self, key, value)
        self.__post_init__()


class MissRatioCurve:
    """MPKI as a function of allocated cache bytes for one workload."""

    def __init__(self, components: Sequence[WorkingSetComponent]):
        if not components:
            raise ConfigurationError("need at least one working-set component")
        # LRU-like: denser components win cache space first.  The sort key
        # is the memoized density, hoisted out of the comparison loop.
        self._components: List[WorkingSetComponent] = sorted(
            components, key=WorkingSetComponent.access_density, reverse=True
        )
        # Flattened per-component columns in fill order, split into the
        # finite (cacheable) prefix and the streaming remainder.  The
        # scalar mpki() walks the tuples (attribute access hoisted); the
        # _array forms use the numpy columns.
        finite = [c for c in self._components
                  if c.footprint_bytes != float("inf")]
        self._flat = tuple(
            (c.footprint_bytes, c.accesses_per_ki, c.reuse_efficiency)
            for c in self._components
        )
        self._streaming_mpki = sum(
            c.accesses_per_ki for c in self._components
            if c.footprint_bytes == float("inf")
        )
        self._footprints = np.array(
            [c.footprint_bytes for c in finite], dtype=np.float64
        )
        self._accesses = np.array(
            [c.accesses_per_ki for c in finite], dtype=np.float64
        )
        self._reuse = np.array(
            [c.reuse_efficiency for c in finite], dtype=np.float64
        )
        #: Cumulative footprint *before* each component in fill order:
        #: component i's resident fraction under allocation A is
        #: ``clip((A - prior[i]) / footprint[i], 0, 1)``.
        cumulative = np.cumsum(self._footprints)
        self._prior = cumulative - self._footprints
        self._total_accesses = float(
            sum(c.accesses_per_ki for c in self._components)
        )
        self._knees: Tuple[float, ...] = tuple(cumulative.tolist())

    @property
    def components(self) -> List[WorkingSetComponent]:
        return list(self._components)

    def total_accesses_per_ki(self) -> float:
        return self._total_accesses

    def mpki(self, allocated_bytes: float, footprint_scale: float = 1.0) -> float:
        """Misses per kilo-instruction with *allocated_bytes* of LLC.

        ``footprint_scale`` inflates every footprint; the executor uses it
        to model more concurrent threads enlarging the aggregate working
        set (e.g. hyper-threading doubling resident thread state).

        Keeps the original sequential arithmetic (same operations in the
        same order), so results are bit-identical to the historical
        implementation; use :meth:`mpki_array` for whole grids.
        """
        if allocated_bytes < 0:
            raise ConfigurationError("negative allocation")
        if footprint_scale <= 0:
            raise ConfigurationError("footprint scale must be positive")
        remaining = float(allocated_bytes)
        misses = 0.0
        inf = float("inf")
        for footprint_bytes, accesses, reuse in self._flat:
            footprint = footprint_bytes * footprint_scale
            if footprint == inf:
                # Streaming: every access misses.
                misses += accesses
                continue
            resident = min(1.0, remaining / footprint) if footprint > 0 else 1.0
            misses += accesses * (1.0 - resident * reuse)
            remaining = max(0.0, remaining - footprint)
        return misses

    def mpki_array(
        self, allocated_bytes: Sequence[float], footprint_scale: float = 1.0
    ) -> np.ndarray:
        """Vectorized :meth:`mpki` over a whole allocation grid.

        One numpy pass over ``len(allocations) x len(components)``:
        component i's resident fraction is a clipped linear ramp between
        the cumulative footprint before it and after it (both scaled), so
        no sequential fill loop is needed.  Results match :meth:`mpki` to
        floating-point round-off (the summation order differs).
        """
        if footprint_scale <= 0:
            raise ConfigurationError("footprint scale must be positive")
        allocations = np.asarray(allocated_bytes, dtype=np.float64)
        if np.any(allocations < 0):
            raise ConfigurationError("negative allocation")
        if self._footprints.size == 0:
            return np.full(allocations.shape, self._streaming_mpki)
        resident = np.clip(
            (allocations[..., None] - footprint_scale * self._prior)
            / (footprint_scale * self._footprints),
            0.0,
            1.0,
        )
        misses = (self._accesses * (1.0 - resident * self._reuse)).sum(axis=-1)
        return misses + self._streaming_mpki

    def hit_ratio(self, allocated_bytes: float, footprint_scale: float = 1.0) -> float:
        total = self.total_accesses_per_ki()
        if total == 0:
            return 1.0
        return 1.0 - self.mpki(allocated_bytes, footprint_scale) / total

    def hit_ratio_array(
        self, allocated_bytes: Sequence[float], footprint_scale: float = 1.0
    ) -> np.ndarray:
        """Vectorized :meth:`hit_ratio` over a whole allocation grid."""
        total = self.total_accesses_per_ki()
        if total == 0:
            return np.ones(np.asarray(allocated_bytes, dtype=np.float64).shape)
        return 1.0 - self.mpki_array(allocated_bytes, footprint_scale) / total

    def knee_bytes(self) -> Tuple[float, ...]:
        """Allocation sizes where the curve's slope changes (the knees).

        Precomputed at construction; returns the cached tuple (callers on
        the sampling hot path may hold on to it safely — it is immutable).
        """
        return self._knees
