"""Heartbeat-driven failure detection and automatic failover.

Every replica runs a heartbeat process on the shared fleet clock: each
beat performs a small write on the replica's own device before
reporting in, so the signal degrades exactly like the replica does — a
crashed or partitioned replica stops beating entirely, a
browned-out device delays its beats.  The monitor keeps a sliding
window of inter-arrival gaps per replica and scores suspicion
phi-accrual style: *elapsed time since the last beat over the median
observed gap*.  A score crossing ``phi_threshold`` marks the replica
suspected.  A second, orthogonal signal — per-replica service times fed
by the read path (:mod:`repro.fleet.hedging`) — catches replicas that
still beat but serve reads an order of magnitude slower than their
peers (the classic brownout straggler).

The :class:`FailoverController` watches the primary: once suspected, it
fences the old primary immediately (no two-primary window), pauses for
the modeled promotion cost, and installs the max-durable-LSN eligible
candidate via :meth:`~repro.fleet.replicas.ReplicaGroup.install_primary`.
:meth:`HeartbeatMonitor.detection_bound` plus the promotion pause is the
budget the chaos scheduler's bounded-unavailability invariant checks
real failovers against.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Generator, List, Optional

from repro.errors import FaultInjectionError
from repro.fleet.replicas import Replica, ReplicaGroup
from repro.sim.process import Timeout

#: Bytes written per heartbeat: big enough to touch the device's write
#: path, small enough to be negligible load.
HEARTBEAT_BYTES = 4096.0


class HeartbeatMonitor:
    """Phi-accrual-style suspicion scores over simulated heartbeats."""

    def __init__(
        self,
        group: ReplicaGroup,
        interval: float = 0.02,
        phi_threshold: float = 4.0,
        window: int = 16,
        service_window: int = 64,
        slow_ratio: float = 10.0,
    ):
        if interval <= 0 or phi_threshold <= 1 or window < 2:
            raise FaultInjectionError("bad heartbeat monitor parameters")
        self.group = group
        self.interval = interval
        self.phi_threshold = phi_threshold
        self.slow_ratio = slow_ratio
        self._sim = group._sim
        self.last_beat: Dict[int, float] = {r.index: 0.0 for r in group.replicas}
        self.beats: Dict[int, int] = {r.index: 0 for r in group.replicas}
        self._gaps: Dict[int, Deque[float]] = {
            r.index: deque(maxlen=window) for r in group.replicas
        }
        self._service: Dict[int, Deque[float]] = {
            r.index: deque(maxlen=service_window) for r in group.replicas
        }

    def install(self) -> None:
        """Spawn one heartbeat process per replica."""
        for replica in self.group.replicas:
            self._sim.spawn(self._beat(replica),
                            name=f"heartbeat-{replica.index}")

    def _beat(self, replica: Replica) -> Generator:
        while True:
            yield Timeout(self.interval)
            if not replica.up or replica.partitioned:
                continue
            try:
                yield from replica.machine.ssd.write(HEARTBEAT_BYTES)
            except FaultInjectionError:
                continue  # a failed beat is a missed beat
            if not replica.up or replica.partitioned:
                continue  # went down while the beat was in flight
            self.note_beat(replica.index)

    # -- signals -----------------------------------------------------------------

    def note_beat(self, index: int) -> None:
        now = self._sim.now
        self._gaps[index].append(now - self.last_beat[index])
        self.last_beat[index] = now
        self.beats[index] += 1

    def note_service_time(self, index: int, seconds: float) -> None:
        """Feed one observed request service time for a replica."""
        self._service[index].append(seconds)

    def typical_gap(self, index: int) -> float:
        """Median inter-arrival gap (robust: one huge gap left behind by
        a past outage must not inflate the detector's baseline and slow
        the *next* detection past its budget)."""
        gaps = self._gaps[index]
        if not gaps:
            return self.interval
        ordered = sorted(gaps)
        return ordered[len(ordered) // 2]

    def suspicion(self, index: int) -> float:
        """Elapsed-since-last-beat over the typical inter-arrival gap."""
        return (self._sim.now - self.last_beat[index]) / max(
            self.typical_gap(index), 1e-9
        )

    def service_slowdown(self, index: int) -> float:
        """This replica's recent mean service time relative to the
        fastest peer's (1.0 = at par; requires peers with samples)."""
        mine = self._service[index]
        if not mine:
            return 1.0
        peers = [
            sum(s) / len(s)
            for peer, s in self._service.items()
            if peer != index and s
        ]
        if not peers:
            return 1.0
        return (sum(mine) / len(mine)) / max(min(peers), 1e-9)

    def suspected(self, index: int) -> bool:
        return (
            self.suspicion(index) >= self.phi_threshold
            or self.service_slowdown(index) >= self.slow_ratio
        )

    def detection_bound(self) -> float:
        """Worst-case detection delay the availability invariant budgets.

        Suspicion crosses the threshold after ``phi_threshold`` typical
        gaps of silence; the typical gap tracks the configured interval
        plus the (small) beat write time, budgeted here at 2x interval.
        """
        return self.phi_threshold * self.interval * 2.0


class FailoverController:
    """Watches the primary's health; fences and promotes on suspicion."""

    def __init__(
        self,
        group: ReplicaGroup,
        monitor: HeartbeatMonitor,
        promotion_pause: float = 0.02,
        check_interval: Optional[float] = None,
    ):
        self.group = group
        self.monitor = monitor
        self.promotion_pause = promotion_pause
        self.check_interval = (check_interval if check_interval is not None
                               else monitor.interval / 2.0)
        self._sim = group._sim
        self._promoting = False
        self.promotions = 0
        self.aborted_promotions = 0

    def install(self) -> None:
        self._sim.spawn(self._watch(), name="failover-controller")

    def availability_bound(self) -> float:
        """Detection + promotion budget per failover (invariant (b))."""
        return (self.monitor.detection_bound() + self.check_interval
                + self.promotion_pause)

    def _primary_healthy(self) -> bool:
        primary = self.group.primary
        return (primary is not None and primary.reachable
                and not primary.fenced
                and not self.monitor.suspected(primary.index))

    def _watch(self) -> Generator:
        while True:
            yield Timeout(self.check_interval)
            if self._promoting or self._primary_healthy():
                continue
            primary = self.group.primary
            candidates = self._candidates(primary)
            if not candidates:
                continue  # nothing eligible yet; keep watching
            self._promoting = True
            self.group.note_primary_down()
            self._sim.spawn(self._promote(primary), name="failover-promote")

    def _candidates(self, primary: Optional[Replica]) -> List[Replica]:
        return [
            r for r in self.group.eligible_candidates()
            if r is not primary and not self.monitor.suspected(r.index)
        ]

    def _promote(self, old: Optional[Replica]) -> Generator:
        # Fence first: from this instant the deposed primary can commit
        # locally but never acknowledge, so there is no split-brain
        # window in which two replicas both ack writes.
        if old is not None:
            old.fence()
        yield Timeout(self.promotion_pause)
        candidates = self._candidates(old)
        self._promoting = False
        if not candidates:
            self.aborted_promotions += 1
            return None
        # Max durable LSN wins; configuration order (lowest index) breaks
        # ties — candidates iterate in index order and max() keeps the
        # first of equals.
        best = max(candidates, key=lambda r: r.durable_lsn)
        self.group.install_primary(best)
        self.promotions += 1
        return None
