"""Measurement comparison: detect regressions between two study runs.

Model changes shift numbers; the question is always *which* observable
moved and by how much.  :func:`compare_measurements` diffs two
measurements observable by observable; :func:`compare_studies` diffs two
keyed collections (e.g. the full study matrix before and after a change)
and reports everything outside tolerance.

Measurements can be persisted to / loaded from plain JSON so a study can
be snapshotted as a baseline artifact.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.measurement import Measurement
from repro.engine.locks import WaitType
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ObservableDiff:
    """One observable's change between baseline and candidate."""

    name: str
    baseline: float
    candidate: float

    @property
    def relative_change(self) -> float:
        if self.baseline == 0:
            return 0.0 if self.candidate == 0 else float("inf")
        return (self.candidate - self.baseline) / abs(self.baseline)


def snapshot(measurement: Measurement) -> Dict[str, float]:
    """The comparable observables of a measurement, as plain floats."""
    data = {
        "primary_metric": measurement.primary_metric,
        "mpki_model": measurement.mpki_model,
        "ssd_read_mb": measurement.ssd_read_mb,
        "ssd_write_mb": measurement.ssd_write_mb,
        "dram_read_mb": measurement.dram_read_mb,
        "smt_multiplier": measurement.smt_multiplier,
    }
    for wait_type in WaitType:
        data[f"wait_{wait_type.value}"] = measurement.wait_time(wait_type)
    if measurement.secondary_metric is not None:
        data["secondary_metric"] = measurement.secondary_metric
    return data


def compare_measurements(
    baseline: Dict[str, float],
    candidate: Dict[str, float],
    tolerance: float = 0.10,
    absolute_floor: float = 1e-6,
) -> List[ObservableDiff]:
    """Observables whose relative change exceeds *tolerance*.

    Tiny absolute values (below *absolute_floor*) are skipped — wait
    times near zero flap wildly in relative terms without meaning.
    """
    if tolerance <= 0:
        raise ConfigurationError("tolerance must be positive")
    diffs: List[ObservableDiff] = []
    for name in sorted(set(baseline) | set(candidate)):
        base = baseline.get(name, 0.0)
        cand = candidate.get(name, 0.0)
        if max(abs(base), abs(cand)) < absolute_floor:
            continue
        diff = ObservableDiff(name=name, baseline=base, candidate=cand)
        if abs(diff.relative_change) > tolerance:
            diffs.append(diff)
    return diffs


@dataclass
class StudyComparison:
    """Diff of two keyed studies."""

    regressions: Dict[str, List[ObservableDiff]] = field(default_factory=dict)
    missing_keys: List[str] = field(default_factory=list)
    new_keys: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.regressions and not self.missing_keys

    def summary(self) -> str:
        lines: List[str] = []
        for key in self.missing_keys:
            lines.append(f"MISSING {key}")
        for key, diffs in self.regressions.items():
            for diff in diffs:
                lines.append(
                    f"{key}: {diff.name} {diff.baseline:.4g} -> "
                    f"{diff.candidate:.4g} ({diff.relative_change:+.1%})"
                )
        return "\n".join(lines) if lines else "no changes beyond tolerance"


def compare_studies(
    baseline: Dict[str, Dict[str, float]],
    candidate: Dict[str, Dict[str, float]],
    tolerance: float = 0.10,
) -> StudyComparison:
    """Compare two keyed snapshot collections."""
    comparison = StudyComparison()
    for key, base in baseline.items():
        if key not in candidate:
            comparison.missing_keys.append(key)
            continue
        diffs = compare_measurements(base, candidate[key], tolerance=tolerance)
        if diffs:
            comparison.regressions[key] = diffs
    comparison.new_keys = [k for k in candidate if k not in baseline]
    return comparison


# -- persistence ---------------------------------------------------------------

def save_study(path: str, study: Dict[str, Dict[str, float]]) -> None:
    """Write a study snapshot to JSON."""
    with open(path, "w") as handle:
        json.dump(study, handle, indent=2, sort_keys=True)


def load_study(path: str) -> Dict[str, Dict[str, float]]:
    """Read a study snapshot from JSON."""
    with open(path) as handle:
        return json.load(handle)
