"""What-if serving: resolution order, provenance, fallback, async path."""

import asyncio

import pytest

from repro.errors import ConfigurationError
from repro.surrogate.serve import (
    SOURCE_CACHE,
    SOURCE_SIMULATED,
    SOURCE_SURROGATE,
    WhatIfServer,
)
from tests.surrogate.conftest import grid_config


class TestResolutionOrder:
    def test_exact_cached_point_comes_from_cache(self, model, seeded_cache):
        server = WhatIfServer(model=model, cache=seeded_cache)
        answer = server.answer(grid_config(cores=2, llc_mb=8))
        assert answer.source == SOURCE_CACHE
        assert answer.uncertainty is None

    def test_confident_prediction_comes_from_surrogate(self, model,
                                                       seeded_cache):
        server = WhatIfServer(model=model, cache=seeded_cache,
                              uncertainty_threshold=10.0)
        answer = server.answer(grid_config(cores=2, llc_mb=12))
        assert answer.source == SOURCE_SURROGATE
        assert answer.uncertainty is not None
        assert answer.primary_metric > 0

    def test_uncertain_prediction_falls_to_simulation(self, model, tmp_path):
        from repro.core.resultcache import ResultCache

        cache = ResultCache(tmp_path / "cache")
        server = WhatIfServer(model=model, cache=cache,
                              uncertainty_threshold=0.0)
        config = grid_config(cores=2, llc_mb=12)
        answer = server.answer(config)
        assert answer.source == SOURCE_SIMULATED
        # ...and the fallback's truth is cached for next time.
        assert cache.get(config) is not None
        assert server.answer(config).source == SOURCE_CACHE

    def test_cache_wins_over_surrogate(self, model, seeded_cache):
        server = WhatIfServer(model=model, cache=seeded_cache,
                              uncertainty_threshold=10.0)
        answer = server.answer(grid_config(cores=2, llc_mb=8))
        assert answer.source == SOURCE_CACHE

    def test_no_simulation_prefers_uncertain_surrogate(self, model):
        server = WhatIfServer(model=model, uncertainty_threshold=0.0,
                              allow_simulation=False)
        answer = server.answer(grid_config(cores=2, llc_mb=12))
        assert answer.source == SOURCE_SURROGATE

    def test_unanswerable_query_refused(self, seeded_cache):
        server = WhatIfServer(cache=seeded_cache, allow_simulation=False)
        with pytest.raises(ConfigurationError):
            server.answer(grid_config(cores=2, llc_mb=12))
        assert server.stats.refused == 1

    def test_nothing_to_answer_from_rejected_at_construction(self):
        with pytest.raises(ConfigurationError):
            WhatIfServer(allow_simulation=False)


class TestStatsAndLatency:
    def test_per_source_tally(self, model, seeded_cache):
        server = WhatIfServer(model=model, cache=seeded_cache,
                              uncertainty_threshold=10.0)
        server.answer_many([
            grid_config(cores=2, llc_mb=8),     # cache
            grid_config(cores=2, llc_mb=12),    # surrogate
            grid_config(cores=4, llc_mb=8),     # cache
        ])
        assert server.stats.cache == 2
        assert server.stats.surrogate == 1
        assert server.stats.simulated == 0
        assert len(server.stats.latencies[SOURCE_CACHE]) == 2

    def test_answers_carry_latency(self, model, seeded_cache):
        server = WhatIfServer(model=model, cache=seeded_cache)
        answer = server.answer(grid_config(cores=2, llc_mb=8))
        assert answer.latency_seconds > 0
        assert "cache" in answer.describe()


class TestAsync:
    def test_results_in_input_order(self, model, seeded_cache):
        server = WhatIfServer(model=model, cache=seeded_cache,
                              uncertainty_threshold=10.0)
        configs = [
            grid_config(cores=2, llc_mb=8),
            grid_config(cores=2, llc_mb=12),
            grid_config(cores=8, llc_mb=32),
        ]
        answers = asyncio.run(server.answer_many_async(configs))
        assert [a.config for a in answers] == configs
        assert answers[0].source == SOURCE_CACHE
        assert answers[1].source == SOURCE_SURROGATE
        assert answers[2].source == SOURCE_CACHE

    def test_async_matches_sync(self, model, seeded_cache):
        config = grid_config(cores=4, llc_mb=16)
        server = WhatIfServer(model=model, cache=seeded_cache)
        sync_answer = server.answer(config)
        async_answer = asyncio.run(server.answer_async(config))
        assert async_answer.source == sync_answer.source
        assert async_answer.targets == sync_answer.targets
