"""Resource partitioning among co-located tenants (§10's first research
question: how should system resources be partitioned among streams to
meet SLAs?).

A :class:`TenantProfile` holds a tenant's measured sensitivity curves
(performance at each candidate core count and LLC allocation, from the
Fig 2-style sweeps).  :func:`partition_resources` searches the discrete
allocation space for the cheapest feasible split — every tenant meets its
SLO, total cores and CAT ways within the machine — preferring partitions
that leave the most slack for future tenants.

The search is exact over the (small) discrete knob space the hardware
exposes: core counts and 2 MB CAT steps, which is precisely why the paper
highlights these two knobs as *quickly modifiable* at runtime.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class TenantProfile:
    """Measured sensitivity of one tenant.

    ``performance[(cores, llc_mb)]`` is the tenant's standalone metric at
    that allocation — typically collected with
    :func:`repro.core.sweeps.core_sweep` / ``llc_sweep`` or condensed
    from separable curves via :meth:`from_curves`.
    """

    name: str
    performance: Dict[Tuple[int, int], float]
    slo: float

    def __post_init__(self):
        if not self.performance:
            raise ConfigurationError(f"{self.name}: empty profile")
        if self.slo <= 0:
            raise ConfigurationError(f"{self.name}: SLO must be positive")

    @classmethod
    def from_curves(
        cls,
        name: str,
        core_curve: Dict[int, float],
        llc_curve: Dict[int, float],
        slo: float,
    ) -> "TenantProfile":
        """Combine separable core and LLC curves multiplicatively.

        ``llc_curve`` must contain the full-allocation point (its max),
        which anchors the relative cache factor.
        """
        if not core_curve or not llc_curve:
            raise ConfigurationError("curves must be non-empty")
        llc_reference = max(llc_curve.values())
        performance = {
            (cores, llc): core_perf * (llc_curve[llc] / llc_reference)
            for cores, core_perf in core_curve.items()
            for llc in llc_curve
        }
        return cls(name=name, performance=performance, slo=slo)

    def candidate_allocations(self) -> List[Tuple[int, int]]:
        return sorted(self.performance)

    def meets_slo(self, cores: int, llc_mb: int) -> bool:
        value = self.performance.get((cores, llc_mb))
        return value is not None and value >= self.slo


@dataclass(frozen=True)
class PartitionPlan:
    """A feasible split of the machine among tenants."""

    assignments: Dict[str, Tuple[int, int]]
    total_cores: int
    total_llc_mb: int
    spare_cores: int
    spare_llc_mb: int

    @property
    def spare_fraction(self) -> float:
        return 0.5 * (
            self.spare_cores / max(1, self.total_cores)
            + self.spare_llc_mb / max(1, self.total_llc_mb)
        )


def partition_resources(
    tenants: Sequence[TenantProfile],
    total_cores: int = 32,
    total_llc_mb: int = 40,
    llc_step_mb: int = 2,
) -> Optional[PartitionPlan]:
    """Find the feasible partition leaving the most spare resources.

    Exhaustive over each tenant's SLO-meeting allocations (the frontier
    is pruned first: dominated allocations — more of everything for the
    same SLO satisfaction — are dropped).  Returns ``None`` when no
    feasible split exists.
    """
    if total_cores < 1 or total_llc_mb < llc_step_mb:
        raise ConfigurationError("machine too small")
    frontiers: List[List[Tuple[int, int]]] = []
    for tenant in tenants:
        feasible = [
            alloc for alloc in tenant.candidate_allocations()
            if tenant.meets_slo(*alloc)
        ]
        frontier = _pareto_min(feasible)
        if not frontier:
            return None
        frontiers.append(frontier)

    best: Optional[PartitionPlan] = None
    for combo in itertools.product(*frontiers):
        cores_used = sum(c for c, _ in combo)
        llc_used = sum(l for _, l in combo)
        if cores_used > total_cores or llc_used > total_llc_mb:
            continue
        plan = PartitionPlan(
            assignments={t.name: alloc for t, alloc in zip(tenants, combo)},
            total_cores=total_cores,
            total_llc_mb=total_llc_mb,
            spare_cores=total_cores - cores_used,
            spare_llc_mb=total_llc_mb - llc_used,
        )
        if best is None or plan.spare_fraction > best.spare_fraction:
            best = plan
    return best


def _pareto_min(allocations: Sequence[Tuple[int, int]]) -> List[Tuple[int, int]]:
    """Keep only allocations not dominated by a smaller-or-equal one."""
    frontier: List[Tuple[int, int]] = []
    for candidate in sorted(allocations):
        if not any(
            other[0] <= candidate[0] and other[1] <= candidate[1]
            and other != candidate
            for other in allocations
        ):
            frontier.append(candidate)
    return frontier
