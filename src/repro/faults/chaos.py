"""Seeded chaos scheduling over a replicated fleet.

The chaos scheduler composes the repo's fault vocabulary
(:class:`~repro.faults.spec.CrashPoint`,
:class:`~repro.faults.spec.StorageBrownout`,
:class:`~repro.faults.spec.GrantStorm`,
:class:`~repro.faults.spec.ReplicaPartition`) into a **reproducible
schedule** of episodes against a live
:class:`~repro.fleet.replicas.ReplicaGroup` — N engine replicas on one
simulated clock with heartbeat failure detection
(:mod:`repro.fleet.health`) and hedged reads
(:mod:`repro.fleet.hedging`) — while writer and reader client processes
drive load.  Everything stochastic draws from
:class:`~repro.sim.randomness.RandomStreams` named streams derived from
one seed, so a schedule replays bit-identically: same seed, same
faults, same interleavings, same report digest.

After the run the :class:`ChaosReport` checks four invariants:

(a) **durability** — no acknowledged durable write lost: every LSN the
    group acknowledged is durable on at least one surviving replica
    (:meth:`~repro.fleet.replicas.ReplicaGroup.audit_durability`);
(b) **bounded unavailability** — every failover's promotion window
    (fault observed → new primary installed) fits inside the failure
    detector's detection + promotion budget
    (:meth:`~repro.fleet.health.FailoverController.availability_bound`);
(c) **hedging helps** — with ``compare_hedging``, client p99 read
    latency under hedging is no worse than the same seeded schedule
    with hedging disabled (injected stragglers are what hedges dodge);
(d) **determinism** — an empty schedule replays to a bit-identical
    report digest, i.e. the fleet machinery itself adds no
    nondeterminism over the seed engines.

Episodes are laid out in disjoint time slots, so at most one replica is
faulted at a time and a 3-replica group never loses its quorum to the
scheduler itself — which is what makes (a) and (b) *hard* gates rather
than statistical ones.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Sequence, Tuple

from repro.backends.base import DEFAULT_BACKEND, make_backend
from repro.core.knobs import ResourceAllocation
from repro.core.resultcache import canonical_json
from repro.errors import (
    ChaosInvariantError,
    FaultInjectionError,
    GrantTimeoutError,
)
from repro.faults.spec import (
    CrashPoint,
    FaultSpec,
    GrantStorm,
    ReplicaPartition,
    StorageBrownout,
)
from repro.fleet.health import FailoverController, HeartbeatMonitor
from repro.fleet.hedging import HedgedReader, RetryBudget
from repro.fleet.replicas import Replica, ReplicaGroup
from repro.hardware.machine import Machine, MachineSpec
from repro.sim.process import Simulator, Timeout
from repro.sim.randomness import RandomStreams
from repro.units import KIB
from repro.workloads import make_workload

#: Named fault mixes the CLI / CI matrix selects by name.
SCENARIOS: Dict[str, Tuple[str, ...]] = {
    "failover": ("crash",),
    "hedging": ("brownout",),
    "partition": ("partition",),
    "storm": ("storm",),
    "mixed": ("crash", "brownout", "partition", "storm"),
    "none": (),
}

#: Tolerance on invariant (c): hedged p99 may exceed unhedged p99 by at
#: most this relative slack (hedging must never *hurt* the tail, but two
#: different interleavings can tie to within scheduling noise).
HEDGING_P99_TOLERANCE = 1.02


@dataclass(frozen=True)
class ChaosEpisode:
    """One scheduled fault: what, when, against which replica."""

    at: float
    kind: str  # "crash" | "brownout" | "partition" | "storm"
    replica: int
    duration: float
    spec: FaultSpec


@dataclass(frozen=True)
class ChaosConfig:
    """Everything a chaos run needs; hashable and cache-canonical."""

    seed: int = 0
    duration: float = 3.0
    replicas: int = 3
    scenario: str = "mixed"
    episodes: int = 3
    hedging: bool = True
    workload: str = "asdb"
    scale_factor: int = 10
    backend: str = DEFAULT_BACKEND
    writers: int = 4
    readers: int = 4
    write_interval: float = 0.02
    read_interval: float = 0.01
    write_bytes: float = 16 * KIB
    read_bytes: float = 256 * KIB

    def __post_init__(self):
        if self.duration <= 0:
            raise FaultInjectionError("chaos duration must be positive")
        if self.replicas < 2:
            raise FaultInjectionError("a fleet needs at least 2 replicas")
        if self.episodes < 0:
            raise FaultInjectionError("episodes must be >= 0")
        if self.scenario not in SCENARIOS:
            raise FaultInjectionError(
                f"unknown scenario {self.scenario!r}; one of {sorted(SCENARIOS)}"
            )


def generate_schedule(
    seed: int,
    duration: float,
    kinds: Sequence[str],
    replicas: int = 3,
    episodes: int = 3,
) -> Tuple[ChaosEpisode, ...]:
    """Deterministic episode schedule from one seed.

    Episodes land in disjoint slots inside ``[0.2, 0.9] * duration``:
    injection in the first 30% of each slot, heal by 80% — so one
    episode's fault is always healed before the next fires, and the
    scheduler itself can never take two replicas down at once.
    """
    if not kinds or episodes == 0:
        return ()
    rng = RandomStreams(seed).fork("chaos").get("schedule")
    window_start = 0.2 * duration
    window = 0.7 * duration
    slot = window / episodes
    out: List[ChaosEpisode] = []
    for i in range(episodes):
        at = window_start + i * slot + float(rng.uniform(0.0, 0.3)) * slot
        length = float(rng.uniform(0.25, 0.5)) * slot
        kind = kinds[int(rng.integers(len(kinds)))]
        target = int(rng.integers(replicas))
        if kind == "crash":
            spec: FaultSpec = CrashPoint(at=at)
        elif kind == "brownout":
            # A GC-stall-style straggler: point-read latency inflates
            # ~20x while streaming bandwidth degrades moderately — the
            # client-visible tail that hedged reads exist to dodge.
            spec = StorageBrownout(start=at, duration=length,
                                   read_factor=0.05, write_factor=0.5,
                                   latency_factor=20.0)
        elif kind == "partition":
            spec = ReplicaPartition(start=at, duration=length, replica=target)
        elif kind == "storm":
            spec = GrantStorm(at=at, queries=6, pool_fraction=0.2,
                              hold_seconds=length)
        else:
            raise FaultInjectionError(f"unknown chaos kind {kind!r}")
        out.append(ChaosEpisode(at=at, kind=kind, replica=target,
                                duration=length, spec=spec))
    return tuple(out)


def episode_payload(episode: ChaosEpisode) -> Dict[str, object]:
    """A journal/CLI-friendly primitive view of one episode."""
    return {
        "at": episode.at,
        "kind": episode.kind,
        "replica": episode.replica,
        "duration": episode.duration,
    }


class _FleetRun:
    """One seeded execution: fleet, clients, episode drivers, outcome."""

    def __init__(self, config: ChaosConfig,
                 schedule: Tuple[ChaosEpisode, ...], hedging: bool):
        self.config = config
        self.schedule = schedule
        self.sim = Simulator()
        self.streams = RandomStreams(config.seed).fork("chaos-clients")
        workload = make_workload(config.workload, config.scale_factor)
        backend = make_backend(config.backend)
        allocation = ResourceAllocation()
        replicas = []
        for i in range(config.replicas):
            machine = Machine(
                spec=MachineSpec(),
                seed=self.streams.fork(f"replica{i}").seed,
                shared_sim=self.sim,
            )
            allocation.apply_to(machine)
            engine = backend.build_engine(machine, workload, allocation)
            replicas.append(Replica(index=i, machine=machine, engine=engine))
        self.group = ReplicaGroup(self.sim, replicas)
        self.monitor = HeartbeatMonitor(self.group)
        self.controller = FailoverController(self.group, self.monitor)
        self.monitor.install()
        self.controller.install()
        self.reader = HedgedReader(
            self.group,
            monitor=self.monitor,
            # A brownout episode needs roughly one hedge per affected
            # read until the slowdown detector reroutes placement; the
            # default bucket is sized for steady state, not chaos soaks.
            budget=RetryBudget(self.sim, capacity=64.0, refill_per_s=32.0),
            enabled=hedging,
            read_bytes=config.read_bytes,
        )
        self.write_latencies: List[float] = []
        self.read_latencies: List[float] = []
        self.episode_log: List[Dict[str, object]] = []

    # -- client load -------------------------------------------------------------

    def _writer(self, wid: int, ids) -> Generator:
        rng = self.streams.get(f"writer{wid}")
        while True:
            yield Timeout(float(rng.exponential(self.config.write_interval)))
            txn_id = next(ids)
            start = self.sim.now
            yield from self.group.submit_write(self.config.write_bytes,
                                               txn_id=txn_id)
            self.write_latencies.append(self.sim.now - start)

    def _reader_proc(self, rid: int) -> Generator:
        rng = self.streams.get(f"reader{rid}")
        tenant = f"tenant{rid % 2}"
        while True:
            yield Timeout(float(rng.exponential(self.config.read_interval)))
            latency = yield from self.reader.read(tenant=tenant)
            self.read_latencies.append(latency)

    # -- episode drivers ---------------------------------------------------------

    def _drive(self, episode: ChaosEpisode) -> Generator:
        yield Timeout(episode.at)
        replica = self.group.replicas[episode.replica]
        if episode.kind == "brownout":
            # Brownouts chase the *current* primary: that is the replica
            # on the unhedged read path, so the straggler is guaranteed
            # to be client-visible — the adversarial placement a chaos
            # scheduler should pick.
            replica = self.group.primary or replica
        entry = {"kind": episode.kind, "replica": replica.index,
                 "at": self.sim.now, "duration": episode.duration}
        if episode.kind == "crash":
            if replica.up:
                if replica is self.group.primary:
                    self.group.note_primary_down()
                replica.crash()
                yield Timeout(episode.duration)
                replica.restart()
                yield from self.group.rejoin(replica)
        elif episode.kind == "brownout":
            spec = episode.spec
            replica.machine.ssd.apply_brownout(
                read_factor=spec.read_factor,
                write_factor=spec.write_factor,
                latency_factor=spec.latency_factor,
            )
            yield Timeout(episode.duration)
            replica.machine.ssd.clear_brownout()
        elif episode.kind == "partition":
            if replica.up and not replica.partitioned:
                if replica is self.group.primary:
                    self.group.note_primary_down()
                replica.partitioned = True
                yield Timeout(episode.duration)
                # Heal fenced: a replica that missed an epoch must not be
                # promotable until rejoin proves its log caught up.
                replica.fence()
                replica.partitioned = False
                yield from self.group.rejoin(replica)
        elif episode.kind == "storm":
            spec = episode.spec
            for q in range(spec.queries):
                self.sim.spawn(
                    self._storm_query(replica.engine.semaphore, spec),
                    name=f"chaos-storm-{episode.replica}-{q}",
                )
            yield Timeout(episode.duration)
        audit = self.group.audit_durability()
        entry["healed_at"] = self.sim.now
        entry["acked"] = audit["acked"]
        entry["lost"] = audit["lost"]
        self.episode_log.append(entry)

    def _storm_query(self, semaphore, spec: GrantStorm) -> Generator:
        nbytes = semaphore.pool_bytes * spec.pool_fraction
        try:
            ticket = yield from semaphore.acquire(nbytes, name="chaos-storm")
        except GrantTimeoutError:
            return None
        try:
            yield Timeout(spec.hold_seconds)
        finally:
            semaphore.release(ticket)
        return None

    # -- execution ---------------------------------------------------------------

    def run(self) -> None:
        ids = itertools.count()
        for wid in range(self.config.writers):
            self.sim.spawn(self._writer(wid, ids), name=f"chaos-writer-{wid}")
        for rid in range(self.config.readers):
            self.sim.spawn(self._reader_proc(rid), name=f"chaos-reader-{rid}")
        for i, episode in enumerate(self.schedule):
            self.sim.spawn(self._drive(episode), name=f"chaos-episode-{i}")
        self.sim.run(until=self.config.duration)

    # -- outcome -----------------------------------------------------------------

    def read_p99(self) -> Optional[float]:
        if not self.read_latencies:
            return None
        return self.reader.latencies.percentile(99.0)

    def failover_windows(self) -> List[float]:
        return [event["at"] - event["failed_at"]
                for event in self.group.failovers]

    def digest(self) -> str:
        """Bit-exact fingerprint of everything a client observed."""
        payload = {
            "acked": sorted(self.group.acked_records),
            "epoch": self.group.epoch,
            "fleet": self.group.summary(),
            "hedging": self.reader.summary(),
            "write_latencies": list(self.write_latencies),
            "read_latencies": list(self.read_latencies),
            "failovers": self.group.failovers,
        }
        return hashlib.sha256(canonical_json(payload).encode()).hexdigest()


@dataclass
class ChaosReport:
    """Outcome + invariant verdicts of one seeded chaos run.

    ``invariants`` maps invariant name to ``True`` (held), ``False``
    (violated), or ``None`` (not applicable to this run — e.g. the
    hedging comparison was not requested).
    """

    config: ChaosConfig
    schedule: Tuple[ChaosEpisode, ...]
    episodes: List[Dict[str, object]]
    fleet: Dict[str, float]
    hedging: Dict[str, float]
    audit: Dict[str, object]
    failover_windows: List[float]
    availability_bound: float
    promotions: int
    digest: str
    read_p99: Optional[float]
    unhedged_read_p99: Optional[float]
    invariants: Dict[str, Optional[bool]] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return all(v is not False for v in self.invariants.values())

    def violations(self) -> List[str]:
        out = []
        for name, verdict in sorted(self.invariants.items()):
            if verdict is False:
                out.append(name)
        return out

    def raise_on_violation(self) -> None:
        bad = self.violations()
        if bad:
            raise ChaosInvariantError(
                f"chaos run (seed={self.config.seed}, "
                f"scenario={self.config.scenario}) violated: {', '.join(bad)}"
            )

    def summary_lines(self) -> List[str]:
        """Greppable one-per-invariant lines for the CLI / CI gates."""
        lines = []
        for name, verdict in sorted(self.invariants.items()):
            state = "n/a" if verdict is None else ("ok" if verdict else "VIOLATED")
            lines.append(f"invariant {name}: {state}")
        return lines


def run_chaos(
    config: ChaosConfig,
    journal=None,
    compare_hedging: bool = False,
    check_determinism: Optional[bool] = None,
) -> ChaosReport:
    """Execute one seeded chaos schedule and audit its invariants.

    ``journal`` is any object with a ``note(event, **fields)`` method
    (e.g. :class:`~repro.core.journal.SweepJournal`) — the schedule,
    every episode, every failover, and the final verdicts are recorded
    so an interrupted soak replays from evidence.  ``compare_hedging``
    re-runs the identical schedule with hedging disabled to judge
    invariant (c); ``check_determinism`` (default: only when the
    schedule is empty) re-runs and compares report digests for
    invariant (d).
    """
    kinds = SCENARIOS[config.scenario]
    schedule = generate_schedule(config.seed, config.duration, kinds,
                                 replicas=config.replicas,
                                 episodes=config.episodes)
    if check_determinism is None:
        check_determinism = not schedule
    if journal is not None:
        journal.note("chaos-schedule", seed=config.seed,
                     scenario=config.scenario,
                     episodes=[episode_payload(e) for e in schedule])

    run = _FleetRun(config, schedule, hedging=config.hedging)
    run.run()
    audit = run.group.audit_durability()
    windows = run.failover_windows()
    bound = run.controller.availability_bound()
    digest = run.digest()

    invariants: Dict[str, Optional[bool]] = {
        "durability": not audit["lost"],
        "availability": all(w <= bound for w in windows),
        "hedging-p99": None,
        "determinism": None,
    }

    unhedged_p99: Optional[float] = None
    if compare_hedging and schedule:
        baseline = _FleetRun(config, schedule, hedging=False)
        baseline.run()
        unhedged_p99 = baseline.read_p99()
        hedged_p99 = run.read_p99()
        if hedged_p99 is not None and unhedged_p99 is not None:
            invariants["hedging-p99"] = (
                hedged_p99 <= unhedged_p99 * HEDGING_P99_TOLERANCE + 1e-6
            )
    if check_determinism:
        replay = _FleetRun(config, schedule, hedging=config.hedging)
        replay.run()
        invariants["determinism"] = replay.digest() == digest

    if journal is not None:
        for entry in run.episode_log:
            journal.note("chaos-episode", **entry)
        for event in run.group.failovers:
            journal.note("failover", **event)
        journal.note(
            "chaos-report",
            digest=digest,
            invariants={k: v for k, v in invariants.items()},
            failover_windows=windows,
            availability_bound=bound,
            unavailable_seconds=run.group.summary()["unavailable_seconds"],
        )

    return ChaosReport(
        config=config,
        schedule=schedule,
        episodes=run.episode_log,
        fleet=run.group.summary(),
        hedging=run.reader.summary(),
        audit=audit,
        failover_windows=windows,
        availability_bound=bound,
        promotions=run.controller.promotions,
        digest=digest,
        read_p99=run.read_p99(),
        unhedged_read_p99=unhedged_p99,
        invariants=invariants,
    )


def chaos_soak(
    seeds: Sequence[int],
    scenario: str = "mixed",
    journal=None,
    compare_hedging: bool = False,
    **config_kwargs,
) -> List[ChaosReport]:
    """Run one chaos schedule per seed; reports in seed order."""
    reports = []
    for seed in seeds:
        config = ChaosConfig(seed=seed, scenario=scenario, **config_kwargs)
        reports.append(run_chaos(config, journal=journal,
                                 compare_hedging=compare_hedging))
    return reports


def chaos_fault_grid(configs, seed: int = 0,
                     kinds: Sequence[str] = ("crash", "brownout", "storm")):
    """Attach one reproducible simulation fault to every sweep config.

    For chaos-under-sweep testing (journal resume after an interrupted
    chaos sweep): each :class:`~repro.core.experiment.ExperimentConfig`
    gains one fault drawn from a named stream under *seed*, so two calls
    with the same arguments produce byte-identical fault tuples — and
    therefore identical config digests and journal ``chaos`` notes.
    Only single-engine-injectable kinds are allowed (the sweep path runs
    one engine per point, so ``partition`` has no meaning there).
    """
    import dataclasses

    allowed = {"crash", "brownout", "storm"}
    bad = set(kinds) - allowed
    if bad:
        raise FaultInjectionError(
            f"sweep-injectable chaos kinds are {sorted(allowed)}; got {sorted(bad)}"
        )
    if not kinds:
        raise FaultInjectionError("chaos_fault_grid needs at least one kind")
    rng = RandomStreams(seed).fork("chaos-sweep").get("faults")
    out = []
    for config in configs:
        kind = kinds[int(rng.integers(len(kinds)))]
        at = float(rng.uniform(0.2, 0.5)) * config.duration
        length = float(rng.uniform(0.1, 0.3)) * config.duration
        if kind == "crash":
            spec: FaultSpec = CrashPoint(at=at)
        elif kind == "brownout":
            spec = StorageBrownout(start=at, duration=length,
                                   read_factor=0.2, write_factor=0.5,
                                   latency_factor=4.0)
        else:
            spec = GrantStorm(at=at, queries=4, pool_fraction=0.2,
                              hold_seconds=length)
        out.append(dataclasses.replace(config,
                                       faults=config.faults + (spec,)))
    return out
