"""Query admission policies (§10's third research question).

    "In a concurrent stream, is it better to immediately start executing
     queries even with limited resources, or delay them till others
     finish and free up resources?"

:func:`compare_admission_policies` is the original two-point comparison
(all streams at once vs one stream with the full machine).

:func:`sweep_admission_policies` generalizes it into the overload study:
three admission policies, each swept across stream *oversubscription*
levels relative to the query-memory pool's natural concurrency (the
default 25% per-query cap fits exactly four cap-sized grants, so four
streams are "1x"):

* **immediate** — overload protection off: every query is admitted
  unconditionally with whatever grant the cap allows (the seed
  behavior; memory pressure shows up only as spills);
* **serialized** — ``grant_percent=100`` plus grant queueing: a
  memory-hungry query takes the whole pool and the RESOURCE_SEMAPHORE
  queue serializes the rest behind it ("delay them till others finish
  and free up resources", with no deadline);
* **queued** — grant queueing with a timeout: waiters that exceed
  ``grant_timeout_s`` degrade to whatever memory is free and spill (the
  middle ground SQL Server actually ships).

Every point is driven through the normal experiment harness, so plan
adaptation, grants, and the buffer-pool coupling all participate —
exactly the interactions the paper argues make the question non-trivial
(runtime DOP and memory are expensive to change once a query starts).

The sweep's headline invariant is *monotone graceful degradation*:
per-stream throughput must never increase with oversubscription, and
the run must complete without unhandled exceptions at every level.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.backends import DEFAULT_BACKEND
from repro.core.experiment import ExperimentConfig, Experiment
from repro.core.knobs import ResourceAllocation
from repro.core.measurement import Measurement
from repro.core.sweeps import duration_for
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class AdmissionComparison:
    """Throughput of the two policies on the same workload."""

    workload: str
    scale_factor: int
    streams: int
    immediate_qps: float
    serialized_qps: float

    @property
    def immediate_wins(self) -> bool:
        return self.immediate_qps >= self.serialized_qps

    @property
    def advantage(self) -> float:
        """Relative QPS advantage of the better policy."""
        lo = min(self.immediate_qps, self.serialized_qps)
        hi = max(self.immediate_qps, self.serialized_qps)
        if lo <= 0:
            return float("inf")
        return hi / lo - 1.0


def compare_admission_policies(
    scale_factor: int,
    streams: int = 3,
    duration_scale: float = 1.0,
    seed: int = 0,
) -> AdmissionComparison:
    """Run both policies for TPC-H at one scale factor.

    The serialized policy runs a single stream for the same total
    simulated time; since a lone stream holds the whole machine, its QPS
    is directly comparable (queries completed per second of wall time).
    """
    duration = duration_for("tpch", scale_factor, duration_scale)
    immediate = Experiment(
        ExperimentConfig(
            workload="tpch", scale_factor=scale_factor, duration=duration,
            seed=seed, workload_kwargs={"streams": streams},
        )
    ).run()
    serialized = Experiment(
        ExperimentConfig(
            workload="tpch", scale_factor=scale_factor, duration=duration,
            seed=seed, workload_kwargs={"streams": 1},
        )
    ).run()
    return AdmissionComparison(
        workload="tpch",
        scale_factor=scale_factor,
        streams=streams,
        immediate_qps=immediate.primary_metric,
        serialized_qps=serialized.primary_metric,
    )


# -- the oversubscription sweep -------------------------------------------------

POLICY_IMMEDIATE = "immediate"
POLICY_SERIALIZED = "serialized"
POLICY_QUEUED = "queued"

#: Policies accepted by :func:`sweep_admission_policies`.
ADMISSION_POLICIES = (POLICY_IMMEDIATE, POLICY_SERIALIZED, POLICY_QUEUED)

#: Streams at 1x oversubscription: the default pool (25% per-query cap)
#: admits exactly four cap-sized grants concurrently.
BASE_STREAMS = 4

#: Default oversubscription ladder (1x, 4x, 16x the pool's capacity).
DEFAULT_OVERSUBSCRIPTION = (1, 4, 16)


def allocation_for_policy(
    policy: str, grant_timeout_s: float = 30.0
) -> ResourceAllocation:
    """The resource allocation that implements one admission policy."""
    if policy == POLICY_IMMEDIATE:
        return ResourceAllocation()
    if policy == POLICY_SERIALIZED:
        # The whole pool per query; the (unbounded, deadline-free) grant
        # queue then serializes every memory-hungry query.
        return ResourceAllocation(grant_percent=100.0, max_queue_depth=2 ** 20)
    if policy == POLICY_QUEUED:
        return ResourceAllocation(grant_timeout_s=grant_timeout_s)
    raise ConfigurationError(
        f"admission policy must be one of {ADMISSION_POLICIES}, got {policy!r}"
    )


@dataclass(frozen=True)
class AdmissionPolicyPoint:
    """One (policy, oversubscription) grid point of the overload sweep."""

    policy: str
    oversubscription: int
    streams: int
    qps: float
    grant_waits: int
    grant_wait_seconds: float
    grant_timeouts: int
    grant_degrades: int
    grant_queue_peak: int

    @property
    def per_stream_qps(self) -> float:
        """Throughput one closed-loop client actually experienced."""
        return self.qps / self.streams


@dataclass(frozen=True)
class AdmissionPolicySweep:
    """The full policy x oversubscription grid, plus its invariant."""

    workload: str
    scale_factor: int
    duration: float
    points: Tuple[AdmissionPolicyPoint, ...]
    #: Engine personality the grid ran on (or "router:<policy>").
    backend: str = DEFAULT_BACKEND

    def points_for(self, policy: str) -> Tuple[AdmissionPolicyPoint, ...]:
        return tuple(
            sorted(
                (p for p in self.points if p.policy == policy),
                key=lambda p: p.oversubscription,
            )
        )

    def monotone_degradation(self, policy: str = "") -> bool:
        """True when per-stream throughput never *increases* with
        oversubscription — the graceful-degradation invariant.  With no
        *policy* given, every swept policy must satisfy it."""
        policies = (policy,) if policy else {p.policy for p in self.points}
        for name in policies:
            ladder = self.points_for(name)
            for earlier, later in zip(ladder, ladder[1:]):
                if later.per_stream_qps > earlier.per_stream_qps * (1 + 1e-9):
                    return False
        return True


def _sweep_point(
    policy: str,
    oversubscription: int,
    scale_factor: int,
    base_streams: int,
    duration: float,
    seed: int,
    grant_timeout_s: float,
    backend: str = DEFAULT_BACKEND,
    router: Optional[str] = None,
    router_backends: Tuple[str, ...] = (),
) -> AdmissionPolicyPoint:
    streams = base_streams * oversubscription
    measurement: Measurement = Experiment(
        ExperimentConfig(
            workload="tpch",
            scale_factor=scale_factor,
            allocation=allocation_for_policy(policy, grant_timeout_s),
            duration=duration,
            seed=seed,
            workload_kwargs={"streams": streams},
            backend=backend,
            router=router,
            router_backends=tuple(router_backends),
        )
    ).run()
    return AdmissionPolicyPoint(
        policy=policy,
        oversubscription=oversubscription,
        streams=streams,
        qps=measurement.primary_metric,
        grant_waits=int(measurement.grant_waits),
        grant_wait_seconds=measurement.grant_wait_seconds,
        grant_timeouts=int(measurement.grant_timeouts),
        grant_degrades=int(measurement.grant_degrades),
        grant_queue_peak=int(measurement.grant_queue_peak),
    )


def sweep_admission_policies(
    scale_factor: int = 100,
    oversubscription: Sequence[int] = DEFAULT_OVERSUBSCRIPTION,
    policies: Sequence[str] = ADMISSION_POLICIES,
    base_streams: int = BASE_STREAMS,
    duration_scale: float = 0.4,
    seed: int = 0,
    grant_timeout_s: float = 30.0,
    backend: str = DEFAULT_BACKEND,
    router: Optional[str] = None,
    router_backends: Tuple[str, ...] = (),
) -> AdmissionPolicySweep:
    """Run the §10-style overload grid: policies x oversubscription.

    Levels must be positive and are swept in ascending order so the
    returned points line up with the monotone-degradation ladder.
    ``backend``/``router`` re-target the whole grid at an engine
    personality or a routed fleet (the cross-backend overload study
    behind ``repro route admission``).
    """
    levels = sorted(set(int(level) for level in oversubscription))
    if not levels or levels[0] < 1:
        raise ConfigurationError("oversubscription levels must be >= 1")
    for policy in policies:
        if policy not in ADMISSION_POLICIES:
            raise ConfigurationError(
                f"admission policy must be one of {ADMISSION_POLICIES}, "
                f"got {policy!r}"
            )
    duration = duration_for("tpch", scale_factor, duration_scale)
    points = tuple(
        _sweep_point(policy, level, scale_factor, base_streams, duration,
                     seed, grant_timeout_s, backend=backend, router=router,
                     router_backends=router_backends)
        for policy in policies
        for level in levels
    )
    return AdmissionPolicySweep(
        workload="tpch",
        scale_factor=scale_factor,
        duration=duration,
        points=points,
        backend=("router:" + router) if router is not None else backend,
    )
