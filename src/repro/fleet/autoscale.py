"""Deterministic sim-clock autoscaler for the fleet cluster.

The control loop is the one production autoscalers run: sample load
signals on a fixed evaluation interval, scale out when the fleet is hot,
scale in when it is cold, and respect a cooldown so one burst does not
slosh capacity up and down.  Two signals drive it, both taken from the
layers the earlier PRs built:

* **queue depth** — mean in-flight transactions per ready shard as a
  fraction of the shard's admission capacity (the same bound the
  priority shedder enforces), and
* **grant wait** — the per-interval growth of RESOURCE_SEMAPHORE wait
  time summed across shard engines (:mod:`repro.engine.semaphore`):
  memory-grant queueing is the engine-side overload symptom that shows
  up *before* latency collapses, and
* **sheds** — requests refused per interval by the priority shedder.
  Bursty arrivals clump: a flash crowd can shed hard between samples
  while mean concurrency at the sampling instants still looks calm, so
  refusals are the signal that catches what queue depth misses.

Scale-out is not free: a new shard pays the serverless personality's
cold-start delay (:data:`~repro.backends.serverless.COLD_START_SECONDS`
by default) before it takes traffic, so the *reaction time* — overload
onset to first new-capacity-ready — is a first-class output
(:meth:`Autoscaler.reaction_seconds`).

Everything is a pure function of the simulated clock and the cluster's
deterministic state: no wall clock, no RNG.  The same trace and seed
produce bit-identical scaling decisions at any ``jobs`` count, which the
seed-invariance property test locks in.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List, Optional

from repro.backends.serverless import COLD_START_SECONDS
from repro.errors import ConfigurationError
from repro.sim.process import Timeout


@dataclass(frozen=True)
class AutoscalePolicy:
    """Thresholds and timing of the scaling control loop (hashable, so
    it rides on :class:`~repro.fleet.cluster.FleetSpec` and into
    digests)."""

    min_shards: int = 1
    max_shards: int = 16
    interval_s: float = 1.0         #: evaluation cadence
    high_watermark: float = 0.75    #: mean in-flight fraction to scale out
    low_watermark: float = 0.20     #: mean in-flight fraction to scale in
    #: per-interval grant-wait growth (seconds) that also counts as hot
    grant_wait_high_s: float = 0.05
    #: sheds per interval that also count as hot (refused work is the
    #: bluntest possible overload evidence)
    shed_high: int = 1
    cooldown_s: float = 5.0         #: minimum gap between decisions
    cold_start_s: float = COLD_START_SECONDS

    def __post_init__(self):
        if self.min_shards < 1 or self.max_shards < self.min_shards:
            raise ConfigurationError("bad autoscaler shard bounds")
        if self.interval_s <= 0 or self.cooldown_s < 0:
            raise ConfigurationError("bad autoscaler timing")
        if self.shed_high < 1:
            raise ConfigurationError("shed_high must be >= 1")
        if not 0.0 <= self.low_watermark < self.high_watermark:
            raise ConfigurationError(
                "watermarks must satisfy 0 <= low < high"
            )


@dataclass(frozen=True)
class ScalingDecision:
    """One scale-out/in action and the signals that triggered it."""

    at: float
    action: str                     #: "out" | "in"
    shards_before: int
    shards_after: int
    queue_signal: float             #: mean in-flight fraction sampled
    grant_wait_signal: float        #: grant-wait delta over the interval
    shed_signal: int                #: sheds over the interval
    ready_at: float                 #: when the new capacity takes traffic
                                    #: (== at for scale-in)

    def payload(self) -> Dict[str, object]:
        return {
            "at": self.at,
            "action": self.action,
            "shards_before": self.shards_before,
            "shards_after": self.shards_after,
            "queue_signal": self.queue_signal,
            "grant_wait_signal": self.grant_wait_signal,
            "shed_signal": self.shed_signal,
            "ready_at": self.ready_at,
        }


class Autoscaler:
    """The control loop; duck-typed over
    :class:`~repro.fleet.cluster.FleetCluster` (needs ``ready_shards()``,
    ``active_count()``, ``scale_out(ready_at)``, ``scale_in()``,
    ``capacity_per_shard``, ``total_grant_wait_seconds()``,
    ``total_sheds()``)."""

    def __init__(self, cluster, policy: AutoscalePolicy):
        self.cluster = cluster
        self.policy = policy
        self.decisions: List[ScalingDecision] = []
        #: First sim time the hot condition was observed (None if never).
        self.overload_onset: Optional[float] = None
        self._sim = cluster.sim
        self._last_action = -float("inf")
        self._last_grant_wait = 0.0
        self._last_sheds = 0
        #: Onset-to-capacity-ready latency of the *first* scale-out,
        #: captured at decision time (the live ``overload_onset`` resets
        #: once the fleet cools, so it cannot be recovered post hoc).
        self._first_reaction: Optional[float] = None

    def install(self) -> None:
        self._sim.spawn(self._run(), name="autoscaler")

    # -- control loop ------------------------------------------------------------

    def _signals(self):
        ready = self.cluster.ready_shards()
        if ready:
            in_flight = sum(s.in_flight for s in ready)
            queue = in_flight / (len(ready) * self.cluster.capacity_per_shard)
        else:
            queue = 1.0  # all capacity cold: maximally hot by definition
        total_wait = self.cluster.total_grant_wait_seconds()
        grant_delta = total_wait - self._last_grant_wait
        self._last_grant_wait = total_wait
        total_sheds = self.cluster.total_sheds()
        shed_delta = total_sheds - self._last_sheds
        self._last_sheds = total_sheds
        return queue, grant_delta, shed_delta

    def _run(self) -> Generator:
        policy = self.policy
        while True:
            yield Timeout(policy.interval_s)
            queue, grant_delta, shed_delta = self._signals()
            hot = (queue >= policy.high_watermark
                   or grant_delta >= policy.grant_wait_high_s
                   or shed_delta >= policy.shed_high)
            cold = (queue <= policy.low_watermark
                    and grant_delta < policy.grant_wait_high_s
                    and shed_delta == 0)
            if hot and self.overload_onset is None:
                self.overload_onset = self._sim.now
            if not hot:
                self.overload_onset = None if cold else self.overload_onset
            now = self._sim.now
            if now - self._last_action < policy.cooldown_s:
                continue
            active = self.cluster.active_count()
            if hot and active < policy.max_shards:
                ready_at = now + policy.cold_start_s
                if self._first_reaction is None and self.overload_onset is not None:
                    self._first_reaction = ready_at - self.overload_onset
                self.cluster.scale_out(ready_at=ready_at)
                self._record("out", active, active + 1, queue, grant_delta,
                             shed_delta, ready_at)
            elif cold and active > policy.min_shards:
                self.cluster.scale_in()
                self._record("in", active, active - 1, queue, grant_delta,
                             shed_delta, now)

    def _record(self, action: str, before: int, after: int,
                queue: float, grant_delta: float, shed_delta: int,
                ready_at: float) -> None:
        self._last_action = self._sim.now
        self.decisions.append(ScalingDecision(
            at=self._sim.now, action=action, shards_before=before,
            shards_after=after, queue_signal=queue,
            grant_wait_signal=grant_delta, shed_signal=shed_delta,
            ready_at=ready_at,
        ))

    # -- reporting ---------------------------------------------------------------

    def reaction_seconds(self, since: Optional[float] = None) -> Optional[float]:
        """Overload onset (or *since*) to the first scale-out's capacity
        becoming ready — cold start included, because capacity that is
        still provisioning absorbs no load.  None if it never scaled."""
        if since is None:
            return self._first_reaction
        for decision in self.decisions:
            if decision.action == "out" and decision.at >= since:
                return decision.ready_at - since
        return None

    def summary(self) -> Dict[str, object]:
        return {
            "decisions": [d.payload() for d in self.decisions],
            "scale_outs": sum(1 for d in self.decisions if d.action == "out"),
            "scale_ins": sum(1 for d in self.decisions if d.action == "in"),
            "overload_onset": self.overload_onset,
            "reaction_seconds": self._first_reaction,
        }
