"""Tests for the DP join-ordering search strategy."""

import pytest

from repro.engine.bufferpool import BufferPool
from repro.engine.optimizer.optimizer import Optimizer, PlanningContext
from repro.engine.plan.validation import assert_valid
from repro.engine.schemas import build_tpch
from repro.errors import PlanningError
from repro.units import GIB
from repro.workloads.tpch import TPCH_QUERIES, tpch_query


def optimizer_for(strategy, sf=100, max_dop=32):
    db = build_tpch(sf)
    pool = BufferPool(db, server_memory_bytes=64 * GIB)
    return Optimizer(PlanningContext(
        database=db, buffer_pool=pool, max_dop=max_dop,
        search_strategy=strategy,
    ))


class TestDpSearch:
    def test_dp_never_worse_than_greedy(self):
        greedy = optimizer_for("greedy")
        dp = optimizer_for("dp")
        for number in TPCH_QUERIES:
            spec = tpch_query(number, 100)
            g = greedy.optimize(spec)
            d = dp.optimize(spec)
            assert d.estimated_elapsed_cost <= g.estimated_elapsed_cost * 1.0001, \
                (number, d.estimated_elapsed_cost, g.estimated_elapsed_cost)

    def test_dp_plans_are_valid(self):
        dp = optimizer_for("dp")
        for number in (3, 8, 9, 20, 21):
            optimized = dp.optimize(tpch_query(number, 100))
            assert_valid(optimized.plan)
            assert set(optimized.plan.tables_touched()) == {
                ref.alias for ref in optimized.spec.tables
            }

    def test_dp_serial_choices_preserved(self):
        """The cost-threshold decision is search-strategy independent for
        the §7 insensitive queries (their serial plans are already
        optimal under both searches)."""
        dp = optimizer_for("dp", sf=10)
        for number in (2, 6, 14, 15, 20):
            assert dp.optimize(tpch_query(number, 10)).dop == 1, number

    def test_unknown_strategy_rejected(self):
        bad = optimizer_for("simulated-annealing")
        with pytest.raises(PlanningError):
            bad.optimize(tpch_query(1, 100))

    def test_single_table_query(self):
        dp = optimizer_for("dp")
        optimized = dp.optimize(tpch_query(1, 100))
        assert optimized.plan.join_count() == 0
