"""Tests for LLC/CAT semantics and miss-ratio curves."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import AllocationError, ConfigurationError
from repro.hardware.cache import CosBitmask, LastLevelCache
from repro.hardware.mrc import MissRatioCurve, WorkingSetComponent
from repro.units import MIB


class TestCosBitmask:
    def test_lowest_ways(self):
        mask = CosBitmask.lowest_ways(3, 20)
        assert mask.mask == 0b111
        assert mask.num_ways == 3

    def test_contiguous_masks_accepted(self):
        CosBitmask(mask=0b1110, num_ways_total=20)

    def test_noncontiguous_rejected(self):
        with pytest.raises(AllocationError):
            CosBitmask(mask=0b1011, num_ways_total=20)

    def test_zero_rejected(self):
        with pytest.raises(AllocationError):
            CosBitmask(mask=0, num_ways_total=20)

    def test_too_wide_rejected(self):
        with pytest.raises(AllocationError):
            CosBitmask(mask=(1 << 21) - 1, num_ways_total=20)


class TestLastLevelCache:
    def test_paper_geometry(self):
        llc = LastLevelCache()
        assert llc.total_size == 40 * MIB
        assert llc.way_size_per_socket == 1 * MIB
        assert llc.allocation_granularity == 2 * MIB

    def test_allocation_in_2mb_steps(self):
        llc = LastLevelCache()
        llc.set_allocation_mb_total(10)
        assert llc.allocated_bytes() == 10 * MIB

    def test_full_allocation_default(self):
        llc = LastLevelCache()
        assert llc.allocated_bytes() == 40 * MIB

    def test_odd_allocation_rejected(self):
        llc = LastLevelCache()
        with pytest.raises(AllocationError):
            llc.set_allocation_mb_total(3)

    def test_superset_growth_masks(self):
        llc = LastLevelCache()
        masks = []
        for mb in (2, 4, 6, 8):
            llc.set_allocation_mb_total(mb)
            masks.append(llc.cat.mask(0).mask)
        assert masks == [0b1, 0b11, 0b111, 0b1111]
        # Each mask is a superset of the previous one (paper methodology).
        for smaller, larger in zip(masks, masks[1:]):
            assert smaller & larger == smaller

    def test_residual_warm_space_counts_toward_effective(self):
        llc = LastLevelCache()
        llc.set_allocation_mb_total(2)
        llc.warm_outside_mask(0.5)
        assert llc.effective_bytes() == 2 * MIB + (38 * MIB) // 2
        llc.reboot()
        assert llc.effective_bytes() == 2 * MIB


def simple_mrc():
    return MissRatioCurve(
        [
            WorkingSetComponent("hot", footprint_bytes=4 * MIB, accesses_per_ki=30.0),
            WorkingSetComponent("warm", footprint_bytes=16 * MIB, accesses_per_ki=10.0),
            WorkingSetComponent(
                "stream", footprint_bytes=float("inf"), accesses_per_ki=2.0
            ),
        ]
    )


class TestMissRatioCurve:
    def test_zero_allocation_misses_everything(self):
        mrc = simple_mrc()
        assert mrc.mpki(0) == pytest.approx(42.0)

    def test_full_allocation_only_streaming_misses(self):
        mrc = simple_mrc()
        assert mrc.mpki(100 * MIB) == pytest.approx(2.0)

    def test_knee_when_hot_set_fits(self):
        mrc = simple_mrc()
        # Slope below the 4 MiB knee is much steeper than above it.
        steep = mrc.mpki(0) - mrc.mpki(4 * MIB)
        shallow = mrc.mpki(4 * MIB) - mrc.mpki(8 * MIB)
        assert steep > 4 * shallow

    def test_knees_reported(self):
        assert simple_mrc().knee_bytes() == (4 * MIB, 20 * MIB)

    def test_footprint_scale_increases_misses(self):
        mrc = simple_mrc()
        assert mrc.mpki(8 * MIB, footprint_scale=2.0) > mrc.mpki(8 * MIB)

    def test_hit_ratio_complements_mpki(self):
        mrc = simple_mrc()
        alloc = 10 * MIB
        assert mrc.hit_ratio(alloc) == pytest.approx(
            1 - mrc.mpki(alloc) / mrc.total_accesses_per_ki()
        )

    def test_reuse_efficiency_caps_hits(self):
        mrc = MissRatioCurve(
            [WorkingSetComponent("x", footprint_bytes=MIB, accesses_per_ki=10.0,
                                 reuse_efficiency=0.9)]
        )
        assert mrc.mpki(10 * MIB) == pytest.approx(1.0)

    def test_empty_components_rejected(self):
        with pytest.raises(ConfigurationError):
            MissRatioCurve([])

    def test_bad_component_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkingSetComponent("bad", footprint_bytes=-1, accesses_per_ki=1.0)

    @given(st.integers(min_value=0, max_value=64 * MIB))
    def test_mpki_monotone_nonincreasing(self, alloc):
        mrc = simple_mrc()
        assert mrc.mpki(alloc + MIB) <= mrc.mpki(alloc) + 1e-9

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=1024, max_value=float(64 * MIB)),
                st.floats(min_value=0.0, max_value=100.0),
            ),
            min_size=1,
            max_size=8,
        ),
        st.integers(min_value=0, max_value=128 * MIB),
    )
    def test_mpki_bounded_by_total_accesses(self, comps, alloc):
        mrc = MissRatioCurve(
            [
                WorkingSetComponent(f"c{i}", footprint_bytes=fp, accesses_per_ki=acc)
                for i, (fp, acc) in enumerate(comps)
            ]
        )
        assert 0.0 <= mrc.mpki(alloc) <= mrc.total_accesses_per_ki() + 1e-9


class TestVectorizedMrc:
    """mpki_array / hit_ratio_array against the scalar reference."""

    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=float(256 * MIB)),
            min_size=1, max_size=64,
        ),
        st.floats(min_value=0.25, max_value=4.0),
    )
    def test_mpki_array_matches_scalar(self, allocations, scale):
        import numpy as np
        mrc = simple_mrc()
        vector = mrc.mpki_array(np.asarray(allocations), footprint_scale=scale)
        scalar = [mrc.mpki(a, footprint_scale=scale) for a in allocations]
        assert np.allclose(vector, scalar, rtol=1e-12, atol=1e-12)

    def test_hit_ratio_array_matches_scalar(self):
        import numpy as np
        mrc = simple_mrc()
        allocations = np.linspace(0, 64 * MIB, 257)
        vector = mrc.hit_ratio_array(allocations)
        scalar = [mrc.hit_ratio(a) for a in allocations]
        assert np.allclose(vector, scalar, rtol=1e-12, atol=1e-12)

    def test_array_shape_is_preserved(self):
        import numpy as np
        mrc = simple_mrc()
        grid = np.linspace(0, 32 * MIB, 12).reshape(3, 4)
        assert mrc.mpki_array(grid).shape == (3, 4)

    def test_knee_bytes_is_cached_tuple(self):
        mrc = simple_mrc()
        knees = mrc.knee_bytes()
        assert isinstance(knees, tuple)
        assert mrc.knee_bytes() is knees

    def test_component_pickle_round_trip(self):
        """Old pickles (without the memoized density) must still load."""
        import pickle
        component = WorkingSetComponent("hot", 4 * MIB, 30.0)
        clone = pickle.loads(pickle.dumps(component))
        assert clone == component
        assert clone.access_density() == component.access_density()
