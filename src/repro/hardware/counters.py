"""PCM / iostat style performance counter sampling.

The paper collects DRAM read/write bandwidth, LLC misses, and instructions
retired with the Processor Counter Monitor, and SSD bandwidth with iostat,
all "average values taken over 1-second intervals" (§3).  This module
samples cumulative totals exposed by a :class:`CounterSource` once per
simulated second and keeps the interval-rate series, from which means
(Figs 2, 3) and CDFs (Fig 4) are derived.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Protocol

import numpy as np

from repro.sim.process import Simulator, Timeout
from repro.sim.stats import Cdf


class CounterSource(Protocol):
    """Anything that exposes monotonically non-decreasing totals."""

    def counter_totals(self) -> Dict[str, float]:
        """Current cumulative totals keyed by counter name.

        Must return a *fresh* dict per call (every implementation in this
        repo builds one): the sampler keeps the returned mapping as its
        previous-tick snapshot instead of copying it every interval.
        """
        ...  # pragma: no cover


#: Canonical counter names (values are cumulative totals).
INSTRUCTIONS = "instructions_retired"
LLC_MISSES = "llc_misses"
DRAM_READ_BYTES = "dram_read_bytes"
DRAM_WRITE_BYTES = "dram_write_bytes"
SSD_READ_BYTES = "ssd_read_bytes"
SSD_WRITE_BYTES = "ssd_write_bytes"

ALL_COUNTERS = (
    INSTRUCTIONS,
    LLC_MISSES,
    DRAM_READ_BYTES,
    DRAM_WRITE_BYTES,
    SSD_READ_BYTES,
    SSD_WRITE_BYTES,
)


@dataclass
class CounterSeries:
    """Per-interval rates for every counter, plus derived metrics."""

    interval: float = 1.0
    rates: Dict[str, List[float]] = field(default_factory=dict)

    def append(self, name: str, rate: float) -> None:
        self.rates.setdefault(name, []).append(rate)

    def series(self, name: str) -> List[float]:
        return list(self.rates.get(name, []))

    def _array(self, name: str):
        """Memoized float64 view of one rate series.

        A one-hour simulated run rolls up thousands of intervals per
        counter, and report generation queries the same means and MPKIs
        per measurement many times over.  The list-to-array conversion is
        paid once per series length (appends only grow the lists, so the
        length keys the cache); the cache is deliberately kept out of
        ``__getstate__`` so pickled measurements carry only the rates.
        """
        values = self.rates.get(name)
        if not values:
            return None
        cache = self.__dict__.setdefault("_np_cache", {})
        arr = cache.get(name)
        if arr is None or len(arr) != len(values):
            arr = np.asarray(values, dtype=np.float64)
            cache[name] = arr
        return arr

    def __getstate__(self):
        return {"interval": self.interval, "rates": self.rates}

    def __setstate__(self, state):
        self.interval = state["interval"]
        self.rates = state["rates"]

    def mean(self, name: str) -> float:
        """Run-average rate (array reduction over the memoized series)."""
        arr = self._array(name)
        if arr is None:
            return 0.0
        return float(arr.sum()) / len(arr)

    def cdf(self, name: str) -> Cdf:
        return Cdf(self.rates.get(name, []))

    def percentile(self, name: str, p: float) -> float:
        """Rate percentile over the run's intervals (0-100 scale).

        ``percentile(name, 99.9)`` is the p999 rollup: the Fig 4 CDF
        story extended into the far tail, where transient bandwidth
        spikes live.  0.0 when the counter has no samples.
        """
        arr = self._array(name)
        if arr is None:
            return 0.0
        return float(np.percentile(arr, p))

    def p999(self, name: str) -> float:
        """The 99.9th-percentile interval rate (tail-of-tail rollup)."""
        return self.percentile(name, 99.9)

    def mean_mpki(self) -> float:
        """Misses per kilo-instruction over the whole run."""
        instructions_arr = self._array(INSTRUCTIONS)
        misses_arr = self._array(LLC_MISSES)
        instructions = float(instructions_arr.sum()) if instructions_arr is not None else 0.0
        misses = float(misses_arr.sum()) if misses_arr is not None else 0.0
        if instructions <= 0:
            return 0.0
        return 1000.0 * misses / instructions


class CounterSampler:
    """A simulation process sampling a :class:`CounterSource` every second."""

    def __init__(self, sim: Simulator, source: CounterSource, interval: float = 1.0):
        self._sim = sim
        self._source = source
        self.series = CounterSeries(interval=interval)
        self._last_totals = dict(source.counter_totals())
        self._process = sim.spawn(self._run(), name="counter-sampler")

    def _run(self) -> Generator:
        # This fires once per simulated second for the whole run, so the
        # loop body is kept lean: the per-counter lists are appended to
        # directly, and the fresh totals dict (see CounterSource) becomes
        # the next snapshot without an intermediate copy.
        interval = self.series.interval
        rates = self.series.rates
        last = self._last_totals
        while True:
            yield Timeout(interval)
            totals = self._source.counter_totals()
            for name, value in totals.items():
                bucket = rates.get(name)
                if bucket is None:
                    bucket = rates.setdefault(name, [])
                bucket.append((value - last.get(name, 0.0)) / interval)
            last = self._last_totals = totals

    def stop(self) -> None:
        self._process.interrupt()
