"""The ``elastic-serverless`` personality: autoscaled, pay-per-use engine.

Models a serverless SQL pool (Aurora Serverless / SQL DB serverless
style) on the same simulated hardware:

* **Cold starts.**  A request arriving after the instance has been idle
  longer than the keepalive pays a provisioning delay before anything
  executes — the latency cliff "Understanding Cloud Workloads
  Performance in a Production-like Environment" (PAPERS.md) attributes
  to on-demand capacity.
* **Per-query autoscaled cores.**  Instead of running every query at the
  allocation's MAXDOP, the engine sizes DOP to the *serial cost
  estimate*: roughly one core per second of single-core work, clamped to
  the governor cap.  Cheap queries run serial (no parallel-startup tax);
  only genuinely large queries fan out.
* **Pay-per-grant memory, aggressive spill.**  The grant percentage is
  capped low and grant waits time out within seconds into the degraded
  (spill) path — the provider would rather spill your sort than hold
  capacity.  Billing counters (core-seconds, grant-byte-seconds, cold
  starts) accumulate on the engine and surface through
  :meth:`ServerlessEngine.billing_summary`.
"""

from __future__ import annotations

import math
from dataclasses import replace
from typing import TYPE_CHECKING, Generator

from repro.backends.base import (
    BackendResourceProfile,
    EngineBackend,
    register_backend,
)
from repro.engine.engine import SqlEngine
from repro.engine.executor import TransactionDemand
from repro.engine.optimizer.queryspec import QuerySpec
from repro.engine.resource_governor import ResourceGovernor
from repro.sim.process import Timeout
from repro.units import MB

if TYPE_CHECKING:  # pragma: no cover - hint-only (avoids a repro.core cycle)
    from repro.core.knobs import ResourceAllocation

#: Provisioning delay for a cold instance (first request, or idle past
#: the keepalive).
COLD_START_SECONDS = 0.25

#: How long the instance stays warm after its last request.
KEEPALIVE_SECONDS = 60.0

#: Autoscale target: one core per this many serial cost units (~1 second
#: of single-core work at the calibrated instructions-per-cost-unit).
AUTOSCALE_COST_PER_CORE = 2.0e6

#: Serverless grant policy: small grants, fast timeout, degrade (spill).
MAX_GRANT_PERCENT = 10.0
DEFAULT_GRANT_TIMEOUT_S = 5.0
DEFAULT_SMALL_QUERY_BYPASS_BYTES = 1 * MB


class ServerlessEngine(SqlEngine):
    """A :class:`SqlEngine` with cold starts, autoscaled DOP, and metering."""

    def __init__(self, *args, cold_start_s: float = COLD_START_SECONDS,
                 keepalive_s: float = KEEPALIVE_SECONDS,
                 autoscale_cost_per_core: float = AUTOSCALE_COST_PER_CORE,
                 **kwargs):
        super().__init__(*args, **kwargs)
        self.cold_start_s = cold_start_s
        self.keepalive_s = keepalive_s
        self.autoscale_cost_per_core = autoscale_cost_per_core
        self._last_active = None  # sim timestamp of the last completion
        # -- billing meters --------------------------------------------------
        self.cold_starts = 0
        self.billed_core_seconds = 0.0
        self.billed_grant_byte_seconds = 0.0

    # -- provisioning ---------------------------------------------------------

    def _provision(self) -> Generator:
        """Generator: pay the cold-start delay if the instance is cold."""
        now = self.machine.sim.now
        if self._last_active is None or now - self._last_active > self.keepalive_s:
            self.cold_starts += 1
            yield Timeout(self.cold_start_s)
        return None

    def autoscale_dop(self, spec: QuerySpec) -> int:
        """Cores provisioned for one query: sized to its serial cost."""
        serial = self.optimize(spec, dop_hint=1)
        target = int(math.ceil(
            serial.serial_elapsed_cost / self.autoscale_cost_per_core
        ))
        return max(1, min(target, self.governor.max_dop,
                          len(self.machine.cpuset)))

    # -- execution ------------------------------------------------------------

    def run_query(self, spec: QuerySpec, dop_hint: int = 0) -> Generator:
        """Generator: provision, autoscale, admit, execute, meter."""
        yield from self._provision()
        dop = self.autoscale_dop(spec)
        if dop_hint > 0:
            dop = min(dop, dop_hint)
        optimized = self.optimize(spec, dop_hint=dop)
        ticket = yield from self.semaphore.acquire(
            optimized.required_memory_bytes, name=spec.name
        )
        try:
            demand = self.executor.demand_for_query(optimized, ticket.grant)
            result = yield from self.executor.execute_query(demand)
        finally:
            self.semaphore.release(ticket)
        result.grant_wait = ticket.waited
        self._last_active = self.machine.sim.now
        self.billed_core_seconds += result.elapsed * demand.dop
        self.billed_grant_byte_seconds += (
            ticket.grant.granted_bytes * result.elapsed
        )
        return result

    def run_transaction(self, demand: TransactionDemand) -> Generator:
        yield from self._provision()
        result = yield from self.executor.execute_transaction(demand)
        self._last_active = self.machine.sim.now
        self.billed_core_seconds += result.elapsed
        return result

    # -- metering -------------------------------------------------------------

    def billing_summary(self) -> dict:
        return {
            "cold_starts": float(self.cold_starts),
            "billed_core_seconds": self.billed_core_seconds,
            "billed_grant_byte_seconds": self.billed_grant_byte_seconds,
        }


@register_backend
class ElasticServerlessBackend(EngineBackend):
    """Serverless pool: elastic but cold-start-prone and spill-happy."""

    name = "elastic-serverless"
    description = (
        "serverless pool: cold starts, per-query autoscaled cores, "
        "pay-per-grant memory with fast timeout into the spill path"
    )
    engine_class = ServerlessEngine

    def governor_for(self, allocation: ResourceAllocation) -> ResourceGovernor:
        governor = super().governor_for(allocation)
        governor = replace(
            governor,
            grant_percent=min(governor.grant_percent, MAX_GRANT_PERCENT),
        )
        if governor.overload_protection_enabled:
            return governor  # the allocation chose its own policy
        return replace(
            governor,
            grant_timeout_s=DEFAULT_GRANT_TIMEOUT_S,
            small_query_bypass_bytes=DEFAULT_SMALL_QUERY_BYPASS_BYTES,
        )

    def resource_profile(self) -> BackendResourceProfile:
        return BackendResourceProfile(
            scan_bandwidth_score=0.8,
            point_lookup_score=0.7,
            parallel_efficiency=0.7,
            memory_elasticity=1.0,
            startup_seconds=COLD_START_SECONDS,
        )
