#!/usr/bin/env python3
"""Cloud SLO sizing from the nonlinear bandwidth response (the Fig 5 use
case), served interactively through the what-if API.

A DBaaS provider prices storage-bandwidth tiers.  A linear performance
model says: to reach a target QPS, buy bandwidth proportional to it.  The
paper shows the real response curve is concave, so the linear model
overbuys — here by the same ~20% the paper reports.

The original version of this example ran one full simulation per tier
per question.  This version sizes the same SLO through a
:class:`~repro.surrogate.serve.WhatIfServer`: a coarse seed sweep fills
the result cache, a surrogate trains on it, and every subsequent sizing
question is answered from cache-or-surrogate at interactive latency —
with simulation as the fallback of record, and every answer labelled
with its provenance.
"""

import tempfile

from repro.core import ResourceAllocation
from repro.core.analysis import linear_response_comparison
from repro.core.experiment import ExperimentConfig
from repro.core.report import format_series, format_table
from repro.core.resultcache import ResultCache
from repro.core.runner import run_supervised
from repro.surrogate import SurrogateModel, WhatIfServer, harvest
from repro.units import mb_per_s

#: Bandwidth tiers on offer (MB/s) and monthly prices (made-up units).
TIERS = [(200, 10), (400, 19), (600, 27), (800, 34), (1200, 48), (2500, 90)]

#: Tiers simulated up front to seed the corpus; the rest are what-ifs.
SEED_TIERS = (200, 600, 2500)

DURATION = 2500.0


def tier_config(limit_mb: float) -> ExperimentConfig:
    return ExperimentConfig(
        workload="tpch", scale_factor=300,
        allocation=ResourceAllocation(read_bw_limit=mb_per_s(limit_mb)),
        duration=DURATION,
    )


def main() -> None:
    cache = ResultCache(tempfile.mkdtemp(prefix="cloud-sizing-"))

    print(f"Seeding the corpus: simulating {len(SEED_TIERS)} of "
          f"{len(TIERS)} tiers (TPC-H SF=300, 3 streams)...")
    run_supervised([tier_config(limit) for limit in SEED_TIERS], cache=cache)

    model = SurrogateModel().fit(harvest(cache))
    server = WhatIfServer(model=model, cache=cache)

    print("Answering every tier through the what-if server:")
    answers = server.answer_many([tier_config(t[0]) for t in TIERS])
    for answer in answers:
        print("  " + answer.describe())
    print(f"  sources: {server.stats.summary()}")

    limits = [t[0] for t in TIERS]
    qps = [answer.primary_metric for answer in answers]
    print(format_series("limit_MB/s", limits, {"QPS": qps}))

    comparison = linear_response_comparison(limits, qps, probe_fraction=0.95)
    print(
        format_table(
            ["target QPS", "linear model buys", "curve needs", "savings"],
            [(
                f"{comparison.probe_performance:.3f}",
                f"{comparison.linear_bandwidth:.0f} MB/s",
                f"{comparison.actual_bandwidth:.0f} MB/s",
                f"{comparison.savings_fraction:.0%}",
            )],
            title="\nLinear model vs measured response",
        )
    )

    target = comparison.probe_performance
    for (limit, price), achieved in zip(TIERS, qps):
        if achieved >= target:
            print(
                f"\nCheapest tier meeting QPS >= {target:.3f}: "
                f"{limit} MB/s at price {price}"
            )
            break
    linear_tier = next(
        (t for t in TIERS if t[0] >= comparison.linear_bandwidth), TIERS[-1]
    )
    print(
        f"The linear model would have bought the {linear_tier[0]} MB/s tier "
        f"at price {linear_tier[1]}."
    )


if __name__ == "__main__":
    main()
