"""Autoscaler: seed invariance, reaction, cold starts, scale-in."""

from dataclasses import replace

import pytest

from repro.errors import ConfigurationError
from repro.fleet.autoscale import AutoscalePolicy
from repro.fleet.cluster import (
    FleetSpec,
    default_tenants,
    fleet_oversubscription_sweep,
    run_fleet,
)
from repro.workloads.arrivals import ArrivalSpec

#: A flash crowd against a deliberately small fleet: calm before and
#: after, a sharp overload window in the middle.
FLASH = FleetSpec(
    shards=2,
    duration=6.0,
    arrival=ArrivalSpec(offered_tps=250.0, trace="flash-crowd",
                        flash_at=0.4, flash_magnitude=8.0, flash_width=0.3),
    tenants=default_tenants(3),
    capacity_per_shard=8,
    autoscale=AutoscalePolicy(min_shards=2, max_shards=8, cooldown_s=1.0),
)


class TestPolicyValidation:
    def test_defaults_are_valid(self):
        AutoscalePolicy()

    def test_rejects_bad_settings(self):
        with pytest.raises(ConfigurationError):
            AutoscalePolicy(min_shards=0)
        with pytest.raises(ConfigurationError):
            AutoscalePolicy(min_shards=4, max_shards=2)
        with pytest.raises(ConfigurationError):
            AutoscalePolicy(interval_s=0.0)
        with pytest.raises(ConfigurationError):
            AutoscalePolicy(low_watermark=0.8, high_watermark=0.5)
        with pytest.raises(ConfigurationError):
            AutoscalePolicy(shed_high=0)


class TestScalingBehavior:
    @pytest.fixture(scope="class")
    def report(self):
        return run_fleet(FLASH)

    def test_flash_crowd_triggers_scale_out(self, report):
        assert report.scaling["scale_outs"] >= 1
        assert report.shards_peak > report.shards_initial

    def test_reaction_time_includes_cold_start(self, report):
        policy = FLASH.autoscale
        assert report.reaction_seconds is not None
        assert report.reaction_seconds >= policy.cold_start_s
        # Bounded by detection (one interval) + the cold start itself.
        assert report.reaction_seconds <= policy.interval_s + policy.cold_start_s

    def test_every_scale_out_pays_the_cold_start(self, report):
        outs = [d for d in report.scaling["decisions"] if d["action"] == "out"]
        assert outs
        for decision in outs:
            assert decision["ready_at"] == pytest.approx(
                decision["at"] + FLASH.autoscale.cold_start_s)

    def test_fleet_scales_back_in_after_the_flash(self, report):
        assert report.scaling["scale_ins"] >= 1
        assert report.shards_final < report.shards_peak

    def test_scaling_reduces_sheds_versus_static(self, report):
        static = run_fleet(replace(FLASH, autoscale=None))
        assert report.shed < static.shed

    def test_never_exceeds_max_shards(self, report):
        assert report.shards_peak <= FLASH.autoscale.max_shards
        for decision in report.scaling["decisions"]:
            assert decision["shards_after"] <= FLASH.autoscale.max_shards
            assert decision["shards_after"] >= FLASH.autoscale.min_shards


class TestSeedInvariance:
    """The mandated property: same trace + seed => bit-identical scaling
    decisions and FleetReport, at any worker count."""

    def test_scaling_decisions_replay_bit_identically(self):
        first = run_fleet(FLASH)
        second = run_fleet(FLASH)
        assert first.scaling == second.scaling
        assert first.digest() == second.digest()

    def test_jobs_1_and_jobs_4_sweeps_are_bit_identical(self):
        spec = replace(FLASH, duration=3.0)
        serial = fleet_oversubscription_sweep(spec, (1.0, 2.0, 4.0), jobs=1)
        parallel = fleet_oversubscription_sweep(spec, (1.0, 2.0, 4.0), jobs=4)
        assert [r.digest() for r in serial.reports] == \
               [r.digest() for r in parallel.reports]
        assert [r.scaling for r in serial.reports] == \
               [r.scaling for r in parallel.reports]


class TestJournalResume:
    def test_finished_points_replay_from_the_journal(self, tmp_path):
        journal = tmp_path / "fleet.jsonl"
        spec = replace(FLASH, duration=2.0, autoscale=None)
        first = fleet_oversubscription_sweep(spec, (1.0, 4.0),
                                             journal=journal)
        assert first.resumed == 0
        second = fleet_oversubscription_sweep(spec, (1.0, 4.0, 8.0),
                                              journal=journal)
        assert second.resumed == 2
        assert [r.digest() for r in second.reports[:2]] == \
               [r.digest() for r in first.reports]

    def test_chaos_and_fault_free_points_do_not_collide(self, tmp_path):
        from repro.faults.chaos import generate_schedule

        journal = tmp_path / "fleet.jsonl"
        spec = replace(FLASH, duration=2.0, autoscale=None)
        schedule = generate_schedule(seed=1, duration=2.0,
                                     kinds=("storm",), replicas=2,
                                     episodes=1)
        fleet_oversubscription_sweep(spec, (1.0,), journal=journal,
                                     schedule=schedule)
        clean = fleet_oversubscription_sweep(spec, (1.0,), journal=journal)
        assert clean.resumed == 0
