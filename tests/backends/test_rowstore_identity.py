"""The acceptance property: the ``rowstore-oltp`` personality is
bit-identical to the seed engine construction on every existing path.

The seed recipe — inlined here exactly as the monolithic
``Experiment._build_engine`` built it before the backends extraction —
is run side by side with the backend recipe on identical machines, and
every timing-sensitive observable must match exactly."""

import pytest

from repro.backends import make_backend
from repro.core.experiment import run_experiment
from repro.core.knobs import ResourceAllocation
from repro.engine.engine import SqlEngine
from repro.engine.resource_governor import ResourceGovernor
from repro.hardware.machine import Machine
from repro.workloads import make_workload
from repro.workloads.base import ThroughputTracker


def seed_engine(machine, workload, allocation):
    """The pre-backends construction, verbatim."""
    return SqlEngine(
        machine,
        workload.database,
        workload.execution_characteristics(),
        governor=ResourceGovernor(
            max_dop=allocation.effective_max_dop,
            grant_percent=allocation.grant_percent,
            grant_timeout_s=allocation.grant_timeout_s,
            small_query_bypass_bytes=allocation.small_query_bypass_bytes,
            max_queue_depth=allocation.max_queue_depth,
            on_grant_timeout=allocation.on_grant_timeout,
        ),
        **workload.engine_parameters(),
    )


def backend_engine(machine, workload, allocation):
    return make_backend("rowstore-oltp").build_engine(
        machine, workload, allocation
    )


def run_with(builder, workload_name, sf, allocation, duration, seed=0):
    machine = Machine(seed=seed)
    allocation.apply_to(machine)
    workload = make_workload(workload_name, sf)
    engine = builder(machine, workload, allocation)
    tracker = ThroughputTracker()
    workload.spawn_clients(engine, tracker, until=duration)
    machine.sim.run(until=duration)
    return {
        "metric": workload.primary_metric(tracker, duration),
        "counters": engine.counter_totals(),
        "waits": dict(engine.locks.accounting.wait_time),
        "grants": engine.semaphore.summary(),
    }


CASES = [
    # (workload, sf, allocation, duration) — spanning the paper's axes
    ("tpch", 10, ResourceAllocation(), 10.0),
    ("tpch", 10, ResourceAllocation(logical_cores=8, llc_mb=12), 10.0),
    ("asdb", 2000, ResourceAllocation(), 3.0),
    ("asdb", 2000, ResourceAllocation(grant_percent=5.0), 3.0),
    ("tpce", 5000, ResourceAllocation(logical_cores=16), 3.0),
    ("htap", 5000, ResourceAllocation(), 4.0),
    # Overload protection on: the PR-5 knobs must round-trip too.
    ("tpch", 10, ResourceAllocation(grant_timeout_s=10.0,
                                    small_query_bypass_bytes=1e6), 10.0),
]


class TestSeedIdentity:
    @pytest.mark.parametrize(
        "workload,sf,allocation,duration", CASES,
        ids=[f"{w}-sf{sf}-{i}" for i, (w, sf, _, _) in enumerate(CASES)],
    )
    def test_backend_matches_seed_construction(self, workload, sf,
                                               allocation, duration):
        seed = run_with(seed_engine, workload, sf, allocation, duration)
        backend = run_with(backend_engine, workload, sf, allocation, duration)
        assert backend == seed

    def test_experiment_default_backend_is_rowstore(self):
        m = run_experiment("tpch", 10, duration=5.0)
        explicit = run_experiment("tpch", 10, duration=5.0,
                                  backend="rowstore-oltp")
        assert m.backend == "rowstore-oltp"
        assert m.primary_metric == explicit.primary_metric
        assert m.plan_signatures == explicit.plan_signatures
