"""Tests for CounterSeries rollups: memoized arrays, stable pickles."""

import pickle

import pytest

from repro.hardware.counters import (
    CounterSeries,
    INSTRUCTIONS,
    LLC_MISSES,
    SSD_READ_BYTES,
)


def series_with(name, values):
    series = CounterSeries()
    for value in values:
        series.append(name, value)
    return series


class TestRollups:
    def test_mean(self):
        series = series_with(SSD_READ_BYTES, [1.0, 2.0, 3.0, 6.0])
        assert series.mean(SSD_READ_BYTES) == pytest.approx(3.0)

    def test_mean_of_missing_counter_is_zero(self):
        assert CounterSeries().mean("nope") == 0.0

    def test_mean_mpki(self):
        series = series_with(INSTRUCTIONS, [1000.0, 3000.0])
        for misses in (10.0, 30.0):
            series.append(LLC_MISSES, misses)
        assert series.mean_mpki() == pytest.approx(10.0)

    def test_mean_mpki_without_instructions_is_zero(self):
        assert CounterSeries().mean_mpki() == 0.0


class TestMemoizedArrays:
    def test_array_is_reused_across_queries(self):
        series = series_with(SSD_READ_BYTES, [float(i) for i in range(100)])
        first = series._array(SSD_READ_BYTES)
        series.mean(SSD_READ_BYTES)
        assert series._array(SSD_READ_BYTES) is first

    def test_append_invalidates_the_memo(self):
        series = series_with(SSD_READ_BYTES, [1.0, 2.0])
        assert series.mean(SSD_READ_BYTES) == pytest.approx(1.5)
        stale = series._array(SSD_READ_BYTES)
        series.append(SSD_READ_BYTES, 6.0)
        assert series._array(SSD_READ_BYTES) is not stale
        assert series.mean(SSD_READ_BYTES) == pytest.approx(3.0)


class TestPickleStability:
    def test_pickle_carries_only_rates(self):
        """The array cache must never leak into pickled measurements —
        cache files and cross-run fingerprints depend on it."""
        series = series_with(SSD_READ_BYTES, [1.0, 2.0])
        cold = pickle.dumps(series)
        series.mean(SSD_READ_BYTES)          # populates the memo
        assert pickle.dumps(series) == cold

    def test_round_trip(self):
        series = series_with(SSD_READ_BYTES, [1.0, 2.0, 9.0])
        clone = pickle.loads(pickle.dumps(series))
        assert clone.interval == series.interval
        assert clone.rates == series.rates
        assert clone.mean(SSD_READ_BYTES) == series.mean(SSD_READ_BYTES)


class TestTailPercentiles:
    def test_percentile_bounds(self):
        series = series_with(SSD_READ_BYTES, list(range(1, 101)))
        assert series.percentile(SSD_READ_BYTES, 50) == pytest.approx(50.5)
        assert series.percentile(SSD_READ_BYTES, 100) == pytest.approx(100.0)

    def test_p999_reaches_into_the_far_tail(self):
        # 999 calm intervals and one spike: p99 misses it, p999 sees it.
        series = series_with(SSD_READ_BYTES, [1.0] * 999 + [1000.0])
        assert series.percentile(SSD_READ_BYTES, 99.0) == pytest.approx(1.0)
        assert series.p999(SSD_READ_BYTES) > 1.0

    def test_missing_counter_percentile_is_zero(self):
        assert CounterSeries().p999(SSD_READ_BYTES) == 0.0
