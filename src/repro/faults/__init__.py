"""Deterministic, seed-driven fault injection for experiments and sweeps.

The paper's harness ran thousands of cgroup/CAT/blkio grid points on real
hardware, where individual runs stall, crash, or get killed.  This package
makes both layers of that reality injectable and testable:

* **Simulation-level faults** (:mod:`repro.faults.spec` +
  :mod:`repro.faults.injector`) perturb one experiment from the inside:
  storage brownouts, transient write errors exercising the WAL's
  retry/backoff path, mid-run core offlining through the cpuset, and
  crash points that drive WAL replay + checkpoint recovery with
  durability invariant checks (:mod:`repro.faults.recovery`).
* **Harness-level faults** (:class:`~repro.faults.spec.WorkerCrash`,
  :class:`~repro.faults.spec.WorkerStall`) kill or hang the *worker
  process* running an experiment, exercising the supervised sweep
  runner's retry, timeout, and partial-result machinery
  (:mod:`repro.core.runner`).

Faults ride on :class:`~repro.core.experiment.ExperimentConfig` as a
tuple of frozen spec dataclasses, so they are part of the cache key and
a faulted run can never be served from a fault-free cache entry.
"""

from repro.faults.spec import (
    CoreOffline,
    CrashPoint,
    FaultSpec,
    GrantStorm,
    HarnessFault,
    ReplicaPartition,
    SimulationFault,
    StorageBrownout,
    TransientWriteErrors,
    WorkerCrash,
    WorkerStall,
    harness_faults,
    simulation_faults,
)
from repro.faults.injector import FaultInjector
from repro.faults.recovery import (
    RecoveryResult,
    WalImage,
    recover,
    verify_committed_durable,
)

__all__ = [
    "CoreOffline",
    "CrashPoint",
    "FaultInjector",
    "FaultSpec",
    "GrantStorm",
    "HarnessFault",
    "RecoveryResult",
    "ReplicaPartition",
    "SimulationFault",
    "StorageBrownout",
    "TransientWriteErrors",
    "WalImage",
    "WorkerCrash",
    "WorkerStall",
    "harness_faults",
    "recover",
    "simulation_faults",
    "verify_committed_durable",
]
