"""Tests for the NUMA/QPI model."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware.numa import NumaModel
from repro.hardware.topology import CpuTopology
from repro.units import CACHE_LINE, gb_per_s


@pytest.fixture
def topo():
    return CpuTopology()


@pytest.fixture
def numa():
    return NumaModel()


def shape(topo, cores):
    return topo.describe_allocation(topo.paper_allocation(cores))


class TestNumaModel:
    def test_single_socket_all_local(self, numa, topo):
        assert numa.remote_access_fraction(shape(topo, 8)) == 0.0
        assert numa.effective_miss_penalty(shape(topo, 8)) == pytest.approx(180.0)

    def test_dual_socket_pays_remote_blend(self, numa, topo):
        dual = shape(topo, 16)
        assert numa.remote_access_fraction(dual) == pytest.approx(0.25)
        penalty = numa.effective_miss_penalty(dual)
        assert penalty > 180.0
        assert penalty == pytest.approx(180.0 * (1 + 0.25 * 0.55))

    def test_qpi_demand_scales_with_misses(self, numa, topo):
        dual = shape(topo, 16)
        assert numa.qpi_demand_bytes_per_s(1e6, dual) == pytest.approx(
            1e6 * 0.25 * CACHE_LINE
        )
        assert numa.qpi_demand_bytes_per_s(1e6, shape(topo, 4)) == 0.0

    def test_qpi_throttle_rarely_binds(self, numa, topo):
        dual = shape(topo, 16)
        # A realistic miss rate is far below the 32 GB/s QPI link.
        assert numa.qpi_throttle_factor(1e8, dual) == 1.0
        # An absurd one throttles.
        huge = gb_per_s(32) / CACHE_LINE / 0.25 * 2
        assert numa.qpi_throttle_factor(huge, dual) < 1.0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            NumaModel(local_penalty_cycles=0)
        with pytest.raises(ConfigurationError):
            NumaModel(remote_penalty_multiplier=0.9)
        with pytest.raises(ConfigurationError):
            NumaModel(interleave_fraction=1.5)


class TestSocketBoundaryEffect:
    def test_crossing_socket_reduces_per_core_efficiency(self):
        """Fig 2: scaling 8 -> 16 cores crosses the socket boundary and
        is visibly sublinear relative to 4 -> 8."""
        from repro.core import ResourceAllocation, run_experiment
        perf = {
            n: run_experiment(
                "tpch", 30,
                allocation=ResourceAllocation(logical_cores=n),
                duration=250,
            ).primary_metric
            for n in (4, 8, 16)
        }
        within_socket = perf[8] / perf[4]
        across_sockets = perf[16] / perf[8]
        assert across_sockets < within_socket
