"""Workload models: TPC-H, TPC-E, ASDB, and the HTAP composite."""

from repro.workloads.arrivals import OpenLoopDriver
from repro.workloads.asdb import AsdbWorkload
from repro.workloads.base import ThroughputTracker, Workload
from repro.workloads.datagen import DataGenerator
from repro.workloads.htap import HtapWorkload
from repro.workloads.tpce import TpceWorkload
from repro.workloads.tpch import TPCH_QUERIES, TpchWorkload, tpch_query

WORKLOADS = {
    "tpch": TpchWorkload,
    "tpce": TpceWorkload,
    "asdb": AsdbWorkload,
    "htap": HtapWorkload,
}


def make_workload(name: str, scale_factor: int, **kwargs) -> Workload:
    """Instantiate a workload by name."""
    try:
        cls = WORKLOADS[name]
    except KeyError:
        raise KeyError(f"unknown workload {name!r}; one of {sorted(WORKLOADS)}")
    return cls(scale_factor=scale_factor, **kwargs)


__all__ = [
    "OpenLoopDriver",
    "AsdbWorkload",
    "DataGenerator",
    "HtapWorkload",
    "TpceWorkload",
    "TpchWorkload",
    "TPCH_QUERIES",
    "tpch_query",
    "ThroughputTracker",
    "Workload",
    "WORKLOADS",
    "make_workload",
]
