"""Tests for the calibrated execution profiles."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine.sqlos import ExecutionCharacteristics
from repro.errors import ConfigurationError
from repro.hardware.cpu import CpuModel, ThreadCharacteristics
from repro.units import MIB
from repro.workloads.profiles import (
    ASDB_MRC,
    HTAP_MRC,
    TPCE_MRC,
    TPCH_MRC,
    build_mrc,
    execution_profile,
)


class TestProfiles:
    @pytest.mark.parametrize("workload,sf", [
        ("tpch", 10), ("tpch", 300), ("tpce", 5000), ("asdb", 2000),
        ("htap", 15000),
    ])
    def test_profiles_constructible(self, workload, sf):
        profile = execution_profile(workload, sf)
        assert isinstance(profile, ExecutionCharacteristics)
        assert profile.mrc.mpki(40 * MIB) > 0

    def test_unknown_workload_rejected(self):
        with pytest.raises(ConfigurationError):
            execution_profile("duckdb", 1)

    def test_interpolation_between_scale_factors(self):
        mid = build_mrc(TPCH_MRC, 65).mpki(40 * MIB)
        low = build_mrc(TPCH_MRC, 30).mpki(40 * MIB)
        high = build_mrc(TPCH_MRC, 100).mpki(40 * MIB)
        assert min(low, high) <= mid <= max(low, high)

    def test_out_of_range_clamps(self):
        assert build_mrc(TPCH_MRC, 1).mpki(0) == build_mrc(TPCH_MRC, 10).mpki(0)
        assert build_mrc(TPCH_MRC, 1000).mpki(0) == build_mrc(TPCH_MRC, 300).mpki(0)

    @given(st.sampled_from([10, 30, 100, 300]),
           st.integers(min_value=0, max_value=40))
    @settings(max_examples=40)
    def test_tpch_mpki_monotone_in_allocation(self, sf, mb):
        mrc = build_mrc(TPCH_MRC, sf)
        assert mrc.mpki((mb + 2) * MIB) <= mrc.mpki(mb * MIB) + 1e-9


class TestCalibrationTargets:
    """The §4 hyper-threading calibration, checked at the model level."""

    def _smt_multiplier(self, workload, sf):
        profile = execution_profile(workload, sf)
        mpki = profile.mrc.mpki(40 * MIB, footprint_scale=1.5)
        chars = ThreadCharacteristics(
            cpi_base=profile.cpi_base, mpki=mpki,
            miss_penalty_cycles=profile.miss_penalty_cycles, mlp=profile.mlp,
        )
        return CpuModel().smt.multiplier(chars.memory_stall_fraction())

    def test_asdb_ht_gain_is_modest(self):
        """§4: ASDB gains 5-6.8% from hyper-threading."""
        for sf in (2000, 6000):
            assert 1.02 <= self._smt_multiplier("asdb", sf) <= 1.10

    def test_tpce_ht_gain_is_large(self):
        """§4: TPC-E gains 16.7-24.2%."""
        for sf in (5000, 15000):
            assert 1.12 <= self._smt_multiplier("tpce", sf) <= 1.28

    def test_tpch_small_sf_ht_detrimental(self):
        """§4: hyper-threading hurts in-memory analytical workloads."""
        assert self._smt_multiplier("tpch", 10) < 0.85

    def test_tpch_large_sf_ht_beneficial(self):
        assert self._smt_multiplier("tpch", 300) > 1.1

    def test_tpch_multiplier_monotone_in_sf(self):
        values = [self._smt_multiplier("tpch", sf) for sf in (10, 30, 100, 300)]
        assert values == sorted(values)

    def test_analytical_needs_more_cache_than_transactional(self):
        """Table 4's headline: DSS/HTAP working sets exceed OLTP's."""
        def cacheable_footprint(table, sf):
            mrc = build_mrc(table, sf)
            return sum(
                c.footprint_bytes for c in mrc.components
                if c.footprint_bytes != float("inf")
            )
        assert cacheable_footprint(TPCH_MRC, 100) > cacheable_footprint(ASDB_MRC, 2000)
        assert cacheable_footprint(HTAP_MRC, 5000) > cacheable_footprint(TPCE_MRC, 5000)

    def test_tpce_contention_inversion(self):
        """The coherence-miss inversion that makes TPC-E faster at the
        larger scale factor (§4)."""
        small = build_mrc(TPCE_MRC, 5000).mpki(40 * MIB, footprint_scale=1.5)
        large = build_mrc(TPCE_MRC, 15000).mpki(40 * MIB, footprint_scale=1.5)
        assert large < small
