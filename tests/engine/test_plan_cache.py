"""Tests for the engine-level plan cache: LRU mechanics, hit accounting,
and — the part that matters for the paper — that memoized plans are
exactly the plans the optimizer would have produced (Fig 7's Q20 plan
flip must still be observable through the cached path)."""

import pytest

from repro.core.experiment import run_experiment
from repro.core.knobs import ResourceAllocation
from repro.engine.engine import SqlEngine
from repro.engine.plancache import DEFAULT_PLAN_CACHE_SIZE, PlanCache
from repro.engine.resource_governor import ResourceGovernor
from repro.engine.schemas import build_tpch
from repro.hardware.machine import Machine
from repro.workloads.profiles import execution_profile
from repro.workloads.tpch import tpch_query


def make_engine(cores=32, sf=10, max_dop=None, plan_cache_size=None):
    machine = Machine()
    ResourceAllocation(logical_cores=cores).apply_to(machine)
    kwargs = {}
    if plan_cache_size is not None:
        kwargs["plan_cache_size"] = plan_cache_size
    return SqlEngine(
        machine=machine,
        database=build_tpch(sf),
        execution=execution_profile("tpch", sf),
        governor=ResourceGovernor(
            max_dop=max_dop if max_dop is not None else cores),
        concurrent_grant_slots=3,
        **kwargs,
    )


class TestPlanCacheMechanics:
    def test_hit_and_miss_accounting(self):
        cache = PlanCache(maxsize=4)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        info = cache.info()
        assert info["hits"] == 1
        assert info["misses"] == 1
        assert info["currsize"] == 1

    def test_lru_eviction_order(self):
        cache = PlanCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")          # refresh a; b becomes LRU
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert cache.info()["evictions"] == 1

    def test_zero_size_disables(self):
        cache = PlanCache(maxsize=0)
        assert not cache.enabled
        cache.put("a", 1)
        assert cache.get("a") is None

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            PlanCache(maxsize=-1)

    def test_clear(self):
        cache = PlanCache(maxsize=4)
        cache.put("a", 1)
        cache.clear()
        assert cache.info()["currsize"] == 0
        assert cache.get("a") is None


class TestEnginePlanCaching:
    def test_repeat_optimize_returns_the_same_plan_object(self):
        engine = make_engine(sf=10)
        spec = tpch_query(1, 10)
        first = engine.optimize(spec)
        second = engine.optimize(spec)
        assert second is first
        assert engine.plan_cache.info()["hits"] >= 1

    def test_distinct_dop_hints_cache_separately(self):
        """Fig 7's flip: Q20 at SF 300 plans differently at DOP 1 vs 32,
        and the cache must keep both entries apart."""
        engine = make_engine(sf=300)
        spec = tpch_query(20, 300)
        serial = engine.optimize(spec, dop_hint=1)
        parallel = engine.optimize(spec, dop_hint=32)
        assert serial.plan.signature() != parallel.plan.signature()
        assert engine.optimize(spec, dop_hint=1) is serial
        assert engine.optimize(spec, dop_hint=32) is parallel

    def test_cached_plan_equals_uncached_plan(self):
        engine = make_engine(sf=100)
        for number in (1, 6, 20):
            spec = tpch_query(number, 100)
            cached = engine.optimize(spec)
            direct = engine.optimizer.optimize(
                spec, max_dop=engine.governor.effective_dop(
                    len(engine.machine.cpuset)))
            assert cached.plan.signature() == direct.plan.signature()
            assert cached.dop == direct.dop
            assert cached.required_memory_bytes == direct.required_memory_bytes

    def test_engines_do_not_share_plans(self):
        """Allocation changes that can flip plans land in different
        engine instances, so caching is per-engine by construction."""
        wide = make_engine(sf=300, max_dop=32)
        narrow = make_engine(sf=300, max_dop=1)
        spec = tpch_query(20, 300)
        assert wide.optimize(spec).plan.signature() != \
            narrow.optimize(spec).plan.signature()

    def test_cache_can_be_disabled_per_engine(self):
        engine = make_engine(sf=10, plan_cache_size=0)
        spec = tpch_query(1, 10)
        first = engine.optimize(spec)
        second = engine.optimize(spec)
        assert first is not second
        assert first.plan.signature() == second.plan.signature()

    def test_default_size_bounds_memory(self):
        engine = make_engine(sf=10)
        assert engine.plan_cache.info()["maxsize"] == DEFAULT_PLAN_CACHE_SIZE


class TestBackendNamespaces:
    """The cache is keyed by the backend personality that owns it, so
    plans produced under one backend's cost model can never serve
    another's lookups, and hit/miss accounting stays per-backend."""

    def test_default_namespace_is_the_seed_personality(self):
        assert PlanCache(maxsize=4).namespace == ""
        assert make_engine().plan_cache.namespace == "rowstore-oltp"

    def test_backend_engines_get_namespaced_caches(self):
        from repro.backends import make_backend
        from repro.workloads import make_workload

        machine = Machine()
        allocation = ResourceAllocation(logical_cores=8)
        allocation.apply_to(machine)
        workload = make_workload("tpch", 10)
        engine = make_backend("columnstore-dss").build_engine(
            machine, workload, allocation)
        assert engine.plan_cache.namespace == "columnstore-dss"

    def test_namespace_is_folded_into_every_key(self):
        engine = make_engine(sf=10)
        engine.plan_cache.namespace = "columnstore-dss"
        spec = tpch_query(1, 10)
        plan = engine.optimize(spec)
        engine.plan_cache.namespace = "rowstore-oltp"
        assert engine.optimize(spec) is not plan

    def test_fleet_engines_account_hits_separately(self):
        from repro.backends import build_routed_engine
        from repro.workloads import make_workload

        machine = Machine()
        allocation = ResourceAllocation()
        allocation.apply_to(machine)
        workload = make_workload("tpch", 10)
        routed = build_routed_engine(
            machine, workload, allocation,
            ("rowstore-oltp", "columnstore-dss"), "rule-based")
        spec = tpch_query(1, 10)
        routed.optimize(spec)
        routed.optimize(spec)
        infos = {name: engine.plan_cache.info()
                 for name, engine in routed.engines.items()}
        # Exactly one backend planned the query; the other's cache is cold.
        traffic = [name for name, info in infos.items()
                   if info["hits"] + info["misses"] > 0]
        assert len(traffic) == 1
        assert infos[traffic[0]]["hits"] >= 1


class TestPlanSignatureCollection:
    def test_fig7_flip_survives_signature_collection(self):
        """_collect_plan_signatures now reuses the engine plan cache;
        the Q20 signature must still differ between a MAXDOP=1 run and a
        MAXDOP=32 run (the Fig 7 detection path end-to-end)."""
        serial = run_experiment(
            "tpch", 300, duration=40.0,
            allocation=ResourceAllocation(max_dop=1),
        )
        parallel = run_experiment("tpch", 300, duration=40.0)
        assert serial.plan_signatures["Q20"] != parallel.plan_signatures["Q20"]

    def test_signatures_cover_all_queries(self):
        measurement = run_experiment("tpch", 10, duration=20.0)
        assert len(measurement.plan_signatures) == 22
