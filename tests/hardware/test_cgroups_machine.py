"""Tests for the cgroup front-ends and machine spec variants."""

import pytest

from repro.errors import AllocationError
from repro.hardware.cgroups import BlkioLimits, CpuSet
from repro.hardware.machine import Machine, MachineSpec
from repro.hardware.topology import CpuTopology
from repro.units import MIB, mb_per_s


class TestCpuSet:
    def test_defaults_to_all_cpus(self):
        cpuset = CpuSet(topology=CpuTopology())
        assert len(cpuset) == 32

    def test_paper_allocation_shortcut(self):
        cpuset = CpuSet(topology=CpuTopology())
        cpuset.set_paper_allocation(4)
        assert len(cpuset) == 4
        assert cpuset.shape().physical_cores == 4

    def test_explicit_cpu_list(self):
        topo = CpuTopology()
        cpuset = CpuSet(topology=topo)
        cpuset.set_cpus(frozenset({0, 1, 16, 17}))
        shape = cpuset.shape()
        assert shape.logical_cpus == 4
        assert shape.smt_paired_cores == 2

    def test_invalid_cpus_rejected(self):
        cpuset = CpuSet(topology=CpuTopology())
        with pytest.raises(AllocationError):
            cpuset.set_cpus(frozenset({99}))
        with pytest.raises(AllocationError):
            cpuset.set_cpus(frozenset())


class TestBlkioLimits:
    def test_unlimited_by_default(self):
        limits = BlkioLimits()
        assert limits.read_bps is None and limits.write_bps is None

    def test_negative_rejected(self):
        with pytest.raises(AllocationError):
            BlkioLimits(read_bps=-1.0)


class TestMachineVariants:
    def test_single_socket_machine(self):
        machine = MachineSpec(sockets=1, cores_per_socket=4).build()
        assert machine.topology.total_logical_cpus == 8
        assert machine.llc.total_size == 20 * MIB

    def test_no_smt_machine(self):
        machine = MachineSpec(smt=1).build()
        assert machine.topology.total_logical_cpus == 16
        shape = machine.topology.describe_allocation(
            machine.topology.paper_allocation(16)
        )
        assert shape.smt_paired_cores == 0

    def test_custom_ssd(self):
        machine = MachineSpec(ssd_read_bw=mb_per_s(500)).build()
        assert machine.ssd.effective_read_bw == mb_per_s(500)

    def test_seed_controls_streams(self):
        a = Machine(seed=1).streams.get("x").random()
        b = Machine(seed=1).streams.get("x").random()
        c = Machine(seed=2).streams.get("x").random()
        assert a == b
        assert a != c

    def test_numa_model_attached(self):
        machine = Machine()
        shape = machine.topology.describe_allocation(
            machine.topology.paper_allocation(16)
        )
        assert machine.numa.effective_miss_penalty(shape) > 180.0
