"""Tests for the buffer pool model and the group-commit WAL."""

import pytest

from repro.engine.bufferpool import BufferPool
from repro.engine.catalog import Database, Table
from repro.engine.types import WorkloadClass
from repro.engine.wal import WriteAheadLog
from repro.errors import ConfigurationError
from repro.hardware.storage import NvmeDevice
from repro.sim.process import Simulator, Timeout
from repro.units import GIB, KIB, mb_per_s


def make_db(total_gb: float, hot_fraction: float = 0.1) -> Database:
    db = Database(name="db", scale_factor=1, workload_class=WorkloadClass.OLTP)
    db.add_table(
        Table(name="big", rows=1_000_000, row_bytes=total_gb * GIB / 1_000_000,
              hot_fraction=hot_fraction)
    )
    return db


class TestBufferPool:
    def test_capacity_is_engine_share_minus_grants(self):
        pool = BufferPool(make_db(10), server_memory_bytes=64 * GIB,
                          reserved_grant_bytes=10 * GIB)
        assert pool.capacity_bytes == pytest.approx(64 * GIB * 0.8 - 10 * GIB)

    def test_fitting_database_is_fully_resident(self):
        pool = BufferPool(make_db(10), server_memory_bytes=64 * GIB)
        assert pool.resident_fraction() == 1.0
        assert pool.scan_read_bytes(pool.database.table("big")) == 0.0

    def test_oversized_database_partially_resident(self):
        pool = BufferPool(make_db(100), server_memory_bytes=64 * GIB)
        assert 0.0 < pool.resident_fraction() < 1.0
        assert pool.scan_read_bytes(pool.database.table("big")) > 0.0

    def test_point_hit_capped_below_one(self):
        pool = BufferPool(make_db(1), server_memory_bytes=64 * GIB)
        assert pool.point_hit_probability(pool.database.table("big")) <= \
            BufferPool.MAX_POINT_HIT

    def test_point_hit_degrades_when_data_overflows(self):
        small = BufferPool(make_db(10), server_memory_bytes=64 * GIB)
        large = BufferPool(make_db(200), server_memory_bytes=64 * GIB)
        table_s = small.database.table("big")
        table_l = large.database.table("big")
        assert large.point_hit_probability(table_l) < small.point_hit_probability(table_s)

    def test_reserved_grants_shrink_residency(self):
        """The §8 coupling: bigger grants => less buffer pool => more IO."""
        db = make_db(45)
        no_grants = BufferPool(db, server_memory_bytes=64 * GIB)
        grants = BufferPool(db, server_memory_bytes=64 * GIB,
                            reserved_grant_bytes=30 * GIB)
        assert grants.resident_fraction() < no_grants.resident_fraction()

    def test_bad_scan_fraction_rejected(self):
        pool = BufferPool(make_db(1), server_memory_bytes=64 * GIB)
        with pytest.raises(ConfigurationError):
            pool.scan_read_bytes(pool.database.table("big"), scanned_fraction=1.5)


class TestWriteAheadLog:
    def _setup(self, write_bw=mb_per_s(1200)):
        sim = Simulator()
        device = NvmeDevice(sim, write_bw=write_bw)
        wal = WriteAheadLog(sim, device)
        return sim, device, wal

    def test_single_commit_waits_for_flush(self):
        sim, device, wal = self._setup()
        def committer():
            yield from wal.commit(4 * KIB)
            return sim.now
        proc = sim.spawn(committer())
        sim.run()
        # Flushed by the 1 ms timer, not instantly.
        assert proc.result >= wal.flush_interval
        assert wal.total_flushes == 1

    def test_group_commit_batches_concurrent_commits(self):
        sim, device, wal = self._setup()
        results = []
        def committer():
            yield from wal.commit(2 * KIB)
            results.append(sim.now)
        for _ in range(10):
            sim.spawn(committer())
        sim.run()
        assert len(results) == 10
        # All ten commits harden with a single flush.
        assert wal.total_flushes == 1

    def test_full_batch_flushes_early(self):
        sim, device, wal = self._setup()
        done = []
        def committer():
            yield from wal.commit(wal.batch_bytes)
            done.append(sim.now)
        sim.spawn(committer())
        sim.run()
        assert done[0] < wal.flush_interval

    def test_low_write_bandwidth_stretches_commit_latency(self):
        fast = self._setup(write_bw=mb_per_s(1200))
        slow = self._setup(write_bw=mb_per_s(1))
        latencies = {}
        for name, (sim, device, wal) in (("fast", fast), ("slow", slow)):
            def committer(w=wal, s=sim):
                yield from w.commit(256 * KIB)
                return s.now
            proc = sim.spawn(committer())
            sim.run()
            latencies[name] = proc.result
        assert latencies["slow"] > 10 * latencies["fast"]

    def test_log_accounting(self):
        sim, device, wal = self._setup()
        def committer():
            yield from wal.commit(3 * KIB)
            yield from wal.commit(5 * KIB)
        sim.spawn(committer())
        sim.run()
        assert wal.total_log_bytes == 8 * KIB

    def test_backlogged_commits_flush_in_series(self):
        sim, device, wal = self._setup(write_bw=mb_per_s(10))
        done = []
        def committer(i):
            yield Timeout(i * 0.0001)
            yield from wal.commit(128 * KIB)
            done.append(sim.now)
        for i in range(5):
            sim.spawn(committer(i))
        sim.run()
        assert len(done) == 5
        assert wal.total_flushes >= 2

    def test_bad_parameters_rejected(self):
        sim = Simulator()
        device = NvmeDevice(sim)
        with pytest.raises(ConfigurationError):
            WriteAheadLog(sim, device, batch_bytes=0)
        wal = WriteAheadLog(sim, device)
        with pytest.raises(ConfigurationError):
            next(wal.commit(-1.0))
