"""Tail-tolerant request execution: hedged reads, retry budgets, shedding.

The Dean/Barroso tail-at-scale recipe, adapted to the fleet model: a
read goes to the healthiest replica; if it has not completed within a
p95-based delay, a single *hedge* is launched on a different replica and
the first completion wins (the loser runs to completion — cancellation
is not modeled, matching engines that cannot abort an in-flight I/O).
Three guards keep hedging from amplifying the very overload it is meant
to hide, composing with the PR 3 admission layer rather than fighting
it:

* **retry budgets** — a per-tenant token bucket
  (:class:`RetryBudget`); once a tenant exhausts its budget, its hedges
  are denied and only primaries run, so a tail blowup degrades to
  baseline latency instead of doubling fleet load;
* **brownout-aware shedding** — a hedge is shed (never launched) when
  the candidate replica's device is browned out
  (:attr:`~repro.hardware.storage.NvmeDevice.browned_out`) or its
  RESOURCE_SEMAPHORE queue is already deep: hedging onto a struggling
  replica adds load exactly where it hurts;
* **health-aware placement** — suspected replicas
  (:class:`~repro.fleet.health.HeartbeatMonitor`) are routed around for
  first attempts and hedges alike.
"""

from __future__ import annotations

from typing import Dict, Generator, Optional, Tuple

from repro.errors import FaultInjectionError
from repro.fleet.health import HeartbeatMonitor
from repro.fleet.replicas import Replica, ReplicaGroup
from repro.hardware.storage import RANDOM_READ_LATENCY
from repro.sim.process import Simulator, Timeout
from repro.sim.stats import Cdf
from repro.units import KIB, mb_per_s


class RetryBudget:
    """Per-tenant token buckets bounding retry/hedge amplification.

    Tokens refill continuously at ``refill_per_s`` up to ``capacity``;
    every hedge (or application-level retry) spends one.  Refill is
    computed lazily from the simulated clock, so the bucket is exact and
    deterministic without a refill process.
    """

    def __init__(self, sim: Simulator, capacity: float = 16.0,
                 refill_per_s: float = 4.0):
        if capacity <= 0 or refill_per_s < 0:
            raise FaultInjectionError("bad retry budget parameters")
        self._sim = sim
        self.capacity = capacity
        self.refill_per_s = refill_per_s
        self._buckets: Dict[str, Tuple[float, float]] = {}  # tenant -> (tokens, at)
        self.spent = 0
        self.denied = 0

    def tokens(self, tenant: str = "default") -> float:
        tokens, at = self._buckets.get(tenant, (self.capacity, self._sim.now))
        return min(self.capacity,
                   tokens + (self._sim.now - at) * self.refill_per_s)

    def try_spend(self, tenant: str = "default", tokens: float = 1.0) -> bool:
        available = self.tokens(tenant)
        if available < tokens:
            self.denied += 1
            return False
        self._buckets[tenant] = (available - tokens, self._sim.now)
        self.spent += 1
        return True


class HedgedReader:
    """Hedged point-read execution over a replica group."""

    def __init__(
        self,
        group: ReplicaGroup,
        monitor: Optional[HeartbeatMonitor] = None,
        budget: Optional[RetryBudget] = None,
        enabled: bool = True,
        read_bytes: float = 256 * KIB,
        page_bytes: int = 8 * 1024,
        hedge_percentile: float = 95.0,
        min_hedge_delay: Optional[float] = None,
        queue_depth_limit: int = 8,
    ):
        self.group = group
        self.monitor = monitor
        self.budget = budget if budget is not None else RetryBudget(group._sim)
        self.enabled = enabled
        self.read_bytes = read_bytes
        self.page_bytes = page_bytes
        self.hedge_percentile = hedge_percentile
        if min_hedge_delay is None:
            # Default floor: 1.5x the unloaded service time of one read
            # (per-page seek latency + bandwidth), so a cold reader with
            # no samples yet does not hedge every single request.
            pages = max(read_bytes / page_bytes, 1.0)
            min_hedge_delay = 1.5 * (pages * RANDOM_READ_LATENCY
                                     + read_bytes / mb_per_s(2500))
        self.min_hedge_delay = min_hedge_delay
        self.queue_depth_limit = queue_depth_limit
        self._sim = group._sim
        #: Client-observed read latency distribution (first completion
        #: per read) — the p99 the chaos scheduler's hedging invariant
        #: compares, and the source of the adaptive hedge delay.
        self.latencies = Cdf()
        self.reads = 0
        self.hedges = 0
        self.hedge_wins = 0
        self.budget_denied = 0
        self.sheds = 0
        self.stalls = 0

    # -- placement ---------------------------------------------------------------

    def _pick(self, exclude: Tuple[int, ...] = ()) -> Optional[Replica]:
        """Healthiest read target: reachable and unsuspected, degrading
        to any reachable replica.  Placement consults only the *health
        signal* (suspicion from heartbeats + observed service times),
        never raw fault state — a client cannot see that a device is
        browned out, only that requests got slow.  Primary-first order
        keeps placement deterministic."""
        primary = self.group.primary
        ordered = ([primary] if primary is not None else []) + [
            r for r in self.group.replicas if r is not primary
        ]
        candidates = [r for r in ordered
                      if r.reachable and r.index not in exclude]
        if not candidates:
            return None
        if self.monitor is not None:
            unsuspected = [r for r in candidates
                           if not self.monitor.suspected(r.index)]
            candidates = unsuspected or candidates
        return candidates[0]

    def _hedge_delay(self) -> float:
        """p95 of *client-observed* latency (floor: the configured
        minimum, so cold starts don't hedge instantly).

        Deliberately not the target replica's own service times: a
        straggling replica contaminates its per-replica window within a
        handful of slow reads, inflating the delay exactly when hedging
        matters.  The client distribution is self-stabilizing — hedge
        wins keep it (and therefore the delay) near the healthy p95."""
        if len(self.latencies) < 8:
            return self.min_hedge_delay
        return max(self.latencies.percentile(self.hedge_percentile),
                   self.min_hedge_delay)

    # -- execution ---------------------------------------------------------------

    def read(self, tenant: str = "default") -> Generator:
        """Generator: one read, hedged under the policy; returns latency."""
        self.reads += 1
        start = self._sim.now
        target = self._pick()
        while target is None:
            # Total outage (no reachable replica): wait for the fleet.
            self.stalls += 1
            yield Timeout(self.group.retry_interval)
            target = self._pick()
        done = self._sim.event()
        self._sim.spawn(self._attempt(target, done, hedge=False),
                        name=f"read-{target.index}")
        if self.enabled:
            self._sim.spawn(self._arm_hedge(target, done, tenant),
                            name="hedge-arm")
        yield done
        latency = self._sim.now - start
        self.latencies.add(latency)
        return latency

    def _attempt(self, replica: Replica, done, hedge: bool) -> Generator:
        started = self._sim.now
        try:
            # Point reads (per-page latency + bandwidth), not a pure
            # streaming transfer: a brownout or saturated device shows
            # up as queueing delay, which is what hedging exists to dodge.
            yield from replica.machine.ssd.read_pages(
                max(self.read_bytes / self.page_bytes, 1.0), self.page_bytes
            )
        except FaultInjectionError:
            return None  # the surviving attempt (if any) resolves the read
        elapsed = self._sim.now - started
        if self.monitor is not None:
            self.monitor.note_service_time(replica.index, elapsed)
        if not done.triggered:
            if hedge:
                self.hedge_wins += 1
            done.trigger(replica.index)
        return None

    def _arm_hedge(self, first: Replica, done, tenant: str) -> Generator:
        yield Timeout(self._hedge_delay())
        if done.triggered:
            return None
        alternate = self._pick(exclude=(first.index,))
        if alternate is None:
            return None
        if (alternate.machine.ssd.browned_out
                or alternate.engine.semaphore.waiter_count
                >= self.queue_depth_limit):
            # Brownout-aware shed: the only spare replica is itself
            # struggling — piling a hedge on it would deepen the tail.
            self.sheds += 1
            return None
        if not self.budget.try_spend(tenant):
            self.budget_denied += 1
            return None
        self.hedges += 1
        self._sim.spawn(self._attempt(alternate, done, hedge=True),
                        name=f"hedge-{alternate.index}")
        return None

    # -- reporting ---------------------------------------------------------------

    def summary(self) -> Dict[str, float]:
        return {
            "reads": float(self.reads),
            "hedges": float(self.hedges),
            "hedge_wins": float(self.hedge_wins),
            "budget_denied": float(self.budget_denied),
            "sheds": float(self.sheds),
            "stalls": float(self.stalls),
            "budget_spent": float(self.budget.spent),
        }
