"""Dependency-light surrogate: a deterministic ridge + k-NN ensemble.

The predictor follows the learned-cost-model lineage in PAPERS.md
(QueryTorque's Q-error framing; ResQ-style resource profiles) but stays
inside the repo's constraints: numpy only, closed-form training, and —
because cached corpora are harvested in canonical digest order — *bit-
identical* coefficients and predictions for the same corpus regardless
of process, job count, or scan order.

Two complementary members:

* **Ridge regression** in standardized feature space over log-space
  targets.  Log space makes the squared loss optimize relative error,
  which is what Q-error measures; the closed form
  ``(XᵀX + λI)θ = Xᵀy`` needs no iteration, no RNG, no learning rate.
* **k-NN** over the same standardized space: database response surfaces
  are piecewise (MRC knees, plan flips), and nearest measured neighbors
  capture the local plateaus a global linear model smooths over.

The ensemble averages the two in log space.  Per-prediction
**uncertainty** combines what each member knows the other might miss:
the members' disagreement on the primary metric plus the normalized
distance to the nearest training point (far from the corpus = low
trust).  The adaptive planner spends its simulation budget on exactly
the high-uncertainty points.

Q-error — ``max(pred/actual, actual/pred)``, ≥ 1, multiplicative — is
reported per target from leave-one-out evaluation over the corpus: each
point is predicted with itself excluded from the neighbor set, so the
report measures interpolation, not memorization.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.surrogate.corpus import Corpus, TARGET_NAMES
from repro.surrogate.features import FEATURE_NAMES

#: Ridge regularization strength (standardized features make one value
#: serviceable across axes).
RIDGE_LAMBDA = 1e-2

#: Neighbors consulted by the k-NN member (capped at corpus size).
KNN_NEIGHBORS = 3

#: Floor applied before taking logs: targets are physically >= 0 (a
#: bandwidth can be exactly zero) and Q-error needs positive values.
TARGET_FLOOR = 1e-6

#: Weight of the normalized nearest-neighbor distance in the
#: uncertainty score (the rest is member disagreement).
DISTANCE_WEIGHT = 0.5

#: Log-space prediction clamp (e^50 ~ 5e21): far extrapolation saturates
#: instead of overflowing ``exp`` — such points carry high uncertainty
#: and fall to simulation anyway.
LOG_CLIP = 50.0


def q_error(predicted: float, actual: float) -> float:
    """The multiplicative error ``max(pred/actual, actual/pred)`` (>= 1)."""
    p = max(float(predicted), TARGET_FLOOR)
    a = max(float(actual), TARGET_FLOOR)
    return max(p / a, a / p)


@dataclass
class Prediction:
    """One what-if answer: target estimates plus a trust score."""

    targets: Dict[str, float]
    uncertainty: float

    @property
    def primary_metric(self) -> float:
        return self.targets[TARGET_NAMES[0]]


class SurrogateModel:
    """Ridge + k-NN ensemble over harvested corpus entries."""

    def __init__(self) -> None:
        self._mean: Optional[np.ndarray] = None     # feature standardizer
        self._scale: Optional[np.ndarray] = None
        self._theta: Optional[np.ndarray] = None    # ridge coefficients
        self._train_x: Optional[np.ndarray] = None  # standardized features
        self._train_logy: Optional[np.ndarray] = None
        self._distance_scale: float = 1.0
        self.trained_on: int = 0

    # -- training --------------------------------------------------------------

    def fit(self, corpus: Corpus) -> "SurrogateModel":
        """Closed-form fit; deterministic for a given corpus content.

        The corpus is re-sorted by digest before anything touches numpy,
        so two harvests of the same cache — whatever order the sweeps
        that filled it ran in, at any job count — produce the same
        matrices, the same factorization, and bit-identical coefficients.
        """
        corpus = corpus.sorted_by_digest()
        if len(corpus) < 2:
            raise ConfigurationError(
                f"need at least 2 corpus entries to fit, got {len(corpus)}"
            )
        features = corpus.feature_matrix()
        targets = corpus.target_matrix()
        self._mean = features.mean(axis=0)
        scale = features.std(axis=0)
        # Relative tolerance: a column of fourteen 0.3s has std ~1e-17
        # (float summation noise), not exactly 0 — treating it as varying
        # would standardize noise into a spurious regressor and make any
        # off-corpus query value explode through the 1e-17 divisor.
        scale[scale <= 1e-9 * np.maximum(np.abs(self._mean), 1.0)] = 1.0
        self._scale = scale
        x = (features - self._mean) / self._scale
        logy = np.log(np.maximum(targets, TARGET_FLOOR))
        design = np.hstack([np.ones((x.shape[0], 1)), x])
        gram = design.T @ design
        gram += RIDGE_LAMBDA * np.eye(gram.shape[0])
        self._theta = np.linalg.solve(gram, design.T @ logy)
        self._train_x = x
        self._train_logy = logy
        # Normalize neighbor distances by the corpus's own spread so the
        # uncertainty score is comparable across corpora of any size.
        centroid_dist = np.sqrt((x ** 2).sum(axis=1))
        self._distance_scale = float(max(np.median(centroid_dist), 1e-9))
        self.trained_on = len(corpus)
        return self

    @property
    def fitted(self) -> bool:
        return self._theta is not None

    def _require_fit(self) -> None:
        if not self.fitted:
            raise ConfigurationError("surrogate model is not fitted")

    # -- prediction ------------------------------------------------------------

    def _standardize(self, features: np.ndarray) -> np.ndarray:
        return (np.asarray(features, dtype=np.float64) - self._mean) / self._scale

    def _ridge_log(self, x: np.ndarray) -> np.ndarray:
        design = np.hstack([np.ones((x.shape[0], 1)), x])
        return design @ self._theta

    def _knn_log(
        self, x: np.ndarray, exclude: Optional[int] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """(log-target estimates, mean neighbor distance) per query row.

        ``exclude`` drops one training row from the neighbor set — the
        leave-one-out hook used by :meth:`q_error_report`.
        """
        train_x = self._train_x
        train_y = self._train_logy
        if exclude is not None:
            keep = np.arange(train_x.shape[0]) != exclude
            train_x = train_x[keep]
            train_y = train_y[keep]
        diffs = x[:, None, :] - train_x[None, :, :]
        dists = np.sqrt((diffs ** 2).sum(axis=2))
        k = min(KNN_NEIGHBORS, train_x.shape[0])
        order = np.argsort(dists, axis=1, kind="stable")[:, :k]
        rows = np.arange(x.shape[0])[:, None]
        neighbor_dists = dists[rows, order]
        # Inverse-distance weights; an exact feature match dominates.
        weights = 1.0 / np.maximum(neighbor_dists, 1e-12)
        weights /= weights.sum(axis=1, keepdims=True)
        estimates = (train_y[order] * weights[:, :, None]).sum(axis=1)
        return estimates, neighbor_dists.mean(axis=1)

    def predict_many(
        self, features: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """(targets matrix, uncertainty vector) for a feature matrix.

        Targets come back in linear space (``TARGET_NAMES`` order).
        Uncertainty is dimensionless and relative: member disagreement
        on the primary metric (log space, so it reads as a relative
        error) plus the distance-to-corpus penalty.
        """
        self._require_fit()
        x = self._standardize(np.atleast_2d(features))
        ridge_log = self._ridge_log(x)
        knn_log, mean_dist = self._knn_log(x)
        blend_log = 0.5 * (ridge_log + knn_log)
        disagreement = np.abs(ridge_log[:, 0] - knn_log[:, 0])
        uncertainty = disagreement + DISTANCE_WEIGHT * (
            mean_dist / self._distance_scale
        )
        return np.exp(np.clip(blend_log, -LOG_CLIP, LOG_CLIP)), uncertainty

    def predict(self, features: np.ndarray) -> Prediction:
        """One feature vector in, one :class:`Prediction` out."""
        targets, uncertainty = self.predict_many(
            np.asarray(features, dtype=np.float64)[None, :]
        )
        return Prediction(
            targets=dict(zip(TARGET_NAMES, targets[0].tolist())),
            uncertainty=float(uncertainty[0]),
        )

    # -- evaluation ------------------------------------------------------------

    def q_error_report(self, corpus: Corpus) -> Dict[str, Dict[str, float]]:
        """Leave-one-out Q-error per target over *corpus*.

        Each entry is predicted with itself removed from the k-NN
        neighbor set (the ridge member is global and barely memorizes a
        single point at this regularization).  Returns
        ``{target: {median, p90, max}}`` plus an ``"overall"`` row
        aggregating every (entry, target) pair.
        """
        self._require_fit()
        corpus = corpus.sorted_by_digest()
        features = corpus.feature_matrix()
        targets = corpus.target_matrix()
        if features.shape[0] < 2:
            raise ConfigurationError("need at least 2 entries to evaluate")
        x = self._standardize(features)
        ridge_log = self._ridge_log(x)
        errors = np.empty_like(targets)
        for i in range(x.shape[0]):
            knn_log, _ = self._knn_log(x[i:i + 1], exclude=i)
            predicted = np.exp(np.clip(
                0.5 * (ridge_log[i] + knn_log[0]), -LOG_CLIP, LOG_CLIP
            ))
            for j in range(targets.shape[1]):
                errors[i, j] = q_error(predicted[j], targets[i, j])

        def stats(values: np.ndarray) -> Dict[str, float]:
            return {
                "median": float(np.median(values)),
                "p90": float(np.percentile(values, 90)),
                "max": float(values.max()),
            }

        report = {
            name: stats(errors[:, j]) for j, name in enumerate(TARGET_NAMES)
        }
        report["overall"] = stats(errors.ravel())
        return report

    # -- serialization ---------------------------------------------------------

    def to_dict(self) -> Dict:
        self._require_fit()
        return {
            "feature_names": list(FEATURE_NAMES),
            "target_names": list(TARGET_NAMES),
            "mean": self._mean.tolist(),
            "scale": self._scale.tolist(),
            "theta": self._theta.tolist(),
            "train_x": self._train_x.tolist(),
            "train_logy": self._train_logy.tolist(),
            "distance_scale": self._distance_scale,
            "trained_on": self.trained_on,
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "SurrogateModel":
        if payload.get("feature_names") != list(FEATURE_NAMES):
            raise ConfigurationError(
                "serialized model was trained on a different feature schema"
            )
        model = cls()
        model._mean = np.asarray(payload["mean"], dtype=np.float64)
        model._scale = np.asarray(payload["scale"], dtype=np.float64)
        model._theta = np.asarray(payload["theta"], dtype=np.float64)
        model._train_x = np.asarray(payload["train_x"], dtype=np.float64)
        model._train_logy = np.asarray(payload["train_logy"], dtype=np.float64)
        model._distance_scale = float(payload["distance_scale"])
        model.trained_on = int(payload["trained_on"])
        return model

    def save(self, path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), sort_keys=True) + "\n",
                        encoding="utf-8")
        return path

    @classmethod
    def load(cls, path) -> "SurrogateModel":
        return cls.from_dict(json.loads(Path(path).read_text(encoding="utf-8")))

    def coefficient_report(self) -> List[Tuple[str, float]]:
        """(feature, |primary-metric coefficient|) sorted descending —
        which knobs the fitted surface actually responds to."""
        self._require_fit()
        weights = self._theta[1:, 0]  # skip bias; primary-metric column
        pairs = sorted(
            zip(FEATURE_NAMES, np.abs(weights).tolist()),
            key=lambda kv: -kv[1],
        )
        return [(name, round(weight, 6)) for name, weight in pairs]
