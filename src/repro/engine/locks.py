"""Lock and latch manager with per-wait-type accounting (Table 3).

The paper's Table 3 breaks transactional waits into four classes:

* ``LOCK`` — logical row/key locks.  Contention concentrates on hot rows;
  a larger scale factor spreads accesses over more rows, *reducing* these
  waits (ratio 0.15 at SF 15000 vs 5000).
* ``PAGELATCH`` — in-memory page latches (e.g. insert hot spots); also
  diluted by scale (ratio 0.56).
* ``LATCH`` — internal structure latches; grow somewhat with data size
  (the paper notes LATCH waits *increase* at the larger SF).
* ``PAGEIOLATCH`` — latches held while a page is read from storage;
  explode when the database stops fitting in memory (ratio 74.61).

The model represents hot rows and hot pages as arrays of FCFS servers;
a transaction that hashes onto a busy slot queues, and the queueing time
is charged to that wait class.  PAGEIOLATCH waits are charged by the
executor when a buffer-pool miss performs device IO.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Generator, List

from repro.errors import ConfigurationError
from repro.sim.process import Simulator, Timeout
from repro.sim.resources import FcfsServer


class WaitType(enum.Enum):
    LOCK = "LOCK"
    LATCH = "LATCH"
    PAGELATCH = "PAGELATCH"
    PAGEIOLATCH = "PAGEIOLATCH"


@dataclass
class WaitAccounting:
    """Cumulative wait time (seconds) and counts per wait type."""

    wait_time: Dict[WaitType, float] = field(
        default_factory=lambda: {w: 0.0 for w in WaitType}
    )
    wait_count: Dict[WaitType, int] = field(
        default_factory=lambda: {w: 0 for w in WaitType}
    )

    def charge(self, wait_type: WaitType, seconds: float) -> None:
        if seconds < 0:
            raise ConfigurationError("negative wait time")
        self.wait_time[wait_type] += seconds
        self.wait_count[wait_type] += 1

    def lock_latch_pagelatch_total(self) -> float:
        """The Σ row of Table 3: LOCK + LATCH + PAGELATCH."""
        return (
            self.wait_time[WaitType.LOCK]
            + self.wait_time[WaitType.LATCH]
            + self.wait_time[WaitType.PAGELATCH]
        )


class HotSlotArray:
    """An array of FCFS slots modelling hot rows or hot pages.

    A requester hashes to one slot; concurrent requests to the same slot
    serialize.  More slots (bigger scale factor) means less contention.
    """

    def __init__(self, sim: Simulator, num_slots: int, name: str):
        if num_slots < 1:
            raise ConfigurationError(f"{name}: need at least one slot")
        self._sim = sim
        self.name = name
        self.num_slots = num_slots
        self._slots: List[FcfsServer] = [
            FcfsServer(sim, capacity=1, name=f"{name}[{i}]") for i in range(num_slots)
        ]

    def acquire(self, slot_index: int) -> Generator:
        """Generator: acquire one slot (callers pick the index)."""
        slot = self._slots[slot_index % self.num_slots]
        yield from slot.acquire()
        return None

    def release(self, slot_index: int) -> None:
        self._slots[slot_index % self.num_slots].release()

    @property
    def total_wait_time(self) -> float:
        return sum(s.total_wait_time for s in self._slots)


class LockManager:
    """Hot-row locks, hot-page latches, and wait accounting for one run."""

    def __init__(
        self,
        sim: Simulator,
        hot_rows: int,
        hot_pages: int,
        latch_slots: int = 64,
    ):
        self._sim = sim
        self.accounting = WaitAccounting()
        self.row_locks = HotSlotArray(sim, hot_rows, "lock")
        self.page_latches = HotSlotArray(sim, hot_pages, "pagelatch")
        self.latches = HotSlotArray(sim, latch_slots, "latch")

    def critical_section(
        self,
        wait_type: WaitType,
        slot_index: int,
        hold_seconds: float,
    ) -> Generator:
        """Generator: acquire the slot, hold it, release, and account the
        queueing delay to *wait_type*."""
        array = self._array_for(wait_type)
        start = self._sim.now
        yield from array.acquire(slot_index)
        waited = self._sim.now - start
        if waited > 0:
            self.accounting.charge(wait_type, waited)
        if hold_seconds > 0:
            yield Timeout(hold_seconds)
        array.release(slot_index)
        return None

    def acquire(self, wait_type: WaitType, slot_index: int) -> Generator:
        """Generator: acquire a slot without releasing (caller releases);
        queueing time is charged to *wait_type*."""
        array = self._array_for(wait_type)
        start = self._sim.now
        yield from array.acquire(slot_index)
        waited = self._sim.now - start
        if waited > 0:
            self.accounting.charge(wait_type, waited)
        return None

    def release(self, wait_type: WaitType, slot_index: int) -> None:
        self._array_for(wait_type).release(slot_index)

    def charge_io_latch(self, seconds: float) -> None:
        """Record a PAGEIOLATCH wait (charged by the executor on IO)."""
        self.accounting.charge(WaitType.PAGEIOLATCH, seconds)

    def _array_for(self, wait_type: WaitType) -> HotSlotArray:
        if wait_type is WaitType.LOCK:
            return self.row_locks
        if wait_type is WaitType.PAGELATCH:
            return self.page_latches
        if wait_type is WaitType.LATCH:
            return self.latches
        raise ConfigurationError(f"{wait_type} is not a slot-based wait")
