"""Tests for the event loop."""

import pytest

from repro.errors import SimulationError
from repro.sim.events import EventLoop


def test_events_fire_in_time_order():
    loop = EventLoop()
    order = []
    loop.schedule_at(3.0, lambda ev: order.append(3))
    loop.schedule_at(1.0, lambda ev: order.append(1))
    loop.schedule_at(2.0, lambda ev: order.append(2))
    loop.run()
    assert order == [1, 2, 3]


def test_simultaneous_events_fire_fifo():
    loop = EventLoop()
    order = []
    for i in range(5):
        loop.schedule_at(1.0, lambda ev, i=i: order.append(i))
    loop.run()
    assert order == [0, 1, 2, 3, 4]


def test_clock_advances_to_event_time():
    loop = EventLoop()
    seen = []
    loop.schedule_at(2.5, lambda ev: seen.append(loop.now))
    loop.run()
    assert seen == [2.5]
    assert loop.now == 2.5


def test_schedule_after_is_relative():
    loop = EventLoop()
    times = []
    def chain(ev):
        times.append(loop.now)
        if len(times) < 3:
            loop.schedule_after(1.0, chain)
    loop.schedule_after(1.0, chain)
    loop.run()
    assert times == [1.0, 2.0, 3.0]


def test_cancelled_event_does_not_fire():
    loop = EventLoop()
    fired = []
    event = loop.schedule_at(1.0, lambda ev: fired.append(1))
    event.cancel()
    loop.run()
    assert fired == []


def test_run_until_stops_before_later_events():
    loop = EventLoop()
    fired = []
    loop.schedule_at(1.0, lambda ev: fired.append(1))
    loop.schedule_at(10.0, lambda ev: fired.append(10))
    loop.run(until=5.0)
    assert fired == [1]
    assert loop.now == 5.0


def test_run_until_then_resume():
    loop = EventLoop()
    fired = []
    loop.schedule_at(10.0, lambda ev: fired.append(10))
    loop.run(until=5.0)
    loop.run()
    assert fired == [10]


def test_scheduling_in_past_raises():
    loop = EventLoop()
    loop.schedule_at(5.0, lambda ev: None)
    loop.run()
    with pytest.raises(SimulationError):
        loop.schedule_at(1.0, lambda ev: None)


def test_negative_delay_raises():
    loop = EventLoop()
    with pytest.raises(SimulationError):
        loop.schedule_after(-1.0, lambda ev: None)


def test_peek_time_skips_cancelled():
    loop = EventLoop()
    first = loop.schedule_at(1.0, lambda ev: None)
    loop.schedule_at(2.0, lambda ev: None)
    first.cancel()
    assert loop.peek_time() == 2.0


def test_events_scheduled_during_run_are_processed():
    loop = EventLoop()
    fired = []
    def outer(ev):
        fired.append("outer")
        loop.schedule_after(0.5, lambda ev2: fired.append("inner"))
    loop.schedule_at(1.0, outer)
    loop.run()
    assert fired == ["outer", "inner"]
    assert loop.now == 1.5


class TestBatchScheduling:
    def test_batch_matches_individual_scheduling(self):
        """schedule_batch must drain in exactly the order a loop of
        schedule_at calls would (time order, FIFO within a time)."""
        times = [3.0, 1.0, 2.0, 1.0, 3.0, 0.5]
        one_by_one = EventLoop()
        fired_a = []
        for i, t in enumerate(times):
            one_by_one.schedule_at(t, lambda ev, i=i: fired_a.append(i))
        one_by_one.run()
        batched = EventLoop()
        fired_b = []
        batched.schedule_batch(
            (t, lambda ev, i=i: fired_b.append(i), None)
            for i, t in enumerate(times)
        )
        batched.run()
        assert fired_b == fired_a

    def test_batch_into_populated_loop(self):
        loop = EventLoop()
        fired = []
        loop.schedule_at(1.5, lambda ev: fired.append("old"))
        loop.schedule_batch([
            (1.0, lambda ev: fired.append("early"), None),
            (2.0, lambda ev: fired.append("late"), None),
        ])
        loop.run()
        assert fired == ["early", "old", "late"]

    def test_batch_rejects_past_times(self):
        loop = EventLoop()
        loop.schedule_at(5.0, lambda ev: None)
        loop.run()
        with pytest.raises(SimulationError):
            loop.schedule_batch([(1.0, lambda ev: None, None)])

    def test_empty_batch_is_a_no_op(self):
        loop = EventLoop()
        loop.schedule_batch([])
        assert len(loop) == 0


class TestCompaction:
    def test_mass_cancellation_triggers_compaction(self):
        from repro.sim.events import COMPACT_MIN_CANCELLED
        loop = EventLoop()
        events = [
            loop.schedule_at(float(i), lambda ev: None)
            for i in range(4 * COMPACT_MIN_CANCELLED)
        ]
        survivors = events[:: 4]
        for event in events:
            if event not in survivors:
                event.cancel()
        assert loop.compactions >= 1
        # Corpses were purged: the heap holds the survivors plus at most
        # the sub-threshold tail of cancellations since the last sweep.
        assert len(loop) <= len(survivors) + COMPACT_MIN_CANCELLED
        assert len(loop) < len(events)

    def test_compaction_preserves_firing_order(self):
        from repro.sim.events import COMPACT_MIN_CANCELLED
        loop = EventLoop()
        fired = []
        keep = []
        for i in range(4 * COMPACT_MIN_CANCELLED):
            event = loop.schedule_at(
                float(i), lambda ev, i=i: fired.append(i)
            )
            if i % 4 == 0:
                keep.append(i)
            else:
                event.cancel()
        loop.run()
        assert fired == keep

    def test_cancel_is_idempotent_and_safe_after_fire(self):
        loop = EventLoop()
        fired = []
        event = loop.schedule_at(1.0, lambda ev: fired.append(1))
        loop.run()
        event.cancel()      # already fired: must be a no-op
        event.cancel()
        assert fired == [1]
        assert loop.compactions == 0
