"""Run the doctests embedded in docstrings of the light-weight modules."""

import doctest

import pytest

import repro.core.report
import repro.engine.plan.render
import repro.sim.events
import repro.sim.process
import repro.sim.randomness
import repro.sim.waterfill
import repro.units

MODULES = [
    repro.sim.events,
    repro.sim.process,
    repro.sim.randomness,
    repro.sim.waterfill,
    repro.engine.plan.render,
    repro.units,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_doctests(module):
    result = doctest.testmod(module, verbose=False)
    if result.attempted == 0:
        pytest.skip(f"{module.__name__} has no doctests")
    assert result.failed == 0
