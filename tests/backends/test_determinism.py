"""Router determinism: the same config and seed must produce identical
placements and bit-identical Measurements whether the sweep runs
in-process or across worker processes."""

import pickle

from repro.core.experiment import ExperimentConfig
from repro.core.knobs import ResourceAllocation
from repro.core.sweeps import run_sweep


def routed_sweep():
    return [
        ExperimentConfig(
            workload="tpch", scale_factor=10, duration=4.0, seed=seed,
            allocation=ResourceAllocation(logical_cores=cores, llc_mb=12),
            router=policy,
        )
        for cores, seed, policy in (
            (32, 0, "rule-based"),
            (8, 3, "rule-based"),
            (32, 1, "cost-scored"),
            (16, 2, "always-columnstore-dss"),
        )
    ]


class TestRouterDeterminism:
    def test_parallel_identical_to_serial(self):
        configs = routed_sweep()
        serial = run_sweep(configs, jobs=1)
        parallel = run_sweep(configs, jobs=4)
        for s, p in zip(serial, parallel):
            assert s.router_decisions == p.router_decisions
            assert s.router_fallbacks == p.router_fallbacks
            assert pickle.dumps(s) == pickle.dumps(p)

    def test_repeat_runs_identical(self):
        config = routed_sweep()[0]
        a, b = run_sweep([config, config], jobs=1)
        assert pickle.dumps(a) == pickle.dumps(b)
