"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for workload in ("asdb", "tpce", "tpch", "htap"):
        assert workload in out


def test_run_basic(capsys):
    code = main(["run", "asdb", "2000", "--duration", "3", "--cores", "8"])
    assert code == 0
    out = capsys.readouterr().out
    assert "primary metric" in out
    assert "MPKI" in out


def test_run_with_limits(capsys):
    code = main([
        "run", "asdb", "2000", "--duration", "3",
        "--write-limit-mb", "50", "--grant-percent", "10",
    ])
    assert code == 0


def test_run_htap_shows_qph(capsys):
    code = main(["run", "htap", "5000", "--duration", "3"])
    assert code == 0
    assert "analytics QPH" in capsys.readouterr().out


def test_sweep_cores(capsys):
    code = main(["sweep", "cores", "asdb", "2000", "--duration-scale", "0.2"])
    assert code == 0
    out = capsys.readouterr().out
    assert "cores" in out and "perf" in out


def test_figure_table2(capsys):
    assert main(["figure", "table2"]) == 0
    assert "Table 2" in capsys.readouterr().out


def test_figure_fig7(capsys):
    assert main(["figure", "fig7"]) == 0
    out = capsys.readouterr().out
    assert "Fig 7a" in out and "Fig 7b" in out


def test_sweep_with_jobs_and_cache(capsys, tmp_path):
    argv = ["sweep", "cores", "asdb", "2000", "--duration-scale", "0.1",
            "--jobs", "2", "--cache-dir", str(tmp_path)]
    assert main(argv) == 0
    cold = capsys.readouterr().out
    assert "cache: 0 hits, 6 misses" in cold
    assert main(argv) == 0
    warm = capsys.readouterr().out
    assert "cache: 6 hits, 0 misses" in warm
    # identical numbers either way — the cache serves, never distorts
    assert warm.splitlines()[1:] == cold.splitlines()[1:]


def test_sweep_no_cache_overrides_env(capsys, tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    code = main(["sweep", "cores", "asdb", "2000",
                 "--duration-scale", "0.1", "--no-cache"])
    assert code == 0
    out = capsys.readouterr().out
    assert "cache:" not in out
    assert list(tmp_path.iterdir()) == []


def test_figure_table3_accepts_runner_flags(capsys, tmp_path):
    code = main(["figure", "table3", "--duration-scale", "0.1",
                 "--jobs", "2", "--cache-dir", str(tmp_path)])
    assert code == 0
    out = capsys.readouterr().out
    assert "Table 3" in out and "cache:" in out


def test_unknown_workload_rejected():
    with pytest.raises(SystemExit):
        main(["run", "oracle", "1"])


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_report(capsys):
    code = main(["report", "--duration-scale", "0.1"])
    assert code == 0
    out = capsys.readouterr().out
    assert "Calibration report" in out
    assert "perf16/perf32" in out


def test_run_overload_flags_show_grant_counters(capsys):
    code = main(["run", "tpch", "100", "--duration", "300",
                 "--grant-timeout", "5"])
    assert code == 0
    out = capsys.readouterr().out
    assert "grant waits" in out
    assert "grant queue peak" in out


def test_run_without_protection_hides_grant_counters(capsys):
    code = main(["run", "tpch", "100", "--duration", "300"])
    assert code == 0
    assert "grant waits" not in capsys.readouterr().out


def test_run_rejects_bad_on_grant_timeout():
    with pytest.raises(SystemExit):
        main(["run", "tpch", "100", "--on-grant-timeout", "explode"])


def test_admission_sweep_reports_monotone_ok(capsys):
    code = main(["admission", "--oversub", "1,4", "--duration-scale", "0.2"])
    assert code == 0
    out = capsys.readouterr().out
    assert "admission-complete: 6 points" in out
    assert "monotone-degradation: ok" in out
    for policy in ("immediate", "serialized", "queued"):
        assert policy in out


def test_admission_single_policy(capsys):
    code = main(["admission", "--oversub", "1,4", "--duration-scale", "0.2",
                 "--admission-policy", "queued"])
    assert code == 0
    out = capsys.readouterr().out
    assert "admission-complete: 2 points" in out
    assert "immediate" not in out


def test_backends_lists_personalities(capsys):
    assert main(["backends"]) == 0
    out = capsys.readouterr().out
    for name in ("rowstore-oltp", "columnstore-dss", "elastic-serverless"):
        assert name in out
    assert "router policies" in out


def test_run_on_columnstore_backend(capsys):
    code = main(["run", "tpch", "10", "--duration", "3",
                 "--backend", "columnstore-dss"])
    assert code == 0
    assert "on columnstore-dss" in capsys.readouterr().out


def test_run_with_router_shows_decisions(capsys):
    code = main(["run", "tpch", "10", "--duration", "3",
                 "--router", "rule-based"])
    assert code == 0
    out = capsys.readouterr().out
    assert "on router:rule-based" in out
    assert "router decisions:" in out


def test_run_rejects_unknown_backend():
    with pytest.raises(SystemExit):
        main(["run", "tpch", "10", "--backend", "hekaton"])


def test_route_admission_reports_floor(capsys):
    code = main(["route", "admission", "--scale-factor", "10",
                 "--oversub", "1,4", "--duration-scale", "0.05"])
    assert code == 0
    out = capsys.readouterr().out
    assert "route-complete: admission" in out
    assert "router-floor: ok" in out
    assert "router:rule-based" in out


def test_route_fig2_compares_backends(capsys):
    code = main(["route", "fig2", "--cores", "8,32",
                 "--duration-scale", "0.05"])
    assert code == 0
    out = capsys.readouterr().out
    assert "route-complete: fig2" in out
    for label in ("rowstore-oltp", "columnstore-dss",
                  "elastic-serverless", "router:rule-based"):
        assert label in out


def test_chaos_quiescent_run_checks_determinism(capsys):
    code = main(["chaos", "--seed", "11", "--scenario", "none",
                 "--duration", "1"])
    assert code == 0
    out = capsys.readouterr().out
    assert "chaos-schedule: seed=11 scenario=none" in out
    assert "invariant durability: ok" in out
    assert "invariant determinism: ok" in out
    assert "chaos-complete: seed=11 ok=True" in out


def test_chaos_failover_scenario_passes_gates(capsys, tmp_path):
    journal = tmp_path / "chaos.jsonl"
    code = main(["chaos", "--seed", "1", "--scenario", "failover",
                 "--duration", "2", "--journal", str(journal)])
    assert code == 0
    out = capsys.readouterr().out
    assert "invariant durability: ok" in out
    assert "invariant availability: ok" in out
    assert "chaos-complete:" in out
    assert journal.exists()
    text = journal.read_text()
    assert '"chaos-schedule"' in text
    assert '"chaos-report"' in text


def test_chaos_rejects_unknown_scenario():
    with pytest.raises(SystemExit):
        main(["chaos", "--scenario", "meteor"])
