"""Perf-smoke gate: apply the benches' thresholds to their JSON reports.

Run after ``bench_runner_scaling.py`` and ``bench_sim_kernel.py`` have
regenerated ``BENCH_runner_scaling.json`` / ``BENCH_sim_kernel.json``:

    python benchmarks/check_perf_smoke.py \\
        [--baseline-kernel baseline/BENCH_sim_kernel.json]

Two classes of check:

* **Machine-relative ratios** (always applied): dispatch overhead under
  10% of serial sweep cost, vectorized MRC and counter rollups >= 2x,
  compaction observed, warm cache >= 10x.  These are robust across
  machines because both sides of each ratio ran on the same host.
* **Cross-commit regression** (only with ``--baseline-kernel``): the
  fresh ``fig2_mini.points_per_second`` must be at least
  ``PERF_SMOKE_ALLOWED_REGRESSION`` (default 0.8, i.e. no more than a
  20% serial-kernel slowdown) times the committed baseline's.  Skipped
  with a notice when the baseline predates the metric.  Absolute
  wall-clock comparisons are only meaningful between same-class runners;
  loosen the env knob if CI hardware changes.
"""

import argparse
import json
import os
import sys
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent

try:
    from benchmarks import (
        bench_fleet_slo,
        bench_runner_scaling,
        bench_sim_kernel,
        bench_whatif,
    )
except ImportError:  # executed as a script: benchmarks/ is sys.path[0]
    import bench_fleet_slo
    import bench_runner_scaling
    import bench_sim_kernel
    import bench_whatif


def check_regression(fresh, baseline_path, allowed):
    baseline = json.loads(Path(baseline_path).read_text())
    old = baseline.get("fig2_mini", {}).get("points_per_second")
    new = fresh.get("fig2_mini", {}).get("points_per_second")
    if not old or not new:
        print("perf-smoke: baseline lacks fig2_mini.points_per_second; "
              "regression check skipped")
        return
    ratio = new / old
    print(f"perf-smoke: serial kernel {new} vs baseline {old} "
          f"points/s ({ratio:.2f}x, floor {allowed:.2f}x)")
    assert ratio >= allowed, (
        f"serial kernel regressed: {new} points/s is {ratio:.2f}x the "
        f"baseline {old} (floor {allowed:.2f}x)"
    )


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scaling", default=_REPO_ROOT / "BENCH_runner_scaling.json",
        help="fresh runner-scaling report",
    )
    parser.add_argument(
        "--kernel", default=_REPO_ROOT / "BENCH_sim_kernel.json",
        help="fresh sim-kernel report",
    )
    parser.add_argument(
        "--baseline-kernel", default=None,
        help="committed BENCH_sim_kernel.json to diff points_per_second "
        "against (omit to skip the cross-commit regression check)",
    )
    parser.add_argument(
        "--whatif", nargs="?", const=_REPO_ROOT / "BENCH_whatif.json",
        default=None, metavar="PATH",
        help="also gate a fresh BENCH_whatif.json (adaptive speedup, "
        "Q-error, serve latency); omit to skip",
    )
    parser.add_argument(
        "--fleet-slo", nargs="?", const=_REPO_ROOT / "BENCH_fleet_slo.json",
        default=None, metavar="PATH",
        help="also gate a fresh BENCH_fleet_slo.json (shed monotonicity "
        "vs fleet size, autoscaler reaction bound); omit to skip",
    )
    args = parser.parse_args(argv)

    scaling = json.loads(Path(args.scaling).read_text())
    kernel = json.loads(Path(args.kernel).read_text())

    bench_runner_scaling.check_report(scaling)
    print(f"perf-smoke: dispatch overhead "
          f"{scaling['dispatch_overhead_fraction']:.1%} "
          f"(limit {bench_runner_scaling.DISPATCH_OVERHEAD_LIMIT:.0%}), "
          f"warm cache {scaling['warm_speedup']}x")
    # An honest verdict either way: a single-core runner cannot validate
    # parallel speedups, and pretending it checked them is worse than
    # saying it skipped them.
    cores = scaling["effective_cores"]
    if scaling["parallel_claims_valid"]:
        best = max(scaling["speedup"].values())
        print(f"perf-smoke: parallel_claims_valid=true "
              f"(effective_cores={cores}); best parallel speedup {best}x")
    else:
        print(f"perf-smoke: parallel_claims_valid=false "
              f"(effective_cores={cores}); SKIPPED parallel-scaling "
              f"assertions — not silently passed")
    bench_sim_kernel.check_report(kernel)
    print(f"perf-smoke: MRC {kernel['mrc']['speedup']}x, "
          f"counter rollup {kernel['counter_rollup']['speedup']}x, "
          f"{kernel['events']['compactions']} compaction(s)")

    if args.baseline_kernel:
        allowed = float(os.environ.get("PERF_SMOKE_ALLOWED_REGRESSION", "0.8"))
        check_regression(kernel, args.baseline_kernel, allowed)
    if args.whatif:
        whatif = json.loads(Path(args.whatif).read_text())
        bench_whatif.check_report(whatif)
        print(f"perf-smoke: whatif adaptive {whatif['adaptive']['speedup']}x "
              f"(floor 1.5x), predicted q-error "
              f"{whatif['adaptive']['predicted_q_error_median']} "
              f"(ceiling 1.15), serve p99 {whatif['serve']['p99_ms']}ms "
              f"(limit 50ms)")
    if args.fleet_slo:
        fleet = json.loads(Path(args.fleet_slo).read_text())
        bench_fleet_slo.check_report(fleet)
        reaction = fleet["reaction"]
        print(f"perf-smoke: fleet reaction "
              f"{reaction['reaction_seconds']}s (bound 4s), shed "
              f"reduction {reaction['shed_reduction']:.0%} over static")
    print("perf-smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
