"""Fig 3: average SSD/DRAM bandwidths; Fig 4: bandwidth CDFs."""

import pytest

from repro.core.figures import fig3_bandwidths, fig4_cdfs
from repro.core.report import format_series, format_table
from repro.hardware.counters import DRAM_READ_BYTES, SSD_READ_BYTES, SSD_WRITE_BYTES


def test_fig3_bandwidth_vs_cores(benchmark, duration_scale, emit):
    def run():
        return {
            w: fig3_bandwidths(w, sf, axis="cores", duration_scale=duration_scale)
            for w, sf in (("tpch", 300), ("asdb", 2000))
        }
    points = benchmark.pedantic(run, rounds=1, iterations=1)
    for workload, series in points.items():
        emit(
            f"Fig 3 — {workload}: bandwidths vs cores",
            format_series(
                "cores",
                [p.x for p in series],
                {
                    "perf": [p.performance for p in series],
                    "ssd_rd_MB/s": [p.ssd_read_mb for p in series],
                    "ssd_wr_MB/s": [p.ssd_write_mb for p in series],
                    "dram_rd_MB/s": [p.dram_read_mb for p in series],
                },
            ),
        )
        # SSD and DRAM bandwidth use grow with performance (§6).
        assert series[-1].dram_read_mb > series[0].dram_read_mb


def test_fig3_dram_bandwidth_vs_cache(benchmark, duration_scale, emit):
    series = benchmark.pedantic(
        lambda: fig3_bandwidths("tpch", 100, axis="llc",
                                duration_scale=duration_scale),
        rounds=1, iterations=1,
    )
    emit(
        "Fig 3 — tpch SF=100: DRAM bandwidth vs LLC size",
        format_series(
            "llc_mb", [p.x for p in series],
            {"dram_rd_MB/s": [p.dram_read_mb for p in series],
             "perf": [p.performance for p in series]},
        ),
    )
    # When performance increases due to larger cache, DRAM bandwidth
    # *drops* (fewer misses) — the second trend of Fig 3.
    assert series[-1].dram_read_mb < series[0].dram_read_mb


def test_fig4_bandwidth_cdfs(benchmark, duration_scale, emit):
    matrix = (("tpch", 300), ("tpch", 10), ("htap", 15000),
              ("asdb", 2000), ("tpce", 5000))
    def run():
        return fig4_cdfs(matrix=matrix, duration_scale=duration_scale,
                         num_points=9)
    cdfs = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for key, series in cdfs.items():
        ssd_read_p99 = series[SSD_READ_BYTES][-1][0]
        ssd_write_p99 = series[SSD_WRITE_BYTES][-1][0]
        dram_read_p99 = series[DRAM_READ_BYTES][-1][0]
        rows.append((key[0], key[1], ssd_read_p99, ssd_write_p99, dram_read_p99))
    emit(
        "Fig 4 — max of bandwidth CDFs (MB/s) with full allocations",
        format_table(["workload", "SF", "ssd_rd", "ssd_wr", "dram_rd"], rows),
    )
    by_key = {(w, sf): (rd, wr, dram) for w, sf, rd, wr, dram in rows}
    # TPC-H SF=300 shows the largest SSD and DRAM read bandwidths (§6).
    assert by_key[("tpch", 300)][0] >= by_key[("asdb", 2000)][0]
    assert by_key[("tpch", 300)][0] >= by_key[("tpch", 10)][0]
    # Transactional IO has a much larger *write share* than analytical IO
    # (§6: "a significant portion of their SSD bandwidth use is for
    # writes whereas it is mostly reads for analytical components").
    def write_share(key):
        rd, wr, _ = by_key[key]
        total = rd + wr
        return wr / total if total > 0 else 0.0
    assert write_share(("asdb", 2000)) > write_share(("tpch", 300))
