"""Miss-ratio curves from working-set mixtures.

A workload's LLC behaviour is modelled as a mixture of *working-set
components*, each with a footprint (bytes) and an access intensity
(accesses per kilo-instruction).  Under LRU-like replacement, hotter
components occupy the cache first; a component whose footprint fits in the
remaining allocation hits almost always, one that does not fit hits on the
resident fraction, and streaming components (footprint >> any cache) never
hit.

The resulting MPKI-versus-allocation curve is piecewise, with *knees* at
the cumulative component sizes — matching the paper's §5 observation that
miss-rate curves for database workloads show knees at small cache sizes
(cf. SPLASH-2 [29] and the sufficient-LLC sizes of Table 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class WorkingSetComponent:
    """One locality class of a workload's memory reference stream.

    Attributes:
        name: label for diagnostics ("btree-upper", "hash-buckets", ...).
        footprint_bytes: total bytes the component touches repeatedly.
            ``float('inf')`` marks a streaming component that can never be
            fully cached.
        accesses_per_ki: LLC accesses per kilo-instruction belonging to
            this component.
        reuse_efficiency: fraction of accesses that hit when the component
            is fully resident (captures conflict/coherence misses); 1.0
            means a perfectly cacheable component.
    """

    name: str
    footprint_bytes: float
    accesses_per_ki: float
    reuse_efficiency: float = 1.0

    def __post_init__(self):
        if self.footprint_bytes <= 0:
            raise ConfigurationError(f"{self.name}: footprint must be positive")
        if self.accesses_per_ki < 0:
            raise ConfigurationError(f"{self.name}: negative access intensity")
        if not 0.0 <= self.reuse_efficiency <= 1.0:
            raise ConfigurationError(f"{self.name}: reuse efficiency in [0,1]")

    def access_density(self) -> float:
        """Accesses per byte — the priority under LRU-like replacement."""
        if self.footprint_bytes == float("inf"):
            return 0.0
        return self.accesses_per_ki / self.footprint_bytes


class MissRatioCurve:
    """MPKI as a function of allocated cache bytes for one workload."""

    def __init__(self, components: Sequence[WorkingSetComponent]):
        if not components:
            raise ConfigurationError("need at least one working-set component")
        # LRU-like: denser components win cache space first.
        self._components: List[WorkingSetComponent] = sorted(
            components, key=lambda c: c.access_density(), reverse=True
        )

    @property
    def components(self) -> List[WorkingSetComponent]:
        return list(self._components)

    def total_accesses_per_ki(self) -> float:
        return sum(c.accesses_per_ki for c in self._components)

    def mpki(self, allocated_bytes: float, footprint_scale: float = 1.0) -> float:
        """Misses per kilo-instruction with *allocated_bytes* of LLC.

        ``footprint_scale`` inflates every footprint; the executor uses it
        to model more concurrent threads enlarging the aggregate working
        set (e.g. hyper-threading doubling resident thread state).
        """
        if allocated_bytes < 0:
            raise ConfigurationError("negative allocation")
        if footprint_scale <= 0:
            raise ConfigurationError("footprint scale must be positive")
        remaining = float(allocated_bytes)
        misses = 0.0
        for comp in self._components:
            footprint = comp.footprint_bytes * footprint_scale
            if footprint == float("inf"):
                # Streaming: every access misses.
                misses += comp.accesses_per_ki
                continue
            resident = min(1.0, remaining / footprint) if footprint > 0 else 1.0
            hit_rate = resident * comp.reuse_efficiency
            misses += comp.accesses_per_ki * (1.0 - hit_rate)
            remaining = max(0.0, remaining - footprint)
        return misses

    def hit_ratio(self, allocated_bytes: float, footprint_scale: float = 1.0) -> float:
        total = self.total_accesses_per_ki()
        if total == 0:
            return 1.0
        return 1.0 - self.mpki(allocated_bytes, footprint_scale) / total

    def knee_bytes(self) -> List[float]:
        """Allocation sizes where the curve's slope changes (the knees)."""
        knees: List[float] = []
        cumulative = 0.0
        for comp in self._components:
            if comp.footprint_bytes == float("inf"):
                continue
            cumulative += comp.footprint_bytes
            knees.append(cumulative)
        return knees
