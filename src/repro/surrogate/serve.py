"""Interactive what-if serving: sizing answers without sweep latency.

Grown from ``examples/cloud_sizing.py``: that example asks "which
bandwidth tier meets my QPS target?" by running a full sweep per
question.  The :class:`WhatIfServer` answers the same class of question
— "throughput at 6 cores / 8 LLC ways / 70% grant?" — at interactive
latency by consulting, in order:

1. the **result cache** (simulated ground truth, if this exact config
   was ever measured),
2. the **surrogate** (when its uncertainty clears the configured bar),
3. **simulation** as the fallback of record — run the experiment, store
   it in the cache, answer with truth.

Every answer carries its provenance (``cache`` / ``surrogate`` /
``simulated``), the uncertainty when predicted, and the server-side
latency, so callers can tell an 8 ms surrogate answer from a 40 s
simulation.  The async API wraps the blocking resolution in a worker
thread (``asyncio.to_thread``), which keeps cache/surrogate answers
concurrent while a simulation fallback is in flight.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.experiment import Experiment, ExperimentConfig
from repro.core.measurement import Measurement
from repro.core.resultcache import ResultCache
from repro.errors import ConfigurationError
from repro.surrogate.corpus import TARGET_NAMES, targets_for_measurement
from repro.surrogate.features import features_for_config
from repro.surrogate.model import SurrogateModel

#: Answer provenance labels.
SOURCE_CACHE = "cache"
SOURCE_SURROGATE = "surrogate"
SOURCE_SIMULATED = "simulated"

#: Predictions above this uncertainty fall through to simulation.
DEFAULT_UNCERTAINTY_THRESHOLD = 0.35


@dataclass
class WhatIfAnswer:
    """One sizing answer with provenance and serve-side latency."""

    config: ExperimentConfig
    source: str                       # "cache" | "surrogate" | "simulated"
    targets: Dict[str, float]
    uncertainty: Optional[float]      # None for ground-truth sources
    latency_seconds: float

    @property
    def primary_metric(self) -> float:
        return self.targets[TARGET_NAMES[0]]

    def describe(self) -> str:
        alloc = self.config.allocation
        text = (
            f"{self.config.workload} sf={self.config.scale_factor} "
            f"cores={alloc.logical_cores} llc={alloc.llc_mb}MB "
            f"grant={alloc.grant_percent:g}%"
        )
        if alloc.read_bw_limit:
            text += f" rd<={alloc.read_bw_limit / 1e6:g}MB/s"
        if alloc.write_bw_limit:
            text += f" wr<={alloc.write_bw_limit / 1e6:g}MB/s"
        text += f": {self.primary_metric:.3f} [{self.source}"
        if self.uncertainty is not None:
            text += f", uncertainty {self.uncertainty:.3f}"
        return text + f", {self.latency_seconds * 1000.0:.1f} ms]"


@dataclass
class ServeStats:
    """Per-source answer counters (the serve-path scoreboard)."""

    cache: int = 0
    surrogate: int = 0
    simulated: int = 0
    refused: int = 0
    latencies: Dict[str, List[float]] = field(default_factory=dict)

    def observe(self, answer: WhatIfAnswer) -> None:
        setattr(self, answer.source, getattr(self, answer.source) + 1)
        self.latencies.setdefault(answer.source, []).append(
            answer.latency_seconds
        )

    def summary(self) -> str:
        return (
            f"{self.cache} cache, {self.surrogate} surrogate, "
            f"{self.simulated} simulated, {self.refused} refused"
        )


class WhatIfServer:
    """Answer sizing queries from cache-or-surrogate with sim fallback."""

    def __init__(
        self,
        model: Optional[SurrogateModel] = None,
        cache: Optional[ResultCache] = None,
        uncertainty_threshold: float = DEFAULT_UNCERTAINTY_THRESHOLD,
        allow_simulation: bool = True,
    ) -> None:
        if model is None and cache is None and not allow_simulation:
            raise ConfigurationError(
                "a what-if server needs a model, a cache, or simulation"
            )
        self.model = model
        self.cache = cache
        self.uncertainty_threshold = uncertainty_threshold
        self.allow_simulation = allow_simulation
        self.stats = ServeStats()

    # -- resolution ------------------------------------------------------------

    def _from_cache(self, config: ExperimentConfig) -> Optional[Measurement]:
        if self.cache is None:
            return None
        return self.cache.get(config)

    def _answer_targets(self, measurement: Measurement) -> Dict[str, float]:
        return dict(zip(
            TARGET_NAMES, targets_for_measurement(measurement).tolist()
        ))

    def answer(self, config: ExperimentConfig) -> WhatIfAnswer:
        """Resolve one query synchronously (see module docstring order)."""
        start = time.perf_counter()
        cached = self._from_cache(config)
        if cached is not None:
            answer = WhatIfAnswer(
                config=config,
                source=SOURCE_CACHE,
                targets=self._answer_targets(cached),
                uncertainty=None,
                latency_seconds=time.perf_counter() - start,
            )
            self.stats.observe(answer)
            return answer
        if self.model is not None and self.model.fitted:
            prediction = self.model.predict(features_for_config(config))
            if (prediction.uncertainty <= self.uncertainty_threshold
                    or not self.allow_simulation):
                answer = WhatIfAnswer(
                    config=config,
                    source=SOURCE_SURROGATE,
                    targets=dict(prediction.targets),
                    uncertainty=prediction.uncertainty,
                    latency_seconds=time.perf_counter() - start,
                )
                self.stats.observe(answer)
                return answer
        if not self.allow_simulation:
            self.stats.refused += 1
            raise ConfigurationError(
                "what-if query unanswerable: no cache entry, surrogate "
                "uncertain (or absent), and simulation fallback disabled"
            )
        measurement = Experiment(config).run()
        if self.cache is not None:
            self.cache.put(config, measurement)
        answer = WhatIfAnswer(
            config=config,
            source=SOURCE_SIMULATED,
            targets=self._answer_targets(measurement),
            uncertainty=None,
            latency_seconds=time.perf_counter() - start,
        )
        self.stats.observe(answer)
        return answer

    def answer_many(
        self, configs: Sequence[ExperimentConfig]
    ) -> List[WhatIfAnswer]:
        return [self.answer(config) for config in configs]

    # -- async API -------------------------------------------------------------

    async def answer_async(self, config: ExperimentConfig) -> WhatIfAnswer:
        """Async resolution; the blocking path runs in a worker thread."""
        return await asyncio.to_thread(self.answer, config)

    async def answer_many_async(
        self, configs: Sequence[ExperimentConfig]
    ) -> List[WhatIfAnswer]:
        """Resolve many queries concurrently, results in input order."""
        return list(await asyncio.gather(
            *(self.answer_async(config) for config in configs)
        ))
