"""PCM / iostat style performance counter sampling.

The paper collects DRAM read/write bandwidth, LLC misses, and instructions
retired with the Processor Counter Monitor, and SSD bandwidth with iostat,
all "average values taken over 1-second intervals" (§3).  This module
samples cumulative totals exposed by a :class:`CounterSource` once per
simulated second and keeps the interval-rate series, from which means
(Figs 2, 3) and CDFs (Fig 4) are derived.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Protocol

from repro.sim.process import Simulator, Timeout
from repro.sim.stats import Cdf


class CounterSource(Protocol):
    """Anything that exposes monotonically non-decreasing totals."""

    def counter_totals(self) -> Dict[str, float]:
        """Current cumulative totals keyed by counter name."""
        ...  # pragma: no cover


#: Canonical counter names (values are cumulative totals).
INSTRUCTIONS = "instructions_retired"
LLC_MISSES = "llc_misses"
DRAM_READ_BYTES = "dram_read_bytes"
DRAM_WRITE_BYTES = "dram_write_bytes"
SSD_READ_BYTES = "ssd_read_bytes"
SSD_WRITE_BYTES = "ssd_write_bytes"

ALL_COUNTERS = (
    INSTRUCTIONS,
    LLC_MISSES,
    DRAM_READ_BYTES,
    DRAM_WRITE_BYTES,
    SSD_READ_BYTES,
    SSD_WRITE_BYTES,
)


@dataclass
class CounterSeries:
    """Per-interval rates for every counter, plus derived metrics."""

    interval: float = 1.0
    rates: Dict[str, List[float]] = field(default_factory=dict)

    def append(self, name: str, rate: float) -> None:
        self.rates.setdefault(name, []).append(rate)

    def series(self, name: str) -> List[float]:
        return list(self.rates.get(name, []))

    def mean(self, name: str) -> float:
        values = self.rates.get(name)
        return sum(values) / len(values) if values else 0.0

    def cdf(self, name: str) -> Cdf:
        return Cdf(self.rates.get(name, []))

    def mean_mpki(self) -> float:
        """Misses per kilo-instruction over the whole run."""
        instructions = sum(self.rates.get(INSTRUCTIONS, []))
        misses = sum(self.rates.get(LLC_MISSES, []))
        if instructions <= 0:
            return 0.0
        return 1000.0 * misses / instructions


class CounterSampler:
    """A simulation process sampling a :class:`CounterSource` every second."""

    def __init__(self, sim: Simulator, source: CounterSource, interval: float = 1.0):
        self._sim = sim
        self._source = source
        self.series = CounterSeries(interval=interval)
        self._last_totals = dict(source.counter_totals())
        self._process = sim.spawn(self._run(), name="counter-sampler")

    def _run(self) -> Generator:
        interval = self.series.interval
        while True:
            yield Timeout(interval)
            totals = self._source.counter_totals()
            for name, value in totals.items():
                previous = self._last_totals.get(name, 0.0)
                self.series.append(name, (value - previous) / interval)
            self._last_totals = dict(totals)

    def stop(self) -> None:
        self._process.interrupt()
