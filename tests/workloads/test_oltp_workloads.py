"""Tests for the OLTP workload machinery and the TPC-E/ASDB/HTAP mixes."""

import numpy as np
import pytest

from repro.core.knobs import ResourceAllocation
from repro.engine.engine import SqlEngine
from repro.engine.locks import WaitType
from repro.engine.resource_governor import ResourceGovernor
from repro.errors import WorkloadError
from repro.hardware.machine import Machine
from repro.workloads import make_workload
from repro.workloads.asdb import ASDB_MIX, AsdbWorkload
from repro.workloads.base import ThroughputTracker
from repro.workloads.htap import HtapWorkload, htap_queries
from repro.workloads.oltp import TransactionType, _skewed_slot
from repro.workloads.tpce import TPCE_MIX, TpceWorkload


def engine_for(workload):
    machine = Machine()
    ResourceAllocation().apply_to(machine)
    return SqlEngine(
        machine, workload.database, workload.execution_characteristics(),
        governor=ResourceGovernor(), **workload.engine_parameters(),
    )


class TestTransactionType:
    def test_bad_shape_rejected(self):
        with pytest.raises(WorkloadError):
            TransactionType(name="x", weight=0.0, instructions=1.0,
                            page_accesses=0, log_bytes=0, main_table="t")

    def test_mixes_reference_existing_tables(self):
        tpce_db = TpceWorkload(5000).database
        for txn in TPCE_MIX:
            assert txn.main_table in tpce_db.tables, txn.name
        asdb_db = AsdbWorkload(2000).database
        for txn in ASDB_MIX:
            assert txn.main_table in asdb_db.tables, txn.name

    def test_write_transactions_log(self):
        writers = [t for t in TPCE_MIX if t.log_bytes > 0]
        readers = [t for t in TPCE_MIX if t.log_bytes == 0]
        assert writers and readers  # the mix is read/write blended


class TestSkewedSlot:
    def test_range(self):
        rng = np.random.default_rng(0)
        slots = [_skewed_slot(rng, 10) for _ in range(1000)]
        assert min(slots) >= 0
        assert max(slots) <= 9

    def test_bias_toward_low_indexes(self):
        rng = np.random.default_rng(0)
        slots = [_skewed_slot(rng, 100) for _ in range(5000)]
        low = sum(1 for s in slots if s < 20)
        assert low > 2000  # far more than the uniform 20%


class TestScaleDependentContention:
    def test_lock_slots_grow_with_sf(self):
        assert TpceWorkload(15000).hot_lock_rows() > TpceWorkload(5000).hot_lock_rows()

    def test_latch_slots_grow_sublinearly(self):
        small = TpceWorkload(5000).hot_latch_pages()
        large = TpceWorkload(15000).hot_latch_pages()
        assert small < large < 3 * small


class TestDemandConstruction:
    def test_fitting_database_rarely_reads(self):
        workload = TpceWorkload(5000, clients=1)
        engine = engine_for(workload)
        rng = np.random.default_rng(1)
        reads = [
            workload.build_demand(engine, TPCE_MIX[0], rng).page_reads
            for _ in range(200)
        ]
        # Mostly-resident database: cold reads are rare events.
        assert sum(reads) < 0.05 * 200 * TPCE_MIX[0].page_accesses

    def test_oversized_database_reads_often(self):
        workload = TpceWorkload(15000, clients=1)
        engine = engine_for(workload)
        rng = np.random.default_rng(1)
        reads = [
            workload.build_demand(engine, TPCE_MIX[0], rng).page_reads
            for _ in range(200)
        ]
        assert sum(reads) > 0

    def test_lock_points_follow_probability(self):
        workload = TpceWorkload(5000, clients=1)
        engine = engine_for(workload)
        rng = np.random.default_rng(2)
        market_feed = next(t for t in TPCE_MIX if t.name == "market_feed")
        demands = [workload.build_demand(engine, market_feed, rng)
                   for _ in range(100)]
        locked = sum(1 for d in demands if d.locks)
        assert locked > 80  # lock_probability = 0.95

    def test_instruction_budget_varies(self):
        workload = AsdbWorkload(2000, clients=1)
        engine = engine_for(workload)
        rng = np.random.default_rng(3)
        budgets = {workload.build_demand(engine, ASDB_MIX[0], rng).instructions
                   for _ in range(10)}
        assert len(budgets) == 10


class TestHtap:
    def test_composition(self):
        workload = HtapWorkload(5000)
        assert workload.clients == 99
        assert workload.dss_clients == 1

    def test_queries_reference_tpce_schema(self):
        db = HtapWorkload(5000).database
        for spec in htap_queries(5000):
            for ref in spec.tables:
                assert ref.table in db.tables

    def test_shared_cpu_pool_requested(self):
        assert HtapWorkload(5000).engine_parameters()["share_cpu_pool"] is True

    def test_qph_metric(self):
        workload = HtapWorkload(5000)
        tracker = ThroughputTracker()
        for _ in range(5):
            tracker.record("query", 1.0)
        assert workload.analytics_qph(tracker, elapsed=3600.0) == pytest.approx(5.0)


class TestShortRuns:
    """Miniature end-to-end runs per workload (seconds of simulated time)."""

    @pytest.mark.parametrize("name,sf", [
        ("asdb", 2000), ("tpce", 5000), ("htap", 5000),
    ])
    def test_transactions_complete(self, name, sf):
        workload = make_workload(name, sf)
        engine = engine_for(workload)
        tracker = ThroughputTracker()
        workload.spawn_clients(engine, tracker, until=2.0)
        engine.machine.sim.run(until=2.0)
        assert tracker.count("txn") > 0
        assert workload.primary_metric(tracker, 2.0) > 0

    def test_tpch_stream_completes_queries(self):
        workload = make_workload("tpch", 10)
        engine = engine_for(workload)
        tracker = ThroughputTracker()
        workload.spawn_clients(engine, tracker, until=20.0)
        engine.machine.sim.run(until=20.0)
        assert tracker.count("query") > 0

    def test_htap_runs_both_components(self):
        workload = make_workload("htap", 5000)
        engine = engine_for(workload)
        tracker = ThroughputTracker()
        workload.spawn_clients(engine, tracker, until=5.0)
        engine.machine.sim.run(until=5.0)
        assert tracker.count("txn") > 0
        assert tracker.count("query") > 0

    def test_unknown_workload_rejected(self):
        with pytest.raises(KeyError):
            make_workload("mysql", 1)
