"""Tests for statistics accumulators, including property-based checks."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import SimulationError
from repro.sim.stats import Cdf, Histogram, TimeWeightedStat, WelfordStat

finite_floats = st.floats(
    min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
)


class TestWelford:
    def test_empty(self):
        stat = WelfordStat()
        assert stat.mean == 0.0
        assert stat.variance == 0.0

    def test_known_values(self):
        stat = WelfordStat()
        stat.extend([1.0, 2.0, 3.0, 4.0])
        assert stat.mean == pytest.approx(2.5)
        assert stat.variance == pytest.approx(np.var([1, 2, 3, 4], ddof=1))
        assert stat.minimum == 1.0
        assert stat.maximum == 4.0

    @given(st.lists(finite_floats, min_size=2, max_size=100))
    def test_matches_numpy(self, values):
        stat = WelfordStat()
        stat.extend(values)
        assert stat.mean == pytest.approx(np.mean(values), rel=1e-6, abs=1e-6)
        assert stat.variance == pytest.approx(
            np.var(values, ddof=1), rel=1e-4, abs=1e-4
        )


class TestTimeWeighted:
    def test_constant_signal(self):
        stat = TimeWeightedStat(initial=5.0)
        stat.update(10.0, 5.0)
        assert stat.mean() == pytest.approx(5.0)

    def test_step_signal(self):
        stat = TimeWeightedStat(initial=0.0)
        stat.update(1.0, 10.0)   # level 0 for [0,1)
        stat.update(3.0, 0.0)    # level 10 for [1,3)
        assert stat.mean() == pytest.approx(20.0 / 3.0)

    def test_mean_with_end_time_extension(self):
        stat = TimeWeightedStat(initial=2.0)
        stat.update(1.0, 4.0)
        assert stat.mean(end_time=3.0) == pytest.approx((2.0 + 8.0) / 3.0)

    def test_backwards_time_raises(self):
        stat = TimeWeightedStat()
        stat.update(5.0, 1.0)
        with pytest.raises(SimulationError):
            stat.update(4.0, 2.0)

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.001, max_value=10.0),
                st.floats(min_value=0.0, max_value=100.0),
            ),
            min_size=1,
            max_size=50,
        )
    )
    def test_mean_within_min_max(self, steps):
        stat = TimeWeightedStat(initial=steps[0][1])
        t = 0.0
        for dt, level in steps:
            t += dt
            stat.update(t, level)
        mean = stat.mean()
        assert stat.minimum - 1e-9 <= mean <= stat.maximum + 1e-9


class TestHistogram:
    def test_binning(self):
        hist = Histogram(bin_width=1.0, num_bins=10)
        for value in [0.5, 1.5, 1.6, 9.9]:
            hist.add(value)
        assert hist.counts[0] == 1
        assert hist.counts[1] == 2
        assert hist.counts[9] == 1

    def test_overflow(self):
        hist = Histogram(bin_width=1.0, num_bins=2)
        hist.add(100.0)
        assert hist.overflow == 1

    def test_fraction_below(self):
        hist = Histogram(bin_width=1.0, num_bins=10)
        for value in range(10):
            hist.add(value + 0.5)
        assert hist.fraction_below(5.0) == pytest.approx(0.5)


class TestCdf:
    def test_percentiles(self):
        cdf = Cdf(list(range(101)))
        assert cdf.percentile(0) == 0
        assert cdf.percentile(50) == 50
        assert cdf.percentile(100) == 100

    def test_incremental_adds(self):
        cdf = Cdf()
        for value in [3.0, 1.0, 2.0]:
            cdf.add(value)
        assert cdf.percentile(100) == 3.0
        assert cdf.fraction_below(1.5) == pytest.approx(1 / 3)

    def test_empty_percentile_raises(self):
        with pytest.raises(SimulationError):
            Cdf().percentile(50)

    def test_series_monotone(self):
        cdf = Cdf(np.random.default_rng(0).normal(size=500).tolist())
        points = cdf.series(num_points=50)
        values = [v for v, _ in points]
        fractions = [f for _, f in points]
        assert values == sorted(values)
        assert fractions == sorted(fractions)
        assert fractions[-1] == pytest.approx(1.0)

    @given(st.lists(finite_floats, min_size=1, max_size=200))
    def test_fraction_below_is_monotone(self, samples):
        cdf = Cdf(samples)
        lo, hi = min(samples), max(samples)
        mid = (lo + hi) / 2
        assert cdf.fraction_below(lo - 1) <= cdf.fraction_below(mid)
        assert cdf.fraction_below(mid) <= cdf.fraction_below(hi + 1)
        assert cdf.fraction_below(hi) == pytest.approx(1.0)

    @given(st.lists(finite_floats, min_size=2, max_size=200))
    def test_percentile_monotone_in_p(self, samples):
        cdf = Cdf(samples)
        previous = cdf.percentile(0)
        for p in (10, 25, 50, 75, 90, 100):
            current = cdf.percentile(p)
            assert current >= previous - 1e-9
            previous = current
