"""Tests for the event tracer."""

import pytest

from repro.errors import SimulationError
from repro.sim.process import Simulator, Timeout
from repro.sim.tracing import Tracer


def test_tracer_records_fired_events():
    sim = Simulator()
    def worker():
        yield Timeout(1.0)
        yield Timeout(1.0)
    sim.spawn(worker())
    with Tracer(sim.loop) as tracer:
        sim.run()
    assert tracer.total_fired >= 3  # spawn + two timeouts
    assert len(tracer.records) == tracer.total_fired
    times = [r.time for r in tracer.records]
    assert times == sorted(times)


def test_tracer_detaches_cleanly():
    sim = Simulator()
    tracer = Tracer(sim.loop)
    tracer.attach()
    tracer.detach()
    def worker():
        yield Timeout(1.0)
    sim.spawn(worker())
    sim.run()
    assert tracer.total_fired == 0  # nothing traced after detach


def test_ring_buffer_bounds_memory():
    sim = Simulator()
    def worker():
        for _ in range(50):
            yield Timeout(0.1)
    sim.spawn(worker())
    with Tracer(sim.loop, capacity=10) as tracer:
        sim.run()
    assert len(tracer.records) == 10
    assert tracer.total_fired > 10


def test_predicate_filters():
    sim = Simulator()
    def worker():
        for _ in range(5):
            yield Timeout(1.0)
    sim.spawn(worker())
    with Tracer(sim.loop, predicate=lambda t, label: t >= 3.0) as tracer:
        sim.run()
    assert all(r.time >= 3.0 for r in tracer.records)


def test_histogram_and_dump():
    sim = Simulator()
    def worker():
        yield Timeout(1.0)
        yield Timeout(1.0)
    sim.spawn(worker())
    with Tracer(sim.loop) as tracer:
        sim.run()
    hist = tracer.histogram_by_label()
    assert sum(hist.values()) == tracer.total_fired
    dump = tracer.dump(last=2)
    assert len(dump.splitlines()) == 2


def test_double_attach_rejected():
    sim = Simulator()
    tracer = Tracer(sim.loop).attach()
    with pytest.raises(SimulationError):
        tracer.attach()
    tracer.detach()


def test_zero_capacity_rejected():
    with pytest.raises(SimulationError):
        Tracer(Simulator().loop, capacity=0)
