"""Resource allocation knobs — the experiment x-axes of the paper.

One :class:`ResourceAllocation` captures everything the paper varies:

* ``logical_cores`` — cpuset size, allocated in the §4 order;
* ``llc_mb`` — total CAT allocation across both sockets (§5);
* ``max_dop`` — resource-governor MAXDOP cap (§4, §7);
* ``read_bw_limit`` / ``write_bw_limit`` — cgroup blkio caps in bytes/sec
  (§6);
* ``grant_percent`` — per-query memory grant percentage (§8).

Beyond the paper's axes, the overload-protection knobs
(``grant_timeout_s``, ``small_query_bypass_bytes``, ``max_queue_depth``,
``on_grant_timeout``) configure RESOURCE_SEMAPHORE grant queueing for
the §10 concurrency-surge extension.  All default off, which reproduces
the historical instant-admission behavior exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.calibration import DEFAULT_GRANT_PERCENT
from repro.engine.resource_governor import ON_TIMEOUT_CHOICES, ON_TIMEOUT_DEGRADE
from repro.errors import ConfigurationError
from repro.hardware.cgroups import BlkioLimits
from repro.hardware.machine import Machine


@dataclass(frozen=True)
class ResourceAllocation:
    """A complete resource configuration for one experiment run."""

    logical_cores: int = 32
    llc_mb: int = 40
    max_dop: Optional[int] = None   # None = follow the core count (§4)
    read_bw_limit: Optional[float] = None
    write_bw_limit: Optional[float] = None
    grant_percent: float = DEFAULT_GRANT_PERCENT
    grant_timeout_s: Optional[float] = None
    small_query_bypass_bytes: float = 0.0
    max_queue_depth: Optional[int] = None
    on_grant_timeout: str = ON_TIMEOUT_DEGRADE

    def __post_init__(self):
        if self.logical_cores < 1:
            raise ConfigurationError("need at least one core")
        if self.llc_mb < 2:
            raise ConfigurationError("CAT granularity is 2 MB total")
        if self.max_dop is not None and self.max_dop < 1:
            raise ConfigurationError("max_dop must be >= 1")
        if not 0 < self.grant_percent <= 100:
            raise ConfigurationError("grant percent in (0, 100]")
        if self.grant_timeout_s is not None and self.grant_timeout_s <= 0:
            raise ConfigurationError("grant_timeout_s must be positive or None")
        if self.small_query_bypass_bytes < 0:
            raise ConfigurationError("small_query_bypass_bytes must be >= 0")
        if self.max_queue_depth is not None and self.max_queue_depth < 0:
            raise ConfigurationError("max_queue_depth must be >= 0 or None")
        if self.on_grant_timeout not in ON_TIMEOUT_CHOICES:
            raise ConfigurationError(
                f"on_grant_timeout must be one of {sorted(ON_TIMEOUT_CHOICES)}"
            )

    @property
    def effective_max_dop(self) -> int:
        """The §4 methodology caps MAXDOP at the allocated core count."""
        if self.max_dop is None:
            return self.logical_cores
        return min(self.max_dop, self.logical_cores)

    def apply_to(self, machine: Machine) -> None:
        """Configure a machine: cpuset, CAT, and blkio limits."""
        machine.allocate_cores(self.logical_cores)
        machine.allocate_llc_mb(self.llc_mb)
        machine.apply_blkio(
            BlkioLimits(read_bps=self.read_bw_limit, write_bps=self.write_bw_limit)
        )

    # -- convenience builders ---------------------------------------------------

    def with_cores(self, logical_cores: int) -> "ResourceAllocation":
        return replace(self, logical_cores=logical_cores)

    def with_llc(self, llc_mb: int) -> "ResourceAllocation":
        return replace(self, llc_mb=llc_mb)

    def with_maxdop(self, max_dop: int) -> "ResourceAllocation":
        return replace(self, max_dop=max_dop)

    def with_read_limit(self, limit: Optional[float]) -> "ResourceAllocation":
        return replace(self, read_bw_limit=limit)

    def with_write_limit(self, limit: Optional[float]) -> "ResourceAllocation":
        return replace(self, write_bw_limit=limit)

    def with_grant_percent(self, percent: float) -> "ResourceAllocation":
        return replace(self, grant_percent=percent)

    def with_grant_timeout(self, timeout_s: Optional[float]) -> "ResourceAllocation":
        return replace(self, grant_timeout_s=timeout_s)

    def with_small_query_bypass(self, nbytes: float) -> "ResourceAllocation":
        return replace(self, small_query_bypass_bytes=nbytes)

    def with_max_queue_depth(self, depth: Optional[int]) -> "ResourceAllocation":
        return replace(self, max_queue_depth=depth)

    def with_on_grant_timeout(self, policy: str) -> "ResourceAllocation":
        return replace(self, on_grant_timeout=policy)


#: The paper's core-count sweep points (Fig 2 x-axis).
CORE_SWEEP = (1, 2, 4, 8, 16, 32)

#: The paper's LLC sweep points in MB (Fig 2, 2 MB granularity).
LLC_SWEEP_MB = (2, 4, 6, 8, 10, 12, 14, 16, 20, 24, 28, 32, 36, 40)

#: MAXDOP sweep (Fig 6; baseline is 32).
MAXDOP_SWEEP = (1, 2, 4, 8, 16, 32)

#: Grant percentage sweep (Fig 8; baseline is 25%).
GRANT_SWEEP_PERCENT = (25.0, 15.0, 5.0, 2.0)
