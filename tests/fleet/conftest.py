"""Shared builders for the fleet resilience suite.

Every test fleet is a small replica group of real engines on one shared
simulated clock — the same construction the chaos scheduler uses, minus
the client load and episode drivers, so tests can compose exactly the
pieces they exercise.
"""

from repro.backends.base import make_backend
from repro.core.knobs import ResourceAllocation
from repro.fleet.replicas import Replica, ReplicaGroup
from repro.hardware.machine import Machine, MachineSpec
from repro.sim.process import Simulator, Timeout
from repro.sim.randomness import RandomStreams
from repro.workloads import make_workload

WRITE_BYTES = 16 * 1024


def build_fleet(replicas=3, seed=0, backend="rowstore-oltp",
                retry_interval=0.005):
    """(sim, group) with *replicas* engines on one clock."""
    sim = Simulator()
    streams = RandomStreams(seed).fork("fleet-tests")
    workload = make_workload("asdb", 2000)
    personality = make_backend(backend)
    allocation = ResourceAllocation()
    members = []
    for i in range(replicas):
        machine = Machine(
            spec=MachineSpec(),
            seed=streams.fork(f"replica{i}").seed,
            shared_sim=sim,
        )
        allocation.apply_to(machine)
        engine = personality.build_engine(machine, workload, allocation)
        members.append(Replica(index=i, machine=machine, engine=engine))
    return sim, ReplicaGroup(sim, members, retry_interval=retry_interval)


def spawn_writes(sim, group, count, nbytes=WRITE_BYTES, interval=0.0,
                 start_txn=0):
    """Spawn one sequential writer of *count* writes; returns the list
    acknowledged records land in (populated as the sim runs)."""
    records = []

    def writer():
        for txn in range(start_txn, start_txn + count):
            if interval:
                yield Timeout(interval)
            record = yield from group.submit_write(nbytes, txn_id=txn)
            records.append(record)

    sim.spawn(writer(), name="test-writer")
    return records


def run_writes(sim, group, count, until=5.0, **kwargs):
    """Synchronously run *count* writes; returns the acked records."""
    records = spawn_writes(sim, group, count, **kwargs)
    sim.run(until=until)
    return records
