"""Tests for delta-encoded, chunked dispatch (ISSUE: perf tentpole).

The load-bearing invariant: a worker that rebuilds a config from
``base + delta`` must produce something *indistinguishable* from the
original — field-for-field equal, same ``config_digest``, same cache
entry, same journal key.  Chunking must change dispatch granularity
only, never per-point outcomes.
"""

import pytest

from repro.core.dispatch import (
    CHUNK_MAX,
    OUTCOME_ERROR,
    OUTCOME_OK,
    apply_delta,
    auto_chunk,
    encode_delta,
    make_chunk,
    run_chunk,
)
from repro.core.experiment import ExperimentConfig
from repro.core.knobs import ResourceAllocation
from repro.core.resultcache import calibration_token, config_digest
from repro.errors import SimulatedWorkerCrash
from repro.faults.spec import WorkerCrash


def _digest(config):
    return config_digest(config, calibration_token())


def cfg(**overrides):
    defaults = dict(workload="asdb", scale_factor=2000, duration=0.5, seed=0)
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


class TestDeltaEncoding:
    def test_round_trip_is_exact(self):
        base = cfg()
        point = cfg(
            seed=7,
            duration=0.25,
            allocation=ResourceAllocation(logical_cores=8, llc_mb=10),
            workload_kwargs={"clients": 3},
            backend="columnstore-dss",
        )
        delta = encode_delta(base, point)
        assert set(delta) == {
            "seed", "duration", "allocation", "workload_kwargs", "backend",
        }
        assert apply_delta(base, delta) == point

    def test_identical_config_has_empty_delta(self):
        base = cfg()
        assert encode_delta(base, cfg()) == {}
        assert apply_delta(base, {}) is base

    def test_rebuilt_config_hashes_to_same_digest(self):
        """The cache/journal key of a delta-rebuilt config must match the
        original's — otherwise chunked dispatch would silently fork the
        result-cache namespace."""
        base = cfg()
        points = [
            cfg(allocation=ResourceAllocation(logical_cores=c), seed=s)
            for c in (2, 8, 32) for s in (0, 1)
        ]
        for point in points:
            rebuilt = apply_delta(base, encode_delta(base, point))
            assert _digest(rebuilt) == _digest(point)

    def test_faults_survive_the_round_trip(self):
        base = cfg()
        point = cfg(faults=(WorkerCrash(attempts=1),))
        rebuilt = apply_delta(base, encode_delta(base, point))
        assert rebuilt.faults == point.faults
        assert _digest(rebuilt) == _digest(point)


class TestChunks:
    def test_make_chunk_pairs_deltas_with_attempts(self):
        configs = [cfg(seed=s) for s in (0, 1, 2)]
        task = make_chunk(configs, attempts=[0, 0, 3], in_pool=False)
        assert len(task) == 3
        assert task.base is configs[0]
        assert task.entries[0] == ({}, 0)
        assert task.entries[2] == ({"seed": 2}, 3)
        assert not task.in_pool

    def test_make_chunk_rejects_empty(self):
        with pytest.raises(ValueError):
            make_chunk([], attempts=[])

    def test_run_chunk_returns_per_point_outcomes_in_order(self):
        good = cfg(duration=0.3)
        bad = cfg(workload="nope", duration=0.3)
        task = make_chunk([good, bad, cfg(seed=1, duration=0.3)],
                          attempts=[0, 0, 0], in_pool=False)
        outcomes = run_chunk(task)
        tags = [tag for tag, _ in outcomes]
        assert tags == [OUTCOME_OK, OUTCOME_ERROR, OUTCOME_OK]
        assert isinstance(outcomes[1][1], Exception)

    def test_one_bad_point_does_not_poison_chunk_mates(self):
        """Every point is attempted even after an earlier failure."""
        bad_first = make_chunk(
            [cfg(workload="nope", duration=0.3), cfg(duration=0.3)],
            attempts=[0, 0], in_pool=False,
        )
        outcomes = run_chunk(bad_first)
        assert [tag for tag, _ in outcomes] == [OUTCOME_ERROR, OUTCOME_OK]

    def test_crash_fault_surfaces_as_crash_payload(self):
        """Out of pool a crash fault becomes the in-process stand-in —
        returned as an error outcome whose payload the supervisor
        recognizes as a crash — and chunk-mates still run."""
        task = make_chunk(
            [cfg(faults=(WorkerCrash(attempts=1),)), cfg(seed=1, duration=0.3)],
            attempts=[0, 0], in_pool=False,
        )
        outcomes = run_chunk(task)
        tag, payload = outcomes[0]
        assert tag == OUTCOME_ERROR
        assert isinstance(payload, SimulatedWorkerCrash)
        assert outcomes[1][0] == OUTCOME_OK

    def test_chunk_results_match_unchunked_runs(self):
        configs = [cfg(seed=s, duration=0.3) for s in (0, 1)]
        task = make_chunk(configs, attempts=[0, 0], in_pool=False)
        chunked = [payload for _, payload in run_chunk(task)]
        from repro.core.dispatch import run_one
        solo = [run_one(c) for c in configs]
        assert [m.primary_metric for m in chunked] == [
            m.primary_metric for m in solo
        ]


class TestAutoChunk:
    def test_splits_into_four_slices_per_job(self):
        assert auto_chunk(points=80, jobs=4) == 5
        assert auto_chunk(points=10, jobs=4) == 1
        assert auto_chunk(points=16, jobs=2) == 2

    def test_caps_at_chunk_max(self):
        assert auto_chunk(points=100_000, jobs=1) == CHUNK_MAX

    def test_degenerate_inputs(self):
        assert auto_chunk(points=0, jobs=4) == 1
        assert auto_chunk(points=5, jobs=0) == 1
