"""Fig 2 (b,e,h,k): performance vs LLC allocation, and
Fig 2 (c,f,i,l): cache MPKI vs LLC allocation — plus Table 4."""

import pytest

from repro.core.analysis import find_knee, sufficient_allocation
from repro.core.figures import TABLE4_PAPER, fig2_llc
from repro.core.report import format_series, format_table
from repro.core.sweeps import STUDY_MATRIX

SIZES_MB = (2, 4, 6, 8, 10, 12, 14, 16, 20, 24, 32, 40)


@pytest.fixture(scope="module")
def llc_series(duration_scale):
    return {
        (w, sf): fig2_llc(w, sf, sizes_mb=SIZES_MB, duration_scale=duration_scale)
        for w, sf in STUDY_MATRIX
    }


def test_fig2_llc_performance(benchmark, llc_series, emit):
    def check():
        return llc_series
    series = benchmark(check)
    for (w, sf), s in series.items():
        emit(
            f"Fig 2 b/e/h/k — {w} SF={sf}: performance vs LLC MB",
            format_series("llc_mb", s.xs, {"perf": s.performance,
                                           "mpki": s.mpki}),
        )
        # Performance generally increases with LLC; gains concentrate at
        # small allocations (the knee).
        assert s.performance[0] < s.performance[-1]
        knee = find_knee(s.xs, s.performance)
        assert knee.x <= 20.0, (w, sf, knee)


def test_fig2_llc_mpki(benchmark, llc_series, emit):
    series = benchmark(lambda: llc_series)
    for (w, sf), s in series.items():
        mpki = s.mpki
        assert all(b <= a + 1e-9 for a, b in zip(mpki, mpki[1:])), (w, sf)
        # More dramatic change at small sizes than at large ones (§5).
        small_drop = mpki[0] - mpki[len(mpki) // 2]
        large_drop = mpki[len(mpki) // 2] - mpki[-1]
        assert small_drop >= large_drop, (w, sf)


def test_table4_sufficient_llc(benchmark, llc_series, emit):
    series = benchmark(lambda: llc_series)
    rows = []
    for (w, sf), s in series.items():
        mb90 = sufficient_allocation(s.xs, s.performance, 0.90)
        mb95 = sufficient_allocation(s.xs, s.performance, 0.95)
        paper90, paper95 = TABLE4_PAPER[(w, sf)]
        rows.append((w, sf, mb90, paper90, mb95, paper95))
    emit(
        "Table 4 — sufficient LLC capacity with 32 cores (measured vs paper)",
        format_table(
            ["workload", "SF", ">=90%", "paper", ">=95%", "paper"], rows
        ),
    )
    measured90 = {(w, sf): mb90 for w, sf, mb90, _, _, _ in rows}
    # Qualitative orderings the paper emphasizes: transactional workloads
    # need less cache than analytical/hybrid ones.
    assert measured90[("asdb", 2000)] <= measured90[("tpch", 100)]
    assert measured90[("tpce", 5000)] <= measured90[("htap", 5000)]
    # All sufficient sizes are far below the full 40 MB (over-provisioned
    # LLC, §5 conclusion).
    for (w, sf), mb in measured90.items():
        assert mb is not None and mb <= 24, (w, sf, mb)
