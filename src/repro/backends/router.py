"""Resource-aware query router over heterogeneous engine backends.

The router answers the consolidation question the paper's
characterization sets up: given engines with sharply different resource
sensitivities, *where should this query run*?  It estimates each query's
resource demand from the footprint features the optimizer already
computes (filtered row counts, scanned bytes, sort/aggregate memory) and
places it with one of three pluggable policies:

``always-<backend>``
    Degenerate pin: every query goes to one personality.  The baseline
    the comparison tables measure the real policies against.
``rule-based``
    BRAD-style demand rules over the backends'
    :class:`~repro.backends.base.BackendResourceProfile`: point-ish
    queries go to the best point-lookup engine, big scans to the best
    scan-bandwidth engine, short queries to the most elastic engine, and
    everything else to the first configured backend (counted as a
    fallback).
``cost-scored``
    Ask every backend's own optimizer to cost the query (a plan-cache
    hit after the first time), convert the personality's startup delay
    into cost units, add a queue-state penalty (semaphore waiters plus
    in-flight routed queries), and take the argmin — ResQ-style
    placement on predicted resource profiles, with deterministic
    configuration-order tie-breaking.

Every placement increments per-backend decision counters that surface on
:class:`~repro.core.measurement.Measurement`, in sweep journals, and in
the ``dm_router_decisions`` DMV.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.backends.base import BackendResourceProfile
from repro.calibration import INSTRUCTIONS_PER_COST_UNIT
from repro.engine.catalog import Database
from repro.engine.engine import SqlEngine
from repro.engine.optimizer.queryspec import QuerySpec
from repro.errors import ConfigurationError
from repro.units import MB

#: Policy names (``always-<backend>`` is matched by prefix).
POLICY_RULE_BASED = "rule-based"
POLICY_COST_SCORED = "cost-scored"
ALWAYS_PREFIX = "always-"
ROUTER_POLICIES = (POLICY_RULE_BASED, POLICY_COST_SCORED,
                   ALWAYS_PREFIX + "<backend>")

#: Demand-rule thresholds (rule-based policy).
POINT_LOOKUP_MAX_ROWS = 10_000.0
BIG_SCAN_BYTES = 256 * MB
SHORT_QUERY_MAX_ROWS = 2_000_000.0

#: Queue-state penalties in cost units (cost-scored policy): each
#: semaphore waiter or in-flight routed query on a backend makes it look
#: this much more expensive.  Calibrated to about a second of single-core
#: work, the scale at which queueing delay rivals execution cost.
QUEUE_WAITER_PENALTY = 2.0e6
INFLIGHT_PENALTY = 5.0e5

#: Row-width proxies for the demand estimate (mirror the cost model's).
_SORT_ROW_BYTES = 100.0
_AGG_ROW_BYTES = 64.0


@dataclass(frozen=True)
class DemandEstimate:
    """Footprint features of one query, backend-independent."""

    scan_rows: float        #: filtered rows read across all table refs
    scan_bytes: float       #: on-disk bytes the scans touch
    memory_bytes: float     #: sort/aggregate working-memory proxy
    point_lookup: bool      #: selective index-driven access pattern
    short_query: bool       #: small enough that startup costs dominate


def estimate_demand(spec: QuerySpec, database: Database) -> DemandEstimate:
    """Estimate a query's resource demand from catalog cardinalities.

    Uses only the spec and the catalog — no optimizer invocation — so
    the rule-based policy is O(tables) per placement and identical for
    every backend.
    """
    scan_rows = 0.0
    scan_bytes = 0.0
    for ref in spec.tables:
        table = database.table(ref.table)
        scan_rows += table.rows * ref.selectivity
        scan_bytes += table.data_bytes * ref.column_fraction
    memory_bytes = (
        spec.sort_rows * _SORT_ROW_BYTES + spec.group_rows * _AGG_ROW_BYTES
    )
    return DemandEstimate(
        scan_rows=scan_rows,
        scan_bytes=scan_bytes,
        memory_bytes=memory_bytes,
        point_lookup=scan_rows <= POINT_LOOKUP_MAX_ROWS,
        short_query=scan_rows <= SHORT_QUERY_MAX_ROWS,
    )


class Router:
    """Places queries on backend engines under one policy.

    ``engines`` maps backend name to its constructed engine; iteration
    order is the configuration order and provides the deterministic
    tie-break for every policy.  The router is pure bookkeeping plus
    arithmetic over simulation state — given the same configuration and
    the same sequence of placement calls it makes the same decisions, in
    or out of worker processes.
    """

    def __init__(
        self,
        engines: Dict[str, SqlEngine],
        profiles: Dict[str, BackendResourceProfile],
        policy: str = POLICY_RULE_BASED,
    ):
        if not engines:
            raise ConfigurationError("router needs at least one backend engine")
        self.engines = dict(engines)
        self.order: Tuple[str, ...] = tuple(engines)
        self.profiles = dict(profiles)
        self.policy = policy
        if policy.startswith(ALWAYS_PREFIX):
            pinned = policy[len(ALWAYS_PREFIX):]
            if pinned not in self.engines:
                raise ConfigurationError(
                    f"policy {policy!r} pins unknown backend {pinned!r}; "
                    f"configured: {list(self.order)}"
                )
            self._pinned = pinned
        elif policy in (POLICY_RULE_BASED, POLICY_COST_SCORED):
            self._pinned = None
        else:
            raise ConfigurationError(
                f"unknown router policy {policy!r}; one of {ROUTER_POLICIES}"
            )
        # -- counters (surface on Measurement and dm_router_decisions) -------
        self.decisions: Dict[str, int] = {name: 0 for name in self.order}
        self.fallbacks = 0
        self.inflight: Dict[str, int] = {name: 0 for name in self.order}
        #: Backends currently suspected unhealthy (fleet health signal);
        #: placements route around them while alternatives exist.
        self.suspended: set = set()
        self.reroutes = 0

    # -- placement -------------------------------------------------------------

    def route(self, spec: QuerySpec) -> str:
        """Pick a backend for *spec* and record the decision."""
        choice, fallback, rerouted = self._choose(spec)
        self.decisions[choice] += 1
        if fallback:
            self.fallbacks += 1
        if rerouted:
            self.reroutes += 1
        return choice

    def peek(self, spec: QuerySpec) -> str:
        """The backend :meth:`route` would pick now, without recording."""
        choice, _, _ = self._choose(spec)
        return choice

    # -- health ------------------------------------------------------------------

    def suspend_backend(self, name: str) -> None:
        """Mark a backend suspected unhealthy: placements route around
        it while at least one healthy backend remains (with every
        backend suspended the suspensions are ignored — degraded service
        beats refusing to place)."""
        if name not in self.engines:
            raise ConfigurationError(f"cannot suspend unknown backend {name!r}")
        self.suspended.add(name)

    def restore_backend(self, name: str) -> None:
        """Clear a backend's suspension (health recovered)."""
        self.suspended.discard(name)

    def _healthy(self) -> Tuple[str, ...]:
        healthy = tuple(n for n in self.order if n not in self.suspended)
        return healthy or self.order

    def _choose(self, spec: QuerySpec) -> Tuple[str, bool, bool]:
        choice, fallback = self._choose_from(spec, self.order)
        if choice in self.suspended:
            healthy = self._healthy()
            if choice not in healthy:
                choice, fallback = self._choose_from(spec, healthy)
                return choice, fallback, True
        return choice, fallback, False

    def _choose_from(self, spec: QuerySpec,
                     order: Tuple[str, ...]) -> Tuple[str, bool]:
        if self._pinned is not None:
            if self._pinned in order:
                return self._pinned, False
            return order[0], False
        if self.policy == POLICY_RULE_BASED:
            return self._route_rule_based(spec, order)
        return self._route_cost_scored(spec, order), False

    def engine_for(self, spec: QuerySpec) -> Tuple[str, SqlEngine]:
        name = self.route(spec)
        return name, self.engines[name]

    def note_start(self, name: str) -> None:
        self.inflight[name] += 1

    def note_done(self, name: str) -> None:
        self.inflight[name] = max(0, self.inflight[name] - 1)

    # -- policies --------------------------------------------------------------

    def _best_by(self, attribute: str, order: Tuple[str, ...]) -> str:
        """Backend in *order* maximizing a profile score; configuration
        order breaks ties (max() keeps the first of equal keys)."""
        return max(
            order,
            key=lambda name: getattr(self.profiles[name], attribute),
        )

    def _route_rule_based(self, spec: QuerySpec,
                          order: Tuple[str, ...]) -> Tuple[str, bool]:
        demand = estimate_demand(
            spec, next(iter(self.engines.values())).database
        )
        if demand.point_lookup:
            return self._best_by("point_lookup_score", order), False
        if demand.scan_bytes >= BIG_SCAN_BYTES:
            return self._best_by("scan_bandwidth_score", order), False
        if demand.short_query:
            return self._best_by("memory_elasticity", order), False
        return order[0], True

    def _route_cost_scored(self, spec: QuerySpec,
                           order: Tuple[str, ...]) -> str:
        best_name = None
        best_score = None
        for name in order:
            engine = self.engines[name]
            optimized = engine.optimize(spec)
            profile = self.profiles[name]
            # The personality's provisioning delay, in this engine's own
            # cost units (per-core instruction rate / instructions per unit).
            startup_units = (
                profile.startup_seconds
                * engine.sqlos.per_core_ips / INSTRUCTIONS_PER_COST_UNIT
            )
            queue_units = (
                engine.semaphore.waiter_count * QUEUE_WAITER_PENALTY
                + self.inflight[name] * INFLIGHT_PENALTY
            )
            score = optimized.estimated_elapsed_cost + startup_units + queue_units
            if best_score is None or score < best_score:
                best_name, best_score = name, score
        return best_name

    # -- reporting -------------------------------------------------------------

    def summary(self) -> Dict[str, object]:
        """Routing counters (feeds ``Measurement`` and the journal)."""
        return {
            "router_policy": self.policy,
            "router_decisions": dict(self.decisions),
            "router_fallbacks": self.fallbacks,
            "router_reroutes": self.reroutes,
            "router_suspended": sorted(self.suspended),
        }
