"""Non-volatile storage: the NVMe device plus cgroup blkio limits.

The device itself has sequential read/write bandwidth ceilings (the
Intel 750 in the testbed: 2500 MB/s read, 1200 MB/s write).  On top of the
device, the experiments impose *cgroup* limits via systemd's
``BlockIOReadBandwidth`` / ``BlockIOWriteBandwidth`` (§6, Fig 5).  Both
layers are token buckets; a request must clear the cgroup bucket and then
the device bucket, so the effective cap is the minimum of the two.
"""

from __future__ import annotations

from typing import Callable, Generator, Optional

from repro.errors import ConfigurationError, FaultInjectionError, TransientIOError
from repro.sim.process import Simulator, Timeout
from repro.sim.resources import TokenBucket
from repro.units import mb_per_s

#: Latency of one small random read (NVMe 8 KiB read ~ 90 us).
RANDOM_READ_LATENCY = 90e-6


class NvmeDevice:
    """A bandwidth-limited block device with independent read/write paths."""

    def __init__(
        self,
        sim: Simulator,
        read_bw: float = mb_per_s(2500),
        write_bw: float = mb_per_s(1200),
        name: str = "nvme0",
    ):
        if read_bw <= 0 or write_bw <= 0:
            raise ConfigurationError("device bandwidths must be positive")
        self._sim = sim
        self.name = name
        self.device_read_bw = read_bw
        self.device_write_bw = write_bw
        burst_r = read_bw * 0.01  # ~10 ms of burst absorbs request jitter
        burst_w = write_bw * 0.01
        self._device_read = TokenBucket(sim, read_bw, burst=burst_r, name=f"{name}.rd")
        self._device_write = TokenBucket(sim, write_bw, burst=burst_w, name=f"{name}.wr")
        self._cgroup_read = TokenBucket(sim, None, name=f"{name}.cg.rd")
        self._cgroup_write = TokenBucket(sim, None, name=f"{name}.cg.wr")
        # Fault-injection state (see repro.faults): bandwidth brownout
        # factors and an optional transient write-error predicate.
        self._brownout_read_factor = 1.0
        self._brownout_write_factor = 1.0
        self._brownout_latency_factor = 1.0
        self._write_error_predicate: Optional[Callable[[], bool]] = None
        self.write_faults_injected = 0

    # -- cgroup blkio front-end -------------------------------------------------

    def set_read_limit(self, limit: Optional[float]) -> None:
        """Apply (or clear, with ``None``) a BlockIOReadBandwidth cap."""
        if limit is not None and limit <= 0:
            raise ConfigurationError("read limit must be positive or None")
        burst = (limit * 0.01) if limit else 0.0
        self._cgroup_read.burst = burst
        self._cgroup_read.set_rate(limit)

    def set_write_limit(self, limit: Optional[float]) -> None:
        """Apply (or clear, with ``None``) a BlockIOWriteBandwidth cap."""
        if limit is not None and limit <= 0:
            raise ConfigurationError("write limit must be positive or None")
        burst = (limit * 0.01) if limit else 0.0
        self._cgroup_write.burst = burst
        self._cgroup_write.set_rate(limit)

    @property
    def effective_read_bw(self) -> float:
        device = self.device_read_bw * self._brownout_read_factor
        cgroup = self._cgroup_read.rate
        return device if cgroup is None else min(device, cgroup)

    @property
    def effective_write_bw(self) -> float:
        device = self.device_write_bw * self._brownout_write_factor
        cgroup = self._cgroup_write.rate
        return device if cgroup is None else min(device, cgroup)

    # -- fault injection (see repro.faults) -------------------------------------

    def apply_brownout(self, read_factor: float = 1.0, write_factor: float = 1.0,
                       latency_factor: float = 1.0) -> None:
        """Scale the *device* bandwidths by the given factors (a storage
        brownout).  cgroup caps are untouched; the effective rate is
        still the minimum of the two layers.  ``latency_factor``
        multiplies the per-page seek latency of random reads — a
        garbage-collection stall inflates individual operation latency,
        not just streaming throughput."""
        for name, factor in (("read_factor", read_factor),
                             ("write_factor", write_factor)):
            if not 0 < factor <= 1.0:
                raise FaultInjectionError(f"{name} must be in (0, 1]")
        if latency_factor < 1.0:
            raise FaultInjectionError("latency_factor must be >= 1")
        self._brownout_read_factor = read_factor
        self._brownout_write_factor = write_factor
        self._brownout_latency_factor = latency_factor
        self._device_read.set_rate(self.device_read_bw * read_factor)
        self._device_write.set_rate(self.device_write_bw * write_factor)

    def clear_brownout(self) -> None:
        """Restore the device's rated bandwidths and latency."""
        self.apply_brownout(1.0, 1.0, 1.0)

    @property
    def browned_out(self) -> bool:
        return (self._brownout_read_factor < 1.0
                or self._brownout_write_factor < 1.0
                or self._brownout_latency_factor > 1.0)

    def set_write_error_predicate(
        self, predicate: Optional[Callable[[], bool]]
    ) -> None:
        """Install (or clear, with ``None``) a transient write-error hook.

        While installed, each :meth:`write` call consults the predicate
        *before* consuming bandwidth; a ``True`` return makes the write
        raise :class:`~repro.errors.TransientIOError`.  Callers with a
        durability contract (the WAL) retry with backoff.
        """
        self._write_error_predicate = predicate

    # -- IO path ------------------------------------------------------------------

    #: Multi-GB transfers are split so that small requests (a
    #: transaction's page read, a log flush) are not head-of-line blocked
    #: behind a whole scan; in-flight interpolation in the buckets keeps
    #: 1-second counter sampling smooth regardless of chunk size.
    CHUNK_BYTES = 64 * 1024 * 1024

    def read(self, nbytes: float) -> Generator:
        """Generator: complete a read of *nbytes* through both buckets."""
        if nbytes < 0:
            raise ConfigurationError("negative read size")
        remaining = nbytes
        while remaining > 0:
            chunk = min(self.CHUNK_BYTES, remaining)
            yield from self._cgroup_read.consume(chunk)
            yield from self._device_read.consume(chunk)
            remaining -= chunk
        return None

    def read_pages(self, num_pages: float, page_bytes: int) -> Generator:
        """Generator: random point reads — per-page latency plus bandwidth.

        Latencies overlap across concurrent readers (each just waits);
        bandwidth is shared through the buckets as usual.
        """
        if num_pages <= 0:
            return None
        yield Timeout(RANDOM_READ_LATENCY * num_pages
                      * self._brownout_latency_factor)
        yield from self.read(num_pages * page_bytes)
        return None

    def write(self, nbytes: float) -> Generator:
        """Generator: complete a write of *nbytes* through both buckets.

        Raises :class:`~repro.errors.TransientIOError` when an injected
        write-error window is active (no bandwidth is consumed by the
        failed attempt; the caller decides whether to retry).
        """
        if nbytes < 0:
            raise ConfigurationError("negative write size")
        if self._write_error_predicate is not None and self._write_error_predicate():
            self.write_faults_injected += 1
            raise TransientIOError(
                f"{self.name}: injected transient write error "
                f"(#{self.write_faults_injected})"
            )
        remaining = nbytes
        while remaining > 0:
            chunk = min(self.CHUNK_BYTES, remaining)
            yield from self._cgroup_write.consume(chunk)
            yield from self._device_write.consume(chunk)
            remaining -= chunk
        return None

    # -- iostat-style accounting ----------------------------------------------------

    @property
    def bytes_read(self) -> float:
        return self._device_read.served_bytes

    @property
    def bytes_written(self) -> float:
        return self._device_write.served_bytes
