"""Tests for the Measurement container and counter series derivations."""

import pytest

from repro.core.knobs import ResourceAllocation
from repro.core.measurement import Measurement
from repro.engine.locks import WaitType
from repro.hardware.counters import (
    CounterSeries,
    DRAM_READ_BYTES,
    INSTRUCTIONS,
    LLC_MISSES,
    SSD_READ_BYTES,
)
from repro.workloads.base import ThroughputTracker


def make_measurement():
    counters = CounterSeries()
    for _ in range(5):
        counters.append(INSTRUCTIONS, 1e9)
        counters.append(LLC_MISSES, 5e6)
        counters.append(DRAM_READ_BYTES, 320e6)
        counters.append(SSD_READ_BYTES, 100e6)
    tracker = ThroughputTracker()
    for latency in (0.01, 0.02, 0.03):
        tracker.record("txn", latency)
    return Measurement(
        workload="asdb",
        scale_factor=2000,
        allocation=ResourceAllocation(),
        duration=5.0,
        primary_metric=1000.0,
        counters=counters,
        tracker=tracker,
        wait_times={w: 0.0 for w in WaitType} | {WaitType.LOCK: 2.0,
                                                 WaitType.PAGELATCH: 1.0},
    )


class TestMeasurement:
    def test_mpki_from_counters(self):
        m = make_measurement()
        assert m.mpki == pytest.approx(5.0)

    def test_bandwidth_means(self):
        m = make_measurement()
        assert m.ssd_read_mb == pytest.approx(100.0)
        assert m.dram_read_mb == pytest.approx(320.0)

    def test_bandwidth_cdf(self):
        m = make_measurement()
        cdf = m.bandwidth_cdf(SSD_READ_BYTES)
        assert len(cdf) == 5
        assert cdf.percentile(100) == pytest.approx(100e6)

    def test_wait_accessors(self):
        m = make_measurement()
        assert m.wait_time(WaitType.LOCK) == 2.0
        assert m.lock_latch_pagelatch_total() == pytest.approx(3.0)

    def test_latency_accessors(self):
        m = make_measurement()
        assert m.query_latency("txn", 50) == pytest.approx(0.02)
        assert m.mean_query_latency("txn") == pytest.approx(0.02)
        # Unknown classes yield NaN rather than raising.
        assert m.mean_query_latency("nope") != m.mean_query_latency("nope")

    def test_counter_series_mean_mpki_empty(self):
        assert CounterSeries().mean_mpki() == 0.0


class TestTailLatencies:
    def test_tail_accessors_roll_up_the_txn_cdf(self):
        m = make_measurement()
        assert m.p50_latency_ms == pytest.approx(20.0)
        assert m.p99_latency_ms == pytest.approx(m.tail_latency_ms(99.0))
        assert m.p999_latency_ms >= m.p99_latency_ms >= m.p50_latency_ms

    def test_tail_is_nan_without_latency_samples(self):
        m = make_measurement()
        m.tracker.latencies.clear()
        assert m.p999_latency_ms != m.p999_latency_ms

    def test_open_loop_fields_default_to_closed_loop_zero(self):
        m = make_measurement()
        assert m.offered_tps == 0.0
        assert m.arrival_sheds == 0
        assert m.sheds_by_tenant == {}
