"""RESOURCE_SEMAPHORE: grant queueing and graceful degradation (§8, §10).

SQL Server does not hand out query-memory grants unconditionally.  Grant
requests that cannot be satisfied from the query-memory pool queue behind
the ``RESOURCE_SEMAPHORE`` wait type, in FIFO order, with a timeout
(``RESOURCE_SEMAPHORE_QUERY_COMPILE`` aside); trivially small requests
bypass the queue through a separate small-query semaphore so a convoy of
giant sorts cannot starve point lookups.  That queueing behavior is what
separates a *loaded* machine from a *saturated* one — §10's admission
question ("start immediately with limited resources, or wait?") is a
question about this queue.

:class:`ResourceSemaphore` reproduces the mechanism on the simulated
engine:

* **Pass-through (the default).**  With every overload knob at its
  default the semaphore is disabled and :meth:`acquire` reduces to the
  historical ``QueryMemoryPool.admit`` — no yields, no pool accounting,
  bit-identical timing to the pre-semaphore engine.
* **FIFO waiter queue.**  When enabled, concurrent grants are charged
  against the pool; a request that does not fit waits in strict FIFO
  order (head-of-line blocking is intentional — it is what the real
  semaphore does, and it is what makes grant waits visible).
* **Small-query bypass.**  Requests at or below
  ``small_query_bypass_bytes`` are granted immediately (charged, but
  never queued), modelling the small-query semaphore.
* **Timeout → degrade or fail.**  A waiter that exceeds
  ``grant_timeout_s`` either *force-degrades* — the grant shrinks to
  whatever is free right now and the query takes the
  :mod:`~repro.engine.memory_grants` spill path — or raises
  :class:`~repro.errors.GrantTimeoutError`, per the governor's
  ``on_grant_timeout`` policy.
* **Admission throttling.**  With ``max_queue_depth`` set, a request
  arriving at a full queue is not queued at all: it degrades (or fails)
  immediately, bounding the waiter convoy.

Every outcome is counted (waits, wait-seconds, timeouts, degrades,
bypasses, throttles, peak queue depth) and surfaces as first-class
counters on :class:`~repro.core.measurement.Measurement`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Deque, Dict, Generator, Optional

from collections import deque

from repro.engine.memory_grants import MemoryGrant, QueryMemoryPool
from repro.engine.resource_governor import (
    ON_TIMEOUT_DEGRADE,
    ON_TIMEOUT_FAIL,
    ResourceGovernor,
)
from repro.errors import GrantTimeoutError, SimulationError
from repro.sim.process import Simulator, WaitEvent

#: Gate payloads distinguishing how a waiter was woken.
_GRANTED = "granted"
_TIMED_OUT = "timeout"

#: Waiter states (guards the trigger-once WaitEvent contract).
_WAITING = "waiting"


@dataclass
class GrantTicket:
    """One admitted grant: what was granted and what must be returned.

    ``charged_bytes`` is the semaphore-pool charge to release (0 for the
    pass-through path); ``waited`` is RESOURCE_SEMAPHORE wait time;
    ``degraded`` marks a grant shrunk by timeout or throttling.
    """

    grant: MemoryGrant
    charged_bytes: float = 0.0
    waited: float = 0.0
    degraded: bool = False
    bypassed: bool = False


class _Waiter:
    __slots__ = ("desired", "gate", "state", "granted_bytes")

    def __init__(self, desired: float, gate: WaitEvent):
        self.desired = desired
        self.gate = gate
        self.state = _WAITING
        self.granted_bytes = 0.0


class ResourceSemaphore:
    """FIFO grant queue over one engine's query-memory pool."""

    def __init__(
        self,
        sim: Simulator,
        pool: QueryMemoryPool,
        governor: ResourceGovernor = ResourceGovernor(),
    ):
        self._sim = sim
        self._pool = pool
        self.governor = governor
        self.enabled = governor.overload_protection_enabled
        self._charged = 0.0
        self._queue: Deque[_Waiter] = deque()
        # -- counters (all monotone, all observable on Measurement) ----------
        self.requests = 0
        self.waits = 0
        self.wait_seconds = 0.0
        self.timeouts = 0
        self.degrades = 0
        self.bypasses = 0
        self.throttles = 0
        self.queue_peak = 0

    # -- pool state ------------------------------------------------------------

    @property
    def pool_bytes(self) -> float:
        return self._pool.pool_bytes

    @property
    def free_bytes(self) -> float:
        """Uncommitted pool memory (bypass grants may drive this negative)."""
        return self.pool_bytes - self._charged

    @property
    def waiter_count(self) -> int:
        return len(self._queue)

    # -- admission -------------------------------------------------------------

    def acquire(self, required_bytes: float, name: str = "query") -> Generator:
        """Generator: admit one grant request; returns a :class:`GrantTicket`.

        The uncontended path (pass-through, bypass, or a fitting request
        with an empty queue) never yields, so enabling overload
        protection on an unsaturated engine changes nothing — the layer
        is a no-op off the saturation path.
        """
        self.requests += 1
        grant = self._pool.admit(required_bytes)
        if not self.enabled:
            return GrantTicket(grant=grant)
        desired = grant.granted_bytes
        bypass = self.governor.small_query_bypass_bytes
        if bypass > 0 and 0 < desired <= bypass:
            self.bypasses += 1
            self._charged += desired
            return GrantTicket(grant=grant, charged_bytes=desired, bypassed=True)
        if not self._queue and self.free_bytes >= desired:
            self._charged += desired
            return GrantTicket(grant=grant, charged_bytes=desired)
        depth = self.governor.max_queue_depth
        if depth is not None and len(self._queue) >= depth:
            # Admission throttle: the queue is full, so this request is
            # not allowed to join the convoy — it degrades (or fails) now.
            self.throttles += 1
            if self.governor.on_grant_timeout == ON_TIMEOUT_FAIL:
                raise GrantTimeoutError(
                    f"{name}: grant queue is full "
                    f"({len(self._queue)} waiters >= max_queue_depth={depth})",
                    query=name, waited=0.0, required_bytes=required_bytes,
                )
            return self._degraded_ticket(grant, waited=0.0)
        waiter = _Waiter(desired=desired, gate=self._sim.event())
        self._queue.append(waiter)
        self.queue_peak = max(self.queue_peak, len(self._queue))
        timer = None
        if self.governor.grant_timeout_s is not None:
            timer = self._sim.loop.schedule_after(
                self.governor.grant_timeout_s,
                lambda _event, w=waiter: self._expire(w),
            )
        start = self._sim.now
        outcome = yield waiter.gate
        waited = self._sim.now - start
        self.waits += 1
        self.wait_seconds += waited
        if timer is not None:
            timer.cancel()
        if outcome == _TIMED_OUT:
            self.timeouts += 1
            if self.governor.on_grant_timeout == ON_TIMEOUT_FAIL:
                raise GrantTimeoutError(
                    f"{name}: no memory grant after {waited:.1f}s "
                    f"(required {required_bytes:.0f} B, "
                    f"free {max(0.0, self.free_bytes):.0f} B of "
                    f"{self.pool_bytes:.0f} B pool)",
                    query=name, waited=waited, required_bytes=required_bytes,
                )
            return self._degraded_ticket(grant, waited=waited)
        # Woken by a release: the releaser already charged our desired
        # bytes (synchronously, so no same-timestamp arrival can steal
        # them between wake-up and resume).
        return GrantTicket(
            grant=grant, charged_bytes=waiter.granted_bytes, waited=waited
        )

    def release(self, ticket: GrantTicket) -> None:
        """Return a ticket's pool charge and wake fitting FIFO waiters."""
        if ticket.charged_bytes <= 0:
            return
        self._charged -= ticket.charged_bytes
        if self._charged < -1.0:
            # Charges are floats at GB magnitudes, so exact zero is not
            # attainable — but a real double-release is off by a whole
            # grant, far beyond sub-byte rounding drift.
            raise SimulationError("resource semaphore released more than charged")
        self._charged = max(0.0, self._charged)
        self._drain()

    # -- internals -------------------------------------------------------------

    def _degraded_ticket(self, grant: MemoryGrant, waited: float) -> GrantTicket:
        """Shrink the grant to what is free right now; spill the rest."""
        self.degrades += 1
        granted = min(grant.granted_bytes, max(0.0, self.free_bytes))
        degraded = MemoryGrant(
            required_bytes=grant.required_bytes, granted_bytes=granted
        )
        self._charged += granted
        return GrantTicket(
            grant=degraded, charged_bytes=granted, waited=waited, degraded=True
        )

    def _drain(self) -> None:
        """Grant to queued waiters, strictly FIFO, while the head fits.

        The charge happens *here*, in the releaser's stack frame — the
        woken process resumes at the same simulated instant but after
        this call returns, so no interleaved arrival can observe the
        freed bytes as available.
        """
        while self._queue and self.free_bytes >= self._queue[0].desired:
            waiter = self._queue.popleft()
            waiter.state = _GRANTED
            waiter.granted_bytes = waiter.desired
            self._charged += waiter.desired
            waiter.gate.trigger(_GRANTED)

    def _expire(self, waiter: _Waiter) -> None:
        """Timeout callback: pull the waiter out of the queue, FIFO intact."""
        if waiter.state != _WAITING:
            return  # already granted at this same instant; timer raced
        waiter.state = _TIMED_OUT
        self._queue.remove(waiter)
        waiter.gate.trigger(_TIMED_OUT)
        # The departed waiter may have been blocking smaller requests.
        self._drain()

    # -- reporting -------------------------------------------------------------

    def summary(self) -> Dict[str, float]:
        """Counter snapshot (feeds ``Measurement``'s grant counters)."""
        return {
            "grant_requests": float(self.requests),
            "grant_waits": float(self.waits),
            "grant_wait_seconds": self.wait_seconds,
            "grant_timeouts": float(self.timeouts),
            "grant_degrades": float(self.degrades),
            "grant_bypasses": float(self.bypasses),
            "grant_throttles": float(self.throttles),
            "grant_queue_peak": float(self.queue_peak),
        }
