#!/usr/bin/env python3
"""Quickstart: run a workload on the simulated testbed and read the dials.

Builds the paper's machine (2x Broadwell, 64 GB, 40 MB LLC with CAT,
NVMe SSD), runs the ASDB transactional benchmark for 15 simulated
seconds, prints throughput and PCM/iostat-style counters, then shrinks
the CAT allocation and shows the cache knee from §5.
"""

from repro.core import ResourceAllocation, run_experiment
from repro.core.report import format_series, format_table


def main() -> None:
    print("== 1. ASDB on the full machine " + "=" * 40)
    full = run_experiment("asdb", scale_factor=2000, duration=15.0)
    print(
        format_table(
            ["metric", "value"],
            [
                ("TPS", f"{full.primary_metric:.0f}"),
                ("LLC MPKI", f"{full.mpki:.1f}"),
                ("SSD read MB/s", f"{full.ssd_read_mb:.0f}"),
                ("SSD write MB/s", f"{full.ssd_write_mb:.0f}"),
                ("DRAM read MB/s", f"{full.dram_read_mb:.0f}"),
                ("p99 txn latency ms",
                 f"{full.tracker.percentile_latency('txn', 99) * 1000:.1f}"),
            ],
            title="ASDB SF=2000, 32 cores, 40 MB LLC",
        )
    )

    print("\n== 2. Shrinking the LLC with CAT (the §5 knee) " + "=" * 24)
    sizes = [2, 4, 6, 8, 10, 16, 24, 40]
    tps, mpki = [], []
    for size in sizes:
        m = run_experiment(
            "asdb", 2000,
            allocation=ResourceAllocation(llc_mb=size),
            duration=10.0,
        )
        tps.append(m.primary_metric)
        mpki.append(m.mpki_model)
    print(format_series("llc_mb", sizes, {"TPS": tps, "MPKI": mpki}))
    knee_sizes = [s for s, t in zip(sizes, tps) if t >= 0.9 * tps[-1]]
    print(
        f"\nSmallest allocation within 90% of full performance: "
        f"{knee_sizes[0]} MB (Table 4 reports 8 MB for ASDB SF=2000)"
    )


if __name__ == "__main__":
    main()
