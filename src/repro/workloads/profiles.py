"""Calibrated execution profiles: CPI parameters and miss-ratio curves.

Every number here is a model parameter standing in for measurements the
paper took on real hardware.  The calibration targets (verified by tests
with tolerances) are:

* §4 hyper-threading effects at 40 MB LLC / 32 logical cores:
  TPC-H perf16/perf32 = 1.72 / 1.27 / 0.93 / 0.82 for SF 10/30/100/300;
  ASDB gains 5-6.8% from HT; TPC-E gains 16.7-24.2%.
  The SMT yield is a function of the memory-stall fraction
  (:class:`repro.hardware.cpu.SmtModel`), so the MRCs are shaped to land
  the right stall fractions at full cache.
* §5 cache sensitivity: knees at small allocations; TPC-H SF100 speedup
  3.4x from 2->10 MB and +26% from 10->40 MB; Table 4 sufficient-LLC
  sizes (analytical/hybrid workloads need more cache than transactional).

Working-set components follow the workload structure: ``hot1`` is the
densest engine state (B-tree roots, hash-bucket headers, hot rows),
``hot2`` a second locality class (upper intermediate results, hot pages),
``warm`` the bulk reuse set, and an infinite ``stream`` component for
scans / random lookups over data far larger than any LLC.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.engine.sqlos import ExecutionCharacteristics
from repro.errors import ConfigurationError
from repro.hardware.mrc import MissRatioCurve, WorkingSetComponent
from repro.units import MIB

# Component tables: (hot1_mib, hot1_apki, hot2_mib, hot2_apki,
#                    warm_mib, warm_apki, stream_apki)
_MrcRow = Tuple[float, float, float, float, float, float, float]

TPCH_MRC: Dict[int, _MrcRow] = {
    # Analytical working sets grow with scale factor: bigger hash tables,
    # bigger run state, more streaming traffic.  At SF=10 the warm set
    # just overflows the LLC when hyper-threading inflates footprints
    # (the §4 detriment); at SF>=30 the reused state either fits at both
    # footprints or never fits, so HT's cache cost fades while its
    # stall-filling gain grows.
    10: (4.0, 12.0, 1.0, 2.0, 26.0, 2.2, 0.93),
    30: (4.0, 30.0, 1.5, 5.0, 1.0, 6.0, 3.4),
    100: (6.0, 110.0, 5.0, 7.0, 53.0, 10.0, 14.3),
    300: (3.0, 55.0, 4.0, 12.0, 16.0, 8.0, 32.0),
}

TPCE_MRC: Dict[int, _MrcRow] = {
    # Random point lookups over data far larger than the LLC dominate at
    # both scale factors.  The *smaller* scale factor carries a slightly
    # larger streaming term: concentrated hot-row traffic ping-pongs
    # cache lines between cores (coherence misses from lock/latch
    # convoys), which is the flip side of Table 3's higher LOCK and
    # PAGELATCH waits at SF=5000 — and the reason the paper sees higher
    # TPS at SF=15000 despite its extra IO (§4).
    5000: (1.5, 70.0, 2.0, 6.0, 12.0, 3.0, 27.0),
    15000: (3.0, 70.0, 3.0, 8.0, 18.0, 4.0, 25.0),
}

ASDB_MRC: Dict[int, _MrcRow] = {
    2000: (2.0, 60.0, 3.0, 5.0, 20.0, 2.5, 15.0),
    6000: (2.5, 62.0, 3.5, 6.0, 24.0, 3.0, 16.5),
}

HTAP_MRC: Dict[int, _MrcRow] = {
    # Note the inversion the paper finds in Table 4: the SF=5000 HTAP mix
    # (analytics fully in memory, running fast) has a *larger* cache
    # appetite than SF=15000 (analytics IO-bound).
    # As with TPC-E, concentrated hot-row traffic at the smaller scale
    # factor adds coherence misses (higher streaming term), so the OLTP
    # component runs *better* at SF=15000 while its DSS component slows
    # down on IO (§4).
    5000: (2.5, 65.0, 8.0, 10.0, 30.0, 5.0, 29.0),
    15000: (2.0, 70.0, 4.0, 9.0, 25.0, 4.0, 26.0),
}


def _interpolate_row(table: Dict[int, _MrcRow], scale_factor: int) -> _MrcRow:
    if scale_factor in table:
        return table[scale_factor]
    points = sorted(table.items())
    if scale_factor < points[0][0]:
        return points[0][1]
    for (sf0, row0), (sf1, row1) in zip(points, points[1:]):
        if scale_factor < sf1:
            t = (scale_factor - sf0) / (sf1 - sf0)
            return tuple(a + t * (b - a) for a, b in zip(row0, row1))  # type: ignore
    return points[-1][1]


def build_mrc(table: Dict[int, _MrcRow], scale_factor: int) -> MissRatioCurve:
    h1_mib, h1_apki, h2_mib, h2_apki, w_mib, w_apki, s_apki = _interpolate_row(
        table, scale_factor
    )
    components: List[WorkingSetComponent] = [
        WorkingSetComponent("hot1", h1_mib * MIB, h1_apki),
        WorkingSetComponent("hot2", h2_mib * MIB, h2_apki),
        WorkingSetComponent("warm", w_mib * MIB, w_apki),
    ]
    if s_apki > 0:
        components.append(
            WorkingSetComponent("stream", float("inf"), s_apki)
        )
    return MissRatioCurve(components)


# CPI parameters per workload class.  OLTP code is branchy, pointer-chasing
# and low-MLP; batch-mode analytics is tight and overlaps misses well.
_CPU_PARAMS = {
    "tpch": dict(cpi_base=0.6, mlp=2.5, miss_penalty_cycles=180.0),
    "tpce": dict(cpi_base=1.4, mlp=1.0, miss_penalty_cycles=220.0),
    "asdb": dict(cpi_base=1.4, mlp=1.4, miss_penalty_cycles=200.0),
    "htap": dict(cpi_base=1.2, mlp=1.2, miss_penalty_cycles=210.0),
}

_MRC_TABLES = {
    "tpch": TPCH_MRC,
    "tpce": TPCE_MRC,
    "asdb": ASDB_MRC,
    "htap": HTAP_MRC,
}


def execution_profile(workload: str, scale_factor: int) -> ExecutionCharacteristics:
    """The calibrated :class:`ExecutionCharacteristics` for a workload."""
    if workload not in _CPU_PARAMS:
        raise ConfigurationError(f"no profile for workload {workload!r}")
    params = _CPU_PARAMS[workload]
    return ExecutionCharacteristics(
        cpi_base=params["cpi_base"],
        mlp=params["mlp"],
        miss_penalty_cycles=params["miss_penalty_cycles"],
        mrc=build_mrc(_MRC_TABLES[workload], scale_factor),
    )
