"""Cost-based query optimizer: cardinality estimation, cost model, greedy
join ordering, and the serial-vs-parallel plan decision."""

from repro.engine.optimizer.cost_model import CostModel
from repro.engine.optimizer.optimizer import Optimizer, OptimizedQuery, PlanningContext
from repro.engine.optimizer.queryspec import JoinEdge, JoinKind, QuerySpec, TableRef

__all__ = [
    "CostModel",
    "Optimizer",
    "OptimizedQuery",
    "PlanningContext",
    "JoinEdge",
    "JoinKind",
    "QuerySpec",
    "TableRef",
]
