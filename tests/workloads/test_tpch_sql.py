"""Cross-validation of the TPC-H SQL texts against the query specs."""

import pytest

from repro.workloads.tpch import TPCH_QUERIES, tpch_query
from repro.workloads.tpch_sql import (
    TPCH_SQL,
    has_group_by,
    has_order_by,
    sql_text,
    tables_in_sql,
)


class TestSqlCatalog:
    def test_all_22_texts_present(self):
        assert sorted(TPCH_SQL) == list(range(1, 23))
        for number in TPCH_QUERIES:
            assert "select" in sql_text(number).lower()

    def test_specs_touch_subset_of_sql_tables(self):
        """Every table a spec references appears in the query's SQL."""
        for number in TPCH_QUERIES:
            spec = tpch_query(number, 10)
            spec_tables = {ref.table for ref in spec.tables}
            sql_tables = tables_in_sql(number)
            assert spec_tables <= sql_tables, (number, spec_tables - sql_tables)

    def test_group_by_annotations_consistent(self):
        """Specs with multi-row aggregation correspond to GROUP BY SQL."""
        for number in TPCH_QUERIES:
            spec = tpch_query(number, 10)
            if spec.group_rows > 1:
                assert has_group_by(number), number

    def test_sort_annotations_consistent(self):
        for number in TPCH_QUERIES:
            spec = tpch_query(number, 10)
            if spec.sort_rows > 0:
                assert has_order_by(number), number

    def test_q20_matches_paper_listing(self):
        """The paper's Listing 1 structure: nested IN-subquery chain over
        partsupp/part/lineitem with a supplier/nation outer query."""
        text = sql_text(20).lower()
        assert text.count("in (") >= 2
        assert "0.5 * sum(l_quantity)" in text
        assert tables_in_sql(20) == {
            "supplier", "nation", "partsupp", "part", "lineitem",
        }

    def test_correlated_queries_have_subqueries(self):
        from repro.workloads.tpch_sql import has_correlated_subquery
        for number in TPCH_QUERIES:
            spec = tpch_query(number, 10)
            if spec.correlated_passes > 1.0:
                assert has_correlated_subquery(number), number
