"""Tests for plan trees and rendering."""

import pytest

from repro.engine.plan.operators import JoinAlgorithm, OpKind, PlanNode
from repro.engine.plan.render import plan_diff_summary, render_plan
from repro.errors import PlanningError


def scan(table, rows=100.0, cpu=10.0, parallel=False):
    return PlanNode(op=OpKind.COLUMNSTORE_SCAN, table=table, rows_out=rows,
                    cpu_cost=cpu, scan_bytes=1000.0, parallel=parallel)


def join(left, right, parallel=False, op=OpKind.HASH_JOIN, memory=50.0):
    return PlanNode(op=op, children=(left, right), rows_out=10.0,
                    cpu_cost=5.0, memory_bytes=memory, parallel=parallel)


class TestPlanNode:
    def test_walk_preorder(self):
        tree = join(scan("a"), scan("b"))
        kinds = [n.op for n in tree.walk()]
        assert kinds == [OpKind.HASH_JOIN, OpKind.COLUMNSTORE_SCAN,
                         OpKind.COLUMNSTORE_SCAN]

    def test_totals(self):
        tree = join(scan("a"), scan("b"))
        assert tree.total_cpu_cost() == 25.0
        assert tree.total_scan_bytes() == 2000.0
        assert tree.total_memory_bytes() == 50.0
        assert tree.operator_count() == 3

    def test_join_count(self):
        tree = join(join(scan("a"), scan("b")), scan("c"),
                    op=OpKind.NESTED_LOOPS)
        assert tree.join_count() == 2

    def test_tables_touched(self):
        tree = join(scan("a"), scan("b"))
        assert set(tree.tables_touched()) == {"a", "b"}

    def test_signature_distinguishes_structure(self):
        a = join(scan("a"), scan("b"))
        b = join(scan("b"), scan("a"))
        c = join(scan("a"), scan("b"), op=OpKind.NESTED_LOOPS)
        assert a.signature() != b.signature()
        assert a.signature() != c.signature()
        assert a.signature() == join(scan("a"), scan("b")).signature()

    def test_signature_marks_parallelism(self):
        serial = join(scan("a"), scan("b"))
        parallel = serial.with_parallelism(True)
        assert serial.signature() != parallel.signature()
        assert parallel.is_parallel_plan()

    def test_negative_estimates_rejected(self):
        with pytest.raises(PlanningError):
            PlanNode(op=OpKind.SORT, rows_out=-1.0)
        with pytest.raises(PlanningError):
            PlanNode(op=OpKind.SORT, memory_bytes=-1.0)

    def test_join_algorithm_mapping(self):
        assert JoinAlgorithm.HASH.op_kind is OpKind.HASH_JOIN
        assert JoinAlgorithm.NESTED_LOOPS.op_kind is OpKind.NESTED_LOOPS
        assert JoinAlgorithm.MERGE.op_kind is OpKind.MERGE_JOIN


class TestRender:
    def test_serial_arrow(self):
        text = render_plan(scan("part"))
        assert "-->" in text
        assert "part" in text

    def test_parallel_double_arrow(self):
        text = render_plan(scan("part", parallel=True))
        assert "<=>" in text

    def test_indentation_by_depth(self):
        tree = join(scan("a"), scan("b"))
        lines = render_plan(tree).splitlines()
        assert lines[0].startswith("-->")
        assert lines[1].startswith("    ")

    def test_row_formatting(self):
        assert "2.50M rows" in render_plan(scan("t", rows=2.5e6))
        assert "1.20B rows" in render_plan(scan("t", rows=1.2e9))
        assert "3.0K rows" in render_plan(scan("t", rows=3000))

    def test_costs_shown_on_request(self):
        text = render_plan(join(scan("a"), scan("b")), show_costs=True)
        assert "cost=" in text
        assert "mem=" in text

    def test_diff_summary(self):
        serial = join(scan("a"), scan("b"))
        parallel = join(scan("a"), scan("b"), parallel=True,
                        op=OpKind.NESTED_LOOPS).with_parallelism(True)
        summary = plan_diff_summary(serial, parallel)
        assert "Hash Match" in summary
        assert "Nested Loops" in summary
        assert "same shape: False" in summary
