"""Event heap and simulation clock.

The :class:`EventLoop` is a classic calendar: events are ``(time, seq)``
ordered in a binary heap, where ``seq`` is a monotonically increasing tie
breaker so that events scheduled at the same instant fire in FIFO order and
runs are fully deterministic.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple

from repro.errors import SimulationError


class Event:
    """A schedulable occurrence with an optional payload.

    An event may be *cancelled* before it fires; cancelled events stay in
    the heap but are skipped by the loop (lazy deletion).
    """

    __slots__ = ("time", "callback", "payload", "cancelled", "fired")

    def __init__(self, time: float, callback: Callable[["Event"], None], payload: Any = None):
        self.time = time
        self.callback = callback
        self.payload = payload
        self.cancelled = False
        self.fired = False

    def cancel(self) -> None:
        """Prevent this event from firing.  Idempotent."""
        self.cancelled = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else ("fired" if self.fired else "pending")
        return f"Event(t={self.time:.6f}, {state})"


class EventLoop:
    """A deterministic discrete-event calendar.

    >>> loop = EventLoop()
    >>> out = []
    >>> _ = loop.schedule_at(2.0, lambda ev: out.append("b"))
    >>> _ = loop.schedule_at(1.0, lambda ev: out.append("a"))
    >>> loop.run()
    >>> out
    ['a', 'b']
    """

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Event]] = []
        self._seq = 0
        self._now = 0.0
        self._running = False

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    def schedule_at(self, time: float, callback: Callable[[Event], None], payload: Any = None) -> Event:
        """Schedule *callback* to fire at absolute simulation time *time*."""
        if time < self._now:
            raise SimulationError(f"cannot schedule event in the past: {time} < {self._now}")
        event = Event(time, callback, payload)
        heapq.heappush(self._heap, (time, self._seq, event))
        self._seq += 1
        return event

    def schedule_after(self, delay: float, callback: Callable[[Event], None], payload: Any = None) -> Event:
        """Schedule *callback* to fire *delay* seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self.schedule_at(self._now + delay, callback, payload)

    def peek_time(self) -> Optional[float]:
        """Time of the next pending (non-cancelled) event, or ``None``."""
        while self._heap and self._heap[0][2].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0][0]

    def step(self) -> bool:
        """Fire the next pending event.  Returns ``False`` if none remain."""
        while self._heap:
            time, _, event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = time
            event.fired = True
            event.callback(event)
            return True
        return False

    def run(self, until: Optional[float] = None) -> None:
        """Run events until the heap drains or the clock passes *until*.

        When *until* is given the clock is advanced to exactly *until* at
        the end of the run, even if the last event fired earlier.
        """
        if self._running:
            raise SimulationError("event loop is not reentrant")
        self._running = True
        try:
            while True:
                next_time = self.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    break
                self.step()
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False
