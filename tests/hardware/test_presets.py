"""Tests for machine presets and cross-hardware studies."""

import pytest

from repro.core.experiment import Experiment, ExperimentConfig
from repro.core.knobs import ResourceAllocation
from repro.hardware.presets import (
    NO_SMT_TESTBED,
    PAPER_TESTBED,
    PRESETS,
    SCALE_OUT,
    SCALE_UP,
    SINGLE_SOCKET,
    preset,
)
from repro.units import MIB


class TestPresets:
    def test_paper_testbed_matches_section3(self):
        machine = PAPER_TESTBED.build()
        assert machine.topology.total_logical_cpus == 32
        assert machine.llc.total_size == 40 * MIB
        assert machine.dram.capacity_bytes == 64 * 1024 ** 3

    def test_scale_out_trades_cache_for_cores(self):
        assert SCALE_OUT.cores_per_socket > PAPER_TESTBED.cores_per_socket
        assert SCALE_OUT.llc_per_socket_bytes < PAPER_TESTBED.llc_per_socket_bytes

    def test_lookup(self):
        assert preset("scale-up") is SCALE_UP
        with pytest.raises(KeyError):
            preset("mainframe")

    def test_all_presets_buildable(self):
        for name, spec in PRESETS.items():
            machine = spec.build()
            assert machine.topology.total_logical_cpus >= 8, name


class TestCrossHardwareStudy:
    def _tps(self, spec, cores):
        config = ExperimentConfig(
            workload="asdb", scale_factor=2000,
            allocation=ResourceAllocation(
                logical_cores=cores,
                llc_mb=(spec.llc_per_socket_bytes // MIB) * spec.sockets,
            ),
            duration=6.0, machine_spec=spec,
        )
        return Experiment(config).run().primary_metric

    def test_scale_out_wins_for_oltp(self):
        """The §6 thesis: OLTP barely uses the LLC, so trading cache for
        cores is a net win for transactional throughput."""
        testbed = self._tps(PAPER_TESTBED, cores=32)
        scale_out = self._tps(SCALE_OUT, cores=64)
        assert scale_out > testbed

    def test_single_socket_has_no_numa_penalty(self):
        machine = SINGLE_SOCKET.build()
        shape = machine.topology.describe_allocation(
            machine.topology.paper_allocation(16)
        )
        assert machine.numa.remote_access_fraction(shape) == 0.0

    def test_no_smt_testbed_peaks_at_16(self):
        machine = NO_SMT_TESTBED.build()
        assert machine.topology.total_logical_cpus == 16
