"""Tests for generator-based processes."""

import pytest

from repro.errors import SimulationError
from repro.sim.process import Simulator, Timeout


def test_timeout_advances_clock():
    sim = Simulator()
    def worker():
        yield Timeout(2.0)
        yield Timeout(3.0)
    sim.spawn(worker())
    sim.run()
    assert sim.now == 5.0


def test_process_result_captured():
    sim = Simulator()
    def worker():
        yield Timeout(1.0)
        return 42
    proc = sim.spawn(worker())
    sim.run()
    assert proc.result == 42
    assert not proc.alive


def test_wait_event_resumes_with_value():
    sim = Simulator()
    gate = sim.event()
    results = []
    def waiter():
        value = yield gate
        results.append((sim.now, value))
    def trigger_later():
        yield Timeout(4.0)
        gate.trigger("go")
    sim.spawn(waiter())
    sim.spawn(trigger_later())
    sim.run()
    assert results == [(4.0, "go")]


def test_wait_on_already_triggered_event_resumes_immediately():
    sim = Simulator()
    gate = sim.event()
    gate.trigger("early")
    results = []
    def waiter():
        value = yield gate
        results.append(value)
    sim.spawn(waiter())
    sim.run()
    assert results == ["early"]


def test_double_trigger_raises():
    sim = Simulator()
    gate = sim.event()
    gate.trigger()
    with pytest.raises(SimulationError):
        gate.trigger()


def test_waiting_on_another_process():
    sim = Simulator()
    def child():
        yield Timeout(3.0)
        return "child-result"
    def parent():
        proc = sim.spawn(child())
        result = yield proc
        return (sim.now, result)
    parent_proc = sim.spawn(parent())
    sim.run()
    assert parent_proc.result == (3.0, "child-result")


def test_multiple_waiters_all_wake():
    sim = Simulator()
    gate = sim.event()
    woken = []
    def waiter(i):
        yield gate
        woken.append(i)
    for i in range(3):
        sim.spawn(waiter(i))
    def trigger():
        yield Timeout(1.0)
        gate.trigger()
    sim.spawn(trigger())
    sim.run()
    assert sorted(woken) == [0, 1, 2]


def test_yielding_garbage_raises():
    sim = Simulator()
    def bad():
        yield "not a command"
    sim.spawn(bad())
    with pytest.raises(SimulationError):
        sim.run()


def test_negative_timeout_raises():
    with pytest.raises(SimulationError):
        Timeout(-0.1)


def test_interrupt_stops_process():
    sim = Simulator()
    progressed = []
    def worker():
        yield Timeout(1.0)
        progressed.append(1)
        yield Timeout(1.0)
        progressed.append(2)
    proc = sim.spawn(worker())
    sim.run(until=1.5)
    proc.interrupt()
    sim.run()
    assert progressed == [1]
    assert not proc.alive


class TestSpawnMany:
    def test_matches_sequential_spawns(self):
        def worker(tag, out):
            yield Timeout(0.5)
            out.append(tag)

        seq_out = []
        sim_a = Simulator()
        for i in range(5):
            sim_a.spawn(worker(i, seq_out), name="proc")
        sim_a.run()

        batch_out = []
        sim_b = Simulator()
        procs = sim_b.spawn_many(
            [worker(i, batch_out) for i in range(5)], name="proc"
        )
        sim_b.run()
        assert batch_out == seq_out
        assert [p.name for p in procs] == [f"proc-{i}" for i in range(5)]
        assert not any(p.alive for p in procs)

    def test_spawn_many_mid_run_uses_current_time(self):
        sim = Simulator()
        started = []

        def child():
            started.append(sim.now)
            yield Timeout(0.1)

        def parent():
            yield Timeout(2.0)
            sim.spawn_many([child(), child()])

        sim.spawn(parent())
        sim.run()
        assert started == [2.0, 2.0]

    def test_empty_batch(self):
        sim = Simulator()
        assert sim.spawn_many([]) == []
