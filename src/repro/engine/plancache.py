"""LRU plan cache: memoized optimizer output for repeated queries.

Profiling a TPC-H experiment shows the optimizer dominating per-run CPU
time: every closed-loop stream re-plans the same 22 templates on every
pass, and the harness re-plans them all once more when collecting plan
signatures (§9 pitfall #6).  Within one engine instance the planning
inputs — the database, the buffer-pool residency model, the cost model,
and the governor's grant percentage — are fixed at construction, so an
:class:`~repro.engine.optimizer.optimizer.OptimizedQuery` is a pure
function of ``(spec, effective DOP)``.  Caching on that key is therefore
exact, not heuristic: a hit returns the very object a fresh optimization
would rebuild.

Plans must *not* be shared across engine instances (different
allocations change residency and DOP), which is why the cache lives on
the engine rather than at module level.  Engines additionally carry a
*namespace* — the backend personality that owns the cache — folded into
every key, so plans produced under one backend's cost model can never be
served to another even if cache objects are ever pooled or compared, and
per-backend hit/miss accounting stays separable in the
``dm_router_decisions`` view.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Hashable, Optional

#: Default capacity: comfortably above the 22 TPC-H templates times the
#: handful of DOP hints a single run can produce.
DEFAULT_PLAN_CACHE_SIZE = 256


class PlanCache:
    """A bounded least-recently-used mapping with hit/miss accounting."""

    def __init__(self, maxsize: int = DEFAULT_PLAN_CACHE_SIZE,
                 namespace: str = ""):
        if maxsize < 0:
            raise ValueError("plan cache size cannot be negative")
        self.maxsize = maxsize
        self.namespace = namespace
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def enabled(self) -> bool:
        return self.maxsize > 0

    def get(self, key: Hashable) -> Optional[Any]:
        """The cached value for *key*, refreshing its recency; None on miss."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: Hashable, value: Any) -> None:
        if not self.enabled:
            return
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        self._entries.clear()

    def info(self) -> Dict[str, int]:
        """Cache statistics in ``functools.lru_cache``-style shape."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "currsize": len(self._entries),
            "maxsize": self.maxsize,
        }
