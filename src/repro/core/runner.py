"""Parallel experiment execution with result-cache integration.

The study is embarrassingly parallel: every
:class:`~repro.core.experiment.ExperimentConfig` owns its machine, its
simulator, and its seeded RNG streams, so grid points share no state and
can run in separate worker processes.  :func:`run_configs` is the single
entry point the sweep builders, figure regenerators, and CLI all use:

* results come back **in input order** regardless of completion order;
* ``jobs=1`` (the default) runs in-process — no pool, no pickling, and
  byte-identical behaviour to the historical serial ``run_sweep``;
* ``jobs>1`` fans the uncached configs out over a
  :class:`~concurrent.futures.ProcessPoolExecutor`; determinism is
  preserved because each config carries its own seed and workers share
  nothing (the determinism tests assert bit-identical metrics);
* a :class:`~repro.core.resultcache.ResultCache` short-circuits configs
  measured before, and freshly-computed measurements are stored back.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import replace
from typing import Callable, List, Optional, Sequence, TypeVar

from repro.core.experiment import Experiment, ExperimentConfig
from repro.core.measurement import Measurement
from repro.core.resultcache import ResultCache
from repro.errors import ConfigurationError

_T = TypeVar("_T")
_R = TypeVar("_R")


def run_one(config: ExperimentConfig) -> Measurement:
    """Execute one config.  Module-level so process pools can pickle it."""
    return Experiment(config).run()


def map_ordered(
    fn: Callable[[_T], _R], items: Sequence[_T], jobs: int = 1
) -> List[_R]:
    """Apply *fn* to every item, preserving input order in the output.

    With ``jobs=1`` (or one item) this is a plain in-process loop; with
    more, items are distributed over a process pool with ``chunksize=1``
    so long and short experiments interleave instead of convoying.  The
    first worker exception propagates, matching the serial behaviour.
    """
    if jobs < 1:
        raise ConfigurationError("jobs must be >= 1")
    items = list(items)
    if jobs == 1 or len(items) <= 1:
        return [fn(item) for item in items]
    with ProcessPoolExecutor(max_workers=min(jobs, len(items))) as pool:
        return list(pool.map(fn, items, chunksize=1))


def run_configs(
    configs: Sequence[ExperimentConfig],
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
) -> List[Measurement]:
    """Run every config, in order, through the cache and the worker pool."""
    configs = list(configs)
    results: List[Optional[Measurement]] = [None] * len(configs)
    pending: List[int] = []
    if cache is not None:
        for index, config in enumerate(configs):
            hit = cache.get(config)
            if hit is not None:
                results[index] = hit
            else:
                pending.append(index)
    else:
        pending = list(range(len(configs)))

    fresh = map_ordered(run_one, [configs[i] for i in pending], jobs=jobs)
    for index, measurement in zip(pending, fresh):
        results[index] = measurement
        if cache is not None:
            cache.put(configs[index], measurement)
    return results  # type: ignore[return-value]


def with_seeds(
    configs: Sequence[ExperimentConfig], base_seed: int = 0, stride: int = 1
) -> List[ExperimentConfig]:
    """Derive per-config seeds deterministically: ``base_seed + i*stride``.

    Replicated sweeps (same grid, different seeds) need every point to
    carry its own seed *before* dispatch — seeding inside workers would
    tie results to scheduling order.  The seed is part of the cache key,
    so each replicate caches independently.
    """
    return [
        replace(config, seed=base_seed + index * stride)
        for index, config in enumerate(configs)
    ]
