"""Runner scaling bench: serial vs parallel sweeps, cold vs warm cache.

Times a 10-point mixed core sweep (the ASDB core axis plus four TPC-E
points) through :func:`repro.core.sweeps.run_sweep` at ``jobs`` in
{1, 2, 4}, then re-runs it against a warm result cache.  Emits one
machine-readable JSON document (also written to ``BENCH_runner_scaling.json``
at the repo root) so the perf trajectory of the runner is tracked the
same way the figure benches track fidelity:

* ``serial_seconds`` / ``parallel_seconds[jobs]`` — warm-pool sweep wall
  time (the first parallel run pays pool spin-up and is reported
  separately as ``parallel_cold_seconds``);
* ``speedup[jobs]`` — serial/parallel, published only when
  ``parallel_claims_valid`` (>= 2 *effective* cores — cgroup CPU masks
  count, ``os.cpu_count`` alone does not);
* ``dispatch_overhead_fraction`` / ``dispatch_overhead_per_point_seconds``
  — what fan-out costs beyond the serial compute.  On a single core a
  parallel sweep cannot go faster, so any excess over the serial wall
  time *is* the dispatch machinery; the bar is < 10% on any core count;
* ``warm_seconds`` and ``warm_speedup`` — the cache-hit path, which must
  be at least 10x faster than simulating;
* ``hit_latency_seconds`` — mean per-entry cache read cost.

Every run is asserted bit-identical to the serial baseline: performance
must never come at the cost of the paper's numbers.
"""

import json
import os
import time
from pathlib import Path

from repro.core import workerpool
from repro.core.experiment import ExperimentConfig
from repro.core.knobs import ResourceAllocation
from repro.core.resultcache import ResultCache
from repro.core.sweeps import core_sweep, duration_for, run_sweep

JOB_COUNTS = (1, 2, 4)
#: Dispatch overhead must stay under this fraction of serial sweep cost.
DISPATCH_OVERHEAD_LIMIT = 0.10
_REPO_ROOT = Path(__file__).resolve().parent.parent


def effective_cores():
    """CPUs this process may actually run on.

    ``os.cpu_count()`` reports the host's cores even inside a container
    pinned to one CPU, which is how the old bench came to publish
    0.93x "speedups".  The scheduler affinity mask respects cgroup
    pinning; fall back to ``cpu_count`` where it is unavailable (macOS).
    """
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def sweep_configs(duration_scale):
    """Ten independent grid points: 6 ASDB core steps + 4 TPC-E ones."""
    configs = list(core_sweep("asdb", 2000, duration_scale=duration_scale))
    tpce_duration = duration_for("tpce", 5000, duration_scale)
    configs.extend(
        ExperimentConfig(
            workload="tpce", scale_factor=5000,
            allocation=ResourceAllocation(logical_cores=cores),
            duration=tpce_duration,
        )
        for cores in (4, 8, 16, 32)
    )
    assert len(configs) == 10
    return configs


def run_scaling_study(duration_scale, cache_dir):
    configs = sweep_configs(duration_scale)
    cores = effective_cores()

    # Best-of-two timings throughout: a loaded (or single-core) host
    # adds seconds of scheduler noise per run, easily dwarfing the
    # dispatch costs this bench exists to measure.
    start = time.perf_counter()
    serial_measurements = run_sweep(configs, jobs=1)
    serial_seconds = time.perf_counter() - start
    baseline = [m.primary_metric for m in serial_measurements]
    start = time.perf_counter()
    run_sweep(configs, jobs=1)
    serial_seconds = min(serial_seconds, time.perf_counter() - start)

    cold = {}
    warm = {}
    for jobs in JOB_COUNTS[1:]:
        # First run pays worker spin-up; the pool then persists across
        # sweeps, so later runs time steady-state dispatch.
        start = time.perf_counter()
        measurements = run_sweep(configs, jobs=jobs)
        cold[jobs] = time.perf_counter() - start
        assert [m.primary_metric for m in measurements] == baseline, (
            f"jobs={jobs} diverged from the serial baseline"
        )
        warm[jobs] = float("inf")
        for _ in range(2):
            start = time.perf_counter()
            run_sweep(configs, jobs=jobs)
            warm[jobs] = min(warm[jobs], time.perf_counter() - start)

    # Dispatch overhead: wall time beyond the serial compute.  With one
    # effective core the workers serialize on the CPU, so the excess is
    # purely chunk pickling + IPC; with real cores the parallel run
    # should beat serial outright and the overhead clamps to zero.
    overhead_fraction = {
        jobs: max(0.0, warm[jobs] - serial_seconds) / serial_seconds
        for jobs in JOB_COUNTS[1:]
    }
    worst_overhead = max(overhead_fraction.values())

    cache = ResultCache(cache_dir)
    start = time.perf_counter()
    run_sweep(configs, cache=cache)          # cold: simulate + store
    cold_cached_seconds = time.perf_counter() - start
    start = time.perf_counter()
    cached = run_sweep(configs, cache=cache)  # warm: pure disk reads
    warm_seconds = time.perf_counter() - start
    assert cache.stats()["hits"] == len(configs)
    assert [m.primary_metric for m in cached] == baseline

    pools = workerpool.active_pools()
    return {
        "bench": "runner_scaling",
        "points": len(configs),
        "duration_scale": duration_scale,
        "cpu_count": os.cpu_count(),
        "effective_cores": cores,
        "parallel_claims_valid": cores >= 2,
        "serial_seconds": round(serial_seconds, 4),
        "parallel_cold_seconds": {
            str(jobs): round(cold[jobs], 4) for jobs in JOB_COUNTS[1:]
        },
        "parallel_seconds": {
            str(jobs): round(warm[jobs], 4) for jobs in JOB_COUNTS[1:]
        },
        "speedup": {
            str(jobs): round(serial_seconds / warm[jobs], 3)
            for jobs in JOB_COUNTS[1:]
        },
        "dispatch_overhead_fraction": round(worst_overhead, 4),
        "dispatch_overhead_per_point_seconds": round(
            max(0.0, max(warm.values()) - serial_seconds) / len(configs), 6
        ),
        "pool_start_method": (
            next(iter(pools.values())).method if pools else None
        ),
        "pool_counters": workerpool.pool_stats(),
        "cold_cached_seconds": round(cold_cached_seconds, 4),
        "warm_seconds": round(warm_seconds, 4),
        "warm_speedup": round(serial_seconds / warm_seconds, 1),
        "hit_latency_seconds": round(warm_seconds / len(configs), 6),
    }


def check_report(report):
    """The acceptance bars.

    Parallel *speedup* claims need >= 2 effective cores; the dispatch
    overhead bar applies on any core count — a warm pool on one core may
    not go faster, but it must not cost more than 10% either.
    """
    assert report["warm_speedup"] >= 10.0, (
        f"warm cache only {report['warm_speedup']}x faster than simulating"
    )
    assert report["dispatch_overhead_fraction"] < DISPATCH_OVERHEAD_LIMIT, (
        f"dispatch overhead {report['dispatch_overhead_fraction']:.1%} "
        f"exceeds {DISPATCH_OVERHEAD_LIMIT:.0%} of serial sweep cost"
    )
    if report["parallel_claims_valid"]:
        cores = report["effective_cores"]
        floor = 2.5 if cores >= 4 else 1.5
        best = max(report["speedup"].values())
        assert best >= floor, (
            f"best parallel speedup {best}x below {floor}x on {cores} cores"
        )


def test_runner_scaling(benchmark, emit, duration_scale, tmp_path):
    report = benchmark.pedantic(
        run_scaling_study, args=(duration_scale, tmp_path),
        rounds=1, iterations=1,
    )
    check_report(report)
    payload = json.dumps(report, indent=2, sort_keys=True)
    (_REPO_ROOT / "BENCH_runner_scaling.json").write_text(payload + "\n")
    emit("Runner scaling — 10-point sweep, jobs in {1,2,4}, cold vs warm cache",
         payload)


def main():
    import tempfile

    with tempfile.TemporaryDirectory() as cache_dir:
        report = run_scaling_study(0.3, cache_dir)
    check_report(report)
    payload = json.dumps(report, indent=2, sort_keys=True)
    (_REPO_ROOT / "BENCH_runner_scaling.json").write_text(payload + "\n")
    print(payload)


if __name__ == "__main__":
    main()
