"""Benchmark database schemas sized to the paper's Table 2.

Each builder creates a :class:`~repro.engine.catalog.Database` whose table
cardinalities follow the benchmark specifications and whose byte sizes are
normalized so that total data and index bytes match Table 2 at the
published scale factors (interpolated elsewhere).  Designs follow Table 1:

* OLTP (TPC-E, ASDB): normalized schema, row store, B-tree indexes;
* DSS (TPC-H): column store with columnstore-clustered fact tables;
* HTAP: the TPC-E row store plus updateable non-clustered columnstore
  indexes on the large, fast-growing tables (§2.3.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.calibration import interpolate_table2
from repro.engine.catalog import Database, Index, Table
from repro.engine.types import IndexKind, StorageFormat, WorkloadClass


@dataclass(frozen=True)
class _TableShape:
    """Cardinality and raw width of one table before normalization."""

    name: str
    rows: int
    raw_row_bytes: float
    hot_fraction: float = 0.1


def _normalize_row_bytes(shapes: List[_TableShape], target_bytes: float) -> Dict[str, float]:
    """Scale raw widths uniformly so Σ rows×width == target_bytes."""
    raw_total = sum(s.rows * s.raw_row_bytes for s in shapes)
    scale = target_bytes / raw_total
    return {s.name: s.raw_row_bytes * scale for s in shapes}


def _index_share(
    shapes: List[_TableShape], widths: Dict[str, float], target_index_bytes: float
) -> Dict[str, float]:
    """Distribute the index budget proportionally to table data size."""
    total = sum(s.rows * widths[s.name] for s in shapes)
    return {
        s.name: target_index_bytes * (s.rows * widths[s.name]) / total / max(1, s.rows)
        for s in shapes
    }


# ---------------------------------------------------------------------------
# TPC-H (§2.2): columnstore DSS database.
# ---------------------------------------------------------------------------

#: TPC-H cardinality per unit scale factor (fixed tables listed as-is).
TPCH_CARDINALITIES: Dict[str, Tuple[int, bool]] = {
    # name: (rows at SF=1, scales_with_sf)
    "region": (5, False),
    "nation": (25, False),
    "supplier": (10_000, True),
    "customer": (150_000, True),
    "part": (200_000, True),
    "partsupp": (800_000, True),
    "orders": (1_500_000, True),
    "lineitem": (6_000_000, True),
}

#: Approximate uncompressed row widths (bytes) from the TPC-H spec.
TPCH_RAW_WIDTHS: Dict[str, float] = {
    "region": 120.0,
    "nation": 120.0,
    "supplier": 160.0,
    "customer": 180.0,
    "part": 160.0,
    "partsupp": 150.0,
    "orders": 110.0,
    "lineitem": 120.0,
}


def tpch_rows(table: str, scale_factor: int) -> int:
    base, scales = TPCH_CARDINALITIES[table]
    return base * scale_factor if scales else base


def build_tpch(scale_factor: int) -> Database:
    """The SMP data-warehouse TPC-H database (fully columnar, §2.2.1)."""
    target_data, target_index = interpolate_table2("tpch", scale_factor)
    db = Database(
        name=f"tpch_sf{scale_factor}",
        scale_factor=scale_factor,
        workload_class=WorkloadClass.DSS,
    )
    raw_total = sum(
        tpch_rows(name, scale_factor) * TPCH_RAW_WIDTHS[name]
        for name in TPCH_CARDINALITIES
    )
    # One compression ratio per scale factor: small SFs compress worse
    # (dictionary/segment overhead), which Table 2 shows directly.
    compression = raw_total / target_data
    shapes = [
        _TableShape(name, tpch_rows(name, scale_factor), TPCH_RAW_WIDTHS[name])
        for name in TPCH_CARDINALITIES
    ]
    index_per_row = _index_share(
        shapes, {s.name: s.raw_row_bytes / compression for s in shapes}, target_index
    )
    for shape in shapes:
        db.add_table(
            Table(
                name=shape.name,
                rows=shape.rows,
                row_bytes=shape.raw_row_bytes,
                storage=StorageFormat.COLUMN,
                compression_ratio=compression,
                hot_fraction=1.0,  # scans touch everything
                indexes=[
                    Index(
                        name=f"ix_{shape.name}",
                        kind=IndexKind.COLUMNSTORE_CLUSTERED,
                        bytes_per_row=index_per_row[shape.name],
                    )
                ],
            )
        )
    return db


# ---------------------------------------------------------------------------
# TPC-E (§2.1): row-store brokerage OLTP database.  Scale factor counts
# customers; per-customer multipliers approximate the kit's growing and
# scaling tables.
# ---------------------------------------------------------------------------

TPCE_SHAPES: List[Tuple[str, float, float, float]] = [
    # (name, rows_per_customer, raw_row_bytes, hot_fraction)
    ("trade", 1200.0, 140.0, 0.02),
    ("trade_history", 2880.0, 60.0, 0.02),
    ("settlement", 1200.0, 80.0, 0.02),
    ("cash_transaction", 1100.0, 100.0, 0.02),
    ("holding_history", 1600.0, 60.0, 0.05),
    ("holding", 90.0, 80.0, 0.20),
    ("customer_account", 5.0, 120.0, 0.30),
    ("customer", 1.0, 280.0, 0.30),
    ("broker", 0.01, 200.0, 1.0),
    ("security", 0.685, 180.0, 0.50),
    ("company", 0.5, 300.0, 0.50),
    ("last_trade", 0.685, 60.0, 1.0),
]


def build_tpce(scale_factor: int, htap: bool = False) -> Database:
    """The TPC-E OLTP database; with ``htap=True``, §2.3.1's design (extra
    updateable non-clustered columnstore indexes on the large tables)."""
    workload = "htap" if htap else "tpce"
    target_data, target_index = interpolate_table2(workload, scale_factor)
    base_data, base_index = interpolate_table2("tpce", scale_factor)
    db = Database(
        name=f"{workload}_sf{scale_factor}",
        scale_factor=scale_factor,
        workload_class=WorkloadClass.HTAP if htap else WorkloadClass.OLTP,
    )
    shapes = [
        _TableShape(name, max(1, int(per_cust * scale_factor)), width, hot)
        for name, per_cust, width, hot in TPCE_SHAPES
    ]
    widths = _normalize_row_bytes(shapes, target_data)
    index_per_row = _index_share(shapes, widths, base_index)
    # The HTAP design adds columnstore bytes on the three analytic targets.
    columnstore_budget = max(0.0, target_index - base_index)
    analytic_tables = ("trade", "trade_history", "settlement")
    analytic_data = sum(
        s.rows * widths[s.name] for s in shapes if s.name in analytic_tables
    )
    for shape in shapes:
        indexes = [
            Index(
                name=f"pk_{shape.name}",
                kind=IndexKind.BTREE_CLUSTERED,
                bytes_per_row=index_per_row[shape.name] * 0.6,
            ),
            Index(
                name=f"ix_{shape.name}",
                kind=IndexKind.BTREE_NONCLUSTERED,
                bytes_per_row=index_per_row[shape.name] * 0.4,
            ),
        ]
        if htap and shape.name in analytic_tables:
            share = (shape.rows * widths[shape.name]) / analytic_data
            indexes.append(
                Index(
                    name=f"ncci_{shape.name}",
                    kind=IndexKind.COLUMNSTORE_NONCLUSTERED,
                    bytes_per_row=columnstore_budget * share / shape.rows,
                )
            )
        db.add_table(
            Table(
                name=shape.name,
                rows=shape.rows,
                row_bytes=widths[shape.name],
                storage=StorageFormat.ROW,
                hot_fraction=shape.hot_fraction,
                indexes=indexes,
            )
        )
    return db


def build_htap(scale_factor: int) -> Database:
    return build_tpce(scale_factor, htap=True)


# ---------------------------------------------------------------------------
# ASDB (§2.1): fixed-size, scaling, and growing tables.
# ---------------------------------------------------------------------------

ASDB_SHAPES: List[Tuple[str, float, int, float, float]] = [
    # (name, rows_per_sf, fixed_rows, raw_row_bytes, hot_fraction)
    ("fixed_config", 0.0, 5_000, 200.0, 1.0),
    ("fixed_types", 0.0, 1_000, 150.0, 1.0),
    ("scaling_users", 50.0, 0, 300.0, 0.15),
    ("scaling_ledger", 4_000.0, 0, 140.0, 0.05),
    ("scaling_items", 800.0, 0, 220.0, 0.10),
    ("growing_events", 2_000.0, 0, 120.0, 0.03),
]


def build_asdb(scale_factor: int) -> Database:
    """The Azure SQL Database Benchmark schema (§2.1)."""
    target_data, target_index = interpolate_table2("asdb", scale_factor)
    db = Database(
        name=f"asdb_sf{scale_factor}",
        scale_factor=scale_factor,
        workload_class=WorkloadClass.OLTP,
    )
    shapes = [
        _TableShape(
            name,
            max(1, int(per_sf * scale_factor) + fixed),
            width,
            hot,
        )
        for name, per_sf, fixed, width, hot in ASDB_SHAPES
    ]
    widths = _normalize_row_bytes(shapes, target_data)
    index_per_row = _index_share(shapes, widths, target_index)
    for shape in shapes:
        db.add_table(
            Table(
                name=shape.name,
                rows=shape.rows,
                row_bytes=widths[shape.name],
                storage=StorageFormat.ROW,
                hot_fraction=shape.hot_fraction,
                indexes=[
                    Index(
                        name=f"pk_{shape.name}",
                        kind=IndexKind.BTREE_CLUSTERED,
                        bytes_per_row=index_per_row[shape.name],
                    )
                ],
            )
        )
    return db


BUILDERS = {
    "tpch": build_tpch,
    "tpce": build_tpce,
    "asdb": build_asdb,
    "htap": build_htap,
}


def build(workload: str, scale_factor: int) -> Database:
    """Build any benchmark database by workload name."""
    try:
        builder = BUILDERS[workload]
    except KeyError:
        raise KeyError(f"unknown workload {workload!r}; one of {sorted(BUILDERS)}")
    return builder(scale_factor)
