"""CPU topology: sockets, physical cores, SMT siblings, allocation order.

The paper's §4 methodology allocates cores in a specific order:

    "As we increase the number of allocated cores from 1 to 16, we first
     allocate cores on socket 0, with one logical core corresponding to
     each physical core, before allocating cores from socket 1.  Finally,
     for 32 cores, we allocate the second logical core for all 16 physical
     cores."

:meth:`CpuTopology.paper_allocation` reproduces exactly that order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Tuple

from repro.errors import AllocationError


@dataclass(frozen=True)
class LogicalCpu:
    """A schedulable hardware thread.

    ``smt_index`` is 0 for the first hardware thread of a physical core and
    1 for its hyper-threaded sibling.
    """

    cpu_id: int
    socket: int
    physical_core: int  # global physical core index
    smt_index: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"cpu{self.cpu_id}(s{self.socket}/c{self.physical_core}/t{self.smt_index})"


class CpuTopology:
    """Sockets x physical cores x SMT threads, with affinity helpers."""

    def __init__(self, sockets: int = 2, cores_per_socket: int = 8, smt: int = 2):
        if sockets < 1 or cores_per_socket < 1 or smt < 1:
            raise AllocationError("topology dimensions must be positive")
        self.sockets = sockets
        self.cores_per_socket = cores_per_socket
        self.smt = smt
        self._cpus: List[LogicalCpu] = []
        cpu_id = 0
        # Enumerate SMT-major like Linux on this platform: cpu N and
        # cpu N + total_physical are siblings.
        for smt_index in range(smt):
            for socket in range(sockets):
                for core in range(cores_per_socket):
                    self._cpus.append(
                        LogicalCpu(
                            cpu_id=cpu_id,
                            socket=socket,
                            physical_core=socket * cores_per_socket + core,
                            smt_index=smt_index,
                        )
                    )
                    cpu_id += 1

    @property
    def total_physical_cores(self) -> int:
        return self.sockets * self.cores_per_socket

    @property
    def total_logical_cpus(self) -> int:
        return self.total_physical_cores * self.smt

    @property
    def cpus(self) -> Tuple[LogicalCpu, ...]:
        return tuple(self._cpus)

    def cpu(self, cpu_id: int) -> LogicalCpu:
        if not 0 <= cpu_id < len(self._cpus):
            raise AllocationError(f"no such logical cpu: {cpu_id}")
        return self._cpus[cpu_id]

    def siblings(self, cpu_id: int) -> List[LogicalCpu]:
        """All logical CPUs sharing the physical core of *cpu_id*."""
        target = self.cpu(cpu_id)
        return [c for c in self._cpus if c.physical_core == target.physical_core]

    def paper_allocation(self, num_cpus: int) -> FrozenSet[int]:
        """The paper's §4 allocation order for *num_cpus* logical CPUs.

        Physical cores of socket 0 first, then socket 1, then the SMT
        siblings in the same order.
        """
        if not 1 <= num_cpus <= self.total_logical_cpus:
            raise AllocationError(
                f"num_cpus must be in [1, {self.total_logical_cpus}], got {num_cpus}"
            )
        order: List[int] = []
        for smt_index in range(self.smt):
            for socket in range(self.sockets):
                for cpu in self._cpus:
                    if cpu.socket == socket and cpu.smt_index == smt_index:
                        order.append(cpu.cpu_id)
        return frozenset(order[:num_cpus])

    def describe_allocation(self, cpu_ids: FrozenSet[int]) -> "AllocationShape":
        """Summarize an affinity mask into the quantities the models need."""
        cpus = [self.cpu(cpu_id) for cpu_id in cpu_ids]
        physical = {c.physical_core for c in cpus}
        sockets = {c.socket for c in cpus}
        by_core: dict = {}
        for c in cpus:
            by_core.setdefault(c.physical_core, []).append(c)
        smt_pairs = sum(1 for mates in by_core.values() if len(mates) > 1)
        return AllocationShape(
            logical_cpus=len(cpus),
            physical_cores=len(physical),
            sockets_used=len(sockets),
            smt_paired_cores=smt_pairs,
        )


@dataclass(frozen=True)
class AllocationShape:
    """Shape summary of an affinity mask.

    ``smt_paired_cores`` counts the physical cores that have both hardware
    threads allocated — the quantity that decides how much SMT gain or
    interference applies.
    """

    logical_cpus: int
    physical_cores: int
    sockets_used: int
    smt_paired_cores: int

    @property
    def crosses_socket_boundary(self) -> bool:
        return self.sockets_used > 1
