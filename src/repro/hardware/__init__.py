"""Hardware substrate: the simulated database server.

The default machine mirrors the paper's testbed (a dual-socket Lenovo
Thinkstation P710 with Xeon E5-2620 v4 processors): 2 sockets x 8 physical
cores x 2 SMT threads, 20 MB LLC per socket with Intel CAT way allocation,
64 GB DDR4, and a 1.2 TB Intel 750 NVMe SSD.
"""

from repro.hardware.cache import CacheAllocationTechnology, LastLevelCache
from repro.hardware.cgroups import BlkioLimits, CpuSet
from repro.hardware.cpu import CpuModel, SmtModel
from repro.hardware.machine import Machine, MachineSpec
from repro.hardware.memory import DramModel
from repro.hardware.mrc import MissRatioCurve, WorkingSetComponent
from repro.hardware.numa import NumaModel
from repro.hardware.presets import PRESETS, preset
from repro.hardware.storage import NvmeDevice
from repro.hardware.topology import CpuTopology, LogicalCpu

__all__ = [
    "CacheAllocationTechnology",
    "LastLevelCache",
    "BlkioLimits",
    "CpuSet",
    "CpuModel",
    "SmtModel",
    "Machine",
    "MachineSpec",
    "DramModel",
    "MissRatioCurve",
    "WorkingSetComponent",
    "NvmeDevice",
    "NumaModel",
    "PRESETS",
    "preset",
    "CpuTopology",
    "LogicalCpu",
]
