"""Engine backend personalities and the resource-aware workload router.

Importing this package registers every built-in personality:

* ``rowstore-oltp`` — the seed engine (bit-identical construction);
* ``columnstore-dss`` — batch-mode analytics: cheap scans, deep MAXDOP,
  weak point access, patient grants;
* ``elastic-serverless`` — cold starts, autoscaled per-query cores,
  pay-per-grant memory, aggressive spill.
"""

from repro.backends.base import (
    BACKENDS,
    DEFAULT_BACKEND,
    DEFAULT_ROUTER_BACKENDS,
    BackendResourceProfile,
    EngineBackend,
    backend_names,
    make_backend,
    register_backend,
)
from repro.backends.columnstore import ColumnstoreDssBackend
from repro.backends.router import (
    POLICY_COST_SCORED,
    POLICY_RULE_BASED,
    ROUTER_POLICIES,
    DemandEstimate,
    Router,
    estimate_demand,
)
from repro.backends.routed import (
    RoutedEngine,
    build_routed_engine,
    partition_allocation,
)
from repro.backends.rowstore import RowstoreOltpBackend
from repro.backends.serverless import ElasticServerlessBackend, ServerlessEngine

__all__ = [
    "BACKENDS",
    "DEFAULT_BACKEND",
    "DEFAULT_ROUTER_BACKENDS",
    "BackendResourceProfile",
    "ColumnstoreDssBackend",
    "DemandEstimate",
    "ElasticServerlessBackend",
    "EngineBackend",
    "POLICY_COST_SCORED",
    "POLICY_RULE_BASED",
    "ROUTER_POLICIES",
    "RoutedEngine",
    "Router",
    "RowstoreOltpBackend",
    "ServerlessEngine",
    "backend_names",
    "build_routed_engine",
    "estimate_demand",
    "make_backend",
    "partition_allocation",
    "register_backend",
]
