"""Shared benchmark configuration.

Every benchmark regenerates one of the paper's tables or figures, prints
the same rows/series the paper reports (paper value next to measured
value where available), and is timed by pytest-benchmark.  Durations are
scaled down so the whole suite completes in minutes; pass a larger
``--repro-duration-scale`` for higher-fidelity runs.
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--repro-duration-scale",
        action="store",
        type=float,
        default=0.3,
        help="Scale factor for simulated measurement durations (1.0 = the "
        "defaults in repro.core.sweeps; smaller = faster, noisier).",
    )


@pytest.fixture(scope="session")
def duration_scale(request):
    return request.config.getoption("--repro-duration-scale")


@pytest.fixture
def emit(capfd):
    """Print an artifact block, bypassing pytest's output capture so the
    regenerated tables/series always appear in the benchmark log (the
    harness's job is to *print* the paper's rows)."""
    def _emit(title, body):
        with capfd.disabled():
            print(f"\n{'=' * 72}\n{title}\n{'=' * 72}\n{body}\n")
    return _emit
