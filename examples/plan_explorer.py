#!/usr/bin/env python3
"""Plan explorer: showplan-style output for the TPC-H templates.

Prints the optimizer's chosen plan for any query at any scale factor and
MAXDOP, plus the §7-style diagnosis: estimated cost, DOP decision, memory
grant, and how the plan changes across MAXDOP settings.

Usage::

    python examples/plan_explorer.py            # Q20 tour (the Fig 7 query)
    python examples/plan_explorer.py 9 100      # query 9 at SF=100
"""

import sys

from repro.core import ResourceAllocation
from repro.core.report import format_table
from repro.engine.engine import SqlEngine
from repro.engine.plan.render import plan_diff_summary, render_plan
from repro.engine.resource_governor import ResourceGovernor
from repro.hardware.machine import Machine
from repro.units import GIB
from repro.workloads import make_workload
from repro.workloads.tpch import tpch_query
from repro.workloads.tpch_sql import sql_text


def explore(number: int, scale_factor: int) -> None:
    workload = make_workload("tpch", scale_factor)
    machine = Machine()
    ResourceAllocation().apply_to(machine)
    engine = SqlEngine(
        machine, workload.database, workload.execution_characteristics(),
        governor=ResourceGovernor(max_dop=32), **workload.engine_parameters(),
    )
    spec = tpch_query(number, scale_factor)

    print(f"==== TPC-H Q{number} at SF={scale_factor} " + "=" * 40)
    print("\n--- SQL " + "-" * 60)
    print(sql_text(number))

    rows = []
    plans = {}
    for maxdop in (1, 4, 32):
        optimized = engine.optimizer.optimize(spec, max_dop=maxdop)
        grant = engine.admit(optimized)
        plans[maxdop] = optimized
        rows.append((
            maxdop,
            optimized.dop,
            f"{optimized.estimated_elapsed_cost / 1e6:.2f}M",
            f"{optimized.required_memory_bytes / GIB:.2f} GiB",
            "yes" if grant.spills else "no",
            optimized.plan.join_count(),
        ))
    print("\n--- Optimizer decisions " + "-" * 44)
    print(format_table(
        ["MAXDOP", "chosen DOP", "est. cost", "memory", "spills", "joins"],
        rows,
    ))

    print("\n--- Plan at MAXDOP=1 " + "-" * 47)
    print(render_plan(plans[1].plan, show_costs=True))
    print("\n--- Plan at MAXDOP=32 " + "-" * 46)
    print(render_plan(plans[32].plan, show_costs=True))
    print("\n--- Differences " + "-" * 52)
    print(plan_diff_summary(plans[1].plan, plans[32].plan))


def main() -> None:
    if len(sys.argv) >= 3:
        explore(int(sys.argv[1]), int(sys.argv[2]))
    elif len(sys.argv) == 2:
        explore(int(sys.argv[1]), 100)
    else:
        # The paper's own example: Q20 across the scale factors (§7/Fig 7).
        for sf in (10, 300):
            explore(20, sf)
            print()


if __name__ == "__main__":
    main()
