"""Table 3: lock and latch wait times, TPC-E SF=15000 vs SF=5000."""

from repro.core.figures import table3
from repro.core.report import format_table


def test_table3_wait_ratios(benchmark, duration_scale, emit):
    result = benchmark.pedantic(
        table3, kwargs={"duration_scale": duration_scale},
        rounds=1, iterations=1,
    )
    rows = [
        ("LOCK", result.ratios.get("LOCK"), result.paper_ratios["LOCK"]),
        ("LATCH", result.ratios.get("LATCH"), "increases"),
        ("PAGELATCH", result.ratios.get("PAGELATCH"), result.paper_ratios["PAGELATCH"]),
        ("SIGMA (L/L/PL)", result.sigma_ratio, result.paper_ratios["SIGMA"]),
        ("PAGEIOLATCH", result.ratios.get("PAGEIOLATCH"),
         result.paper_ratios["PAGEIOLATCH"]),
    ]
    emit(
        "Table 3 — TPC-E wait-time ratios, SF=15000 relative to SF=5000",
        format_table(["wait type", "measured ratio", "paper"], rows),
    )
    # Shape assertions: contention dilutes, IO waits explode.
    assert result.ratios["LOCK"] < 0.7
    assert result.ratios["PAGELATCH"] < 1.0
    assert result.sigma_ratio < 1.0
    assert result.ratios["PAGEIOLATCH"] > 10.0
