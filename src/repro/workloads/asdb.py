"""The Azure SQL Database Benchmark workload (§2.1).

A CRUD mix over fixed-size, scaling, and growing tables, designed to
exercise frequent OLTP database operations; 128 client threads (§3).
Compared to TPC-E the transactions are smaller, logging per transaction
lighter, and hot-row contention milder — which is why ASDB gains less
from hyper-threading (5-6.8% vs TPC-E's 16.7-24.2%, §4) and why its
sufficient LLC size is small (Table 4).
"""

from __future__ import annotations

from typing import Tuple

from repro.calibration import ASDB_CLIENT_THREADS
from repro.engine.catalog import Database
from repro.engine.schemas import build_asdb
from repro.engine.sqlos import ExecutionCharacteristics
from repro.units import KIB
from repro.workloads.oltp import OltpWorkloadBase, TransactionType
from repro.workloads.profiles import execution_profile

ASDB_MIX: Tuple[TransactionType, ...] = (
    TransactionType(
        name="point_select",
        weight=35.0,
        instructions=3.5e6,
        page_accesses=4.0,
        log_bytes=0.0,
        main_table="scaling_ledger",
    ),
    TransactionType(
        name="range_select",
        weight=20.0,
        instructions=9e6,
        page_accesses=16.0,
        log_bytes=0.0,
        main_table="scaling_items",
    ),
    TransactionType(
        name="update_row",
        weight=20.0,
        instructions=6e6,
        page_accesses=5.0,
        log_bytes=20 * KIB,
        main_table="scaling_ledger",
        lock_probability=0.35,
        lock_hold_ms=0.5,
        pagelatch_probability=0.4,
        pagelatch_hold_ms=0.15,
        dirty_page_writes=7.0,
    ),
    TransactionType(
        name="insert_row",
        weight=15.0,
        instructions=5e6,
        page_accesses=3.0,
        log_bytes=24 * KIB,
        main_table="growing_events",
        lock_probability=0.1,
        lock_hold_ms=0.3,
        pagelatch_probability=0.7,   # append hot spot on the growing table
        pagelatch_hold_ms=0.2,
        dirty_page_writes=8.0,
    ),
    TransactionType(
        name="delete_row",
        weight=5.0,
        instructions=5.5e6,
        page_accesses=4.0,
        log_bytes=16 * KIB,
        main_table="growing_events",
        lock_probability=0.2,
        lock_hold_ms=0.4,
        pagelatch_probability=0.3,
        pagelatch_hold_ms=0.15,
        dirty_page_writes=6.0,
    ),
    TransactionType(
        name="stored_proc_mix",
        weight=5.0,
        instructions=14e6,
        page_accesses=20.0,
        log_bytes=32 * KIB,
        main_table="scaling_users",
        lock_probability=0.25,
        lock_hold_ms=0.6,
        dirty_page_writes=12.0,
    ),
)


class AsdbWorkload(OltpWorkloadBase):
    """ASDB with 128 client threads (§3)."""

    def __init__(self, scale_factor: int, clients: int = ASDB_CLIENT_THREADS):
        super().__init__(scale_factor, clients=clients)

    @property
    def name(self) -> str:
        return "asdb"

    def build_database(self) -> Database:
        return build_asdb(self.scale_factor)

    def execution_characteristics(self) -> ExecutionCharacteristics:
        return execution_profile("asdb", self.scale_factor)

    def transaction_types(self) -> Tuple[TransactionType, ...]:
        return ASDB_MIX

    def hot_lock_rows(self) -> int:
        # ASDB scale factors are larger numbers; normalize the slope.
        return max(32, self.scale_factor // 20)

    def hot_latch_pages(self) -> int:
        return max(16, self.scale_factor // 40)
