"""Tests for the catalog and the Table 2 schema builders."""

import warnings

import pytest

from repro.calibration import TABLE2_SIZES_GB, interpolate_table2
from repro.engine.catalog import Database, Index, Table
from repro.engine.schemas import build, build_asdb, build_htap, build_tpce, build_tpch, tpch_rows
from repro.engine.types import IndexKind, StorageFormat, WorkloadClass
from repro.errors import ConfigurationError
from repro.units import GIB


class TestTable:
    def test_row_store_size(self):
        table = Table(name="t", rows=1000, row_bytes=100.0)
        assert table.data_bytes == 100_000

    def test_columnstore_compression(self):
        table = Table(
            name="t", rows=1000, row_bytes=100.0,
            storage=StorageFormat.COLUMN, compression_ratio=4.0,
        )
        assert table.data_bytes == pytest.approx(25_000)
        assert table.uncompressed_bytes == 100_000

    def test_index_bytes(self):
        table = Table(
            name="t", rows=1000, row_bytes=100.0,
            indexes=[Index("ix", IndexKind.BTREE_NONCLUSTERED, bytes_per_row=10.0)],
        )
        assert table.index_bytes == 10_000
        assert table.index("ix").kind is IndexKind.BTREE_NONCLUSTERED

    def test_missing_index_raises(self):
        table = Table(name="t", rows=1, row_bytes=1.0)
        with pytest.raises(ConfigurationError):
            table.index("nope")

    def test_bad_shapes_rejected(self):
        with pytest.raises(ConfigurationError):
            Table(name="t", rows=1, row_bytes=0.0)
        with pytest.raises(ConfigurationError):
            Table(name="t", rows=1, row_bytes=1.0, hot_fraction=0.0)
        with pytest.raises(ConfigurationError):
            Table(name="t", rows=1, row_bytes=1.0, compression_ratio=0.5)


class TestDatabase:
    def _db(self, workload_class=WorkloadClass.OLTP):
        return Database(name="db", scale_factor=1, workload_class=workload_class)

    def test_duplicate_table_rejected(self):
        db = self._db()
        db.add_table(Table(name="t", rows=1, row_bytes=1.0))
        with pytest.raises(ConfigurationError):
            db.add_table(Table(name="t", rows=1, row_bytes=1.0))

    def test_pitfall2_warning_rowstore_in_dss(self):
        db = self._db(WorkloadClass.DSS)
        with pytest.warns(UserWarning, match="pitfall"):
            db.add_table(Table(name="facts", rows=10, row_bytes=8.0))

    def test_pitfall2_warning_columnstore_in_oltp(self):
        db = self._db(WorkloadClass.OLTP)
        with pytest.warns(UserWarning, match="pitfall"):
            db.add_table(
                Table(name="t", rows=10, row_bytes=8.0, storage=StorageFormat.COLUMN)
            )

    def test_fits_in_memory_uses_engine_fraction(self):
        db = self._db()
        db.add_table(Table(name="t", rows=1000, row_bytes=1000.0))  # 1 MB
        assert db.fits_in_memory(2e6)
        assert not db.fits_in_memory(1e6)  # 80% of 1 MB < 1 MB


class TestInterpolation:
    def test_exact_points(self):
        data, index = interpolate_table2("tpch", 100)
        assert data == pytest.approx(41.95 * GIB)
        assert index == pytest.approx(0.75 * GIB)

    def test_between_points(self):
        data_lo, _ = interpolate_table2("tpch", 30)
        data_hi, _ = interpolate_table2("tpch", 100)
        data_mid, _ = interpolate_table2("tpch", 65)
        assert data_lo < data_mid < data_hi

    def test_extrapolation_beyond_largest(self):
        data_300, _ = interpolate_table2("tpch", 300)
        data_600, _ = interpolate_table2("tpch", 600)
        assert data_600 > data_300

    def test_below_smallest_scales_down(self):
        data_1, _ = interpolate_table2("tpch", 1)
        data_10, _ = interpolate_table2("tpch", 10)
        assert data_1 == pytest.approx(data_10 / 10)


class TestSchemaBuilders:
    @pytest.mark.parametrize("workload,sf", [
        (w, sf) for w, sizes in TABLE2_SIZES_GB.items() for sf in sizes
    ])
    def test_table2_sizes_reproduced(self, workload, sf):
        """Every (workload, SF) cell of Table 2 within 1%."""
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            db = build(workload, sf)
        expected_data, expected_index = TABLE2_SIZES_GB[workload][sf]
        assert db.data_bytes / GIB == pytest.approx(expected_data, rel=0.01)
        assert db.index_bytes / GIB == pytest.approx(expected_index, rel=0.01)

    def test_tpch_cardinalities(self):
        assert tpch_rows("lineitem", 10) == 60_000_000
        assert tpch_rows("orders", 100) == 150_000_000
        assert tpch_rows("nation", 300) == 25  # fixed table

    def test_tpch_is_columnar(self):
        db = build_tpch(10)
        assert all(
            t.storage is StorageFormat.COLUMN for t in db.tables.values()
        )
        assert db.workload_class is WorkloadClass.DSS

    def test_tpce_is_rowstore_with_btrees(self):
        db = build_tpce(5000)
        assert all(t.storage is StorageFormat.ROW for t in db.tables.values())
        assert all(
            t.has_index_kind(IndexKind.BTREE_CLUSTERED) for t in db.tables.values()
        )

    def test_htap_adds_columnstore_indexes_on_big_tables(self):
        db = build_htap(5000)
        for name in ("trade", "trade_history", "settlement"):
            assert db.table(name).has_index_kind(IndexKind.COLUMNSTORE_NONCLUSTERED)
        # but not on small dimension-ish tables
        assert not db.table("customer").has_index_kind(
            IndexKind.COLUMNSTORE_NONCLUSTERED
        )

    def test_htap_index_exceeds_tpce_index(self):
        """Table 2: the HTAP design adds index bytes over plain TPC-E."""
        assert build_htap(5000).index_bytes > build_tpce(5000).index_bytes

    def test_asdb_has_fixed_scaling_growing_tables(self):
        small = build_asdb(2000)
        large = build_asdb(6000)
        # Fixed tables keep cardinality; scaling tables grow.
        assert small.table("fixed_config").rows == large.table("fixed_config").rows
        assert large.table("scaling_ledger").rows > small.table("scaling_ledger").rows

    def test_unknown_workload_rejected(self):
        with pytest.raises(KeyError):
            build("mongodb", 1)

    def test_shading_rule_matches_paper(self):
        """Table 2 shades databases not fitting in 64 GB: ASDB 6000,
        TPC-E/HTAP 15000, TPC-H 300 do not fit."""
        memory = 64 * 1024**3
        assert build_asdb(2000).total_bytes < memory
        assert build_asdb(6000).total_bytes > memory
        assert build_tpce(15000).total_bytes > memory
        assert build_tpch(300).total_bytes > memory
        assert build_tpch(30).total_bytes < memory
