"""Tests for the §10 research-question extensions: predictive models,
SLA partitioning, and admission policies."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.admission import compare_admission_policies
from repro.core.models import LinearModel, ModelComparison, RooflineModel, compare_models
from repro.core.partitioning import PartitionPlan, TenantProfile, partition_resources
from repro.errors import ConfigurationError


class TestLinearModel:
    def test_exact_fit_on_linear_data(self):
        model = LinearModel().fit([1, 2, 4], [10, 20, 40])
        assert model.slope == pytest.approx(10.0)
        assert model.predict(3) == pytest.approx(30.0)
        assert model.required_resource(50) == pytest.approx(5.0)

    def test_too_few_points_rejected(self):
        with pytest.raises(ConfigurationError):
            LinearModel().fit([1], [1])


class TestRooflineModel:
    def test_recovers_breakpoint(self):
        xs = [100, 200, 400, 800, 1600]
        ys = [10, 20, 40, 40, 40]  # ceiling at 40 from x=400
        model = RooflineModel().fit(xs, ys)
        assert model.ceiling == pytest.approx(40.0, rel=0.05)
        assert model.slope == pytest.approx(0.1, rel=0.05)
        assert model.breakpoint == pytest.approx(400.0, rel=0.1)

    def test_required_resource_below_roof(self):
        model = RooflineModel(slope=0.1, ceiling=40.0)
        assert model.required_resource(20.0) == pytest.approx(200.0)
        assert model.required_resource(50.0) == float("inf")

    @given(
        st.floats(min_value=0.01, max_value=10.0),
        st.floats(min_value=1.0, max_value=100.0),
    )
    @settings(max_examples=30)
    def test_prediction_never_exceeds_ceiling(self, slope, ceiling):
        model = RooflineModel(slope=slope, ceiling=ceiling)
        for x in (0.1, 1.0, 10.0, 1e6):
            assert model.predict(x) <= ceiling + 1e-9


class TestModelComparison:
    def test_roofline_beats_linear_on_saturating_curve(self):
        xs = [100, 200, 400, 800, 1600, 2500]
        ys = [8, 16, 30, 38, 40, 40]
        result = compare_models(xs, ys)
        assert result.roofline_wins
        assert result.roofline_rmse < result.linear_rmse
        # The linear model overallocates for the provisioning target.
        assert result.linear_required > result.roofline_required

    def test_equal_on_truly_linear_curve(self):
        xs = [1.0, 2.0, 3.0]
        ys = [5.0, 10.0, 15.0]
        result = compare_models(xs, ys, target_fraction=0.5)
        assert result.roofline_rmse <= result.linear_rmse + 1e-9


def _tenant(name, slo, scale=1.0):
    core_curve = {4: 40 * scale, 8: 75 * scale, 16: 140 * scale}
    llc_curve = {4: 0.7, 8: 0.9, 16: 1.0}
    return TenantProfile.from_curves(name, core_curve, llc_curve, slo=slo)


class TestPartitioning:
    def test_two_tenants_fit(self):
        plan = partition_resources(
            [_tenant("a", slo=60.0), _tenant("b", slo=35.0)],
            total_cores=32, total_llc_mb=40,
        )
        assert plan is not None
        a_cores, a_llc = plan.assignments["a"]
        b_cores, b_llc = plan.assignments["b"]
        assert a_cores + b_cores <= 32
        assert a_llc + b_llc <= 40
        assert plan.spare_cores >= 0

    def test_assignments_meet_slos(self):
        tenants = [_tenant("a", slo=60.0), _tenant("b", slo=35.0)]
        plan = partition_resources(tenants)
        for tenant in tenants:
            assert tenant.meets_slo(*plan.assignments[tenant.name])

    def test_infeasible_returns_none(self):
        greedy = [_tenant("a", slo=130.0), _tenant("b", slo=130.0)]
        # Each needs ~16 cores + 16 MB; two do not fit in 20 cores.
        assert partition_resources(greedy, total_cores=20, total_llc_mb=40) is None

    def test_prefers_slack(self):
        plan = partition_resources([_tenant("a", slo=35.0)])
        # The cheapest SLO-meeting allocation is chosen, not the largest.
        assert plan.assignments["a"][0] <= 8

    def test_bad_inputs_rejected(self):
        with pytest.raises(ConfigurationError):
            TenantProfile(name="x", performance={}, slo=1.0)
        with pytest.raises(ConfigurationError):
            partition_resources([_tenant("a", slo=1.0)], total_cores=0)


class TestAdmission:
    def test_comparison_runs_and_reports(self):
        result = compare_admission_policies(10, streams=3, duration_scale=0.5)
        assert result.immediate_qps > 0
        assert result.serialized_qps > 0
        assert result.advantage >= 0

    def test_in_memory_analytics_favors_concurrency(self):
        """At SF=10 (CPU-bound, short queries) admitting streams
        immediately wins: concurrent serial-plan queries fill cores that
        a single stream would leave idle."""
        result = compare_admission_policies(10, streams=3, duration_scale=1.0)
        assert result.immediate_wins


class TestSensitivityModule:
    def test_index_bounds(self):
        from repro.core.sensitivity import sensitivity_index
        assert sensitivity_index(100.0, 100.0) == 0.0
        assert sensitivity_index(100.0, 25.0) == 0.75
        assert sensitivity_index(100.0, 150.0) == 0.0   # improvements clamp
        assert sensitivity_index(0.0, 10.0) == 0.0

    def test_small_matrix_runs(self):
        from repro.core.sensitivity import (
            RESOURCES,
            sensitivity_matrix,
            spectrum_width,
        )
        rows = sensitivity_matrix(
            matrix=(("asdb", 2000), ("tpch", 10)), duration_scale=0.2,
        )
        assert len(rows) == 2
        for row in rows:
            assert set(row.indices) == set(RESOURCES)
            assert all(0.0 <= v <= 1.0 for v in row.indices.values())
            assert row.most_sensitive() in RESOURCES
        spread = spectrum_width(rows)
        assert set(spread) == set(RESOURCES)
