"""Tests for the sweep journal's damage tolerance and event lines.

A killed sweep can tear the journal's last line mid-write; loading must
drop exactly that line with a warning and keep everything before it
(satellite of the robustness tentpole).
"""

import json
import logging

from repro.core.journal import STATUS_CRASH, STATUS_OK, SweepJournal


def write_lines(path, *lines):
    path.write_text("".join(lines), encoding="utf-8")


def record_line(digest, status, attempt=1, index=0):
    return json.dumps({"digest": digest, "status": status,
                       "attempt": attempt, "index": index}) + "\n"


class TestTornTail:
    def test_truncated_trailing_line_is_dropped_with_warning(
            self, tmp_path, caplog):
        path = tmp_path / "journal.jsonl"
        write_lines(
            path,
            record_line("aaa", STATUS_OK),
            record_line("bbb", STATUS_CRASH),
            '{"digest": "ccc", "status": "cr',   # torn by a kill
        )
        with caplog.at_level(logging.WARNING, logger="repro.core.journal"):
            journal = SweepJournal(path)
        assert len(journal) == 2
        assert journal.last_status("aaa") == STATUS_OK
        assert journal.last_status("bbb") == STATUS_CRASH
        assert journal.last_status("ccc") is None
        assert any("truncated trailing line 3" in r.message
                   for r in caplog.records)

    def test_corrupt_middle_line_is_skipped_not_torn(self, tmp_path, caplog):
        path = tmp_path / "journal.jsonl"
        write_lines(
            path,
            record_line("aaa", STATUS_OK),
            "}}} not json {{{\n",
            record_line("bbb", STATUS_OK),
        )
        with caplog.at_level(logging.WARNING, logger="repro.core.journal"):
            journal = SweepJournal(path)
        assert len(journal) == 2
        assert any("skipping corrupt line 2" in r.message
                   for r in caplog.records)
        assert not any("truncated" in r.message for r in caplog.records)

    def test_non_dict_line_is_skipped(self, tmp_path, caplog):
        path = tmp_path / "journal.jsonl"
        write_lines(path, '["a", "list"]\n', record_line("aaa", STATUS_OK))
        with caplog.at_level(logging.WARNING, logger="repro.core.journal"):
            journal = SweepJournal(path)
        assert len(journal) == 1
        assert any("non-record line 1" in r.message for r in caplog.records)

    def test_appending_after_a_torn_tail_seals_the_fragment(self, tmp_path):
        """A resumed sweep appends to the damaged file: the torn
        fragment must be sealed with a newline so the new record lands
        on its own line instead of being welded onto the fragment."""
        path = tmp_path / "journal.jsonl"
        write_lines(path, record_line("aaa", STATUS_OK), '{"dig')
        journal = SweepJournal(path)
        journal.record("bbb", STATUS_OK, attempt=1)
        reloaded = SweepJournal(path)
        assert reloaded.last_status("aaa") == STATUS_OK
        assert reloaded.last_status("bbb") == STATUS_OK


class TestEventLines:
    def test_note_round_trips_through_reload(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = SweepJournal(path)
        journal.note("breaker", transition="trip", jobs=2)
        journal.note("breaker", transition="recover", jobs=3)
        journal.note("other", detail="x")
        assert len(journal.events()) == 3
        reloaded = SweepJournal(path)
        breaker = reloaded.events("breaker")
        assert [e["transition"] for e in breaker] == ["trip", "recover"]
        assert breaker[0]["jobs"] == 2
        assert reloaded.events("missing") == []

    def test_events_do_not_pollute_attempt_records(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = SweepJournal(path)
        journal.record("aaa", STATUS_OK, attempt=1)
        journal.note("breaker", transition="trip", jobs=1)
        reloaded = SweepJournal(path)
        assert len(reloaded) == 1            # attempt records only
        assert reloaded.attempts("aaa") == 0  # ok is not a failure
        assert len(reloaded.events()) == 1

    def test_note_tolerates_disk_trouble(self, tmp_path, monkeypatch,
                                         caplog):
        journal = SweepJournal(tmp_path / "journal.jsonl")

        def no_open(*args, **kwargs):
            raise OSError("disk full")

        monkeypatch.setattr("builtins.open", no_open)
        with caplog.at_level(logging.WARNING, logger="repro.core.journal"):
            journal.note("breaker", transition="trip", jobs=1)
        # In-memory view stays consistent; the failure is a warning.
        assert len(journal.events("breaker")) == 1
        assert any("could not append" in r.message for r in caplog.records)
