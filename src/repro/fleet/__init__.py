"""Fleet resilience: replicated shard groups, failover, and hedging.

The paper characterizes how a *single* engine degrades when resources
are taken away; the fleet layer models the complementary production
question — how a group of engine replicas stays available when a whole
replica browns out, partitions, or crashes:

* :mod:`repro.fleet.replicas` — :class:`ReplicaGroup`: N
  :class:`~repro.engine.engine.SqlEngine` instances on one simulated
  clock with primary/secondary roles, synchronous quorum WAL shipping
  over the existing LSN stream, fencing, and checkpoint-based catch-up
  on rejoin;
* :mod:`repro.fleet.health` — heartbeat-driven failure detection
  (phi-accrual-style suspicion over sim-clock inter-arrival gaps, fed by
  per-replica service times) driving automatic promotion;
* :mod:`repro.fleet.hedging` — tail-tolerant reads: hedge after a
  p95-based delay, per-tenant retry-budget token buckets, and
  brownout/queue-depth-aware shedding;
* :mod:`repro.fleet.cluster` — fleet-scale traffic: sharded multi-tenant
  clusters fed by open-loop arrival traces, priority-aware load
  shedding with the monotone-graceful-degradation contract, per-tenant
  token-bucket governance, and oversubscription sweeps with tail-first
  :class:`FleetReport` outputs;
* :mod:`repro.fleet.autoscale` — the deterministic sim-clock autoscaler
  (queue-depth / grant-wait / shed signals, serverless cold-start cost,
  reaction-time accounting).

The seeded chaos scheduler that exercises all of it lives in
:mod:`repro.faults.chaos`, and its schedules compose with fleet-traffic
runs (:func:`run_fleet` accepts a chaos schedule).
"""

from repro.fleet.autoscale import Autoscaler, AutoscalePolicy, ScalingDecision
from repro.fleet.cluster import (
    FleetCluster,
    FleetReport,
    FleetSpec,
    FleetSweep,
    TenantSpec,
    TenantStats,
    default_tenants,
    fleet_oversubscription_sweep,
    run_fleet,
)
from repro.fleet.health import FailoverController, HeartbeatMonitor
from repro.fleet.hedging import HedgedReader, RetryBudget
from repro.fleet.replicas import (
    ROLE_PRIMARY,
    ROLE_SECONDARY,
    Replica,
    ReplicaGroup,
)

__all__ = [
    "Autoscaler",
    "AutoscalePolicy",
    "FailoverController",
    "FleetCluster",
    "FleetReport",
    "FleetSpec",
    "FleetSweep",
    "HeartbeatMonitor",
    "HedgedReader",
    "Replica",
    "ReplicaGroup",
    "RetryBudget",
    "ROLE_PRIMARY",
    "ROLE_SECONDARY",
    "ScalingDecision",
    "TenantSpec",
    "TenantStats",
    "default_tenants",
    "fleet_oversubscription_sweep",
    "run_fleet",
]
