#!/usr/bin/env python3
"""Cloud SLO sizing from the nonlinear bandwidth response (the Fig 5 use
case).

A DBaaS provider prices storage-bandwidth tiers.  A linear performance
model says: to reach a target QPS, buy bandwidth proportional to it.  The
paper shows the real response curve is concave, so the linear model
overbuys — here by the same ~20% the paper reports.

This example sweeps cgroup read-bandwidth caps for TPC-H at SF=300,
fits the naive linear model, and picks the cheapest tier meeting the
target QPS from the measured curve.
"""

from repro.core import ResourceAllocation, run_experiment
from repro.core.analysis import linear_response_comparison
from repro.core.report import format_series, format_table
from repro.units import mb_per_s

#: Bandwidth tiers on offer (MB/s) and monthly prices (made-up units).
TIERS = [(200, 10), (400, 19), (600, 27), (800, 34), (1200, 48), (2500, 90)]


def main() -> None:
    print("Sweeping read-bandwidth caps for TPC-H SF=300 (3 streams)...")
    limits = [t[0] for t in TIERS]
    qps = []
    for limit, _price in TIERS:
        m = run_experiment(
            "tpch", 300,
            allocation=ResourceAllocation(read_bw_limit=mb_per_s(limit)),
            duration=2500.0,
        )
        qps.append(m.primary_metric)
    print(format_series("limit_MB/s", limits, {"QPS": qps}))

    comparison = linear_response_comparison(limits, qps, probe_fraction=0.95)
    print(
        format_table(
            ["target QPS", "linear model buys", "curve needs", "savings"],
            [(
                f"{comparison.probe_performance:.3f}",
                f"{comparison.linear_bandwidth:.0f} MB/s",
                f"{comparison.actual_bandwidth:.0f} MB/s",
                f"{comparison.savings_fraction:.0%}",
            )],
            title="\nLinear model vs measured response",
        )
    )

    target = comparison.probe_performance
    for (limit, price), achieved in zip(TIERS, qps):
        if achieved >= target:
            print(
                f"\nCheapest tier meeting QPS >= {target:.3f}: "
                f"{limit} MB/s at price {price}"
            )
            break
    linear_tier = next(
        (t for t in TIERS if t[0] >= comparison.linear_bandwidth), TIERS[-1]
    )
    print(
        f"The linear model would have bought the {linear_tier[0]} MB/s tier "
        f"at price {linear_tier[1]}."
    )


if __name__ == "__main__":
    main()
