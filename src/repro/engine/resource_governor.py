"""Resource governor: MAXDOP, grant percent, affinity, and overload knobs.

The paper restricts cores with cpuset *and* caps MAXDOP with "SQL Server's
resource governor settings"; §7 additionally uses the MAXDOP query hint.
This object carries those engine-side settings, plus the
RESOURCE_SEMAPHORE overload-protection policy consumed by
:class:`~repro.engine.semaphore.ResourceSemaphore`:

``grant_timeout_s``
    How long a grant request may queue before it times out (None = wait
    forever, i.e. queueing without a deadline).
``small_query_bypass_bytes``
    Requests at or below this size skip the queue entirely (the
    small-query semaphore).  0 disables the bypass.
``max_queue_depth``
    Admission throttle: a request arriving at a full queue is degraded
    (or failed) immediately instead of joining the convoy.
``on_grant_timeout``
    ``"degrade"`` shrinks a timed-out (or throttled) grant to whatever
    is free and takes the spill path; ``"fail"`` raises
    :class:`~repro.errors.GrantTimeoutError`.

With every overload knob at its default the semaphore stays disabled and
admission is the historical unconditional ``QueryMemoryPool.admit``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.calibration import DEFAULT_GRANT_PERCENT
from repro.errors import ConfigurationError

#: ``on_grant_timeout`` policies.
ON_TIMEOUT_DEGRADE = "degrade"
ON_TIMEOUT_FAIL = "fail"
ON_TIMEOUT_CHOICES = (ON_TIMEOUT_DEGRADE, ON_TIMEOUT_FAIL)


@dataclass(frozen=True)
class ResourceGovernor:
    """Engine-level resource settings for a run."""

    max_dop: int = 32
    grant_percent: float = DEFAULT_GRANT_PERCENT
    grant_timeout_s: Optional[float] = None
    small_query_bypass_bytes: float = 0.0
    max_queue_depth: Optional[int] = None
    on_grant_timeout: str = ON_TIMEOUT_DEGRADE

    def __post_init__(self):
        if self.max_dop < 1:
            raise ConfigurationError("max_dop must be >= 1")
        if not 0 < self.grant_percent <= 100:
            raise ConfigurationError("grant percent in (0, 100]")
        if self.grant_timeout_s is not None and self.grant_timeout_s <= 0:
            raise ConfigurationError("grant_timeout_s must be positive (or None)")
        if self.small_query_bypass_bytes < 0:
            raise ConfigurationError("small_query_bypass_bytes must be >= 0")
        if self.max_queue_depth is not None and self.max_queue_depth < 0:
            raise ConfigurationError("max_queue_depth must be >= 0 (or None)")
        if self.on_grant_timeout not in ON_TIMEOUT_CHOICES:
            raise ConfigurationError(
                f"on_grant_timeout must be one of {ON_TIMEOUT_CHOICES}, "
                f"got {self.on_grant_timeout!r}"
            )

    @property
    def overload_protection_enabled(self) -> bool:
        """Whether grant admission goes through the RESOURCE_SEMAPHORE.

        Any non-default overload knob switches the queueing layer on;
        all-default settings keep the historical instant-admission path
        (and its exact timing).
        """
        return (
            self.grant_timeout_s is not None
            or self.small_query_bypass_bytes > 0
            or self.max_queue_depth is not None
        )

    def effective_dop(self, allocated_logical_cpus: int, hint: int = 0) -> int:
        """DOP after the governor cap, core allocation, and query hint.

        Mirrors the paper's methodology of limiting MAXDOP to the number
        of allocated cores (§4) and applying per-query hints (§7).
        """
        dop = min(self.max_dop, allocated_logical_cpus)
        if hint > 0:
            dop = min(dop, hint)
        return max(1, dop)
