"""Regenerators for every table and figure in the paper's evaluation.

Each function runs the necessary experiments on the simulated testbed and
returns the table rows / figure series the paper reports.  Benchmarks in
``benchmarks/`` wrap these and print them; ``duration_scale`` trades
precision for speed (tests use small values).

Every experiment-running regenerator accepts ``jobs`` (process-pool
fan-out; grid points are independent, so parallel results are identical
to serial) and ``cache`` (a :class:`~repro.core.resultcache.ResultCache`
making re-runs — and grid points shared between artifacts, like the LLC
sweep behind Fig 2, Fig 3, and Table 4 — disk reads instead of
simulations).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.calibration import TABLE2_SIZES_GB
from repro.core.analysis import (
    LinearComparison,
    linear_response_comparison,
    speedup_series,
    sufficient_allocation,
    wait_ratio_table,
)
from repro.core.experiment import ExperimentConfig
from repro.core.resultcache import ResultCache
from repro.core.runner import SupervisionPolicy
from repro.core.knobs import (
    CORE_SWEEP,
    GRANT_SWEEP_PERCENT,
    LLC_SWEEP_MB,
    MAXDOP_SWEEP,
    ResourceAllocation,
)
from repro.core.measurement import Measurement
from repro.core.sweeps import (
    STUDY_MATRIX,
    core_sweep,
    duration_for,
    grant_sweep,
    llc_sweep,
    maxdop_sweep,
    read_bandwidth_sweep,
    run_sweep,
    run_sweep_report,
    write_bandwidth_sweep,
)
from repro.engine.locks import WaitType
from repro.engine.plan.render import plan_diff_summary, render_plan
from repro.engine.schemas import build
from repro.hardware.counters import (
    DRAM_READ_BYTES,
    DRAM_WRITE_BYTES,
    SSD_READ_BYTES,
    SSD_WRITE_BYTES,
)
from repro.units import GIB, mb_per_s, to_mb_per_s
from repro.workloads.tpch import TPCH_QUERIES, tpch_query


# ---------------------------------------------------------------------------
# Table 2
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Table2Row:
    workload: str
    scale_factor: int
    data_gb: float
    index_gb: float
    paper_data_gb: float
    paper_index_gb: float
    fits_in_memory: bool


def table2(memory_bytes: float = 64 * GIB) -> List[Table2Row]:
    """Database scale factors and initial sizes (shading = does not fit)."""
    rows: List[Table2Row] = []
    for workload, sizes in TABLE2_SIZES_GB.items():
        for sf, (paper_data, paper_index) in sorted(sizes.items()):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                db = build(workload, sf)
            rows.append(
                Table2Row(
                    workload=workload,
                    scale_factor=sf,
                    data_gb=db.data_bytes / GIB,
                    index_gb=db.index_bytes / GIB,
                    paper_data_gb=paper_data,
                    paper_index_gb=paper_index,
                    fits_in_memory=db.total_bytes <= memory_bytes,
                )
            )
    return rows


# ---------------------------------------------------------------------------
# Table 3
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Table3Result:
    small_sf: int
    large_sf: int
    ratios: Dict[str, float]
    sigma_ratio: float
    paper_ratios: Dict[str, float] = field(
        default_factory=lambda: {
            "LOCK": 0.15, "PAGELATCH": 0.56, "PAGEIOLATCH": 74.61, "SIGMA": 0.49,
        }
    )


def table3(
    duration_scale: float = 1.0, seed: int = 0,
    jobs: int = 1, cache: Optional[ResultCache] = None,
) -> Table3Result:
    """Lock/latch wait times for TPC-E at SF=15000 relative to SF=5000."""
    configs = [
        ExperimentConfig(
            workload="tpce", scale_factor=sf,
            duration=duration_for("tpce", sf, duration_scale), seed=seed,
        )
        for sf in (5000, 15000)
    ]
    small, large = run_sweep(configs, jobs=jobs, cache=cache)
    ratios = wait_ratio_table(small.wait_times, large.wait_times)
    sigma_small = small.lock_latch_pagelatch_total()
    sigma_large = large.lock_latch_pagelatch_total()
    sigma = sigma_large / sigma_small if sigma_small > 0 else float("nan")
    return Table3Result(small_sf=5000, large_sf=15000, ratios=ratios,
                        sigma_ratio=sigma)


# ---------------------------------------------------------------------------
# Fig 2 and Table 4
# ---------------------------------------------------------------------------

@dataclass
class SweepSeries:
    """One panel's x/y series plus the raw measurements."""

    workload: str
    scale_factor: int
    xs: List[float]
    measurements: List[Measurement]

    @property
    def performance(self) -> List[float]:
        return [m.primary_metric for m in self.measurements]

    @property
    def mpki(self) -> List[float]:
        return [m.mpki_model for m in self.measurements]

    @property
    def p50_latency_ms(self) -> List[float]:
        """Per-point median latency of the primary completion class."""
        return [m.p50_latency_ms for m in self.measurements]

    @property
    def p99_latency_ms(self) -> List[float]:
        return [m.p99_latency_ms for m in self.measurements]

    @property
    def p999_latency_ms(self) -> List[float]:
        """The 1-in-1000 tail — p99 alone hides exactly the requests
        fleet autoscaling and shedding exist to protect."""
        return [m.p999_latency_ms for m in self.measurements]

    @property
    def predicted_mask(self) -> List[bool]:
        """Per-point surrogate provenance: True where the measurement was
        predicted rather than simulated — plots mark these hollow."""
        return [m.is_predicted for m in self.measurements]

    @property
    def predicted_count(self) -> int:
        return sum(self.predicted_mask)


def _sweep_series(
    workload: str, scale_factor: int,
    configs, xs: List[float],
    jobs: int, cache: Optional[ResultCache],
    policy: Optional["SupervisionPolicy"],
) -> SweepSeries:
    """Run one panel's grid, tolerating holes when the policy allows them.

    Without a policy (or with ``on_error="raise"``) this is the dense
    fail-fast path.  Under ``"skip"``/``"collect"`` a failed grid point
    is *dropped from the series* — x and measurement together, so the
    panel stays plottable — with a warning naming what's missing."""
    if policy is None or policy.on_error == "raise":
        return SweepSeries(workload, scale_factor, list(xs),
                           run_sweep(configs, jobs=jobs, cache=cache,
                                     policy=policy))
    report = run_sweep_report(configs, jobs=jobs, cache=cache, policy=policy)
    kept_xs: List[float] = []
    kept: List[Measurement] = []
    for x, measurement in zip(xs, report.measurements):
        if measurement is None:
            warnings.warn(
                f"{workload} sf={scale_factor}: dropping grid point x={x} "
                f"({len(report.failures)} failure(s) in sweep)"
            )
        else:
            kept_xs.append(x)
            kept.append(measurement)
    return SweepSeries(workload, scale_factor, kept_xs, kept)


def fig2_cores(
    workload: str, scale_factor: int,
    cores: Tuple[int, ...] = CORE_SWEEP,
    duration_scale: float = 1.0,
    jobs: int = 1, cache: Optional[ResultCache] = None,
    policy: Optional["SupervisionPolicy"] = None,
) -> SweepSeries:
    """Fig 2 (a,d,g,j): average performance vs logical cores, 40 MB LLC."""
    configs = core_sweep(workload, scale_factor, cores=cores,
                         duration_scale=duration_scale)
    return _sweep_series(workload, scale_factor, configs,
                         [float(c) for c in cores], jobs, cache, policy)


def fig2_llc(
    workload: str, scale_factor: int,
    sizes_mb: Tuple[int, ...] = LLC_SWEEP_MB,
    duration_scale: float = 1.0,
    jobs: int = 1, cache: Optional[ResultCache] = None,
    policy: Optional["SupervisionPolicy"] = None,
) -> SweepSeries:
    """Fig 2 (b,e,h,k) performance and (c,f,i,l) MPKI vs LLC allocation."""
    configs = llc_sweep(workload, scale_factor, sizes_mb=sizes_mb,
                        duration_scale=duration_scale)
    return _sweep_series(workload, scale_factor, configs,
                         [float(s) for s in sizes_mb], jobs, cache, policy)


#: Table 4 values from the paper: {(workload, sf): (mb_90, mb_95)}.
TABLE4_PAPER = {
    ("asdb", 2000): (8, 8), ("asdb", 6000): (8, 10),
    ("tpce", 5000): (6, 8), ("tpce", 15000): (12, 14),
    ("htap", 5000): (16, 18), ("htap", 15000): (10, 14),
    ("tpch", 10): (10, 14), ("tpch", 30): (10, 16),
    ("tpch", 100): (16, 22), ("tpch", 300): (12, 12),
}


@dataclass(frozen=True)
class Table4Row:
    workload: str
    scale_factor: int
    mb_for_90: Optional[float]
    mb_for_95: Optional[float]
    paper_mb_for_90: int
    paper_mb_for_95: int


def table4(
    matrix: Tuple[Tuple[str, int], ...] = STUDY_MATRIX,
    sizes_mb: Tuple[int, ...] = LLC_SWEEP_MB,
    duration_scale: float = 1.0,
    jobs: int = 1, cache: Optional[ResultCache] = None,
) -> List[Table4Row]:
    """Sufficient LLC capacity for >=90% / >=95% performance (32 cores)."""
    rows: List[Table4Row] = []
    for workload, sf in matrix:
        series = fig2_llc(workload, sf, sizes_mb=sizes_mb,
                          duration_scale=duration_scale,
                          jobs=jobs, cache=cache)
        paper90, paper95 = TABLE4_PAPER[(workload, sf)]
        rows.append(
            Table4Row(
                workload=workload,
                scale_factor=sf,
                mb_for_90=sufficient_allocation(series.xs, series.performance, 0.90),
                mb_for_95=sufficient_allocation(series.xs, series.performance, 0.95),
                paper_mb_for_90=paper90,
                paper_mb_for_95=paper95,
            )
        )
    return rows


# ---------------------------------------------------------------------------
# Fig 3 / Fig 4 — bandwidth utilizations and CDFs
# ---------------------------------------------------------------------------

@dataclass
class BandwidthPoint:
    x: float
    performance: float
    ssd_read_mb: float
    ssd_write_mb: float
    dram_read_mb: float
    dram_write_mb: float


def fig3_bandwidths(
    workload: str, scale_factor: int, axis: str = "cores",
    duration_scale: float = 1.0,
    jobs: int = 1, cache: Optional[ResultCache] = None,
) -> List[BandwidthPoint]:
    """Fig 3: average SSD and DRAM bandwidths along the core axis
    (``axis='cores'``) or the LLC axis (``axis='llc'``)."""
    if axis == "cores":
        series = fig2_cores(workload, scale_factor, duration_scale=duration_scale,
                            jobs=jobs, cache=cache)
    elif axis == "llc":
        series = fig2_llc(workload, scale_factor, duration_scale=duration_scale,
                          jobs=jobs, cache=cache)
    else:
        raise ValueError(f"axis must be 'cores' or 'llc', not {axis!r}")
    return [
        BandwidthPoint(
            x=x,
            performance=m.primary_metric,
            ssd_read_mb=m.ssd_read_mb,
            ssd_write_mb=m.ssd_write_mb,
            dram_read_mb=m.dram_read_mb,
            dram_write_mb=m.dram_write_mb,
        )
        for x, m in zip(series.xs, series.measurements)
    ]


def fig4_cdfs(
    matrix: Tuple[Tuple[str, int], ...] = STUDY_MATRIX,
    duration_scale: float = 1.0,
    num_points: int = 50,
    jobs: int = 1, cache: Optional[ResultCache] = None,
) -> Dict[Tuple[str, int], Dict[str, List[Tuple[float, float]]]]:
    """Fig 4: CDFs of SSD and DRAM bandwidth with full allocations.

    Returns, per (workload, sf), the four CDF series in MB/s.
    """
    configs = [
        ExperimentConfig(
            workload=workload, scale_factor=sf,
            duration=duration_for(workload, sf, duration_scale),
        )
        for workload, sf in matrix
    ]
    measurements = run_sweep(configs, jobs=jobs, cache=cache)
    result = {}
    for (workload, sf), m in zip(matrix, measurements):
        result[(workload, sf)] = {
            counter: [
                (to_mb_per_s(value), fraction)
                for value, fraction in m.bandwidth_cdf(counter).series(num_points)
            ]
            for counter in (SSD_READ_BYTES, SSD_WRITE_BYTES,
                            DRAM_READ_BYTES, DRAM_WRITE_BYTES)
        }
    return result


# ---------------------------------------------------------------------------
# Fig 5 — SSD read-bandwidth limits + §6 write limits
# ---------------------------------------------------------------------------

DEFAULT_READ_LIMITS_MB = (200, 400, 600, 800, 1000, 1400, 1800, 2500)


@dataclass
class Fig5Result:
    limits_mb: List[float]
    qps: List[float]
    comparison: LinearComparison


def fig5_read_limits(
    limits_mb: Tuple[int, ...] = DEFAULT_READ_LIMITS_MB,
    duration_scale: float = 1.0,
    jobs: int = 1, cache: Optional[ResultCache] = None,
) -> Fig5Result:
    """Fig 5: nonlinear TPC-H SF=300 QPS response to read-BW limits."""
    configs = read_bandwidth_sweep(
        [mb_per_s(l) for l in limits_mb], duration_scale=duration_scale
    )
    measurements = run_sweep(configs, jobs=jobs, cache=cache)
    qps = [m.primary_metric for m in measurements]
    comparison = linear_response_comparison(
        [float(l) for l in limits_mb], qps, probe_fraction=0.9
    )
    return Fig5Result(limits_mb=[float(l) for l in limits_mb], qps=qps,
                      comparison=comparison)


def write_limit_drops(
    limits_mb: Tuple[int, ...] = (100, 50),
    duration_scale: float = 1.0,
    jobs: int = 1, cache: Optional[ResultCache] = None,
) -> Dict[int, float]:
    """§6: fractional ASDB TPS drop under write-bandwidth caps
    (paper: 6% at 100 MB/s, 44% at 50 MB/s)."""
    configs = write_bandwidth_sweep(
        [None] + [mb_per_s(limit) for limit in limits_mb],
        duration_scale=duration_scale,
    )
    baseline, *capped = run_sweep(configs, jobs=jobs, cache=cache)
    return {
        limit: 1.0 - m.primary_metric / baseline.primary_metric
        for limit, m in zip(limits_mb, capped)
    }


# ---------------------------------------------------------------------------
# Fig 6 — MAXDOP speedups per query
# ---------------------------------------------------------------------------

def fig6_maxdop(
    scale_factor: int,
    maxdops: Tuple[int, ...] = MAXDOP_SWEEP,
    duration_scale: float = 1.0,
    jobs: int = 1, cache: Optional[ResultCache] = None,
) -> Dict[str, List[float]]:
    """Fig 6: per-query speedup at each MAXDOP relative to MAXDOP=32.

    Returns {query: [speedup at each maxdop]}, with the last entry 1.0.
    Values below 1 mean the restricted setting is slower.
    """
    configs = maxdop_sweep(scale_factor, maxdops=maxdops,
                           duration_scale=duration_scale)
    measurements = run_sweep(configs, jobs=jobs, cache=cache)
    result: Dict[str, List[float]] = {}
    for number in TPCH_QUERIES:
        name = f"Q{number}"
        latencies = [m.mean_query_latency(name) for m in measurements]
        baseline = latencies[-1]
        if any(l != l for l in latencies) or baseline <= 0:  # NaN guard
            continue
        result[name] = [baseline / l if l > 0 else float("nan") for l in latencies]
    return result


# ---------------------------------------------------------------------------
# Fig 7 — Q20 plans
# ---------------------------------------------------------------------------

@dataclass
class Fig7Result:
    serial_plan_text: str
    parallel_plan_text: str
    diff_summary: str
    serial_uses_hash_for_part: bool
    parallel_uses_nlj_for_part: bool


def fig7_q20_plans(scale_factor: int = 300) -> Fig7Result:
    """Fig 7: Q20's serial vs MAXDOP=32 plans at SF=300."""
    from repro.engine.engine import SqlEngine
    from repro.engine.plan.operators import OpKind
    from repro.engine.resource_governor import ResourceGovernor
    from repro.hardware.machine import Machine
    from repro.workloads import make_workload

    workload = make_workload("tpch", scale_factor)
    machine = Machine()
    ResourceAllocation().apply_to(machine)
    engine = SqlEngine(
        machine, workload.database, workload.execution_characteristics(),
        governor=ResourceGovernor(max_dop=32), **workload.engine_parameters(),
    )
    spec = tpch_query(20, scale_factor)
    serial = engine.optimizer.optimize(spec, max_dop=1)
    parallel = engine.optimizer.optimize(spec, max_dop=32)
    nlj_inners = [
        node.children[1].table
        for node in parallel.plan.walk()
        if node.op is OpKind.NESTED_LOOPS and len(node.children) > 1
    ]
    return Fig7Result(
        serial_plan_text=render_plan(serial.plan),
        parallel_plan_text=render_plan(parallel.plan),
        diff_summary=plan_diff_summary(serial.plan, parallel.plan),
        serial_uses_hash_for_part=serial.plan.uses(OpKind.HASH_JOIN)
        and not serial.plan.uses(OpKind.NESTED_LOOPS),
        parallel_uses_nlj_for_part="p" in nlj_inners,
    )


# ---------------------------------------------------------------------------
# Fig 8 — memory grant speedups
# ---------------------------------------------------------------------------

def fig8_memory_grants(
    scale_factor: int = 100,
    percents: Tuple[float, ...] = GRANT_SWEEP_PERCENT,
    duration_scale: float = 1.0,
    jobs: int = 1, cache: Optional[ResultCache] = None,
) -> Dict[str, List[float]]:
    """Fig 8: per-query execution-time speedup at reduced grant percents
    relative to the default 25% (first entry of *percents*).

    Returns {query: [speedup at each percent]}; values < 1 = slower.
    """
    configs = grant_sweep(scale_factor, percents=percents,
                          duration_scale=duration_scale)
    measurements = run_sweep(configs, jobs=jobs, cache=cache)
    result: Dict[str, List[float]] = {}
    for number in TPCH_QUERIES:
        name = f"Q{number}"
        latencies = [m.mean_query_latency(name) for m in measurements]
        baseline = latencies[0]
        if any(l != l for l in latencies) or baseline <= 0:
            continue
        result[name] = [baseline / l if l > 0 else float("nan") for l in latencies]
    return result


def q20_memory_vs_dop(scale_factor: int = 100) -> Tuple[float, float]:
    """§8: Q20's memory requirement at MAXDOP=1 vs MAXDOP=32 (bytes)."""
    from repro.engine.engine import SqlEngine
    from repro.engine.resource_governor import ResourceGovernor
    from repro.hardware.machine import Machine
    from repro.workloads import make_workload

    workload = make_workload("tpch", scale_factor)
    machine = Machine()
    ResourceAllocation().apply_to(machine)
    engine = SqlEngine(
        machine, workload.database, workload.execution_characteristics(),
        governor=ResourceGovernor(max_dop=32), **workload.engine_parameters(),
    )
    spec = tpch_query(20, scale_factor)
    serial = engine.optimizer.optimize(spec, max_dop=1)
    parallel = engine.optimizer.optimize(spec, max_dop=32)
    return serial.required_memory_bytes, parallel.required_memory_bytes
