"""Tests for the plan validator, plus a full validation sweep over every
TPC-H plan the optimizer can produce."""

import pytest

from repro.core.knobs import ResourceAllocation
from repro.engine.engine import SqlEngine
from repro.engine.plan.operators import OpKind, PlanNode
from repro.engine.plan.validation import assert_valid, validate_plan
from repro.engine.resource_governor import ResourceGovernor
from repro.engine.schemas import build_tpch
from repro.hardware.machine import Machine
from repro.workloads.profiles import execution_profile
from repro.workloads.tpch import TPCH_QUERIES, tpch_query


def scan(table="t", parallel=False):
    return PlanNode(op=OpKind.COLUMNSTORE_SCAN, table=table, rows_out=10,
                    cpu_cost=1.0, scan_bytes=100.0, parallel=parallel)


class TestValidator:
    def test_valid_tree_passes(self):
        tree = PlanNode(op=OpKind.HASH_JOIN, children=(scan("a"), scan("b")),
                        rows_out=5, cpu_cost=1.0, memory_bytes=10.0)
        assert validate_plan(tree) == []

    def test_wrong_child_count(self):
        tree = PlanNode(op=OpKind.HASH_JOIN, children=(scan("a"),),
                        rows_out=5, cpu_cost=1.0)
        rules = {v.rule for v in validate_plan(tree)}
        assert "child-count" in rules

    def test_leaf_without_table(self):
        leaf = PlanNode(op=OpKind.TABLE_SCAN, rows_out=1)
        rules = {v.rule for v in validate_plan(leaf)}
        assert "leaf-table" in rules

    def test_memory_on_wrong_operator(self):
        node = PlanNode(op=OpKind.TOP, children=(scan(),), rows_out=1,
                        memory_bytes=100.0)
        rules = {v.rule for v in validate_plan(node)}
        assert "memory-holder" in rules

    def test_parallel_boundary_violation(self):
        big_serial = PlanNode(op=OpKind.COLUMNSTORE_SCAN, table="big",
                              rows_out=1e9, cpu_cost=1.0, parallel=False)
        node = PlanNode(op=OpKind.HASH_JOIN,
                        children=(big_serial, scan("b", parallel=True)),
                        rows_out=1, parallel=True)
        rules = {v.rule for v in validate_plan(node)}
        assert "parallel-boundary" in rules

    def test_small_serial_build_side_allowed(self):
        tiny_serial = PlanNode(op=OpKind.COLUMNSTORE_SCAN, table="dim",
                               rows_out=100, cpu_cost=1.0, parallel=False)
        node = PlanNode(op=OpKind.HASH_JOIN,
                        children=(tiny_serial, scan("b", parallel=True)),
                        rows_out=1, parallel=True)
        assert validate_plan(node) == []

    def test_assert_valid_raises_with_details(self):
        bad = PlanNode(op=OpKind.SORT, rows_out=1)  # sort with no child
        with pytest.raises(AssertionError, match="child-count"):
            assert_valid(bad)


class TestAllTpchPlansValid:
    @pytest.mark.parametrize("sf", [10, 100, 300])
    def test_every_plan_every_maxdop(self, sf):
        machine = Machine()
        ResourceAllocation().apply_to(machine)
        engine = SqlEngine(
            machine, build_tpch(sf), execution_profile("tpch", sf),
            governor=ResourceGovernor(max_dop=32),
        )
        for number in TPCH_QUERIES:
            spec = tpch_query(number, sf)
            for maxdop in (1, 8, 32):
                optimized = engine.optimizer.optimize(spec, max_dop=maxdop)
                assert_valid(optimized.plan)
