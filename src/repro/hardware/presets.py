"""Machine presets: the testbed and hypothetical server designs.

The paper's audience includes computer architects sizing future database
servers (§1), and its §6 analysis argues that "increasing cores and
decreasing caches will each result in increasing the DRAM bandwidth
requirement, but this appears to be feasible as currently the available
bandwidth is under-utilized" — the scale-out-processor thesis it cites.
These presets make such design studies one line of code:

>>> from repro.hardware.presets import SCALE_OUT
>>> machine = SCALE_OUT.build()
"""

from __future__ import annotations

from repro.hardware.machine import MachineSpec
from repro.units import MIB, gib, mb_per_s

#: The paper's testbed: Lenovo P710, 2x Xeon E5-2620 v4 (§3).
PAPER_TESTBED = MachineSpec()

#: A small single-socket box (entry server / large VM).
SINGLE_SOCKET = MachineSpec(
    sockets=1,
    cores_per_socket=8,
    smt=2,
    llc_per_socket_bytes=20 * MIB,
    llc_ways_per_socket=20,
    dram_capacity_bytes=gib(32),
)

#: A scale-up four-socket box with a big LLC.
SCALE_UP = MachineSpec(
    sockets=2,
    cores_per_socket=16,
    smt=2,
    llc_per_socket_bytes=40 * MIB,
    llc_ways_per_socket=20,
    dram_capacity_bytes=gib(256),
    ssd_read_bw=mb_per_s(5000),
    ssd_write_bw=mb_per_s(2500),
)

#: The scale-out design the paper's §6 points toward (and [31] proposes):
#: many cores, deliberately small LLC — trading the under-utilized cache
#: for compute, and spending the freed area on cores.
SCALE_OUT = MachineSpec(
    sockets=2,
    cores_per_socket=16,
    smt=2,
    llc_per_socket_bytes=8 * MIB,
    llc_ways_per_socket=8,
    dram_capacity_bytes=gib(64),
)

#: A no-SMT variant of the testbed (hyper-threading disabled in BIOS) —
#: useful for isolating the §4 SMT effects.
NO_SMT_TESTBED = MachineSpec(smt=1)

PRESETS = {
    "paper-testbed": PAPER_TESTBED,
    "single-socket": SINGLE_SOCKET,
    "scale-up": SCALE_UP,
    "scale-out": SCALE_OUT,
    "no-smt": NO_SMT_TESTBED,
}


def preset(name: str) -> MachineSpec:
    """Look up a preset by name."""
    try:
        return PRESETS[name]
    except KeyError:
        raise KeyError(f"unknown preset {name!r}; one of {sorted(PRESETS)}")
