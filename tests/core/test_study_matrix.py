"""Smoke coverage of the full study matrix (§9 pitfall #1: never study a
single workload class or scale factor)."""

import pytest

from repro.core.experiment import run_experiment
from repro.core.sweeps import STUDY_MATRIX
from repro.hardware.counters import ALL_COUNTERS

SHORT = {
    "tpch": 120.0,
    "asdb": 4.0,
    "tpce": 6.0,
    "htap": 6.0,
}
# Large analytical scale factors need longer windows for any completions.
SHORT_OVERRIDES = {("tpch", 100): 500.0, ("tpch", 300): 1200.0}


@pytest.mark.parametrize("workload,sf", STUDY_MATRIX)
def test_study_matrix_runs(workload, sf):
    duration = SHORT_OVERRIDES.get((workload, sf), SHORT[workload])
    m = run_experiment(workload, sf, duration=duration)
    assert m.primary_metric > 0, (workload, sf)
    # Counter sanity: every canonical counter sampled, no negative rates.
    for counter in ALL_COUNTERS:
        series = m.counters.series(counter)
        assert len(series) >= 2, counter
        assert all(v >= -1e-6 for v in series), (counter, min(series))
    # Interval rates never exceed physical device caps.
    for value in m.counters.series("ssd_read_bytes"):
        assert value <= 2500e6 * 1.05
    for value in m.counters.series("ssd_write_bytes"):
        assert value <= 1200e6 * 1.05
    assert m.mpki_model > 0
    assert 0.5 <= m.smt_multiplier <= 1.25


def test_workload_classes_have_distinct_signatures():
    """The paper's point: classes differ; a study of one is misleading."""
    oltp = run_experiment("asdb", 2000, duration=4.0)
    dss = run_experiment("tpch", 10, duration=120.0)
    # Transactional: significant writes (logging); analytical: none.
    assert oltp.ssd_write_mb > 10 * max(0.01, dss.ssd_write_mb)
    # Analytical MPKI and OLTP MPKI levels differ markedly.
    assert abs(oltp.mpki_model - dss.mpki_model) > 2.0
