"""Co-located tenants on one machine: partitioned CPU/LLC, shared SSD.

The paper closes §10 asking how caches and cores should be shared when a
"well-designed server running diverse database workloads" hosts several
tenants, citing Heracles-style CAT isolation [47].  This module runs that
experiment: each tenant gets a disjoint cpuset and a private CAT
partition (which, per the CAT model, isolates LLC behaviour completely)
and a slice of DRAM, while the NVMe device — the resource CAT cannot
partition — remains shared, so IO interference is real.

The partitioned slice is expressed as a *tenant machine*: a shallow view
of the base machine with its own cpuset, CAT allocation, and DRAM share,
sharing the simulator, SSD, topology, and CPU model.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, replace as dc_replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.backends import DEFAULT_BACKEND, make_backend
from repro.core.knobs import ResourceAllocation
from repro.errors import ConfigurationError
from repro.hardware.cache import LastLevelCache
from repro.hardware.cgroups import CpuSet
from repro.hardware.machine import Machine
from repro.workloads import make_workload
from repro.workloads.base import ThroughputTracker


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's workload and its slice of the machine."""

    name: str
    workload: str
    scale_factor: int
    logical_cores: int
    llc_mb: int
    memory_fraction: float = 0.5
    #: Engine personality this tenant runs (see :mod:`repro.backends`) —
    #: heterogeneous fleets (OLTP rowstore next to a DSS columnstore)
    #: are the interesting §10 co-location case.
    backend: str = DEFAULT_BACKEND

    def __post_init__(self):
        if self.logical_cores < 1:
            raise ConfigurationError(f"{self.name}: need at least one core")
        if self.llc_mb < 2:
            raise ConfigurationError(f"{self.name}: CAT granularity is 2 MB")
        if not 0.0 < self.memory_fraction <= 1.0:
            raise ConfigurationError(f"{self.name}: memory fraction in (0, 1]")
        make_backend(self.backend)  # fail fast on unknown personalities


@dataclass
class TenantResult:
    """Throughput of one tenant in a co-located run."""

    name: str
    workload: str
    scale_factor: int
    primary_metric: float
    tracker: ThroughputTracker
    backend: str = DEFAULT_BACKEND


def tenant_machine(base: Machine, cpu_ids: frozenset, llc_mb: int,
                   memory_fraction: float) -> Machine:
    """A partitioned view of *base*: private cpuset, CAT partition, and
    DRAM share; shared simulator, SSD, topology, CPU model, and streams."""
    view = copy.copy(base)
    view.cpuset = CpuSet(topology=base.topology)
    view.cpuset.set_cpus(cpu_ids)
    view.llc = LastLevelCache(
        sockets=base.llc.sockets,
        size_per_socket=base.llc.size_per_socket,
        ways_per_socket=base.llc.ways_per_socket,
    )
    view.llc.set_allocation_mb_total(llc_mb)
    view.dram = dc_replace(
        base.dram,
        capacity_bytes=int(base.dram.capacity_bytes * memory_fraction),
    )
    return view


def _assign_cores(base: Machine, tenants: Sequence[TenantSpec]) -> List[frozenset]:
    """Carve disjoint cpusets in the §4 allocation order."""
    total = base.topology.total_logical_cpus
    needed = sum(t.logical_cores for t in tenants)
    if needed > total:
        raise ConfigurationError(
            f"tenants need {needed} logical cores; machine has {total}"
        )
    order = sorted(
        base.topology.paper_allocation(total),
        key=lambda cpu_id: (base.topology.cpu(cpu_id).smt_index,
                            base.topology.cpu(cpu_id).physical_core),
    )
    assignments: List[frozenset] = []
    cursor = 0
    for tenant in tenants:
        assignments.append(frozenset(order[cursor:cursor + tenant.logical_cores]))
        cursor += tenant.logical_cores
    return assignments


def run_colocated(
    tenants: Sequence[TenantSpec],
    duration: float = 15.0,
    seed: int = 0,
    workload_kwargs: Optional[Dict[str, dict]] = None,
) -> List[TenantResult]:
    """Run every tenant concurrently on one machine and report each
    tenant's primary metric.

    CPU, LLC, and DRAM are partitioned per the specs; the SSD (data,
    log, and tempdb traffic) is shared, so storage interference between
    tenants is captured — the §6 caveat that bandwidth, unlike cache
    ways, has no CAT.
    """
    if not tenants:
        raise ConfigurationError("need at least one tenant")
    total_llc = sum(t.llc_mb for t in tenants)
    base = Machine(seed=seed)
    if total_llc > base.llc.total_size // (1024 * 1024):
        raise ConfigurationError("CAT partitions exceed the LLC")
    cpu_slices = _assign_cores(base, tenants)

    runs: List[Tuple[TenantSpec, ThroughputTracker, object]] = []
    for tenant, cpu_ids in zip(tenants, cpu_slices):
        kwargs = (workload_kwargs or {}).get(tenant.name, {})
        workload = make_workload(tenant.workload, tenant.scale_factor, **kwargs)
        view = tenant_machine(base, cpu_ids, tenant.llc_mb,
                              tenant.memory_fraction)
        # The backend recipe with this allocation reduces, for the
        # default rowstore personality, to the historical construction
        # (governor = ResourceGovernor(max_dop=logical_cores), no cost
        # model) — tenants only diverge when they opt into one.
        engine = make_backend(tenant.backend).build_engine(
            view, workload,
            ResourceAllocation(logical_cores=tenant.logical_cores,
                               llc_mb=tenant.llc_mb),
        )
        tracker = ThroughputTracker()
        workload.spawn_clients(engine, tracker, until=duration)
        runs.append((tenant, tracker, workload))

    base.sim.run(until=duration)

    return [
        TenantResult(
            name=tenant.name,
            workload=tenant.workload,
            scale_factor=tenant.scale_factor,
            primary_metric=workload.primary_metric(tracker, duration),
            tracker=tracker,
            backend=tenant.backend,
        )
        for tenant, tracker, workload in runs
    ]


# ---------------------------------------------------------------------------
# Scenario grids
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ColocationScenario:
    """One co-location configuration in a placement-search grid.

    Tenants inside a scenario share a machine and must run together, but
    *scenarios* are independent experiments — a partition-search grid
    (e.g. every split of 32 cores between two tenants) parallelizes
    across scenarios exactly like a sweep parallelizes across
    allocations.
    """

    name: str
    tenants: Tuple[TenantSpec, ...]
    duration: float = 15.0
    seed: int = 0


def _run_scenario(scenario: ColocationScenario) -> List[TenantResult]:
    """Module-level worker so process pools can pickle the call."""
    return run_colocated(
        scenario.tenants, duration=scenario.duration, seed=scenario.seed
    )


def run_colocated_scenarios(
    scenarios: Sequence[ColocationScenario], jobs: int = 1
) -> Dict[str, List[TenantResult]]:
    """Run many co-location scenarios, optionally across worker processes.

    Returns ``{scenario name: [TenantResult, ...]}`` in input order.
    Each scenario builds its own base machine and simulator, so parallel
    execution is deterministic — the same guarantee
    :func:`repro.core.runner.run_configs` gives single-tenant sweeps.
    """
    from repro.core.runner import map_ordered

    names = [s.name for s in scenarios]
    if len(set(names)) != len(names):
        raise ConfigurationError("scenario names must be unique")
    results = map_ordered(_run_scenario, list(scenarios), jobs=jobs)
    return dict(zip(names, results))
