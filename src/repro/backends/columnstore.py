"""The ``columnstore-dss`` personality: batch-mode analytics engine.

Models a warehouse-style engine (vectorized/batch execution over
compressed column segments):

* **Cheap scans.**  Batch mode drops per-row scan and join CPU by a
  factor the paper's Fig 5 row/column comparison motivates — the scan
  cost constants shrink ~4x, which also means the engine *demands* scan
  bandwidth: the same allocation pulls far more bytes per second.
* **Deep MAXDOP scaling.**  Exchange and parallel-startup costs shrink,
  so the optimizer keeps choosing high DOP where the rowstore's cost
  model would back off (§7's repartitioning overhead is the rowstore
  story, not the batch one).
* **Weak point access.**  There is no B-tree: a "seek" is rowgroup
  elimination plus a segment read, so probe costs and random-IO
  penalties roughly double, and OLTP transactions pay a large
  instruction multiplier (``txn_instruction_scale``) — delete-bitmap
  maintenance and tuple-mover overheads.
* **Patient grants.**  Big hash/sort grants are the norm; the
  personality's RESOURCE_SEMAPHORE default queues grants with a long
  timeout and a small-query bypass instead of degrading instantly.
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING

from repro.backends.base import (
    BackendResourceProfile,
    EngineBackend,
    register_backend,
)
from repro.engine.optimizer.cost_model import CostModel
from repro.engine.resource_governor import ResourceGovernor
from repro.engine.sqlos import ExecutionCharacteristics
from repro.units import MB
from repro.workloads.base import Workload

if TYPE_CHECKING:  # pragma: no cover - hint-only (avoids a repro.core cycle)
    from repro.core.knobs import ResourceAllocation

#: RESOURCE_SEMAPHORE defaults applied when the allocation leaves
#: overload protection off: queue patiently, never starve point lookups.
DEFAULT_GRANT_TIMEOUT_S = 120.0
DEFAULT_SMALL_QUERY_BYPASS_BYTES = 8 * MB

#: OLTP instruction penalty: no row-oriented access path.
TXN_INSTRUCTION_SCALE = 6.0


@register_backend
class ColumnstoreDssBackend(EngineBackend):
    """Batch-mode DSS engine: scan-hungry, deeply parallel, poor OLTP."""

    name = "columnstore-dss"
    description = (
        "batch-mode analytics: ~4x cheaper scans and joins, deep MAXDOP "
        "scaling, weak point access, patient memory grants"
    )

    def cost_model(self) -> CostModel:
        return CostModel(
            # Batch-mode scans and joins: far fewer instructions per row.
            columnstore_scan_per_row=0.02,
            rowstore_scan_per_row=0.2,
            hash_build_per_row=0.45,
            hash_probe_per_row=0.15,
            hash_agg_per_input_row=0.2,
            # Deep MAXDOP: exchanges are batch-granular and startup is
            # amortized, so parallel plans stay attractive at high DOP.
            exchange_per_row=0.012,
            parallel_startup_per_worker=1000.0,
            # Point access without a B-tree: every probe is rowgroup
            # elimination plus a segment read.
            seek_base=6.0,
            columnstore_seek_multiplier=8.0,
            random_io_per_miss=220.0,
        )

    def execution_characteristics(
        self, workload: Workload
    ) -> ExecutionCharacteristics:
        base = workload.execution_characteristics()
        # Vectorized execution retires more per cycle but streams column
        # segments through the cache, raising memory-level parallelism
        # (and bandwidth demand) at the same calibrated MRC.
        return replace(
            base,
            cpi_base=base.cpi_base * 0.8,
            mlp=base.mlp * 1.5,
            txn_instruction_scale=TXN_INSTRUCTION_SCALE,
        )

    def governor_for(self, allocation: ResourceAllocation) -> ResourceGovernor:
        governor = super().governor_for(allocation)
        if governor.overload_protection_enabled:
            return governor  # the allocation chose its own policy
        return replace(
            governor,
            grant_timeout_s=DEFAULT_GRANT_TIMEOUT_S,
            small_query_bypass_bytes=DEFAULT_SMALL_QUERY_BYPASS_BYTES,
        )

    def resource_profile(self) -> BackendResourceProfile:
        return BackendResourceProfile(
            scan_bandwidth_score=3.0,
            point_lookup_score=0.15,
            parallel_efficiency=0.9,
            memory_elasticity=0.5,
            startup_seconds=0.0,
        )
