"""The resource-sensitivity characterization harness — the paper's
contribution.  Experiments pair a workload with a resource allocation,
run it on the simulated testbed, and produce measurements; sweeps and
analyses regenerate every table and figure of the paper."""

from repro.core.analysis import (
    Knee,
    LinearComparison,
    diminishing_returns,
    find_knee,
    linear_response_comparison,
    relative_performance,
    speedup_series,
    sufficient_allocation,
    wait_ratio_table,
)
from repro.core.experiment import Experiment, ExperimentConfig, run_experiment
from repro.core.knobs import (
    CORE_SWEEP,
    GRANT_SWEEP_PERCENT,
    LLC_SWEEP_MB,
    MAXDOP_SWEEP,
    ResourceAllocation,
)
from repro.core.colocation import (
    ColocationScenario,
    TenantSpec,
    run_colocated,
    run_colocated_scenarios,
)
from repro.core.journal import SweepJournal
from repro.core.measurement import Measurement
from repro.core.resultcache import ResultCache, calibration_token, config_digest
from repro.core.runner import (
    FailedMeasurement,
    SupervisionPolicy,
    SweepReport,
    run_configs,
    run_supervised,
    with_seeds,
)
from repro.core.sensitivity import SensitivityRow, sensitivity_matrix, spectrum_width
from repro.core.sweeps import run_sweep, run_sweep_report

__all__ = [
    "Knee",
    "LinearComparison",
    "diminishing_returns",
    "find_knee",
    "linear_response_comparison",
    "relative_performance",
    "speedup_series",
    "sufficient_allocation",
    "wait_ratio_table",
    "Experiment",
    "ExperimentConfig",
    "run_experiment",
    "CORE_SWEEP",
    "GRANT_SWEEP_PERCENT",
    "LLC_SWEEP_MB",
    "MAXDOP_SWEEP",
    "ResourceAllocation",
    "Measurement",
    "ColocationScenario",
    "TenantSpec",
    "run_colocated",
    "run_colocated_scenarios",
    "ResultCache",
    "calibration_token",
    "config_digest",
    "run_configs",
    "run_supervised",
    "run_sweep",
    "run_sweep_report",
    "with_seeds",
    "FailedMeasurement",
    "SupervisionPolicy",
    "SweepJournal",
    "SweepReport",
    "SensitivityRow",
    "sensitivity_matrix",
    "spectrum_width",
]
