"""Paper-shape integration tests: the headline findings of every section,
asserted with tolerances against the simulated testbed.

These are the "who wins, by roughly what factor, where crossovers fall"
checks the reproduction is graded on; absolute throughputs are not
compared (our substrate is a simulator, not the authors' testbed).
"""

import pytest

from repro.core.experiment import run_experiment
from repro.core.knobs import ResourceAllocation
from repro.engine.locks import WaitType
from repro.units import mb_per_s


def perf(workload, sf, duration, **alloc_kwargs):
    m = run_experiment(
        workload, sf, allocation=ResourceAllocation(**alloc_kwargs),
        duration=duration,
    )
    return m.primary_metric


class TestSection4Cores:
    """§4: sensitivity to number of cores and hyper-threading."""

    def test_tpch_ht_crossover(self):
        """perf16/perf32 = 1.72 / 1.27 / 0.93 / 0.82 for SF 10/30/100/300:
        HT detrimental at small SFs, beneficial at large ones."""
        targets = {10: (1.72, 150), 30: (1.27, 400), 100: (0.93, 1200),
                   300: (0.82, 3000)}
        for sf, (target, duration) in targets.items():
            ratio = (perf("tpch", sf, duration, logical_cores=16)
                     / perf("tpch", sf, duration, logical_cores=32))
            assert ratio == pytest.approx(target, rel=0.15), (sf, ratio)

    def test_tpch_scales_with_physical_cores(self):
        values = [perf("tpch", 10, 150, logical_cores=n) for n in (2, 4, 8, 16)]
        assert all(b > a for a, b in zip(values, values[1:]))

    def test_oltp_scales_with_physical_cores(self):
        values = [perf("asdb", 2000, 8, logical_cores=n) for n in (2, 4, 8, 16)]
        assert all(b > a for a, b in zip(values, values[1:]))

    def test_asdb_ht_gain_small(self):
        """§4: 5-6.8% improvement from the extra logical cores."""
        for sf in (2000, 6000):
            gain = (perf("asdb", sf, 10, logical_cores=32)
                    / perf("asdb", sf, 10, logical_cores=16) - 1)
            assert 0.01 <= gain <= 0.12, (sf, gain)

    def test_tpce_ht_gain_large(self):
        """§4: 16.7-24.2% improvement for TPC-E."""
        for sf in (5000, 15000):
            gain = (perf("tpce", sf, 12, logical_cores=32)
                    / perf("tpce", sf, 12, logical_cores=16) - 1)
            assert 0.12 <= gain <= 0.30, (sf, gain)

    def test_tpce_larger_scale_factor_is_faster(self):
        """§4: TPC-E shows better performance at SF=15000 despite more IO
        (reduced contention for shared data)."""
        assert perf("tpce", 15000, 15) > perf("tpce", 5000, 15)

    def test_htap_components_diverge_with_scale(self):
        """§4: at SF=15000 DSS performs less and OLTP performs better."""
        small = run_experiment("htap", 5000, duration=20.0)
        large = run_experiment("htap", 15000, duration=20.0)
        assert large.primary_metric > small.primary_metric          # OLTP up
        assert large.secondary_metric < small.secondary_metric      # DSS down


class TestTable3Waits:
    """Table 3: wait-time ratios, TPC-E SF=15000 vs SF=5000."""

    @pytest.fixture(scope="class")
    def waits(self):
        return {
            sf: run_experiment("tpce", sf, duration=20.0).wait_times
            for sf in (5000, 15000)
        }

    def test_lock_waits_shrink(self, waits):
        ratio = waits[15000][WaitType.LOCK] / waits[5000][WaitType.LOCK]
        assert ratio < 0.7  # paper: 0.15

    def test_pagelatch_waits_shrink(self, waits):
        ratio = waits[15000][WaitType.PAGELATCH] / waits[5000][WaitType.PAGELATCH]
        assert ratio < 1.0  # paper: 0.56

    def test_pageiolatch_waits_explode(self, waits):
        ratio = (waits[15000][WaitType.PAGEIOLATCH]
                 / max(1e-9, waits[5000][WaitType.PAGEIOLATCH]))
        assert ratio > 10.0  # paper: 74.61

    def test_sigma_below_one(self, waits):
        small = sum(waits[5000][w] for w in
                    (WaitType.LOCK, WaitType.LATCH, WaitType.PAGELATCH))
        large = sum(waits[15000][w] for w in
                    (WaitType.LOCK, WaitType.LATCH, WaitType.PAGELATCH))
        assert large / small < 1.0  # paper: 0.49


class TestSection5Cache:
    """§5: LLC capacity sensitivity."""

    def test_perf_rises_with_llc_with_knee(self):
        """Dramatic gains at small allocations, modest beyond the knee."""
        sizes = (2, 10, 40)
        values = [perf("tpch", 100, 1200, llc_mb=mb) for mb in sizes]
        assert values[0] < values[1] <= values[2] * 1.02
        small_gain = values[1] / values[0]
        large_gain = values[2] / values[1]
        assert small_gain > 2.0          # paper: 3.4x from 2->10 MB
        assert large_gain < 1.6          # paper: +26% from 10->40 MB

    def test_mpki_falls_with_llc(self):
        mpkis = [
            run_experiment("tpch", 100,
                           allocation=ResourceAllocation(llc_mb=mb),
                           duration=600).mpki_model
            for mb in (2, 10, 40)
        ]
        assert mpkis[0] > mpkis[1] > mpkis[2]

    def test_asdb_tail_latency_knee(self):
        """§5: the 99th-percentile latency for ASDB (not shown in the
        paper) exhibits a knee like the miss-rate curves: it collapses
        once the hot working set fits."""
        def p99(llc_mb):
            m = run_experiment(
                "asdb", 2000,
                allocation=ResourceAllocation(llc_mb=llc_mb), duration=8,
            )
            return m.tracker.percentile_latency("txn", 99)
        tail = {mb: p99(mb) for mb in (2, 10, 40)}
        assert tail[2] > 1.2 * tail[10]           # steep below the knee
        assert tail[10] < 1.2 * tail[40]          # flat beyond it

    def test_oltp_needs_less_cache_than_analytical(self):
        """Table 4's qualitative claim."""
        def sufficient_90(workload, sf, duration):
            from repro.core.analysis import sufficient_allocation
            sizes = [2, 6, 10, 16, 24, 40]
            values = [perf(workload, sf, duration, llc_mb=mb) for mb in sizes]
            return sufficient_allocation(sizes, values, 0.90)
        asdb = sufficient_90("asdb", 2000, 8)
        htap = sufficient_90("htap", 5000, 15)
        assert asdb is not None and htap is not None
        assert asdb <= htap


class TestSection6Storage:
    """§6: storage bandwidth sensitivity."""

    def test_read_limit_throttles_tpch(self):
        free = perf("tpch", 300, 3000)
        capped = perf("tpch", 300, 3000, read_bw_limit=mb_per_s(200))
        assert capped < 0.5 * free

    def test_read_response_has_diminishing_returns(self):
        from repro.core.analysis import diminishing_returns
        limits = [200, 600, 1200, 2500]
        values = [
            perf("tpch", 300, 3000, read_bw_limit=mb_per_s(l)) for l in limits
        ]
        assert diminishing_returns(limits, values)

    def test_write_limits_hit_transactional_workloads(self):
        """§6: ASDB TPS drops ~6% at 100 MB/s and ~44% at 50 MB/s even
        though the database mostly fits in memory."""
        base = perf("asdb", 2000, 10)
        drop100 = 1 - perf("asdb", 2000, 10, write_bw_limit=mb_per_s(100)) / base
        drop50 = 1 - perf("asdb", 2000, 10, write_bw_limit=mb_per_s(50)) / base
        assert 0.0 <= drop100 <= 0.20
        assert 0.25 <= drop50 <= 0.65
        assert drop50 > drop100


class TestSection7Parallelism:
    """§7: MAXDOP sensitivity and plan adaptation (unit-level plan checks
    live in tests/engine; here the executed-latency view)."""

    def test_insensitive_queries_flat_at_sf10(self):
        from repro.core.figures import fig6_maxdop
        speedups = fig6_maxdop(10, maxdops=(1, 8, 32), duration_scale=1.0)
        for name in ("Q2", "Q6", "Q14", "Q15", "Q20"):
            series = speedups.get(name)
            assert series is not None, name
            for value in series:
                assert value == pytest.approx(1.0, rel=0.30), (name, series)

    def test_sensitive_queries_speed_up_at_sf10(self):
        from repro.core.figures import fig6_maxdop
        speedups = fig6_maxdop(10, maxdops=(1, 32), duration_scale=1.0)
        q1 = speedups["Q1"]
        assert q1[0] < 0.5  # MAXDOP=1 much slower than MAXDOP=32


class TestSection8Memory:
    """§8: memory grant sensitivity (plan-level; Fig 8 executed view is
    exercised by the benchmark)."""

    def test_q20_memory_shrinks_at_low_dop(self):
        """§8: Q20 uses 45% less memory at MAXDOP=1 than at MAXDOP=32.
        The exact 45% is the grant DOP-scaling factor (unit-tested in
        tests/engine); end to end the chosen plans also differ, so the
        measured reduction is asserted as a band."""
        from repro.core.figures import q20_memory_vs_dop
        serial, parallel = q20_memory_vs_dop(100)
        assert serial < parallel
        assert 0.35 <= serial / parallel <= 0.95

    def test_memory_bands_at_sf100(self):
        """The seven sensitive queries need more memory than the 2% cap;
        the insensitive ones fit within it."""
        from repro.engine.engine import SqlEngine
        from repro.engine.resource_governor import ResourceGovernor
        from repro.hardware.machine import Machine
        from repro.workloads import make_workload
        from repro.workloads.tpch import tpch_query

        workload = make_workload("tpch", 100)
        machine = Machine()
        ResourceAllocation().apply_to(machine)
        engine = SqlEngine(
            machine, workload.database, workload.execution_characteristics(),
            governor=ResourceGovernor(max_dop=32),
            **workload.engine_parameters(),
        )
        cap_2pct = engine.memory_pool.pool_bytes * 0.02
        cap_25pct = engine.memory_pool.pool_bytes * 0.25
        needs = {
            n: engine.optimize(tpch_query(n, 100)).required_memory_bytes
            for n in range(1, 23)
        }
        for n in (3, 9, 13, 16, 18, 21):
            assert needs[n] > cap_2pct, n
        # Q18 exceeds even the default 25% grant — degrades everywhere.
        assert needs[18] > cap_25pct
        # Insensitive queries fit in the smallest grant.
        for n in (1, 2, 4, 6, 11, 14, 15, 17, 19, 20, 22):
            assert needs[n] <= cap_2pct, n
