"""Tests for the exception hierarchy."""

import pytest

from repro.errors import (
    AllocationError,
    ConfigurationError,
    PlanningError,
    ReproError,
    SimulationError,
    WorkloadError,
)


def test_all_errors_derive_from_repro_error():
    for exc in (AllocationError, ConfigurationError, PlanningError,
                SimulationError, WorkloadError):
        assert issubclass(exc, ReproError)


def test_allocation_is_a_configuration_error():
    assert issubclass(AllocationError, ConfigurationError)


def test_single_except_catches_library_errors():
    with pytest.raises(ReproError):
        raise AllocationError("no such core")


def test_library_raises_its_own_types():
    from repro.hardware.cache import LastLevelCache
    llc = LastLevelCache()
    with pytest.raises(ReproError):
        llc.set_allocation_mb_total(3)
    from repro.engine.optimizer.queryspec import TableRef
    with pytest.raises(ReproError):
        TableRef("t", "t", selectivity=2.0)
