"""Operator cost model.

Costs are in *cost units*; one unit corresponds to
:data:`repro.calibration.INSTRUCTIONS_PER_COST_UNIT` retired instructions
(1000 by default), so a cost of 1e6 is roughly a billion instructions —
about half a second of single-core work on the testbed CPU.

IO enters the cost model the way commercial optimizers treat it: scans
charge sequential IO per byte *not expected to be resident*, and index
nested-loops charge a random-IO penalty per probe that misses the buffer
pool.  The parallel cost model divides operator work by the degree of
parallelism but adds exchange costs: a per-worker startup charge and, for
hash joins, a broadcast of the build side to every worker (which scales
*with* DOP — the mechanism that makes the optimizer flip Q20's part join
from hash (serial) to nested loops (MAXDOP=32), Fig 7).
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class CostModel:
    """All per-row / per-byte cost constants in one place."""

    # Scans.
    columnstore_scan_per_row: float = 0.08
    rowstore_scan_per_row: float = 0.6
    filter_per_row: float = 0.02
    # Index seeks (B-tree or columnstore rowgroup elimination).
    seek_base: float = 3.0
    seek_per_level: float = 0.15
    output_per_row: float = 0.1
    # Hash join.
    hash_build_per_row: float = 0.9
    hash_probe_per_row: float = 0.45
    hash_row_bytes: float = 96.0
    # Merge join (both inputs must already be sorted; rarely wins here).
    merge_per_row: float = 0.30
    # Aggregation.
    hash_agg_per_input_row: float = 0.5
    hash_agg_per_group: float = 1.0
    agg_row_bytes: float = 64.0
    stream_agg_per_row: float = 0.25
    # Semi/anti hash joins keep only join keys (bitmap-style), not rows.
    semi_key_bytes: float = 24.0
    # Sort.
    sort_per_row_log: float = 0.03
    sort_row_bytes: float = 100.0
    top_per_row: float = 0.01
    #: A "seek" into a columnstore cannot use a B-tree; rowgroup
    #: elimination still reads whole segments, so per-probe cost is much
    #: higher than a B-tree seek.  Calibrated so that the optimizer keeps
    #: hash joins for large probes but flips Q20's part join to parallel
    #: nested loops at MAXDOP=32 (Fig 7).
    columnstore_seek_multiplier: float = 4.0
    # Parallelism.
    exchange_per_row: float = 0.03
    broadcast_per_row_per_dop: float = 0.15
    parallel_startup_per_worker: float = 2500.0
    # IO, in cost units of *time*: 1 MiB at the device's 2500 MB/s takes
    # ~0.42 ms, which at 2.3 GHz is ~966k instructions ~ 900 cost units.
    # A random 8 KiB read costs ~latency (~50 us ~ 110 units).
    sequential_io_per_mib: float = 900.0
    random_io_per_miss: float = 110.0

    # -- scans ------------------------------------------------------------------

    def scan_cpu(self, rows: float, columnstore: bool, column_fraction: float) -> float:
        per_row = (
            self.columnstore_scan_per_row * column_fraction
            if columnstore
            else self.rowstore_scan_per_row
        )
        return rows * per_row

    def scan_io(self, cold_bytes: float) -> float:
        return (cold_bytes / 2**20) * self.sequential_io_per_mib

    # -- joins ------------------------------------------------------------------

    def hash_join_cpu(self, build_rows: float, probe_rows: float) -> float:
        return build_rows * self.hash_build_per_row + probe_rows * self.hash_probe_per_row

    def hash_join_memory(self, build_rows: float) -> float:
        return build_rows * self.hash_row_bytes

    def broadcast_cost(self, build_rows: float, dop: int) -> float:
        return build_rows * self.broadcast_per_row_per_dop * max(0, dop - 1)

    def seek_cost(self, inner_rows_unfiltered: float, columnstore: bool = False) -> float:
        levels = math.log2(max(2.0, inner_rows_unfiltered))
        cost = self.seek_base + self.seek_per_level * levels
        if columnstore:
            cost *= self.columnstore_seek_multiplier
        return cost

    def nl_join_cpu(self, outer_rows: float, inner_rows_unfiltered: float,
                    output_rows: float, columnstore: bool = False) -> float:
        return outer_rows * self.seek_cost(inner_rows_unfiltered, columnstore) + (
            output_rows * self.output_per_row
        )

    def nl_join_io(self, outer_rows: float, miss_probability: float) -> float:
        return outer_rows * miss_probability * self.random_io_per_miss

    # -- aggregation / sort ------------------------------------------------------

    def hash_agg_cpu(self, input_rows: float, groups: float) -> float:
        return (
            input_rows * self.hash_agg_per_input_row
            + groups * self.hash_agg_per_group
        )

    def hash_agg_memory(self, groups: float) -> float:
        return groups * self.agg_row_bytes

    def sort_cpu(self, rows: float) -> float:
        if rows <= 1:
            return 0.0
        return rows * math.log2(rows) * self.sort_per_row_log

    def sort_memory(self, rows: float) -> float:
        return rows * self.sort_row_bytes

    # -- parallelism ----------------------------------------------------------------

    def exchange_cpu(self, rows: float) -> float:
        return rows * self.exchange_per_row

    def startup_cost(self, dop: int) -> float:
        return self.parallel_startup_per_worker * max(0, dop - 1)
