"""Fleet traffic: shedding order, governance, SLO contracts, chaos."""

import math
from dataclasses import replace

import pytest

from repro.engine.statistics import dm_fleet_slo
from repro.errors import ConfigurationError
from repro.faults.chaos import generate_schedule
from repro.fleet.cluster import (
    FleetReport,
    FleetSpec,
    TenantSpec,
    default_tenants,
    fleet_oversubscription_sweep,
    priority_watermark,
    run_fleet,
)
from repro.workloads.arrivals import ArrivalSpec

#: Small-but-saturating fleet for the contract tests: tight per-shard
#: capacity so oversubscription sheds without a huge event volume.
BASE = FleetSpec(
    shards=2,
    duration=2.5,
    arrival=ArrivalSpec(offered_tps=250.0, trace="burst"),
    tenants=default_tenants(3),
    capacity_per_shard=8,
)


class TestSpecValidation:
    def test_defaults_are_valid(self):
        FleetSpec()

    def test_rejects_bad_shapes(self):
        with pytest.raises(ConfigurationError):
            FleetSpec(shards=0)
        with pytest.raises(ConfigurationError):
            FleetSpec(backends=())
        with pytest.raises(ConfigurationError):
            FleetSpec(tenants=())
        with pytest.raises(ConfigurationError):
            FleetSpec(capacity_per_shard=0)
        with pytest.raises(ConfigurationError):
            FleetSpec(replication=0)

    def test_rejects_duplicate_tenant_names(self):
        with pytest.raises(ConfigurationError):
            FleetSpec(tenants=(TenantSpec(name="a"), TenantSpec(name="a")))

    def test_rejects_bad_tenants(self):
        with pytest.raises(ConfigurationError):
            TenantSpec(name="t", weight=0.0)
        with pytest.raises(ConfigurationError):
            TenantSpec(name="t", priority=-1)
        with pytest.raises(ConfigurationError):
            TenantSpec(name="t", slo_p99_ms=0.0)
        with pytest.raises(ConfigurationError):
            TenantSpec(name="t", rate_limit_tps=-1.0)

    def test_analytics_workload_rejected(self):
        with pytest.raises(ConfigurationError):
            run_fleet(FleetSpec(workload="tpch", scale_factor=1))


class TestPriorityWatermark:
    def test_most_protected_class_gets_full_capacity(self):
        assert priority_watermark(0, 32) == 32

    def test_watermark_decreases_with_priority(self):
        marks = [priority_watermark(p, 32) for p in range(5)]
        assert marks == sorted(marks, reverse=True)

    def test_floor_holds_for_deep_priorities(self):
        assert priority_watermark(10, 32) == 8  # 25% floor


class TestBasicRun:
    def test_traffic_flows_and_report_is_consistent(self):
        report = run_fleet(BASE)
        assert report.arrivals > 0
        assert report.completed > 0
        assert report.arrivals >= report.completed + report.shed
        assert sum(t.arrivals for t in report.tenants.values()) == report.arrivals
        assert report.p99_ms >= report.p50_ms

    def test_bit_identical_replay(self):
        assert run_fleet(BASE).digest() == run_fleet(BASE).digest()

    def test_seed_changes_the_run(self):
        seeded = run_fleet(BASE)
        reseeded = run_fleet(replace(BASE, seed=7))
        assert seeded.digest() != reseeded.digest()

    def test_backends_cycle_across_shards(self):
        report = run_fleet(replace(BASE, shards=3))
        assert len({row["backend"] for row in report.per_shard}) == 3

    def test_payload_round_trip_preserves_digest(self):
        report = run_fleet(BASE)
        clone = FleetReport.from_payload(report.to_payload())
        assert clone.digest() == report.digest()


class TestGracefulDegradation:
    """The PR's contract, checked as properties of a real sweep."""

    @pytest.fixture(scope="class")
    def sweep(self):
        return fleet_oversubscription_sweep(BASE, (1.0, 4.0, 16.0))

    def test_low_priority_sheds_strictly_before_high(self, sweep):
        """At every oversubscription level the shed fraction is ordered
        by priority, and a protected class never sheds first."""
        assert sweep.shed_fairness()
        # The 16x point must actually shed, or the property is vacuous.
        assert sweep.reports[-1].shed > 0

    def test_protected_p99_stays_inside_slo(self, sweep):
        assert sweep.slo_invariant()
        assert sweep.slo_violations() == []

    def test_goodput_fraction_degrades_monotonically(self, sweep):
        assert sweep.monotone_degradation()
        for name, stats in sweep.reports[0].tenants.items():
            worst = sweep.reports[-1].tenants[name]
            assert worst.goodput_fraction <= stats.goodput_fraction + 0.02

    def test_shed_fraction_ordering_is_strict_under_overload(self, sweep):
        report = sweep.reports[-1]
        by_priority = {}
        for stats in report.tenants.values():
            by_priority.setdefault(stats.priority, []).append(stats)
        fractions = [
            sum(s.shed for s in group) / sum(s.arrivals for s in group)
            for _, group in sorted(by_priority.items())
        ]
        assert fractions == sorted(fractions)


class TestGovernance:
    def test_token_bucket_caps_a_governed_tenant(self):
        tenants = (
            TenantSpec(name="governed", priority=1, rate_limit_tps=20.0),
            TenantSpec(name="free", priority=1),
        )
        spec = FleetSpec(shards=2, duration=3.0,
                         arrival=ArrivalSpec(offered_tps=300.0),
                         tenants=tenants)
        report = run_fleet(spec)
        governed = report.tenants["governed"]
        free = report.tenants["free"]
        assert governed.governed > 0
        assert free.governed == 0
        # Bucket: rate*duration plus the initial 2x-rate burst allowance.
        assert governed.completed <= 20.0 * spec.duration + 40.0 + 5
        assert free.completed > 2 * governed.completed

    def test_ungoverned_by_default(self):
        report = run_fleet(BASE)
        assert report.governed == 0


class TestChaosComposability:
    def test_schedule_drives_episodes_against_the_fleet(self):
        schedule = generate_schedule(seed=7, duration=2.5,
                                     kinds=("storm", "brownout"),
                                     replicas=2, episodes=2)
        report = run_fleet(BASE, schedule=schedule)
        assert len(report.episodes) == 2
        assert {e["kind"] for e in report.episodes} <= {"storm", "brownout"}
        assert report.completed > 0

    def test_chaos_runs_replay_bit_identically(self):
        schedule = generate_schedule(seed=3, duration=2.5,
                                     kinds=("crash",), replicas=2,
                                     episodes=1)
        first = run_fleet(BASE, schedule=schedule)
        assert first.digest() == run_fleet(BASE, schedule=schedule).digest()

    def test_crash_window_takes_an_unreplicated_shard_out(self):
        schedule = generate_schedule(seed=3, duration=2.5,
                                     kinds=("crash",), replicas=2,
                                     episodes=1)
        report = run_fleet(BASE, schedule=schedule)
        episode = report.episodes[0]
        assert episode["kind"] == "crash"
        assert episode["healed_at"] > episode["at"]


class TestReplication:
    def test_replicated_fleet_serves_traffic(self):
        spec = FleetSpec(shards=2, duration=2.0, replication=3,
                         arrival=ArrivalSpec(offered_tps=150.0),
                         tenants=default_tenants(2))
        report = run_fleet(spec)
        assert report.completed > 0
        assert all(row["replicas"] == 3 for row in report.per_shard)

    def test_crash_fails_over_instead_of_blacking_out(self):
        spec = FleetSpec(shards=2, duration=3.0, replication=3,
                         arrival=ArrivalSpec(offered_tps=150.0),
                         tenants=default_tenants(2))
        schedule = generate_schedule(seed=5, duration=3.0,
                                     kinds=("crash",), replicas=2,
                                     episodes=1)
        report = run_fleet(spec, schedule=schedule)
        assert report.completed > 0
        assert len(report.episodes) == 1


class TestFleetSloView:
    def test_rows_sorted_most_protected_first(self):
        report = run_fleet(BASE)
        rows = dm_fleet_slo(report)
        assert [r.priority for r in rows] == sorted(r.priority for r in rows)
        assert {r.tenant for r in rows} == set(report.tenants)

    def test_never_shed_tenant_reports_nan_first_shed(self):
        calm = FleetSpec(shards=2, duration=2.0,
                         arrival=ArrivalSpec(offered_tps=50.0),
                         tenants=default_tenants(2))
        rows = dm_fleet_slo(run_fleet(calm))
        assert all(math.isnan(r.first_shed_at) for r in rows)
        assert all(r.slo_ok for r in rows)
