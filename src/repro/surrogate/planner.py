"""Surrogate-guided adaptive sweeps: simulate the hard points, predict the rest.

An exhaustive sweep pays one simulation per grid point.  The adaptive
planner spends a *budgeted* fraction of that: it predicts the whole grid
with the surrogate first, then simulates only

* **anchor points** — the first and last point of the grid (the
  extrapolation edges where any interpolator is weakest),
* **knee-adjacent points** — LLC allocations bracketing the workload's
  miss-ratio-curve knees, where the paper's §5 response curves actually
  bend and a smooth model is most likely to be wrong, and
* **high-uncertainty points** — the remaining budget, spent in
  descending order of the model's own uncertainty score,

and backfills everything else from the surrogate.  Every backfilled
:class:`~repro.core.measurement.Measurement` carries
``source="predicted"`` and the model's uncertainty; simulated points run
through the ordinary supervised runner, so they hit the result cache and
the attempt journal exactly as an exhaustive sweep would — which is what
makes an adaptive sweep *resumable*: re-running it serves the simulated
points from the cache and re-derives the predictions, and the journal's
``surrogate`` event lines record which points were predicted (with what
uncertainty) for post-hoc audit.

Predicted points are deliberately **never** written to the cache: the
cache is simulated ground truth, and a later exhaustive sweep of the
same grid must re-measure them (and would, since only simulated entries
exist under those digests).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.experiment import ExperimentConfig
from repro.core.journal import SweepJournal
from repro.core.measurement import SOURCE_PREDICTED, Measurement
from repro.core.resultcache import ResultCache
from repro.core.runner import JOURNAL_BASENAME, SupervisionPolicy, run_supervised
from repro.errors import ConfigurationError
from repro.hardware.counters import (
    CounterSeries,
    DRAM_READ_BYTES,
    DRAM_WRITE_BYTES,
    INSTRUCTIONS,
    LLC_MISSES,
    SSD_READ_BYTES,
    SSD_WRITE_BYTES,
)
from repro.surrogate.corpus import TARGET_NAMES
from repro.surrogate.features import features_for_config, knee_adjacent_llc_mb
from repro.surrogate.model import Prediction, SurrogateModel
from repro.units import mb_per_s
from repro.workloads.base import ThroughputTracker

#: Default fraction of the grid the planner may simulate.
DEFAULT_BUDGET_FRACTION = 0.4

#: Synthetic instruction rate for predicted counter series: only the
#: *ratio* to the miss rate matters (it reproduces the predicted MPKI).
_SYNTH_INSTRUCTIONS = 1e9


@dataclass(frozen=True)
class AdaptivePlan:
    """Which grid indices run through the simulator, and why."""

    simulate: Tuple[int, ...]
    predict: Tuple[int, ...]
    #: index -> "anchor" | "knee" | "uncertain" for simulated points.
    reasons: Dict[int, str] = field(default_factory=dict)
    budget: int = 0

    def summary(self) -> str:
        kinds = {}
        for reason in self.reasons.values():
            kinds[reason] = kinds.get(reason, 0) + 1
        detail = ", ".join(f"{k}={v}" for k, v in sorted(kinds.items()))
        return (
            f"{len(self.simulate)} simulated ({detail}), "
            f"{len(self.predict)} predicted, budget {self.budget}"
        )


@dataclass
class AdaptiveSweepResult:
    """An adaptive sweep's output: dense measurements plus provenance."""

    measurements: List[Measurement]
    plan: AdaptivePlan
    #: Per-predicted-index uncertainty scores.
    uncertainties: Dict[int, float] = field(default_factory=dict)
    cache_hits: int = 0

    @property
    def simulated(self) -> List[Measurement]:
        return [self.measurements[i] for i in self.plan.simulate]

    @property
    def predicted(self) -> List[Measurement]:
        return [self.measurements[i] for i in self.plan.predict]

    def summary(self) -> str:
        text = self.plan.summary()
        if self.cache_hits:
            text += f", {self.cache_hits} cached"
        return text


def plan_adaptive_sweep(
    configs: Sequence[ExperimentConfig],
    model: SurrogateModel,
    budget_fraction: float = DEFAULT_BUDGET_FRACTION,
    min_simulations: int = 2,
) -> Tuple[AdaptivePlan, List[Prediction]]:
    """Decide which points to simulate; returns the plan and every
    point's surrogate prediction (used later for backfill).

    The budget is ``max(min_simulations, ceil(fraction * len(grid)))``;
    anchors and knee-adjacent points are seeded first, remaining slots go
    to the highest-uncertainty predictions.  Deterministic: ties in
    uncertainty break by grid index.
    """
    if not 0.0 < budget_fraction <= 1.0:
        raise ConfigurationError("budget_fraction must be in (0, 1]")
    configs = list(configs)
    if not configs:
        return AdaptivePlan(simulate=(), predict=(), budget=0), []
    features = np.asarray([features_for_config(c) for c in configs])
    targets, uncertainties = model.predict_many(features)
    predictions = [
        Prediction(
            targets=dict(zip(TARGET_NAMES, targets[i].tolist())),
            uncertainty=float(uncertainties[i]),
        )
        for i in range(len(configs))
    ]
    budget = max(min(min_simulations, len(configs)),
                 math.ceil(budget_fraction * len(configs)))

    reasons: Dict[int, str] = {}

    def claim(index: int, reason: str) -> None:
        if index not in reasons and len(reasons) < budget:
            reasons[index] = reason

    # Anchors: the grid edges bracket the interpolation domain.
    claim(0, "anchor")
    claim(len(configs) - 1, "anchor")
    # Knee-adjacent LLC points: where the §5 response curves bend.
    for index, config in enumerate(configs):
        knees = knee_adjacent_llc_mb(config.workload, config.scale_factor)
        if config.allocation.llc_mb in knees:
            claim(index, "knee")
    # Remaining budget: the model's own least-trusted points.
    order = sorted(range(len(configs)),
                   key=lambda i: (-predictions[i].uncertainty, i))
    for index in order:
        claim(index, "uncertain")
    simulate = tuple(sorted(reasons))
    predict = tuple(i for i in range(len(configs)) if i not in reasons)
    plan = AdaptivePlan(simulate=simulate, predict=predict,
                        reasons=reasons, budget=budget)
    return plan, predictions


def predicted_measurement(
    config: ExperimentConfig, prediction: Prediction
) -> Measurement:
    """Synthesize a surrogate-sourced Measurement for one grid point.

    The counter series carries one synthetic tick per counter chosen so
    the *derived* observables (``ssd_read_mb``, ``mpki`` …) reproduce
    the predicted values — downstream report code reads predicted points
    through the same properties as simulated ones.  ``source`` and
    ``predicted_uncertainty`` are the provenance contract; the tracker
    is empty (no individual completions were simulated).
    """
    targets = prediction.targets
    counters = CounterSeries(interval=config.duration or 1.0)
    counters.append(INSTRUCTIONS, _SYNTH_INSTRUCTIONS)
    counters.append(
        LLC_MISSES, targets["mpki_model"] * _SYNTH_INSTRUCTIONS / 1000.0
    )
    counters.append(SSD_READ_BYTES, mb_per_s(targets["ssd_read_mb"]))
    counters.append(SSD_WRITE_BYTES, mb_per_s(targets["ssd_write_mb"]))
    counters.append(DRAM_READ_BYTES, mb_per_s(targets["dram_read_mb"]))
    counters.append(DRAM_WRITE_BYTES, mb_per_s(targets["dram_write_mb"]))
    return Measurement(
        workload=config.workload,
        scale_factor=config.scale_factor,
        allocation=config.allocation,
        duration=config.duration,
        primary_metric=targets["primary_metric"],
        counters=counters,
        tracker=ThroughputTracker(),
        mpki_model=targets["mpki_model"],
        backend=(f"router:{config.router}" if config.routed
                 else config.backend),
        router_policy=config.router,
        source=SOURCE_PREDICTED,
        predicted_uncertainty=prediction.uncertainty,
    )


def run_adaptive_sweep(
    configs: Sequence[ExperimentConfig],
    model: SurrogateModel,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    policy: Optional[SupervisionPolicy] = None,
    journal: Optional[SweepJournal] = None,
    chunk: Optional[int] = None,
    budget_fraction: float = DEFAULT_BUDGET_FRACTION,
) -> AdaptiveSweepResult:
    """Run *configs* adaptively: simulate per the plan, predict the rest.

    Simulated points go through :func:`~repro.core.runner.run_supervised`
    — cache, journal, retries, everything an exhaustive sweep gets — so
    an interrupted adaptive sweep resumes the same way.  Each predicted
    point is journaled as a ``surrogate`` event (digest, index, predicted
    primary metric, uncertainty); a resumed run re-notes the identical
    payload, so journals replay-match.
    """
    configs = list(configs)
    plan, predictions = plan_adaptive_sweep(
        configs, model, budget_fraction=budget_fraction
    )
    if journal is None and cache is not None:
        journal = SweepJournal(cache.directory / JOURNAL_BASENAME)
    simulated_configs = [configs[i] for i in plan.simulate]
    report = run_supervised(simulated_configs, jobs=jobs, cache=cache,
                            policy=policy, journal=journal, chunk=chunk)
    measurements: List[Optional[Measurement]] = [None] * len(configs)
    for slot, index in enumerate(plan.simulate):
        measurement = report.measurements[slot]
        if measurement is None:
            raise ConfigurationError(
                f"adaptive sweep: simulated grid point {index} produced no "
                "measurement (see the sweep report's failures)"
            )
        measurements[index] = measurement
    uncertainties: Dict[int, float] = {}
    for index in plan.predict:
        prediction = predictions[index]
        measurements[index] = predicted_measurement(configs[index], prediction)
        uncertainties[index] = prediction.uncertainty
        if journal is not None:
            digest = (cache.digest(configs[index]) if cache is not None
                      else None)
            journal.note(
                "surrogate",
                digest=digest,
                index=index,
                source=SOURCE_PREDICTED,
                primary_metric=prediction.targets["primary_metric"],
                uncertainty=prediction.uncertainty,
            )
    return AdaptiveSweepResult(
        measurements=measurements,  # type: ignore[arg-type]
        plan=plan,
        uncertainties=uncertainties,
        cache_hits=report.cache_hits,
    )
