"""Satellite: journal resume of a chaos-interrupted sweep.

A sweep over chaos-faulted configs is interrupted partway; the resumed
sweep must (a) re-run only the unfinished points, and (b) re-note fault
schedules that replay-match what the journal already holds.
"""

from repro.core.experiment import ExperimentConfig
from repro.core.journal import SweepJournal
from repro.core.resultcache import ResultCache, canonical_json
from repro.core.runner import SupervisionPolicy, run_supervised
from repro.faults.chaos import chaos_fault_grid
from repro.faults.spec import simulation_faults

GRID_SEED = 7


def chaos_grid():
    configs = [
        ExperimentConfig(workload="asdb", scale_factor=2000,
                         duration=0.4, seed=seed)
        for seed in range(3)
    ]
    return chaos_fault_grid(configs, seed=GRID_SEED)


def quiet_policy():
    return SupervisionPolicy(retries=1, backoff=0.01, timeout=60.0)


class TestChaosResume:
    def test_resume_reruns_only_unfinished_points(self, tmp_path):
        grid = chaos_grid()
        cache = ResultCache(tmp_path / "cache")
        journal_path = tmp_path / "sweep.jsonl"

        # The "interrupted" sweep: only the first two points complete.
        first = run_supervised(grid[:2], cache=cache, policy=quiet_policy(),
                               journal=SweepJournal(journal_path))
        assert len(first.measurements) == 2
        assert first.cache_hits == 0

        # The resumed sweep over the full grid.
        resumed = run_supervised(grid, cache=cache, policy=quiet_policy(),
                                 journal=SweepJournal(journal_path))
        assert len(resumed.measurements) == len(grid)
        assert resumed.cache_hits == 2
        assert resumed.failures == []

        # Exactly one "ok" attempt per digest — finished points were
        # served from cache, not re-executed.
        journal = SweepJournal(journal_path)
        for config in grid:
            digest = cache.digest(config)
            attempts = [e for e in journal.entries(digest)
                        if e["status"] == "ok"]
            assert len(attempts) == 1

    def test_chaos_notes_replay_match_across_resume(self, tmp_path):
        grid = chaos_grid()
        cache = ResultCache(tmp_path / "cache")
        journal_path = tmp_path / "sweep.jsonl"

        run_supervised(grid[:2], cache=cache, policy=quiet_policy(),
                       journal=SweepJournal(journal_path))
        run_supervised(grid, cache=cache, policy=quiet_policy(),
                       journal=SweepJournal(journal_path))

        journal = SweepJournal(journal_path)
        notes = journal.events("chaos")
        by_digest = {}
        for note in notes:
            by_digest.setdefault(note["digest"], []).append(note["faults"])

        # A digest noted in both runs must carry an identical payload:
        # the fault schedule is derived from the config, so replay is
        # bit-identical.
        for payloads in by_digest.values():
            assert all(p == payloads[0] for p in payloads)

        # And each payload matches a freshly regenerated grid — the
        # schedule is a pure function of (configs, seed), not of run
        # history.
        regenerated = chaos_grid()
        assert [c.faults for c in regenerated] == [c.faults for c in grid]
        for config in regenerated:
            digest = cache.digest(config)
            expected = [canonical_json(f)
                        for f in simulation_faults(config.faults)]
            assert by_digest[digest][0] == expected

    def test_fully_cached_rerun_adds_no_attempts_or_notes(self, tmp_path):
        grid = chaos_grid()
        cache = ResultCache(tmp_path / "cache")
        journal_path = tmp_path / "sweep.jsonl"

        run_supervised(grid, cache=cache, policy=quiet_policy(),
                       journal=SweepJournal(journal_path))
        before = SweepJournal(journal_path)
        attempts_before = {cache.digest(c): len(list(before.entries(
            cache.digest(c)))) for c in grid}
        chaos_notes_before = len(before.events("chaos"))

        report = run_supervised(grid, cache=cache, policy=quiet_policy(),
                                journal=SweepJournal(journal_path))
        assert report.cache_hits == len(grid)

        after = SweepJournal(journal_path)
        for config in grid:
            digest = cache.digest(config)
            assert len(list(after.entries(digest))) == attempts_before[digest]
        # Cached points never become pending, so no new chaos notes.
        assert len(after.events("chaos")) == chaos_notes_before
