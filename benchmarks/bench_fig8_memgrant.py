"""Fig 8: TPC-H SF=100 execution-time speedups at reduced query memory
grants, relative to the default 25% grant."""

import pytest

from repro.core.figures import fig8_memory_grants, q20_memory_vs_dop
from repro.core.report import format_table

PERCENTS = (25.0, 15.0, 5.0, 2.0)

#: §8: the seven memory-sensitive queries.
SENSITIVE = ("Q3", "Q8", "Q9", "Q13", "Q16", "Q18", "Q21")
#: §8: Q13 and Q21 tolerate down to 5%, only impacted at 2%.
TOLERANT_TO_5 = ("Q13", "Q21")


def test_fig8_memory_grant_speedups(benchmark, duration_scale, emit):
    def run():
        return fig8_memory_grants(100, percents=PERCENTS,
                                  duration_scale=duration_scale)
    speedups = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [name] + [f"{v:.2f}" for v in series]
        for name, series in sorted(speedups.items(),
                                   key=lambda kv: int(kv[0][1:]))
    ]
    emit(
        "Fig 8 — TPC-H SF=100 speedup vs grant % (baseline 25%); "
        "<1 means slower",
        format_table(["query"] + [f"M={p:g}%" for p in PERCENTS], rows),
    )
    at = {name: dict(zip(PERCENTS, series)) for name, series in speedups.items()}
    # Most queries are not very sensitive: fine even at 2%.
    insensitive = [q for q in at if q not in SENSITIVE]
    tolerant = [q for q in insensitive if at[q][2.0] > 0.85]
    assert len(tolerant) >= len(insensitive) - 2, sorted(at)
    # Q18 shows high sensitivity, degrading at every configuration.
    assert at["Q18"][15.0] < 0.95
    assert at["Q18"][2.0] < at["Q18"][15.0] + 0.05
    # Q13 and Q21 tolerate 5% but degrade at 2%.
    for q in TOLERANT_TO_5:
        assert at[q][5.0] > 0.9, q
        assert at[q][2.0] < at[q][5.0] - 0.03, (q, at[q])


def test_q20_memory_vs_maxdop(benchmark, emit):
    serial, parallel = benchmark(q20_memory_vs_dop)
    reduction = 1 - serial / parallel
    emit(
        "§8 — Q20 memory requirement vs MAXDOP",
        format_table(
            ["MAXDOP=1 bytes", "MAXDOP=32 bytes", "reduction", "paper"],
            [(serial, parallel, f"{reduction:.0%}", "45%")],
        ),
    )
    # The grant's DOP factor alone is exactly 45% (unit-tested); the
    # end-to-end plans differ between DOP 1 and 32, widening the band.
    assert 0.05 <= reduction <= 0.65
