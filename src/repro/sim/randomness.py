"""Deterministic, named random streams.

Every stochastic component of the simulation draws from its own named
stream so that adding a new random consumer does not perturb the draws seen
by existing ones — runs stay reproducible and comparable across experiment
configurations (common random numbers for variance reduction in sweeps).
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np


class RandomStreams:
    """A factory of independent :class:`numpy.random.Generator` streams.

    >>> streams = RandomStreams(seed=7)
    >>> a = streams.get("tpch.arrivals")
    >>> b = streams.get("tpce.keys")
    >>> a is streams.get("tpch.arrivals")
    True
    """

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._streams: Dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """Return the stream for *name*, creating it deterministically."""
        stream = self._streams.get(name)
        if stream is None:
            digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
            substream_seed = int.from_bytes(digest[:8], "little")
            stream = np.random.default_rng(substream_seed)
            self._streams[name] = stream
        return stream

    def fork(self, salt: str) -> "RandomStreams":
        """Derive an independent family of streams (e.g. per experiment)."""
        digest = hashlib.sha256(f"{self.seed}:fork:{salt}".encode()).digest()
        return RandomStreams(seed=int.from_bytes(digest[:8], "little"))
