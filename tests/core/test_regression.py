"""Tests for the measurement regression/compare utility."""

import pytest

from repro.core.experiment import run_experiment
from repro.core.regression import (
    ObservableDiff,
    compare_measurements,
    compare_studies,
    load_study,
    save_study,
    snapshot,
)
from repro.errors import ConfigurationError


class TestSnapshot:
    def test_snapshot_observables(self):
        m = run_experiment("asdb", 2000, duration=3.0)
        data = snapshot(m)
        assert data["primary_metric"] == m.primary_metric
        assert "wait_LOCK" in data
        assert "mpki_model" in data

    def test_identical_runs_produce_identical_snapshots(self):
        a = snapshot(run_experiment("asdb", 2000, duration=3.0, seed=4))
        b = snapshot(run_experiment("asdb", 2000, duration=3.0, seed=4))
        assert compare_measurements(a, b, tolerance=0.001) == []


class TestCompare:
    def test_change_beyond_tolerance_flagged(self):
        diffs = compare_measurements(
            {"tps": 100.0}, {"tps": 80.0}, tolerance=0.1
        )
        assert len(diffs) == 1
        assert diffs[0].relative_change == pytest.approx(-0.2)

    def test_change_within_tolerance_ignored(self):
        assert compare_measurements(
            {"tps": 100.0}, {"tps": 95.0}, tolerance=0.1
        ) == []

    def test_tiny_absolute_values_skipped(self):
        assert compare_measurements(
            {"wait": 1e-9}, {"wait": 5e-9}, tolerance=0.1
        ) == []

    def test_missing_observable_counts_as_zero(self):
        diffs = compare_measurements({"x": 1.0}, {}, tolerance=0.1)
        assert diffs[0].candidate == 0.0

    def test_invalid_tolerance(self):
        with pytest.raises(ConfigurationError):
            compare_measurements({}, {}, tolerance=0.0)


class TestStudyComparison:
    def test_clean_comparison(self):
        study = {"asdb/2000": {"tps": 100.0}}
        result = compare_studies(study, {"asdb/2000": {"tps": 101.0}})
        assert result.clean
        assert "no changes" in result.summary()

    def test_regression_reported(self):
        result = compare_studies(
            {"a": {"tps": 100.0}}, {"a": {"tps": 50.0}},
        )
        assert not result.clean
        assert "a" in result.regressions
        assert "-50.0%" in result.summary()

    def test_missing_and_new_keys(self):
        result = compare_studies(
            {"a": {"x": 1.0}, "b": {"x": 1.0}},
            {"a": {"x": 1.0}, "c": {"x": 1.0}},
        )
        assert result.missing_keys == ["b"]
        assert result.new_keys == ["c"]
        assert not result.clean

    def test_round_trip_persistence(self, tmp_path):
        study = {"asdb/2000": {"tps": 123.4, "mpki": 15.0}}
        path = tmp_path / "baseline.json"
        save_study(str(path), study)
        assert load_study(str(path)) == study

    def test_end_to_end_baseline_workflow(self, tmp_path):
        baseline = {
            "asdb/2000": snapshot(run_experiment("asdb", 2000, duration=3.0)),
        }
        path = tmp_path / "study.json"
        save_study(str(path), baseline)
        candidate = {
            "asdb/2000": snapshot(run_experiment("asdb", 2000, duration=3.0)),
        }
        result = compare_studies(load_study(str(path)), candidate,
                                 tolerance=0.05)
        assert result.clean, result.summary()
