"""The assembled machine: the paper's testbed in one object.

A :class:`Machine` owns a fresh :class:`~repro.sim.process.Simulator` plus
all hardware components, wired so that experiments manipulate it exactly
the way the paper manipulates the Thinkstation P710: through the cpuset,
the CAT allocation, and the blkio limits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.hardware.cache import LastLevelCache
from repro.hardware.cgroups import BlkioLimits, CpuSet
from repro.hardware.cpu import CpuModel, SmtModel
from repro.hardware.memory import DramModel
from repro.hardware.numa import NumaModel
from repro.hardware.storage import NvmeDevice
from repro.hardware.topology import CpuTopology
from repro.sim.process import Simulator
from repro.sim.randomness import RandomStreams
from repro.units import MIB, gib, mb_per_s


@dataclass(frozen=True)
class MachineSpec:
    """Static description of a machine configuration.

    Defaults describe the paper's testbed (§3).
    """

    sockets: int = 2
    cores_per_socket: int = 8
    smt: int = 2
    llc_per_socket_bytes: int = 20 * MIB
    llc_ways_per_socket: int = 20
    dram_capacity_bytes: int = gib(64)
    ssd_read_bw: float = mb_per_s(2500)
    ssd_write_bw: float = mb_per_s(1200)
    #: SMT yield parameters (see :class:`repro.hardware.cpu.SmtModel`);
    #: overridable for ablation studies (e.g. a hypothetical machine with
    #: perfectly neutral hyper-threading).
    smt_gain_span: float = SmtModel.gain_span
    smt_interference_span: float = SmtModel.interference_span

    def build(self, seed: int = 0) -> "Machine":
        return Machine(spec=self, seed=seed)


@dataclass
class Machine:
    """A live machine instance bound to a simulator."""

    spec: MachineSpec = field(default_factory=MachineSpec)
    seed: int = 0
    #: A fleet of machines can share one simulator so their events
    #: interleave on a single clock (replica groups, chaos runs).  None —
    #: the default, and the only mode single-machine experiments use —
    #: keeps the historical behavior of one private simulator per machine.
    shared_sim: Optional[Simulator] = field(default=None, repr=False, compare=False)

    def __post_init__(self):
        self.sim = self.shared_sim if self.shared_sim is not None else Simulator()
        self.streams = RandomStreams(seed=self.seed)
        self.topology = CpuTopology(
            sockets=self.spec.sockets,
            cores_per_socket=self.spec.cores_per_socket,
            smt=self.spec.smt,
        )
        self.cpu_model = CpuModel(
            smt=SmtModel(
                gain_span=self.spec.smt_gain_span,
                interference_span=self.spec.smt_interference_span,
            )
        )
        self.llc = LastLevelCache(
            sockets=self.spec.sockets,
            size_per_socket=self.spec.llc_per_socket_bytes,
            ways_per_socket=self.spec.llc_ways_per_socket,
        )
        self.dram = DramModel(capacity_bytes=self.spec.dram_capacity_bytes,
                              sockets=self.spec.sockets)
        self.numa = NumaModel()
        self.ssd = NvmeDevice(
            self.sim, read_bw=self.spec.ssd_read_bw, write_bw=self.spec.ssd_write_bw
        )
        self.cpuset = CpuSet(topology=self.topology)
        self.blkio = BlkioLimits()

    # -- knob application --------------------------------------------------------

    def allocate_cores(self, num_logical: int) -> None:
        """Restrict affinity to *num_logical* CPUs in the paper's order."""
        self.cpuset.set_paper_allocation(num_logical)

    def allocate_llc_mb(self, total_mb: int) -> None:
        """Set the CAT allocation (MB summed across both sockets)."""
        self.llc.set_allocation_mb_total(total_mb)

    def apply_blkio(self, limits: BlkioLimits) -> None:
        self.blkio = limits
        self.ssd.set_read_limit(limits.read_bps)
        self.ssd.set_write_limit(limits.write_bps)

    def reboot(self) -> None:
        """Flush warm cache state (paper reboots before smallest alloc)."""
        self.llc.reboot()
