"""repro: a simulation reproduction of "Characterizing Resource
Sensitivity of Database Workloads" (HPCA 2018).

Quick start::

    from repro.core import ResourceAllocation, run_experiment
    m = run_experiment("asdb", 2000, duration=15.0)
    print(m.primary_metric, m.mpki, m.ssd_write_mb)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured index.
"""

__version__ = "1.0.0"
