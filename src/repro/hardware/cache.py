"""Last-level cache with Intel Cache Allocation Technology (CAT) semantics.

The paper's §5 methodology, reproduced here:

* each socket has a 20 MB, 20-way LLC, so one way is 1 MB per socket;
* all cores are mapped to a single class of service (COS);
* the COS capacity bitmask selects which ways the COS may *allocate into
  and evict from*; bitmasks must be contiguous (hardware requirement);
* allocations are grown as supersets: bitmask ``0b1`` for 2 MB total
  across both sockets, ``0b11`` for 4 MB, and so on — granularity is
  2 MB total (1 MB per socket);
* CAT restricts allocation, not lookup: lines already resident outside
  the assigned ways still hit.  The paper controls this by loading the
  database after changing the allocation and rebooting before the
  smallest allocation; :meth:`LastLevelCache.reboot` models the flush.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.errors import AllocationError
from repro.units import MIB


@dataclass(frozen=True)
class CosBitmask:
    """A contiguous capacity bitmask for one class of service."""

    mask: int
    num_ways_total: int

    def __post_init__(self):
        if self.mask <= 0:
            raise AllocationError("CAT bitmask must have at least one way set")
        if self.mask >= (1 << self.num_ways_total):
            raise AllocationError(
                f"bitmask 0x{self.mask:x} wider than {self.num_ways_total} ways"
            )
        # Contiguity check: shifting out trailing zeros must leave 2^k - 1.
        shifted = self.mask >> self._trailing_zeros()
        if shifted & (shifted + 1):
            raise AllocationError(f"bitmask 0x{self.mask:x} is not contiguous")

    def _trailing_zeros(self) -> int:
        mask, count = self.mask, 0
        while mask & 1 == 0:
            mask >>= 1
            count += 1
        return count

    @property
    def num_ways(self) -> int:
        return bin(self.mask).count("1")

    @classmethod
    def lowest_ways(cls, n: int, num_ways_total: int) -> "CosBitmask":
        """The paper's superset-growth scheme: ways 0..n-1."""
        if not 1 <= n <= num_ways_total:
            raise AllocationError(f"way count must be in [1, {num_ways_total}]")
        return cls(mask=(1 << n) - 1, num_ways_total=num_ways_total)


class CacheAllocationTechnology:
    """The COS -> ways mapping, mirroring the pqos utility's model."""

    def __init__(self, num_ways_per_socket: int = 20, num_cos: int = 4):
        self.num_ways = num_ways_per_socket
        self.num_cos = num_cos
        # COS0 is the default: all ways.
        self._masks: Dict[int, CosBitmask] = {
            cos: CosBitmask.lowest_ways(self.num_ways, self.num_ways)
            for cos in range(num_cos)
        }

    def set_mask(self, cos: int, mask: CosBitmask) -> None:
        if not 0 <= cos < self.num_cos:
            raise AllocationError(f"no such COS: {cos}")
        self._masks[cos] = mask

    def mask(self, cos: int) -> CosBitmask:
        if cos not in self._masks:
            raise AllocationError(f"no such COS: {cos}")
        return self._masks[cos]


class LastLevelCache:
    """The socket-pair LLC as the experiments see it.

    Sizes are reported *summed across sockets* as in the paper (40 MB
    total, allocated in 2 MB steps divided equally between sockets).
    """

    def __init__(
        self,
        sockets: int = 2,
        size_per_socket: int = 20 * MIB,
        ways_per_socket: int = 20,
    ):
        if size_per_socket % ways_per_socket:
            raise AllocationError("way size must divide the cache size")
        self.sockets = sockets
        self.size_per_socket = size_per_socket
        self.ways_per_socket = ways_per_socket
        self.cat = CacheAllocationTechnology(num_ways_per_socket=ways_per_socket)
        self._active_cos = 0
        # Residual fraction of the *unallocated* space still holding
        # useful lines (CAT does not prevent hits outside the mask).
        self._residual_fraction = 0.0

    @property
    def way_size_per_socket(self) -> int:
        return self.size_per_socket // self.ways_per_socket

    @property
    def total_size(self) -> int:
        return self.size_per_socket * self.sockets

    @property
    def allocation_granularity(self) -> int:
        """Smallest total allocation step (1 way on each socket)."""
        return self.way_size_per_socket * self.sockets

    def set_allocation_mb_total(self, total_mb: int) -> None:
        """Allocate ``total_mb`` MB summed over sockets (paper's x-axis).

        Must be a multiple of the 2 MB granularity.  Uses the superset
        bitmask scheme (ways from the LSB up).
        """
        step = self.allocation_granularity // MIB
        if total_mb % step:
            raise AllocationError(
                f"allocation must be a multiple of {step} MB, got {total_mb}"
            )
        ways = total_mb // step
        self.cat.set_mask(
            self._active_cos, CosBitmask.lowest_ways(ways, self.ways_per_socket)
        )

    def allocated_bytes(self) -> int:
        """Bytes of LLC (across sockets) the active COS may allocate into."""
        mask = self.cat.mask(self._active_cos)
        return mask.num_ways * self.way_size_per_socket * self.sockets

    def effective_bytes(self) -> int:
        """Allocated bytes plus residual warm space outside the mask."""
        allocated = self.allocated_bytes()
        outside = self.total_size - allocated
        return allocated + int(outside * self._residual_fraction)

    def warm_outside_mask(self, fraction: float) -> None:
        """Mark a fraction of the unallocated ways as still holding useful
        lines (what happens when the allocation shrinks without a reboot)."""
        if not 0.0 <= fraction <= 1.0:
            raise AllocationError("fraction must be within [0, 1]")
        self._residual_fraction = fraction

    def reboot(self) -> None:
        """Flush everything (the paper reboots before the 2 MB runs)."""
        self._residual_fraction = 0.0
