"""Fleet SLO bench: tail latency vs fleet size, autoscaler reaction.

Measures the two perf claims of the fleet-traffic subsystem and emits
one JSON document (written to ``BENCH_fleet_slo.json`` at the repo
root):

* ``fleet_size`` — the same diurnal offered load (fixed total tps)
  spread over 1 -> 16 shards.  Per size: p50/p99/p999, shed fraction,
  and the simulation wall cost.  The claim is capacity, not magic:
  sheds fall monotonically as shards are added, and the saturated
  single-shard point sheds hardest;
* ``reaction`` — a flash crowd against a small autoscaling fleet vs the
  same trace against a static one.  Reports the autoscaler's reaction
  time (overload onset to new capacity *ready*, cold start included)
  and the shed reduction bought by scaling.

Honesty caveats, also embedded in the JSON: every shard runs on the
*simulated* cluster's shared clock inside one OS process, so wall
times measure simulator overhead, not engine parallelism — a 16-shard
fleet costs ~16x the events of one shard on a single core.  Simulated
quantities (latencies, sheds, reaction seconds) are deterministic and
machine-independent; wall seconds are machine-dependent.

Thresholds live in :func:`check_report`; ``check_perf_smoke.py
--fleet-slo`` re-applies them in CI.
"""

import json
import time
from pathlib import Path

from repro.fleet.autoscale import AutoscalePolicy
from repro.fleet.cluster import FleetSpec, default_tenants, run_fleet
from repro.workloads.arrivals import ArrivalSpec

try:
    from benchmarks.bench_runner_scaling import effective_cores
except ImportError:  # executed as a script: benchmarks/ is sys.path[0]
    from bench_runner_scaling import effective_cores

_REPO_ROOT = Path(__file__).resolve().parent.parent

#: Fleet sizes for the tail-vs-size curve (1 -> 16 shards).
FLEET_SIZES = (1, 2, 4, 8, 16)

#: Total offered load held fixed across fleet sizes: one shard is
#: saturated, sixteen are comfortable.
OFFERED_TPS = 600.0

#: Deliberately small admission bound so the single-shard point
#: saturates at OFFERED_TPS without inflating the event volume (and
#: the bench wall time) by an order of magnitude.
CAPACITY_PER_SHARD = 8

#: Simulated seconds per point (wall cost scales with this and with
#: OFFERED_TPS x shards' event volume).
DURATION = 4.0


def _size_spec(shards, duration):
    return FleetSpec(
        shards=shards,
        duration=duration,
        seed=0,
        arrival=ArrivalSpec(offered_tps=OFFERED_TPS, trace="diurnal"),
        tenants=default_tenants(4),
        capacity_per_shard=CAPACITY_PER_SHARD,
    )


def bench_fleet_size(duration=DURATION):
    points = []
    for shards in FLEET_SIZES:
        start = time.perf_counter()
        report = run_fleet(_size_spec(shards, duration))
        wall = time.perf_counter() - start
        points.append({
            "shards": shards,
            "arrivals": report.arrivals,
            "completed": report.completed,
            "shed_fraction": round(report.shed / report.arrivals, 4)
            if report.arrivals else 0.0,
            "p50_ms": round(report.p50_ms, 3),
            "p99_ms": round(report.p99_ms, 3),
            "p999_ms": round(report.p999_ms, 3),
            "wall_seconds": round(wall, 3),
        })
    return {
        "offered_tps": OFFERED_TPS,
        "trace": "diurnal",
        "duration": duration,
        "points": points,
    }


def bench_reaction(duration=10.0):
    arrival = ArrivalSpec(offered_tps=300.0, trace="flash-crowd",
                          flash_at=0.4, flash_magnitude=8.0, flash_width=0.3)
    static_spec = FleetSpec(shards=2, duration=duration, seed=0,
                            arrival=arrival, tenants=default_tenants(4))
    policy = AutoscalePolicy(min_shards=2, max_shards=8, cooldown_s=2.0)
    scaled_spec = FleetSpec(shards=2, duration=duration, seed=0,
                            arrival=arrival, tenants=default_tenants(4),
                            autoscale=policy)
    static = run_fleet(static_spec)
    scaled = run_fleet(scaled_spec)
    return {
        "trace": "flash-crowd",
        "duration": duration,
        "static_sheds": static.shed,
        "autoscaled_sheds": scaled.shed,
        "shed_reduction": round(1.0 - scaled.shed / static.shed, 4)
        if static.shed else 0.0,
        "scale_outs": scaled.scaling["scale_outs"],
        "scale_ins": scaled.scaling["scale_ins"],
        "shards_peak": scaled.shards_peak,
        "reaction_seconds": scaled.reaction_seconds,
        "cold_start_seconds": policy.cold_start_s,
        "static_p99_ms": round(static.p99_ms, 3),
        "autoscaled_p99_ms": round(scaled.p99_ms, 3),
    }


def run_fleet_slo_study(duration_scale=1.0):
    return {
        "bench": "fleet_slo",
        "effective_cores": effective_cores(),
        "caveats": [
            "all shards share one simulated clock in one OS process: "
            "wall seconds measure simulator overhead on one core, not "
            "engine parallelism",
            "simulated latencies/sheds/reaction are deterministic and "
            "machine-independent; wall seconds are not",
        ],
        "fleet_size": bench_fleet_size(duration=DURATION * duration_scale),
        "reaction": bench_reaction(duration=10.0 * max(duration_scale, 0.5)),
    }


def check_report(report):
    """Acceptance bars for the fleet subsystem (the PR's perf claim)."""
    points = report["fleet_size"]["points"]
    sheds = [p["shed_fraction"] for p in points]
    assert sheds[0] > 0.0, (
        "single-shard point did not saturate: the size curve is "
        "measuring nothing"
    )
    assert all(late <= early + 0.02 for early, late in zip(sheds, sheds[1:])), (
        f"shed fraction not monotone non-increasing with fleet size: {sheds}"
    )
    assert sheds[-1] < sheds[0] / 2, (
        f"16 shards shed {sheds[-1]}, not under half of one shard's "
        f"{sheds[0]}: added capacity absorbed too little"
    )
    for p in points:
        assert p["p999_ms"] == p["p999_ms"], (  # NaN check
            f"{p['shards']} shards: no p999 (no completions?)"
        )
    reaction = report["reaction"]
    assert reaction["scale_outs"] >= 1, "autoscaler never scaled out"
    assert reaction["reaction_seconds"] is not None, (
        "no reaction time recorded despite scale-outs"
    )
    assert reaction["reaction_seconds"] <= 4.0, (
        f"reaction {reaction['reaction_seconds']}s exceeds the 4s bound "
        f"(interval + cooldown + cold start)"
    )
    assert reaction["autoscaled_sheds"] < reaction["static_sheds"], (
        f"autoscaling shed {reaction['autoscaled_sheds']} vs static "
        f"{reaction['static_sheds']}: scaling bought nothing"
    )


def test_fleet_slo(benchmark, emit, duration_scale):
    report = benchmark.pedantic(run_fleet_slo_study, rounds=1, iterations=1,
                                kwargs={"duration_scale": duration_scale})
    check_report(report)
    payload = json.dumps(report, indent=2, sort_keys=True)
    (_REPO_ROOT / "BENCH_fleet_slo.json").write_text(payload + "\n")
    emit("Fleet SLO — tail vs fleet size / autoscaler reaction", payload)


def main():
    report = run_fleet_slo_study()
    check_report(report)
    payload = json.dumps(report, indent=2, sort_keys=True)
    (_REPO_ROOT / "BENCH_fleet_slo.json").write_text(payload + "\n")
    print(payload)


if __name__ == "__main__":
    main()
