"""NUMA effects: remote memory accesses and QPI traffic.

Fig 2's caption notes that "increasing core allocations to more than 8
crosses the socket boundary".  Once both sockets are active, a fraction
of memory accesses lands on the remote socket: shared structures (the
buffer pool, lock tables) are interleaved, so threads on either socket
remotely access roughly the interleave fraction of their misses.  Remote
accesses pay a higher latency (the QPI hop) and consume QPI bandwidth.

The model exposes two quantities the CPU layer folds into its effective
miss penalty and the counters report:

* :meth:`remote_access_fraction` — how many LLC misses are remote;
* :meth:`effective_miss_penalty` — the blended DRAM penalty in cycles;
* :meth:`qpi_demand_bytes_per_s` — cross-socket traffic for a miss rate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.hardware.topology import AllocationShape
from repro.units import CACHE_LINE, gb_per_s


@dataclass(frozen=True)
class NumaModel:
    """Remote-access penalties for a dual-socket machine.

    Defaults approximate a Broadwell-EP pair: local DRAM access ~180
    cycles, remote ~1.55x that; QPI at 32 GB/s (§3: 8 GT/s).
    """

    local_penalty_cycles: float = 180.0
    remote_penalty_multiplier: float = 1.55
    #: Fraction of a workload's data that is interleaved across sockets
    #: (shared buffer pool and engine structures).
    interleave_fraction: float = 0.5
    qpi_bandwidth: float = gb_per_s(32.0)

    def __post_init__(self):
        if self.local_penalty_cycles <= 0:
            raise ConfigurationError("penalty must be positive")
        if self.remote_penalty_multiplier < 1.0:
            raise ConfigurationError("remote accesses are not faster than local")
        if not 0.0 <= self.interleave_fraction <= 1.0:
            raise ConfigurationError("interleave fraction in [0, 1]")

    def remote_access_fraction(self, shape: AllocationShape) -> float:
        """Fraction of misses served by the remote socket.

        Single-socket allocations access everything locally.  Dual-socket
        allocations remotely access half of the interleaved share
        (each socket holds half the interleaved pages).
        """
        if shape.sockets_used <= 1:
            return 0.0
        return self.interleave_fraction / 2.0

    def effective_miss_penalty(self, shape: AllocationShape) -> float:
        """Blended DRAM penalty in cycles for an allocation shape."""
        remote = self.remote_access_fraction(shape)
        return self.local_penalty_cycles * (
            1.0 + remote * (self.remote_penalty_multiplier - 1.0)
        )

    def qpi_demand_bytes_per_s(
        self, misses_per_second: float, shape: AllocationShape
    ) -> float:
        """Cross-socket traffic implied by an LLC miss rate."""
        if misses_per_second < 0:
            raise ConfigurationError("negative miss rate")
        return (
            misses_per_second
            * self.remote_access_fraction(shape)
            * CACHE_LINE
        )

    def qpi_throttle_factor(
        self, misses_per_second: float, shape: AllocationShape
    ) -> float:
        """Scale factor (<=1) when QPI traffic would exceed the link."""
        demand = self.qpi_demand_bytes_per_s(misses_per_second, shape)
        if demand <= self.qpi_bandwidth or demand == 0:
            return 1.0
        return self.qpi_bandwidth / demand
