"""Adaptive sweeps: planning, provenance, the no-cache invariant, and
journal resume."""

import pytest

from repro.core.journal import SweepJournal
from repro.core.measurement import SOURCE_PREDICTED, SOURCE_SIMULATED
from repro.core.resultcache import ResultCache
from repro.errors import ConfigurationError
from repro.surrogate.corpus import TARGET_NAMES
from repro.surrogate.model import Prediction
from repro.surrogate.planner import (
    plan_adaptive_sweep,
    predicted_measurement,
    run_adaptive_sweep,
)
from tests.surrogate.conftest import grid_config


def target_grid():
    return [grid_config(cores=c, llc_mb=l)
            for c in (2, 8) for l in (4, 12, 20, 36)]


class TestPlanning:
    def test_partition_and_budget(self, model):
        grid = target_grid()
        plan, predictions = plan_adaptive_sweep(grid, model)
        assert sorted(plan.simulate + plan.predict) == list(range(len(grid)))
        assert len(plan.simulate) <= plan.budget
        assert len(predictions) == len(grid)

    def test_anchors_always_simulated(self, model):
        plan, _ = plan_adaptive_sweep(target_grid(), model)
        assert 0 in plan.simulate
        assert len(target_grid()) - 1 in plan.simulate
        assert plan.reasons[0] == "anchor"

    def test_plan_is_deterministic(self, model):
        first, _ = plan_adaptive_sweep(target_grid(), model)
        second, _ = plan_adaptive_sweep(target_grid(), model)
        assert first == second

    def test_budget_fraction_validated(self, model):
        with pytest.raises(ConfigurationError):
            plan_adaptive_sweep(target_grid(), model, budget_fraction=0.0)

    def test_empty_grid(self, model):
        plan, predictions = plan_adaptive_sweep([], model)
        assert plan.simulate == plan.predict == ()
        assert predictions == []


class TestPredictedMeasurement:
    def test_derived_observables_reproduce_targets(self):
        config = grid_config()
        targets = {"primary_metric": 123.0, "mpki_model": 7.5,
                   "ssd_read_mb": 40.0, "ssd_write_mb": 4.0,
                   "dram_read_mb": 900.0, "dram_write_mb": 90.0}
        assert set(targets) == set(TARGET_NAMES)
        measurement = predicted_measurement(
            config, Prediction(targets=targets, uncertainty=0.2))
        assert measurement.source == SOURCE_PREDICTED
        assert measurement.is_predicted
        assert measurement.predicted_uncertainty == 0.2
        assert measurement.primary_metric == 123.0
        assert measurement.mpki == pytest.approx(7.5)
        assert measurement.ssd_read_mb == pytest.approx(40.0)
        assert measurement.dram_write_mb == pytest.approx(90.0)


class TestAdaptiveSweep:
    def test_dense_results_with_provenance(self, model, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        result = run_adaptive_sweep(target_grid(), model, cache=cache)
        assert len(result.measurements) == len(target_grid())
        for index, measurement in enumerate(result.measurements):
            expected = (SOURCE_PREDICTED if index in result.plan.predict
                        else SOURCE_SIMULATED)
            assert measurement.source == expected

    def test_predicted_points_never_cached(self, model, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        grid = target_grid()
        result = run_adaptive_sweep(grid, model, cache=cache)
        for index in result.plan.predict:
            assert cache.get(grid[index]) is None
        for index in result.plan.simulate:
            assert cache.get(grid[index]) is not None

    def test_journal_records_predicted_provenance(self, model, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        result = run_adaptive_sweep(target_grid(), model, cache=cache)
        journal = SweepJournal(cache.directory / "sweep-journal.jsonl")
        notes = journal.events("surrogate")
        assert {n["index"] for n in notes} == set(result.plan.predict)
        for note in notes:
            assert note["source"] == SOURCE_PREDICTED
            assert note["uncertainty"] > 0
            assert note["digest"]

    def test_resume_serves_simulated_from_cache_and_renotes(self, model,
                                                            tmp_path):
        """An interrupted-and-rerun adaptive sweep must reproduce the
        first run exactly: simulated points from the cache, predictions
        re-derived, and the journal's surrogate notes replay-matched."""
        cache = ResultCache(tmp_path / "cache")
        grid = target_grid()
        first = run_adaptive_sweep(grid, model, cache=cache)
        second = run_adaptive_sweep(grid, model, cache=cache)
        assert second.cache_hits == len(second.plan.simulate)
        assert second.plan == first.plan
        for a, b in zip(first.measurements, second.measurements):
            assert a.primary_metric == b.primary_metric
            assert a.source == b.source
            assert a.predicted_uncertainty == b.predicted_uncertainty
        notes = SweepJournal(
            cache.directory / "sweep-journal.jsonl").events("surrogate")
        assert len(notes) == 2 * len(first.plan.predict)
        half = len(notes) // 2
        strip = lambda n: {k: v for k, v in n.items() if k != "at"}
        assert ([strip(n) for n in notes[:half]]
                == [strip(n) for n in notes[half:]])

    def test_failed_simulated_point_raises(self, model):
        from repro.core.runner import SupervisionPolicy
        from repro.faults import WorkerCrash

        grid = target_grid()
        grid[0] = grid_config(cores=2, llc_mb=4,
                              faults=(WorkerCrash(attempts=99),))
        policy = SupervisionPolicy(retries=0, on_error="skip")
        with pytest.raises(ConfigurationError):
            run_adaptive_sweep(grid, model, policy=policy)
