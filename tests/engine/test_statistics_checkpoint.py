"""Tests for the DMV-style statistics views and the checkpoint writer."""

import pytest

from repro.core.knobs import ResourceAllocation
from repro.engine.checkpoint import CheckpointWriter
from repro.engine.engine import SqlEngine
from repro.engine.resource_governor import ResourceGovernor
from repro.engine.schemas import build_tpch
from repro.engine.statistics import (
    dm_exec_query_memory_grants,
    dm_os_buffer_summary,
    dm_os_wait_stats,
    pcm_snapshot,
)
from repro.errors import ConfigurationError
from repro.hardware.machine import Machine
from repro.hardware.storage import NvmeDevice
from repro.sim.process import Simulator, Timeout
from repro.units import MIB, mb_per_s
from repro.workloads.profiles import execution_profile
from repro.workloads.tpch import tpch_query


def make_engine(sf=10):
    machine = Machine()
    ResourceAllocation().apply_to(machine)
    return SqlEngine(
        machine, build_tpch(sf), execution_profile("tpch", sf),
        governor=ResourceGovernor(max_dop=32),
    )


class TestDmvViews:
    def test_wait_stats_rows(self):
        engine = make_engine()
        engine.locks.charge_io_latch(0.25)
        rows = {r.wait_type: r for r in dm_os_wait_stats(engine)}
        assert set(rows) == {"LOCK", "LATCH", "PAGELATCH", "PAGEIOLATCH"}
        assert rows["PAGEIOLATCH"].wait_time_ms == pytest.approx(250.0)
        assert rows["PAGEIOLATCH"].waiting_tasks_count == 1
        assert rows["PAGEIOLATCH"].avg_wait_ms == pytest.approx(250.0)
        assert rows["LOCK"].avg_wait_ms == 0.0

    def test_memory_grants_view(self):
        engine = make_engine(sf=100)
        specs = [tpch_query(6, 100), tpch_query(18, 100)]
        rows = {r.query: r for r in dm_exec_query_memory_grants(engine, specs)}
        assert not rows["Q6"].spilled
        assert rows["Q18"].spilled
        assert rows["Q18"].granted_kb < rows["Q18"].requested_kb

    def test_buffer_summary(self):
        engine = make_engine(sf=300)
        summary = dm_os_buffer_summary(engine)
        assert summary.database_gb > summary.capacity_gb
        assert 0 < summary.resident_fraction < 1

    def test_pcm_snapshot(self):
        engine = make_engine()
        counters = {r.counter for r in pcm_snapshot(engine)}
        assert "instructions_retired" in counters
        assert "ssd_read_bytes" in counters


class TestCheckpointWriter:
    def _setup(self, write_bw=mb_per_s(1200), **kwargs):
        sim = Simulator()
        device = NvmeDevice(sim, write_bw=write_bw)
        writer = CheckpointWriter(sim, device, **kwargs)
        return sim, device, writer

    def test_dirty_pages_flushed_in_background(self):
        sim, device, writer = self._setup()
        def txn():
            yield from writer.mark_dirty(100.0)
        sim.spawn(txn())
        sim.run(until=2.0)
        writer.stop()
        assert writer.dirty_bytes == 0.0
        assert writer.total_flushed_bytes == pytest.approx(100 * 8192)

    def test_small_backlog_does_not_stall(self):
        sim, device, writer = self._setup()
        finish = []
        def txn():
            yield from writer.mark_dirty(10.0)
            finish.append(sim.now)
        sim.spawn(txn())
        sim.run(until=1.0)
        writer.stop()
        assert finish == [0.0]

    def test_backlog_stalls_writers_until_drained(self):
        sim, device, writer = self._setup(
            write_bw=mb_per_s(10), backlog_limit_bytes=1 * MIB
        )
        finish = []
        def txn(i):
            yield Timeout(0.001 * i)
            yield from writer.mark_dirty(200.0)  # ~1.6 MiB each
            finish.append(sim.now)
        for i in range(3):
            sim.spawn(txn(i))
        sim.run(until=5.0)
        writer.stop()
        # The first transaction exceeded the backlog and stalled; it only
        # resumed after the writer drained below the limit.
        assert finish and finish[0] > 0.1

    def test_invalid_parameters_rejected(self):
        sim = Simulator()
        device = NvmeDevice(sim)
        with pytest.raises(ConfigurationError):
            CheckpointWriter(sim, device, flush_interval=0)
        writer = CheckpointWriter(sim, device)
        with pytest.raises(ConfigurationError):
            next(writer.mark_dirty(-1))
        writer.stop()


class TestEventLoopHygiene:
    def test_idle_engine_lets_the_loop_drain(self):
        """A freshly-built engine keeps no eternal timers: sim.run()
        without `until` must return (regression guard for the checkpoint
        writer's idle behaviour)."""
        engine = make_engine()
        sim = engine.machine.sim
        def worker():
            yield from engine.sqlos.run_on_cpu(1e8, dop=4)
        sim.spawn(worker())
        sim.run()          # would hang forever if a periodic timer stayed armed
        assert sim.now < 60.0

    def test_checkpoint_still_flushes_after_idle_period(self):
        from repro.sim.process import Timeout
        engine = make_engine()
        sim = engine.machine.sim
        def txn():
            yield Timeout(5.0)  # long idle stretch first
            yield from engine.checkpoint.mark_dirty(50.0)
        sim.spawn(txn())
        sim.run(until=10.0)
        assert engine.checkpoint.total_flushed_bytes > 0
        assert engine.checkpoint.dirty_bytes == 0.0
