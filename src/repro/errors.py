"""Exception hierarchy for the repro library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """An invalid machine, engine, or experiment configuration."""


class AllocationError(ConfigurationError):
    """A resource allocation request that the hardware cannot satisfy.

    Examples: asking for more logical cores than the machine has, a CAT
    bitmask that is not contiguous, or a zero-way LLC allocation.
    """


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class PlanningError(ReproError):
    """The optimizer could not produce a plan for a query specification."""


class WorkloadError(ReproError):
    """A workload was asked to run against an incompatible configuration."""


class GrantTimeoutError(ReproError):
    """A query-memory grant request waited past the governor's timeout.

    Raised by :class:`~repro.engine.semaphore.ResourceSemaphore` when
    ``on_grant_timeout="fail"`` and a request either exceeds
    ``grant_timeout_s`` in the FIFO queue or arrives at a full queue
    (``max_queue_depth``).  Carries the query name, the wait time, and
    the requested bytes so a sweep failure names its victim.
    """

    def __init__(self, message: str, query: str = "",
                 waited: float = 0.0, required_bytes: float = 0.0):
        super().__init__(message)
        self.query = query
        self.waited = waited
        self.required_bytes = required_bytes


class FaultInjectionError(ReproError):
    """A fault-injection spec is invalid or a fault fired incorrectly."""


class TransientIOError(FaultInjectionError):
    """An injected, retryable storage error (transient write failure)."""


class SimulatedWorkerCrash(FaultInjectionError):
    """A harness fault asked the (in-process) worker to die.

    Pool workers honour :class:`~repro.faults.spec.WorkerCrash` with a
    hard ``os._exit`` so the supervisor sees a real
    ``BrokenProcessPool``; the in-process runner raises this instead so
    the same spec stays testable without killing the interpreter.
    """


class RecoveryError(ReproError):
    """Crash recovery violated a durability invariant.

    Raised when WAL replay after an injected crash would lose a
    committed transaction, apply a record twice, or observe a
    non-monotone LSN sequence.
    """


class ChaosInvariantError(ReproError):
    """A chaos episode violated a fleet resilience invariant.

    Raised by :meth:`repro.faults.chaos.ChaosReport.raise_on_violation`
    when a schedule lost an acknowledged durable write, exceeded the
    bounded unavailability window, worsened p99 under hedging, or failed
    the empty-schedule determinism check.
    """


class ExperimentTimeout(ReproError):
    """A supervised experiment exceeded its wall-clock timeout."""


class SweepExecutionError(ReproError):
    """A grid point of a sweep failed; carries which config it was.

    ``index`` is the position in the submitted config list and
    ``item`` a short description (config digest or repr) so a worker
    exception bubbling out of a thousand-point sweep identifies its
    grid point.  The original exception is chained as ``__cause__``.
    """

    def __init__(self, message: str, index: int = -1, item: str = ""):
        super().__init__(message)
        self.index = index
        self.item = item
