"""Crash/recovery invariants: committed transactions survive, replay is
idempotent — property-style across many seeds (ISSUE: fault tentpole).

Each case drives a live group-commit WAL with randomized commit traffic
(sizes, concurrency, arrival times drawn from a seeded RNG), optionally
under injected transient write errors and a write-bandwidth cap, then
"crashes" at a random instant by freezing a
:class:`~repro.faults.recovery.WalImage` and running recovery.  The
invariants checked for every seed:

* **no lost commit** — every transaction whose ``commit()`` generator
  returned before the crash is recovered (``verify_committed_durable``);
* **no phantom commit** — nothing that was still in flight at the crash
  shows up in the recovered state;
* **idempotent replay** — recovering the same image into an
  already-recovered state replays nothing and double-applies nothing.
"""

import random

import pytest

from repro.engine.checkpoint import CheckpointWriter
from repro.engine.wal import WriteAheadLog
from repro.errors import RecoveryError
from repro.faults.recovery import (
    RecoveredState,
    WalImage,
    recover,
    verify_committed_durable,
)
from repro.hardware.storage import NvmeDevice
from repro.sim.process import Simulator, Timeout
from repro.units import KIB, mb_per_s

SEEDS = range(24)


class Harness:
    """A WAL under randomized commit traffic with client-side ground truth."""

    def __init__(self, seed: int, write_bw=mb_per_s(50), error_rate: float = 0.0):
        self.rng = random.Random(seed)
        self.sim = Simulator()
        self.device = NvmeDevice(self.sim, write_bw=write_bw)
        self.wal = WriteAheadLog(self.sim, self.device,
                                 retry_backoff=0.0005, max_retry_backoff=0.01)
        self.acknowledged = []   # txn ids whose commit() returned
        if error_rate > 0.0:
            self.device.set_write_error_predicate(
                lambda: self.rng.random() < error_rate
            )

    def spawn_traffic(self, transactions: int = 40):
        for txn_id in range(transactions):
            self.sim.spawn(self._client(txn_id), name=f"txn-{txn_id}")

    def _client(self, txn_id: int):
        yield Timeout(self.rng.uniform(0.0, 0.05))
        nbytes = self.rng.uniform(0.5, 64) * KIB
        yield from self.wal.commit(nbytes, txn_id=txn_id)
        self.acknowledged.append(txn_id)

    def crash_at(self, instant: float) -> WalImage:
        self.sim.run(until=instant)
        return WalImage.capture(self.wal)


@pytest.mark.parametrize("seed", SEEDS)
def test_no_acknowledged_commit_lost(seed):
    h = Harness(seed)
    h.spawn_traffic()
    image = h.crash_at(h.rng.uniform(0.005, 0.06))
    result = recover(image)
    verify_committed_durable(h.acknowledged, result)
    # And nothing unacknowledged was resurrected.
    assert set(result.recovered_txn_ids) <= set(h.acknowledged)


@pytest.mark.parametrize("seed", SEEDS)
def test_replay_is_idempotent(seed):
    h = Harness(seed)
    h.spawn_traffic()
    image = h.crash_at(h.rng.uniform(0.005, 0.06))
    state = RecoveredState()
    first = recover(image, state)
    # Recover the *same* image into the already-recovered state: every
    # record is skipped by its LSN check, nothing double-applies.
    second = recover(image, state)
    assert second.replayed == 0
    assert state.double_applied == ()
    assert second.recovered_lsns == first.recovered_lsns


@pytest.mark.parametrize("seed", SEEDS)
def test_recovery_under_write_cap_and_io_errors(seed):
    """§6's write cap plus transient flush errors: commits are slower and
    batches re-flush, but the durability contract is unchanged."""
    h = Harness(seed, write_bw=mb_per_s(2), error_rate=0.3)
    h.spawn_traffic(transactions=25)
    image = h.crash_at(h.rng.uniform(0.01, 0.3))
    result = recover(image)
    verify_committed_durable(h.acknowledged, result)
    assert set(result.recovered_txn_ids) == set(h.acknowledged)


@pytest.mark.parametrize("seed", range(8))
def test_recovery_with_checkpoint_tail_replay(seed):
    """With a running checkpoint writer the image carries a checkpoint
    LSN; recovery loads the covered prefix from the "data files" and
    replays only the durable tail above it."""
    h = Harness(seed)
    checkpoint = CheckpointWriter(h.sim, h.device, flush_interval=0.005,
                                  wal=h.wal)

    def dirtier():
        for _ in range(20):
            yield Timeout(0.002)
            yield from checkpoint.mark_dirty(4.0)

    h.sim.spawn(dirtier(), name="dirtier")
    h.spawn_traffic()
    h.sim.run(until=0.12)
    image = WalImage.capture(h.wal, checkpoint_lsn=checkpoint.checkpoint_lsn)
    result = recover(image)
    verify_committed_durable(h.acknowledged, result)
    assert result.replayed + result.from_checkpoint == len(image.durable_records)
    if checkpoint.checkpoint_lsn > 0:
        assert result.from_checkpoint > 0


def test_in_flight_records_are_reported_lost():
    h = Harness(seed=1)
    h.spawn_traffic()
    # Crash early enough that some commits are pending but not durable.
    h.sim.run(until=0.0005)
    image = WalImage.capture(h.wal)
    assert image.lost_records  # traffic arrived before the first flush
    result = recover(image)
    assert result.lost_uncommitted == len(image.lost_records)


def test_checkpoint_ahead_of_durable_rejected():
    h = Harness(seed=2)
    with pytest.raises(RecoveryError):
        WalImage.capture(h.wal, checkpoint_lsn=5)


def test_tampered_image_detected():
    """A forged image that drops a durable record must not recover silently."""
    h = Harness(seed=3)
    h.spawn_traffic()
    h.sim.run(until=0.05)
    image = WalImage.capture(h.wal)
    assert len(image.durable_records) >= 2
    torn = WalImage(
        durable_records=image.durable_records[:-1] + (image.durable_records[-1],),
        durable_lsn=image.durable_lsn + 1,   # claims one more than exists
        checkpoint_lsn=0,
    )
    with pytest.raises(RecoveryError):
        recover(torn)
