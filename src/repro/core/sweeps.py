"""Sweep builders: the experiment grids behind each figure.

A sweep is a list of :class:`~repro.core.experiment.ExperimentConfig`
sharing a workload and varying exactly one resource axis, mirroring the
paper's methodology (§4-§8).  ``run_sweep`` executes them — optionally in
parallel and through the on-disk result cache (see
:mod:`repro.core.runner`) — and returns the measurements in order.
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.backends import DEFAULT_BACKEND
from repro.core.experiment import ExperimentConfig
from repro.core.knobs import (
    CORE_SWEEP,
    GRANT_SWEEP_PERCENT,
    LLC_SWEEP_MB,
    MAXDOP_SWEEP,
    ResourceAllocation,
)
from repro.core.measurement import Measurement

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (runner uses sweeps' types)
    from repro.core.resultcache import ResultCache
    from repro.core.runner import SupervisionPolicy, SweepReport

#: All (workload, scale factor) pairs of the study (Table 2).
STUDY_MATRIX: Tuple[Tuple[str, int], ...] = (
    ("tpch", 10), ("tpch", 30), ("tpch", 100), ("tpch", 300),
    ("asdb", 2000), ("asdb", 6000),
    ("tpce", 5000), ("tpce", 15000),
    ("htap", 5000), ("htap", 15000),
)

#: Simulated seconds per run, scaled so slow configurations still
#: complete enough queries for stable averages.
DEFAULT_DURATIONS: Dict[Tuple[str, int], float] = {
    ("tpch", 10): 200.0,
    ("tpch", 30): 500.0,
    ("tpch", 100): 1500.0,
    ("tpch", 300): 4000.0,
    ("asdb", 2000): 15.0,
    ("asdb", 6000): 15.0,
    ("tpce", 5000): 20.0,
    ("tpce", 15000): 20.0,
    ("htap", 5000): 30.0,
    ("htap", 15000): 30.0,
}


def duration_for(workload: str, scale_factor: int, scale: float = 1.0) -> float:
    return DEFAULT_DURATIONS.get((workload, scale_factor), 30.0) * scale


def on_backend(
    configs: Sequence[ExperimentConfig],
    backend: str = DEFAULT_BACKEND,
    router: Optional[str] = None,
    router_backends: Tuple[str, ...] = (),
) -> List[ExperimentConfig]:
    """Re-target a sweep at an engine personality or a routed fleet.

    Every figure/sensitivity grid sweeps across backends by composition:
    ``on_backend(core_sweep(...), backend="columnstore-dss")`` measures
    the same axis on a different personality, and
    ``on_backend(cfgs, router="rule-based")`` runs the routed fleet.
    The backend fields are part of the result-cache key, so re-targeted
    grids never collide with the originals.
    """
    return [
        replace(
            config,
            backend=backend,
            router=router,
            router_backends=tuple(router_backends),
        )
        for config in configs
    ]


def core_sweep(
    workload: str,
    scale_factor: int,
    cores: Sequence[int] = CORE_SWEEP,
    llc_mb: int = 40,
    duration_scale: float = 1.0,
    backend: str = DEFAULT_BACKEND,
    router: Optional[str] = None,
    router_backends: Tuple[str, ...] = (),
) -> List[ExperimentConfig]:
    """Fig 2 (a,d,g,j): performance vs number of logical cores, full LLC.

    Follows §4: MAXDOP is limited to the allocated core count.  Small
    core counts get proportionally longer measurement windows so that
    slow configurations still complete enough work for stable averages
    (the paper ran every point for a full hour).
    """
    def window(n: int) -> float:
        # Only the low-QPS analytical workload needs longer windows at
        # small core counts; OLTP completes thousands of transactions in
        # the base window regardless of the allocation.
        base_duration = duration_for(workload, scale_factor, duration_scale)
        if workload == "tpch":
            return base_duration * max(1.0, (32.0 / n) ** 0.75)
        return base_duration

    return [
        ExperimentConfig(
            workload=workload,
            scale_factor=scale_factor,
            allocation=ResourceAllocation(logical_cores=n, llc_mb=llc_mb),
            duration=window(n),
            backend=backend,
            router=router,
            router_backends=tuple(router_backends),
        )
        for n in cores
    ]


def llc_sweep(
    workload: str,
    scale_factor: int,
    sizes_mb: Sequence[int] = LLC_SWEEP_MB,
    cores: int = 32,
    duration_scale: float = 1.0,
    backend: str = DEFAULT_BACKEND,
    router: Optional[str] = None,
    router_backends: Tuple[str, ...] = (),
) -> List[ExperimentConfig]:
    """Fig 2 (b,e,h,k and c,f,i,l): performance and MPKI vs LLC size.

    Follows §5: 32 cores allocated, CAT allocation grown as supersets.
    """
    return [
        ExperimentConfig(
            workload=workload,
            scale_factor=scale_factor,
            allocation=ResourceAllocation(logical_cores=cores, llc_mb=mb),
            duration=duration_for(workload, scale_factor, duration_scale),
            backend=backend,
            router=router,
            router_backends=tuple(router_backends),
        )
        for mb in sizes_mb
    ]


def read_bandwidth_sweep(
    limits_bytes_per_s: Sequence[Optional[float]],
    workload: str = "tpch",
    scale_factor: int = 300,
    duration_scale: float = 1.0,
    backend: str = DEFAULT_BACKEND,
    router: Optional[str] = None,
    router_backends: Tuple[str, ...] = (),
) -> List[ExperimentConfig]:
    """Fig 5: QPS vs SSD read-bandwidth limit (full cores + LLC).

    Bandwidth-capped runs are slow, so the measurement window is doubled
    relative to the workload default to keep completion counts stable.
    """
    return [
        ExperimentConfig(
            workload=workload,
            scale_factor=scale_factor,
            allocation=ResourceAllocation(read_bw_limit=limit),
            duration=2.0 * duration_for(workload, scale_factor, duration_scale),
            backend=backend,
            router=router,
            router_backends=tuple(router_backends),
        )
        for limit in limits_bytes_per_s
    ]


def write_bandwidth_sweep(
    limits_bytes_per_s: Sequence[Optional[float]],
    workload: str = "asdb",
    scale_factor: int = 2000,
    duration_scale: float = 1.0,
    backend: str = DEFAULT_BACKEND,
    router: Optional[str] = None,
    router_backends: Tuple[str, ...] = (),
) -> List[ExperimentConfig]:
    """§6: TPS vs SSD write-bandwidth limit for transactional workloads."""
    return [
        ExperimentConfig(
            workload=workload,
            scale_factor=scale_factor,
            allocation=ResourceAllocation(write_bw_limit=limit),
            duration=duration_for(workload, scale_factor, duration_scale),
            backend=backend,
            router=router,
            router_backends=tuple(router_backends),
        )
        for limit in limits_bytes_per_s
    ]


def maxdop_sweep(
    scale_factor: int,
    maxdops: Sequence[int] = MAXDOP_SWEEP,
    duration_scale: float = 1.0,
    backend: str = DEFAULT_BACKEND,
    router: Optional[str] = None,
    router_backends: Tuple[str, ...] = (),
) -> List[ExperimentConfig]:
    """Fig 6: single-stream TPC-H with MAXDOP (and cores) limited (§7)."""
    return [
        ExperimentConfig(
            workload="tpch",
            scale_factor=scale_factor,
            allocation=ResourceAllocation(logical_cores=dop, max_dop=dop),
            duration=duration_for("tpch", scale_factor, duration_scale),
            workload_kwargs={"streams": 1},
            backend=backend,
            router=router,
            router_backends=tuple(router_backends),
        )
        for dop in maxdops
    ]


def grant_sweep(
    scale_factor: int = 100,
    percents: Sequence[float] = GRANT_SWEEP_PERCENT,
    duration_scale: float = 1.0,
    backend: str = DEFAULT_BACKEND,
    router: Optional[str] = None,
    router_backends: Tuple[str, ...] = (),
) -> List[ExperimentConfig]:
    """Fig 8: single-stream TPC-H SF=100 with query memory grant limits."""
    return [
        ExperimentConfig(
            workload="tpch",
            scale_factor=scale_factor,
            allocation=ResourceAllocation(grant_percent=pct),
            duration=duration_for("tpch", scale_factor, duration_scale),
            workload_kwargs={"streams": 1},
            backend=backend,
            router=router,
            router_backends=tuple(router_backends),
        )
        for pct in percents
    ]


def run_sweep(
    configs: Sequence[ExperimentConfig],
    jobs: int = 1,
    cache: Optional["ResultCache"] = None,
    policy: Optional["SupervisionPolicy"] = None,
    chunk: Optional[int] = None,
) -> List[Measurement]:
    """Execute a sweep and return measurements in input order.

    ``jobs`` controls process-pool fan-out (1 = in-process, the
    historical serial path); parallel sweeps run on a persistent warm
    worker pool that is reused across sweeps within the process.
    ``cache`` is an optional
    :class:`~repro.core.resultcache.ResultCache` that short-circuits
    previously-measured grid points.  Parallel execution is exact, not
    approximate: every config carries its own seed and machine, so
    ``jobs=4`` returns bit-identical measurements to ``jobs=1``.

    ``chunk`` sets how many grid points ride one worker round-trip
    (None = about four chunks per job); it changes dispatch granularity
    only, never results.  ``policy`` tunes supervision (timeouts, crash
    retries); this function keeps the dense fail-fast contract, so a
    policy hole raises :class:`~repro.errors.SweepExecutionError` — use
    :func:`run_sweep_report` to consume partial results.
    """
    from repro.core.runner import run_configs

    return run_configs(configs, jobs=jobs, cache=cache, policy=policy,
                       chunk=chunk)


def run_sweep_report(
    configs: Sequence[ExperimentConfig],
    jobs: int = 1,
    cache: Optional["ResultCache"] = None,
    policy: Optional["SupervisionPolicy"] = None,
    chunk: Optional[int] = None,
) -> "SweepReport":
    """Execute a sweep under supervision and keep partial results.

    Unlike :func:`run_sweep` this never raises for individual grid-point
    failures when the policy says ``"skip"``/``"collect"`` — the
    returned :class:`~repro.core.runner.SweepReport` holds successes (in
    input order, ``None`` holes) plus structured failure records, and a
    re-invocation resumes from the cache/journal.
    """
    from repro.core.runner import run_supervised

    return run_supervised(configs, jobs=jobs, cache=cache, policy=policy,
                          chunk=chunk)
