"""Query plan trees: operators, properties, and text rendering."""

from repro.engine.plan.operators import JoinAlgorithm, OpKind, PlanNode
from repro.engine.plan.render import render_plan

__all__ = ["JoinAlgorithm", "OpKind", "PlanNode", "render_plan"]
