"""Cross-backend comparison grids (the ``repro route`` command).

The consolidation question the paper's characterization raises — which
engine personality should own which workload, and does a resource-aware
router beat any fixed choice? — is answered by re-running the paper's
own grids once per personality plus once through the routed fleet:

* :func:`compare_fig2` re-measures the Fig 2 core-count axis on every
  backend and on the router, producing the per-backend sensitivity
  curves side by side;
* :func:`compare_admission` re-runs the §10 admission/overload grid the
  same way and checks the *router floor*: on per-stream throughput the
  routed fleet must never do worse than the worst single backend at the
  same grid point (a router that loses to its own worst member is
  misrouting).

Both helpers drive the ordinary experiment harness, so results are
deterministic, cacheable, and journaled like any other sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.backends.base import DEFAULT_ROUTER_BACKENDS, make_backend
from repro.backends.router import POLICY_RULE_BASED
from repro.core.admission import AdmissionPolicySweep, sweep_admission_policies
from repro.core.measurement import Measurement
from repro.core.sweeps import core_sweep, on_backend
from repro.errors import ConfigurationError

#: Core counts used for the cross-backend Fig 2 axis.  A routed fleet
#: partitions its allocation one slice per backend (plus 2 MB of CAT
#: each), so the axis starts where every member still gets a core.
ROUTE_CORE_AXIS = (4, 8, 16, 32)


def _router_label(policy: str) -> str:
    return f"router:{policy}"


@dataclass(frozen=True)
class BackendFigure:
    """One paper axis measured per backend and through the router.

    ``series`` maps a label — a backend name or ``router:<policy>`` —
    to the measurements along ``xs``, in label configuration order.
    """

    workload: str
    scale_factor: int
    axis: str
    xs: Tuple[int, ...]
    labels: Tuple[str, ...]
    series: Dict[str, Tuple[Measurement, ...]] = field(default_factory=dict)

    @property
    def router_labels(self) -> Tuple[str, ...]:
        return tuple(l for l in self.labels if l.startswith("router:"))

    def routing_summary(self) -> Dict[str, Dict[str, int]]:
        """Total router placements per routed label, summed over the axis."""
        out: Dict[str, Dict[str, int]] = {}
        for label in self.router_labels:
            totals: Dict[str, int] = {}
            for m in self.series[label]:
                for name, count in m.router_decisions.items():
                    totals[name] = totals.get(name, 0) + count
            out[label] = totals
        return out


def compare_fig2(
    workload: str = "tpch",
    scale_factor: int = 10,
    cores: Sequence[int] = ROUTE_CORE_AXIS,
    llc_mb: int = 40,
    duration_scale: float = 1.0,
    backends: Sequence[str] = DEFAULT_ROUTER_BACKENDS,
    policy: str = POLICY_RULE_BASED,
    jobs: int = 1,
    cache=None,
    supervision=None,
) -> BackendFigure:
    """The Fig 2 core-count axis, once per backend plus the routed fleet.

    All grid points run through one supervised sweep (shared journal,
    shared cache, full fan-out), then slice back into per-label series.
    """
    from repro.core.runner import run_supervised

    names = list(backends)
    if len(set(names)) != len(names):
        raise ConfigurationError(f"duplicate backends: {names}")
    for name in names:
        make_backend(name)  # fail fast before running anything
    base = core_sweep(workload, scale_factor, cores=cores, llc_mb=llc_mb,
                      duration_scale=duration_scale)
    labels = tuple(names) + (_router_label(policy),)
    configs = []
    for name in names:
        configs.extend(on_backend(base, backend=name))
    configs.extend(
        on_backend(base, router=policy, router_backends=tuple(names))
    )
    report = run_supervised(configs, jobs=jobs, cache=cache, policy=supervision)
    measurements = report.measurements
    if any(m is None for m in measurements):
        raise ConfigurationError(
            "cross-backend figure has holes; re-run with supervision that "
            "raises, or inspect the journal"
        )
    width = len(base)
    series = {
        label: tuple(measurements[i * width:(i + 1) * width])
        for i, label in enumerate(labels)
    }
    return BackendFigure(
        workload=workload,
        scale_factor=scale_factor,
        axis="cores",
        xs=tuple(int(c) for c in cores),
        labels=labels,
        series=series,
    )


@dataclass(frozen=True)
class AdmissionBackendComparison:
    """The §10 admission grid per backend and through the routed fleet."""

    labels: Tuple[str, ...]
    sweeps: Dict[str, AdmissionPolicySweep] = field(default_factory=dict)

    @property
    def router_labels(self) -> Tuple[str, ...]:
        return tuple(l for l in self.labels if l.startswith("router:"))

    @property
    def backend_labels(self) -> Tuple[str, ...]:
        return tuple(l for l in self.labels if not l.startswith("router:"))

    def floor_violations(self) -> List[str]:
        """Grid points where a routed fleet undercuts the *worst* single
        backend on per-stream throughput (the router-floor invariant)."""
        violations: List[str] = []
        singles = [self.sweeps[l] for l in self.backend_labels]
        for label in self.router_labels:
            routed = self.sweeps[label]
            for point in routed.points:
                floor = min(
                    p.per_stream_qps
                    for sweep in singles
                    for p in sweep.points
                    if p.policy == point.policy
                    and p.oversubscription == point.oversubscription
                )
                if point.per_stream_qps < floor * (1.0 - 1e-9):
                    violations.append(
                        f"{label} {point.policy}@{point.oversubscription}x: "
                        f"{point.per_stream_qps:.5f} < floor {floor:.5f}"
                    )
        return violations

    @property
    def router_floor_ok(self) -> bool:
        return not self.floor_violations()


def compare_admission(
    scale_factor: int = 10,
    oversubscription: Sequence[int] = (1, 4),
    policies: Sequence[str] = ("immediate", "queued"),
    base_streams: int = 4,
    duration_scale: float = 0.1,
    seed: int = 0,
    grant_timeout_s: float = 30.0,
    backends: Sequence[str] = DEFAULT_ROUTER_BACKENDS,
    policy: str = POLICY_RULE_BASED,
) -> AdmissionBackendComparison:
    """The admission/overload grid on every backend plus the router.

    Defaults are sized for a quick check (SF=10, two oversubscription
    levels, two admission policies); the paper-scale grid is one
    ``scale_factor=100, duration_scale=0.4`` call away.
    """
    names = list(backends)
    if len(set(names)) != len(names):
        raise ConfigurationError(f"duplicate backends: {names}")
    for name in names:
        make_backend(name)
    labels = tuple(names) + (_router_label(policy),)
    sweeps: Dict[str, AdmissionPolicySweep] = {}
    for name in names:
        sweeps[name] = sweep_admission_policies(
            scale_factor=scale_factor,
            oversubscription=oversubscription,
            policies=policies,
            base_streams=base_streams,
            duration_scale=duration_scale,
            seed=seed,
            grant_timeout_s=grant_timeout_s,
            backend=name,
        )
    sweeps[_router_label(policy)] = sweep_admission_policies(
        scale_factor=scale_factor,
        oversubscription=oversubscription,
        policies=policies,
        base_streams=base_streams,
        duration_scale=duration_scale,
        seed=seed,
        grant_timeout_s=grant_timeout_s,
        router=policy,
        router_backends=tuple(names),
    )
    return AdmissionBackendComparison(labels=labels, sweeps=sweeps)
