"""Query admission policies (§10's third research question).

    "In a concurrent stream, is it better to immediately start executing
     queries even with limited resources, or delay them till others
     finish and free up resources?"

Two policies are compared on the simulated testbed:

* **immediate** — run all arriving streams concurrently; each query gets
  a share of the machine (the §3 default: 3 concurrent TPC-H streams);
* **serialized** — admit one stream at a time with the full machine
  (higher per-query DOP and grant, no sharing).

Both are driven through the normal experiment harness, so plan
adaptation, grants, and the buffer-pool coupling all participate —
exactly the interactions the paper argues make the question non-trivial
(runtime DOP and memory are expensive to change once a query starts).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.experiment import ExperimentConfig, Experiment
from repro.core.knobs import ResourceAllocation
from repro.core.sweeps import duration_for


@dataclass(frozen=True)
class AdmissionComparison:
    """Throughput of the two policies on the same workload."""

    workload: str
    scale_factor: int
    streams: int
    immediate_qps: float
    serialized_qps: float

    @property
    def immediate_wins(self) -> bool:
        return self.immediate_qps >= self.serialized_qps

    @property
    def advantage(self) -> float:
        """Relative QPS advantage of the better policy."""
        lo = min(self.immediate_qps, self.serialized_qps)
        hi = max(self.immediate_qps, self.serialized_qps)
        if lo <= 0:
            return float("inf")
        return hi / lo - 1.0


def compare_admission_policies(
    scale_factor: int,
    streams: int = 3,
    duration_scale: float = 1.0,
    seed: int = 0,
) -> AdmissionComparison:
    """Run both policies for TPC-H at one scale factor.

    The serialized policy runs a single stream for the same total
    simulated time; since a lone stream holds the whole machine, its QPS
    is directly comparable (queries completed per second of wall time).
    """
    duration = duration_for("tpch", scale_factor, duration_scale)
    immediate = Experiment(
        ExperimentConfig(
            workload="tpch", scale_factor=scale_factor, duration=duration,
            seed=seed, workload_kwargs={"streams": streams},
        )
    ).run()
    serialized = Experiment(
        ExperimentConfig(
            workload="tpch", scale_factor=scale_factor, duration=duration,
            seed=seed, workload_kwargs={"streams": 1},
        )
    ).run()
    return AdmissionComparison(
        workload="tpch",
        scale_factor=scale_factor,
        streams=streams,
        immediate_qps=immediate.primary_metric,
        serialized_qps=serialized.primary_metric,
    )
