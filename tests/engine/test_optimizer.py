"""Tests for query specs, the cost model, and the optimizer."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine.bufferpool import BufferPool
from repro.engine.catalog import Database, Table
from repro.engine.optimizer.cost_model import CostModel
from repro.engine.optimizer.optimizer import (
    GRANT_DOP_BASE,
    Optimizer,
    PlanningContext,
    grant_dop_factor,
)
from repro.engine.optimizer.queryspec import JoinEdge, JoinKind, QuerySpec, TableRef
from repro.engine.plan.operators import OpKind
from repro.engine.types import StorageFormat, WorkloadClass
from repro.errors import PlanningError
from repro.units import GIB


def star_database(fact_rows=1_000_000, dim_rows=1_000):
    db = Database(name="star", scale_factor=1, workload_class=WorkloadClass.DSS)
    db.add_table(Table(name="fact", rows=fact_rows, row_bytes=100.0,
                       storage=StorageFormat.COLUMN, hot_fraction=1.0))
    db.add_table(Table(name="dim", rows=dim_rows, row_bytes=100.0,
                       storage=StorageFormat.COLUMN, hot_fraction=1.0))
    db.add_table(Table(name="dim2", rows=dim_rows // 10, row_bytes=80.0,
                       storage=StorageFormat.COLUMN, hot_fraction=1.0))
    return db


def make_optimizer(db=None, max_dop=32, threshold=1e4):
    db = db or star_database()
    pool = BufferPool(db, server_memory_bytes=64 * GIB)
    ctx = PlanningContext(database=db, buffer_pool=pool, cost_model=CostModel(),
                          max_dop=max_dop, parallelism_threshold=threshold)
    return Optimizer(ctx)


def star_query(fact_sel=1.0, dim_sel=0.1, group_rows=10.0, sort_rows=0.0):
    return QuerySpec(
        name="star",
        tables=(
            TableRef("fact", "f", selectivity=fact_sel),
            TableRef("dim", "d", selectivity=dim_sel),
        ),
        joins=(JoinEdge("f", "d", key_side="d"),),
        group_rows=group_rows,
        sort_rows=sort_rows,
    )


class TestQuerySpec:
    def test_duplicate_alias_rejected(self):
        with pytest.raises(PlanningError):
            QuerySpec(name="q", tables=(TableRef("fact", "f"), TableRef("dim", "f")))

    def test_disconnected_graph_rejected(self):
        with pytest.raises(PlanningError):
            QuerySpec(
                name="q",
                tables=(TableRef("fact", "f"), TableRef("dim", "d")),
                joins=(),
            )

    def test_edge_with_unknown_alias_rejected(self):
        with pytest.raises(PlanningError):
            QuerySpec(
                name="q",
                tables=(TableRef("fact", "f"), TableRef("dim", "d")),
                joins=(JoinEdge("f", "x", key_side="f"),),
            )

    def test_preserved_defaults_to_nonkey_side(self):
        edge = JoinEdge("f", "d", key_side="d", kind=JoinKind.SEMI)
        assert edge.preserved_side == "f"

    def test_explicit_preserved_side(self):
        edge = JoinEdge("s", "ps", key_side="s", kind=JoinKind.SEMI, preserved="s")
        assert edge.preserved_side == "s"

    def test_bad_selectivity_rejected(self):
        with pytest.raises(PlanningError):
            TableRef("t", "t", selectivity=0.0)
        with pytest.raises(PlanningError):
            TableRef("t", "t", selectivity=1.5)


class TestCostModel:
    def test_columnstore_scan_cheaper_than_rowstore(self):
        cm = CostModel()
        assert cm.scan_cpu(1000, True, 1.0) < cm.scan_cpu(1000, False, 1.0)

    def test_column_fraction_reduces_scan_cost(self):
        cm = CostModel()
        assert cm.scan_cpu(1000, True, 0.2) < cm.scan_cpu(1000, True, 1.0)

    def test_columnstore_seek_penalized(self):
        cm = CostModel()
        assert cm.seek_cost(1e6, columnstore=True) == pytest.approx(
            cm.seek_cost(1e6, columnstore=False) * cm.columnstore_seek_multiplier
        )

    def test_broadcast_grows_with_dop(self):
        cm = CostModel()
        assert cm.broadcast_cost(1000, 32) > cm.broadcast_cost(1000, 4)
        assert cm.broadcast_cost(1000, 1) == 0.0

    def test_sort_superlinear(self):
        cm = CostModel()
        assert cm.sort_cpu(2_000_000) > 2 * cm.sort_cpu(1_000_000)
        assert cm.sort_cpu(1) == 0.0

    @given(st.floats(min_value=1, max_value=1e9), st.floats(min_value=1, max_value=1e9))
    @settings(max_examples=30)
    def test_hash_join_cost_monotone(self, build, probe):
        cm = CostModel()
        assert cm.hash_join_cpu(build + 1, probe) > cm.hash_join_cpu(build, probe)
        assert cm.hash_join_cpu(build, probe + 1) > cm.hash_join_cpu(build, probe)


class TestGrantDopFactor:
    def test_serial_uses_45_percent_less(self):
        """§8: Q20 uses 45% less memory at MAXDOP=1 than at MAXDOP=32."""
        assert grant_dop_factor(1) / grant_dop_factor(32) == pytest.approx(
            GRANT_DOP_BASE + (1 - GRANT_DOP_BASE) / 32, rel=0.01
        )
        assert 1 - grant_dop_factor(1) == pytest.approx(0.45, abs=0.02)

    def test_monotone_in_dop(self):
        factors = [grant_dop_factor(d) for d in (1, 2, 4, 8, 16, 32)]
        assert factors == sorted(factors)


class TestOptimizer:
    def test_cheap_query_stays_serial(self):
        opt = make_optimizer(threshold=1e12)
        result = opt.optimize(star_query())
        assert result.dop == 1
        assert not result.plan.is_parallel_plan()

    def test_expensive_query_goes_parallel(self):
        opt = make_optimizer(threshold=1.0)
        result = opt.optimize(star_query())
        assert result.dop == 32
        assert result.plan.is_parallel_plan()
        assert result.plan.uses(OpKind.EXCHANGE_GATHER)

    def test_maxdop_one_forces_serial(self):
        opt = make_optimizer(threshold=1.0)
        result = opt.optimize(star_query(), max_dop=1)
        assert result.dop == 1

    def test_plan_covers_all_tables(self):
        opt = make_optimizer()
        spec = QuerySpec(
            name="q3",
            tables=(
                TableRef("fact", "f"),
                TableRef("dim", "d", selectivity=0.5),
                TableRef("dim2", "e"),
            ),
            joins=(
                JoinEdge("f", "d", key_side="d"),
                JoinEdge("d", "e", key_side="e"),
            ),
        )
        result = opt.optimize(spec)
        assert set(result.plan.tables_touched()) >= {"f", "d", "e"}
        assert result.plan.join_count() == 2

    def test_cardinality_estimation_fk_join(self):
        opt = make_optimizer(threshold=1e12)
        result = opt.optimize(star_query(fact_sel=1.0, dim_sel=0.1, group_rows=0))
        # |fact join dim_filtered| = 1e6 * 0.1
        root_rows = result.plan.rows_out
        assert root_rows == pytest.approx(100_000, rel=0.01)

    def test_semi_join_caps_at_preserved_side(self):
        opt = make_optimizer(threshold=1e12)
        spec = QuerySpec(
            name="semi",
            tables=(TableRef("fact", "f"), TableRef("dim", "d")),
            joins=(JoinEdge("f", "d", key_side="d", kind=JoinKind.SEMI),),
            group_rows=0,
        )
        result = opt.optimize(spec)
        assert result.plan.rows_out <= 1_000_000 + 1

    def test_anti_join_complements_semi(self):
        opt = make_optimizer(threshold=1e12)
        def rows(kind):
            spec = QuerySpec(
                name="x",
                tables=(TableRef("fact", "f"),
                        TableRef("dim", "d", selectivity=0.5)),
                joins=(JoinEdge("f", "d", key_side="d", kind=kind),),
                group_rows=0,
            )
            return opt.optimize(spec).plan.rows_out
        assert rows(JoinKind.SEMI) + rows(JoinKind.ANTI) == pytest.approx(1_000_000)

    def test_memory_scales_with_dop(self):
        opt = make_optimizer()
        spec = star_query(group_rows=500_000.0)
        serial = opt.optimize(spec, max_dop=1)
        parallel = make_optimizer(threshold=1.0).optimize(spec, max_dop=32)
        assert serial.required_memory_bytes < parallel.required_memory_bytes

    def test_aggregate_and_sort_appended(self):
        opt = make_optimizer(threshold=1e12)
        result = opt.optimize(star_query(group_rows=50.0, sort_rows=50.0))
        assert result.plan.uses(OpKind.HASH_AGGREGATE)
        assert result.plan.uses(OpKind.SORT)

    def test_scalar_aggregate_uses_stream_agg(self):
        opt = make_optimizer(threshold=1e12)
        result = opt.optimize(star_query(group_rows=1.0))
        assert result.plan.uses(OpKind.STREAM_AGGREGATE)

    def test_invalid_dop_rejected(self):
        opt = make_optimizer()
        with pytest.raises(PlanningError):
            opt.optimize(star_query(), max_dop=0)

    def test_estimate_bias_affects_threshold_only(self):
        """optimizer_cost_scale shifts the serial/parallel decision but
        not the plan's actual costs."""
        spec_biased = QuerySpec(
            name="b",
            tables=(TableRef("fact", "f"), TableRef("dim", "d")),
            joins=(JoinEdge("f", "d", key_side="d"),),
            optimizer_cost_scale=1e9,
        )
        spec_plain = QuerySpec(
            name="p",
            tables=(TableRef("fact", "f"), TableRef("dim", "d")),
            joins=(JoinEdge("f", "d", key_side="d"),),
        )
        opt = make_optimizer(threshold=1e12)
        assert opt.optimize(spec_plain).dop == 1
        assert opt.optimize(spec_biased).dop == 32


class TestDeterminism:
    def test_optimize_is_deterministic(self):
        opt = make_optimizer(threshold=1.0)
        a = opt.optimize(star_query())
        b = opt.optimize(star_query())
        assert a.plan.signature() == b.plan.signature()
        assert a.estimated_elapsed_cost == b.estimated_elapsed_cost
        assert a.required_memory_bytes == b.required_memory_bytes

    def test_fresh_context_same_plan(self):
        a = make_optimizer(threshold=1.0).optimize(star_query())
        b = make_optimizer(threshold=1.0).optimize(star_query())
        assert a.plan.signature() == b.plan.signature()
