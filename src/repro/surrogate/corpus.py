"""Harvest a training corpus from the result cache and attempt journals.

Every sweep the harness has ever run through a
:class:`~repro.core.resultcache.ResultCache` left behind pickled
:class:`~repro.core.measurement.Measurement` entries addressed by config
digest.  :func:`harvest` walks them (via the corruption-tolerant
:meth:`~repro.core.resultcache.ResultCache.iter_entries`), turns each
into a ``(features → targets)`` training pair, and — when the sweep
journal is available — annotates entries with their attempt history so
flaky points can be weighted or excluded downstream.

What is *excluded* matters as much as what is included:

* fault-injected runs (``fault_summary`` present) measure the recovery
  path, not the resource response, and would poison the regression;
* predicted entries (``source == "predicted"``) must never appear — the
  planner never writes them to the cache, but a harvest double-checks so
  a model can never be trained on its own predictions (feedback loop);
* quarantined ``.corrupt-*`` files are counted, not raised on.

The corpus serializes to JSON-lines (one header line with the feature /
target schema, one line per entry) for the ``repro corpus export`` CLI,
and loads back for offline training.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Tuple

import numpy as np

from repro.core.journal import SweepJournal
from repro.core.measurement import SOURCE_PREDICTED, Measurement
from repro.core.resultcache import ResultCache
from repro.errors import ConfigurationError
from repro.surrogate.features import FEATURE_NAMES, features_for_measurement

#: Corpus file format version (header line); bump on schema changes.
CORPUS_FORMAT_VERSION = 1

#: Prediction targets, in order: the primary throughput metric plus the
#: key derived counters the figures plot (model MPKI and the four mean
#: bandwidths).  All strictly positive after flooring, so the model can
#: regress them in log space and report Q-errors.
TARGET_NAMES: Tuple[str, ...] = (
    "primary_metric",
    "mpki_model",
    "ssd_read_mb",
    "ssd_write_mb",
    "dram_read_mb",
    "dram_write_mb",
)


def targets_for_measurement(measurement: Measurement) -> np.ndarray:
    """The target vector (``TARGET_NAMES`` order) of one measurement."""
    return np.asarray(
        [
            measurement.primary_metric,
            measurement.mpki_model,
            measurement.ssd_read_mb,
            measurement.ssd_write_mb,
            measurement.dram_read_mb,
            measurement.dram_write_mb,
        ],
        dtype=np.float64,
    )


@dataclass(frozen=True)
class CorpusEntry:
    """One training pair: a digest-keyed (features, targets) row."""

    digest: str
    workload: str
    scale_factor: int
    features: Tuple[float, ...]
    targets: Tuple[float, ...]
    #: Failed attempts the journal recorded for this digest (0 when no
    #: journal was consulted or the point succeeded first try).
    attempts: int = 0


@dataclass
class HarvestStats:
    """What a cache scan found, kept, and skipped — the honesty report."""

    scanned: int = 0
    harvested: int = 0
    skipped_faulted: int = 0
    skipped_predicted: int = 0
    quarantined: int = 0
    journal_failures: int = 0

    def summary(self) -> str:
        return (
            f"{self.harvested}/{self.scanned} entries harvested "
            f"({self.skipped_faulted} faulted skipped, "
            f"{self.skipped_predicted} predicted skipped, "
            f"{self.quarantined} quarantined, "
            f"{self.journal_failures} journaled failures)"
        )


@dataclass
class Corpus:
    """An ordered, deduplicated set of training pairs."""

    entries: List[CorpusEntry] = field(default_factory=list)
    stats: HarvestStats = field(default_factory=HarvestStats)

    def __len__(self) -> int:
        return len(self.entries)

    def sorted_by_digest(self) -> "Corpus":
        """Canonical order: training must not depend on scan order."""
        return Corpus(
            entries=sorted(self.entries, key=lambda e: e.digest),
            stats=self.stats,
        )

    def feature_matrix(self) -> np.ndarray:
        if not self.entries:
            return np.empty((0, len(FEATURE_NAMES)), dtype=np.float64)
        return np.asarray([e.features for e in self.entries], dtype=np.float64)

    def target_matrix(self) -> np.ndarray:
        if not self.entries:
            return np.empty((0, len(TARGET_NAMES)), dtype=np.float64)
        return np.asarray([e.targets for e in self.entries], dtype=np.float64)

    # -- serialization ---------------------------------------------------------

    def save(self, path) -> Path:
        """Write JSON-lines: one schema header, then one line per entry."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        header = {
            "corpus_format": CORPUS_FORMAT_VERSION,
            "feature_names": list(FEATURE_NAMES),
            "target_names": list(TARGET_NAMES),
            "entries": len(self.entries),
        }
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(header, sort_keys=True) + "\n")
            for entry in self.entries:
                handle.write(json.dumps({
                    "digest": entry.digest,
                    "workload": entry.workload,
                    "scale_factor": entry.scale_factor,
                    "features": list(entry.features),
                    "targets": list(entry.targets),
                    "attempts": entry.attempts,
                }, sort_keys=True) + "\n")
        return path

    @classmethod
    def load(cls, path) -> "Corpus":
        path = Path(path)
        lines = path.read_text(encoding="utf-8").splitlines()
        if not lines:
            raise ConfigurationError(f"empty corpus file: {path}")
        header = json.loads(lines[0])
        if header.get("corpus_format") != CORPUS_FORMAT_VERSION:
            raise ConfigurationError(
                f"corpus {path} has format {header.get('corpus_format')}, "
                f"expected {CORPUS_FORMAT_VERSION}"
            )
        if header.get("feature_names") != list(FEATURE_NAMES):
            raise ConfigurationError(
                f"corpus {path} was extracted with a different feature "
                "schema; re-export it"
            )
        entries = []
        for line in lines[1:]:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            entries.append(CorpusEntry(
                digest=record["digest"],
                workload=record["workload"],
                scale_factor=record["scale_factor"],
                features=tuple(record["features"]),
                targets=tuple(record["targets"]),
                attempts=record.get("attempts", 0),
            ))
        return cls(entries=entries)


def harvest(
    cache: ResultCache,
    journal: Optional[SweepJournal] = None,
    include_faulted: bool = False,
) -> Corpus:
    """Scan *cache* into a training corpus, in canonical digest order.

    When *journal* is omitted, the sweep journal next to the cache
    (``sweep-journal.jsonl``) is loaded if present — it carries the
    attempt counts and the failure records that explain grid holes.
    """
    if journal is None:
        journal_path = cache.directory / "sweep-journal.jsonl"
        if journal_path.exists():
            journal = SweepJournal(journal_path)
    stats = HarvestStats(quarantined=cache.quarantined_entries())
    if journal is not None:
        stats.journal_failures = len(journal.failed_digests())
    entries: List[CorpusEntry] = []
    for digest, measurement in cache.iter_entries():
        stats.scanned += 1
        if measurement.source == SOURCE_PREDICTED:
            stats.skipped_predicted += 1
            continue
        if measurement.fault_summary is not None and not include_faulted:
            stats.skipped_faulted += 1
            continue
        entries.append(CorpusEntry(
            digest=digest,
            workload=measurement.workload,
            scale_factor=measurement.scale_factor,
            features=tuple(features_for_measurement(measurement).tolist()),
            targets=tuple(targets_for_measurement(measurement).tolist()),
            attempts=journal.attempts(digest) if journal is not None else 0,
        ))
    stats.harvested = len(entries)
    return Corpus(entries=entries, stats=stats).sorted_by_digest()
