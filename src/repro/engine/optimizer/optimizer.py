"""Greedy cost-based optimizer.

Plan search, per query:

1. Build the best *serial* plan: greedy join ordering from several start
   tables, choosing the cheapest join algorithm (hash / index nested
   loops / merge) at every step under the serial cost model.
2. If the serial plan's estimated cost is below the cost threshold for
   parallelism, keep it — this is how cheap queries (TPC-H Q2, Q6, Q14,
   Q15, Q20 at SF 10) end up completely insensitive to MAXDOP (§7).
3. Otherwise, rerun the search under the parallel cost model at
   DOP = MAXDOP (operator work divides by DOP; broadcast and startup
   overheads do not) and keep whichever plan is estimated faster.

Because both the join *order* and the join *algorithms* are re-chosen
under the parallel cost model, the optimizer adapts plans to the degree
of parallelism, reproducing the paper's Fig 7 observation for Q20.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.calibration import PARALLELISM_COST_THRESHOLD
from repro.engine.bufferpool import BufferPool
from repro.engine.catalog import Database, Table
from repro.engine.optimizer.cost_model import CostModel
from repro.engine.optimizer.queryspec import JoinEdge, JoinKind, QuerySpec, TableRef
from repro.engine.plan.operators import JoinAlgorithm, OpKind, PlanNode
from repro.engine.types import StorageFormat
from repro.errors import PlanningError

#: Memory-grant scaling with DOP: more workers need more state.  At DOP=1
#: a query uses 55% of its DOP=32 memory — "TPC-H query 20 uses 45% less
#: memory with MAXDOP=1 compared to that with MAXDOP=32" (§8).
GRANT_DOP_BASE = 0.55


def grant_dop_factor(dop: int, reference_dop: int = 32) -> float:
    """Memory scaling factor for a given DOP, relative to reference DOP."""
    return GRANT_DOP_BASE + (1.0 - GRANT_DOP_BASE) * dop / reference_dop


@dataclass
class PlanningContext:
    """Everything the optimizer needs about the environment.

    ``search_strategy`` selects the join-ordering search:

    * ``"greedy"`` (default) — expand from the smallest filtered inputs,
      always taking the cheapest next join; linear in joins and what the
      experiments use.
    * ``"dp"`` — Selinger-style left-deep dynamic programming over
      connected subsets; exhaustive for left-deep shapes, never worse
      than greedy in estimated cost.  Exponential in the table count
      (TPC-H tops out at 8 occurrences, so it stays cheap).
    """

    database: Database
    buffer_pool: BufferPool
    cost_model: CostModel = CostModel()
    max_dop: int = 32
    parallelism_threshold: float = PARALLELISM_COST_THRESHOLD
    search_strategy: str = "greedy"


@dataclass(frozen=True)
class OptimizedQuery:
    """The optimizer's output for one query."""

    spec: QuerySpec
    plan: PlanNode
    dop: int
    estimated_elapsed_cost: float
    serial_elapsed_cost: float
    required_memory_bytes: float
    random_reads: float

    @property
    def is_parallel(self) -> bool:
        return self.dop > 1 and self.plan.is_parallel_plan()


@dataclass
class _Partial:
    """State of a greedy join-ordering walk."""

    plan: PlanNode
    rows: float
    placed: frozenset
    elapsed: float          # elapsed cost estimate under the active model
    memory: float
    random_reads: float


class Optimizer:
    """Cost-based planner for :class:`QuerySpec` queries."""

    def __init__(self, context: PlanningContext):
        self._ctx = context

    # -- public API ------------------------------------------------------------

    def optimize(self, spec: QuerySpec, max_dop: Optional[int] = None) -> OptimizedQuery:
        dop_cap = self._ctx.max_dop if max_dop is None else max_dop
        if dop_cap < 1:
            raise PlanningError("max_dop must be >= 1")
        serial = self._best_plan(spec, dop=1)
        serial_cost = serial.elapsed
        estimated = serial_cost * spec.optimizer_cost_scale
        if dop_cap == 1 or estimated < self._ctx.parallelism_threshold:
            return self._finish(spec, serial, dop=1, serial_cost=serial_cost)
        parallel = self._best_plan(spec, dop=dop_cap)
        if parallel.elapsed < serial_cost:
            return self._finish(spec, parallel, dop=dop_cap, serial_cost=serial_cost)
        return self._finish(spec, serial, dop=1, serial_cost=serial_cost)

    # -- helpers ---------------------------------------------------------------

    def _finish(
        self, spec: QuerySpec, partial: _Partial, dop: int, serial_cost: float
    ) -> OptimizedQuery:
        memory = partial.memory * grant_dop_factor(dop)
        return OptimizedQuery(
            spec=spec,
            plan=partial.plan,
            dop=dop,
            estimated_elapsed_cost=partial.elapsed,
            serial_elapsed_cost=serial_cost,
            required_memory_bytes=memory,
            random_reads=partial.random_reads,
        )

    def _table(self, ref: TableRef) -> Table:
        return self._ctx.database.table(ref.table)

    def _filtered_rows(self, ref: TableRef) -> float:
        return self._table(ref).rows * ref.selectivity

    def _edge_selectivity(self, edge: JoinEdge, spec: QuerySpec) -> float:
        key_ref = spec.table_ref(edge.key_side)
        unfiltered = max(1.0, float(self._table(key_ref).rows))
        return edge.fanout / unfiltered

    # -- plan search -----------------------------------------------------------

    def _best_plan(self, spec: QuerySpec, dop: int) -> _Partial:
        if self._ctx.search_strategy == "dp":
            best = self._dp_search(spec, dop)
        elif self._ctx.search_strategy == "greedy":
            best = self._greedy_search(spec, dop)
        else:
            raise PlanningError(
                f"unknown search strategy {self._ctx.search_strategy!r}"
            )
        if best is None:
            raise PlanningError(f"{spec.name}: no plan found")
        return self._add_post_join_ops(spec, best, dop)

    def _greedy_search(self, spec: QuerySpec, dop: int) -> Optional[_Partial]:
        starts = self._start_candidates(spec)
        best: Optional[_Partial] = None
        for start in starts:
            candidate = self._greedy_from(spec, start, dop)
            if candidate is None:
                continue
            if best is None or candidate.elapsed < best.elapsed:
                best = candidate
        return best

    def _dp_search(self, spec: QuerySpec, dop: int) -> Optional[_Partial]:
        """Left-deep dynamic programming over connected alias subsets.

        ``best[frozenset]`` holds the cheapest partial joining exactly
        that subset; subsets are extended one base table at a time, so
        every left-deep join order is considered.
        """
        aliases = [ref.alias for ref in spec.tables]
        best: Dict[frozenset, _Partial] = {}
        for ref in spec.tables:
            partial = self._scan_partial(spec, ref, dop)
            best[frozenset([ref.alias])] = partial
        for size in range(1, len(aliases)):
            # Extend every known subset of this size by one connected table.
            for subset in [s for s in list(best) if len(s) == size]:
                state = best[subset]
                for ref in spec.tables:
                    if ref.alias in subset:
                        continue
                    edges = spec.edges_between(set(subset), ref.alias)
                    if not edges:
                        continue
                    out_rows = self._join_output_rows(spec, state, ref.alias, edges)
                    for candidate in self._join_candidates(
                        spec, state, ref, edges, out_rows, dop
                    ):
                        key = frozenset(candidate.placed)
                        incumbent = best.get(key)
                        if incumbent is None or candidate.elapsed < incumbent.elapsed:
                            best[key] = candidate
        return best.get(frozenset(aliases))

    def _start_candidates(self, spec: QuerySpec) -> List[str]:
        """Start the greedy walk from each of the smallest filtered inputs."""
        ranked = sorted(spec.tables, key=self._filtered_rows)
        return [ref.alias for ref in ranked[:3]]

    def _greedy_from(self, spec: QuerySpec, start: str, dop: int) -> Optional[_Partial]:
        state = self._scan_partial(spec, spec.table_ref(start), dop)
        while len(state.placed) < len(spec.tables):
            step = self._best_step(spec, state, dop)
            if step is None:
                return None  # disconnected from here (shouldn't happen)
            state = step
        return state

    def _scan_partial(self, spec: QuerySpec, ref: TableRef, dop: int) -> _Partial:
        node = self._scan_node(spec, ref, dop)
        seq_io = self._ctx.cost_model.scan_io(self._cold_bytes(ref))
        return _Partial(
            plan=node,
            rows=self._filtered_rows(ref),
            placed=frozenset([ref.alias]),
            elapsed=node.cpu_cost / dop + seq_io,
            memory=0.0,
            random_reads=0.0,
        )

    def _scan_node(self, spec: QuerySpec, ref: TableRef, dop: int) -> PlanNode:
        table = self._table(ref)
        columnstore = table.storage is StorageFormat.COLUMN
        scan_bytes = table.data_bytes * ref.column_fraction
        # The HTAP design (§2.3.1): analytical scans of a row-store table
        # go through its updateable non-clustered columnstore index, which
        # keeps a separate compressed copy of the data.
        ncci = next(
            (
                ix
                for ix in table.indexes
                if ix.kind.name == "COLUMNSTORE_NONCLUSTERED"
            ),
            None,
        )
        if not columnstore and ncci is not None:
            columnstore = True
            scan_bytes = ncci.size_bytes(table.rows) * ref.column_fraction
        cpu = self._ctx.cost_model.scan_cpu(table.rows, columnstore, ref.column_fraction)
        if ref.selectivity < 1.0:
            cpu += table.rows * self._ctx.cost_model.filter_per_row
        op = OpKind.COLUMNSTORE_SCAN if columnstore else OpKind.TABLE_SCAN
        detail = "" if ref.selectivity == 1.0 else f"sel={ref.selectivity:.3g}"
        return PlanNode(
            op=op,
            table=ref.alias,
            rows_out=self._filtered_rows(ref),
            cpu_cost=cpu,
            scan_bytes=scan_bytes,
            parallel=dop > 1,
            detail=detail,
        )

    def _cold_bytes(self, ref: TableRef) -> float:
        table = self._table(ref)
        return self._ctx.buffer_pool.scan_read_bytes(table, ref.column_fraction)

    def _miss_probability(self, ref: TableRef) -> float:
        table = self._table(ref)
        return 1.0 - self._ctx.buffer_pool.scan_hit_fraction(table)

    def _join_output_rows(
        self, spec: QuerySpec, state: _Partial, alias: str, edges: Tuple[JoinEdge, ...]
    ) -> float:
        ref = spec.table_ref(alias)
        t_rows = self._filtered_rows(ref)
        kinds = {e.kind for e in edges}
        selectivity = 1.0
        for edge in edges:
            selectivity *= self._edge_selectivity(edge, spec)
        if JoinKind.SEMI in kinds or JoinKind.ANTI in kinds:
            edge = edges[0]
            if edge.preserved_side == alias:
                # The new table survives, filtered by the accumulated join.
                match_prob = min(1.0, selectivity * state.rows)
                survivors = t_rows
            else:
                match_prob = min(1.0, selectivity * t_rows)
                survivors = state.rows
            if JoinKind.ANTI in kinds:
                return survivors * max(0.0, 1.0 - match_prob)
            return survivors * match_prob
        rows = state.rows * t_rows * selectivity
        if JoinKind.OUTER in kinds:
            rows = max(rows, state.rows)
        return rows

    def _best_step(self, spec: QuerySpec, state: _Partial, dop: int) -> Optional[_Partial]:
        best: Optional[_Partial] = None
        placed = set(state.placed)
        for ref in spec.tables:
            if ref.alias in placed:
                continue
            edges = spec.edges_between(placed, ref.alias)
            if not edges:
                continue
            out_rows = self._join_output_rows(spec, state, ref.alias, edges)
            for candidate in self._join_candidates(spec, state, ref, edges, out_rows, dop):
                if best is None or candidate.elapsed < best.elapsed:
                    best = candidate
        return best

    def _join_candidates(
        self,
        spec: QuerySpec,
        state: _Partial,
        ref: TableRef,
        edges: Tuple[JoinEdge, ...],
        out_rows: float,
        dop: int,
    ) -> List[_Partial]:
        cm = self._ctx.cost_model
        table = self._table(ref)
        t_rows = self._filtered_rows(ref)
        kind = edges[0].kind
        is_semi = kind in (JoinKind.SEMI, JoinKind.ANTI)
        columnstore = table.storage is StorageFormat.COLUMN
        parallel = dop > 1
        candidates: List[_Partial] = []

        # --- hash join: scan the new table, build on the smaller input ----
        scan = self._scan_node(spec, ref, dop)
        build_rows = min(t_rows, state.rows)
        probe_rows = max(t_rows, state.rows)
        narrow = is_semi and not any(e.wide_build for e in edges)
        hash_memory = build_rows * (cm.semi_key_bytes if narrow else cm.hash_row_bytes)
        hash_cpu = cm.hash_join_cpu(build_rows, probe_rows)
        # Parallel hash joins pay an exchange overhead that does not
        # shrink with DOP: either broadcast the build side to every worker
        # (cost grows with DOP; semi-join bitmaps are cheaper to ship) or
        # repartition both inputs (synchronization cost per row).  The
        # optimizer assumes the cheaper strategy.
        if parallel:
            semi_scale = cm.semi_key_bytes / cm.hash_row_bytes if is_semi else 1.0
            broadcast = min(
                cm.broadcast_cost(build_rows, dop) * semi_scale,
                cm.exchange_cpu(build_rows + probe_rows),
            )
            exchange = cm.exchange_cpu(probe_rows)
        else:
            broadcast = 0.0
            exchange = 0.0
        hash_node = PlanNode(
            op=OpKind.HASH_JOIN,
            children=(scan, state.plan),
            rows_out=out_rows,
            cpu_cost=hash_cpu + broadcast + exchange,
            memory_bytes=hash_memory,
            parallel=parallel,
            detail=f"{kind.value} join, build={build_rows:.0f} rows",
        )
        seq_io = cm.scan_io(self._cold_bytes(ref))
        candidates.append(
            _Partial(
                plan=hash_node,
                rows=out_rows,
                placed=state.placed | {ref.alias},
                elapsed=state.elapsed
                + (scan.cpu_cost + hash_cpu + exchange) / dop
                + broadcast
                + seq_io,
                memory=state.memory + hash_memory,
                random_reads=state.random_reads,
            )
        )

        # --- index nested loops: seek into the new table per outer row.
        # Only possible when the new table is the key (PK) side of every
        # connecting edge — that is where a seekable B-tree exists.  TPC-H
        # kits create PK constraints even on columnstore tables, but
        # fetching from a columnstore after the seek costs extra
        # (columnstore_seek_multiplier).  Wide existence checks (Q21's
        # suppkey comparisons) need full rows per probe, which the
        # key-only B-tree cannot serve — no NLJ there.
        nl_possible = all(e.key_side == ref.alias for e in edges) and not any(
            e.wide_build for e in edges
        )
        miss_prob = self._miss_probability(ref)
        nl_cpu = cm.nl_join_cpu(state.rows, table.rows, out_rows, columnstore=columnstore)
        nl_io_cost = cm.nl_join_io(state.rows, miss_prob)
        random_reads = state.rows * miss_prob
        seek_node = PlanNode(
            op=OpKind.INDEX_SEEK,
            table=ref.alias,
            rows_out=t_rows,
            cpu_cost=0.0,
            parallel=parallel,
            detail="seek per outer row",
        )
        nl_node = PlanNode(
            op=OpKind.NESTED_LOOPS,
            children=(state.plan, seek_node),
            rows_out=out_rows,
            cpu_cost=nl_cpu,
            parallel=parallel,
            detail=f"{kind.value} join",
        )
        if nl_possible:
            candidates.append(
                _Partial(
                    plan=nl_node,
                    rows=out_rows,
                    placed=state.placed | {ref.alias},
                    elapsed=state.elapsed + (nl_cpu + nl_io_cost) / dop,
                    memory=state.memory,
                    random_reads=state.random_reads + random_reads,
                )
            )

        # --- merge join: sort both inputs, then merge.  Only considered
        # for serial plans; parallel merge would need order-preserving
        # exchanges the engine model does not implement.
        if parallel:
            return candidates
        merge_cpu = (
            cm.sort_cpu(state.rows)
            + cm.sort_cpu(t_rows)
            + (state.rows + t_rows) * cm.merge_per_row
        )
        merge_scan = self._scan_node(spec, ref, dop)
        merge_node = PlanNode(
            op=OpKind.MERGE_JOIN,
            children=(state.plan, merge_scan),
            rows_out=out_rows,
            cpu_cost=merge_cpu,
            memory_bytes=cm.sort_memory(state.rows + t_rows),
            parallel=parallel,
            detail=f"{kind.value} join (sorted)",
        )
        candidates.append(
            _Partial(
                plan=merge_node,
                rows=out_rows,
                placed=state.placed | {ref.alias},
                elapsed=state.elapsed + (merge_scan.cpu_cost + merge_cpu) / dop + seq_io,
                memory=state.memory + cm.sort_memory(state.rows + t_rows),
                random_reads=state.random_reads,
            )
        )
        return candidates

    # -- post-join operators ----------------------------------------------------

    def _add_post_join_ops(self, spec: QuerySpec, state: _Partial, dop: int) -> _Partial:
        cm = self._ctx.cost_model
        parallel = dop > 1
        plan = state.plan
        rows = state.rows
        elapsed = state.elapsed
        memory = state.memory

        if spec.group_rows > 0:
            agg_input = rows * spec.agg_input_fraction
            if spec.group_rows <= 1:
                cpu = agg_input * cm.stream_agg_per_row
                plan = PlanNode(
                    op=OpKind.STREAM_AGGREGATE,
                    children=(plan,),
                    rows_out=1,
                    cpu_cost=cpu,
                    parallel=parallel,
                )
            else:
                cpu = cm.hash_agg_cpu(agg_input, spec.group_rows)
                agg_memory = cm.hash_agg_memory(spec.group_rows)
                memory += agg_memory
                plan = PlanNode(
                    op=OpKind.HASH_AGGREGATE,
                    children=(plan,),
                    rows_out=spec.group_rows,
                    cpu_cost=cpu,
                    memory_bytes=agg_memory,
                    parallel=parallel,
                )
            rows = plan.rows_out
            elapsed += cpu / dop

        if spec.sort_rows > 0:
            sort_input = spec.sort_rows
            cpu = cm.sort_cpu(sort_input)
            sort_memory = cm.sort_memory(sort_input)
            memory += sort_memory
            plan = PlanNode(
                op=OpKind.SORT,
                children=(plan,),
                rows_out=sort_input,
                cpu_cost=cpu,
                memory_bytes=sort_memory,
                parallel=parallel,
            )
            rows = sort_input
            elapsed += cpu / dop

        if spec.top > 0:
            plan = PlanNode(
                op=OpKind.TOP,
                children=(plan,),
                rows_out=min(rows, spec.top) if rows else spec.top,
                cpu_cost=rows * cm.top_per_row,
                parallel=False,
            )
            elapsed += plan.cpu_cost

        if parallel:
            gather_cpu = cm.exchange_cpu(rows) + cm.startup_cost(dop)
            plan = PlanNode(
                op=OpKind.EXCHANGE_GATHER,
                children=(plan,),
                rows_out=rows,
                cpu_cost=gather_cpu,
                parallel=True,
                detail=f"DOP={dop}",
            )
            elapsed += gather_cpu

        # Correlated subquery passes multiply the whole pipeline.
        passes = spec.correlated_passes
        if passes != 1.0:
            elapsed *= passes

        return _Partial(
            plan=plan,
            rows=rows,
            placed=state.placed,
            elapsed=elapsed,
            memory=memory,
            random_reads=state.random_reads,
        )
