"""Serial sim-kernel bench: vectorized MRC, counter rollups, event heap.

Microbenchmarks the serial hot paths the sweep runner spends its time in,
plus a mini Fig-2 regeneration as the end-to-end guard.  Emits one JSON
document (written to ``BENCH_sim_kernel.json`` at the repo root):

* ``mrc`` — :meth:`MissRatioCurve.mpki` point-at-a-time vs
  :meth:`MissRatioCurve.mpki_array` over the same allocation grid, for
  all four workload MRCs.  The array path must be >= 2x faster and agree
  to float precision (``max_abs_diff``);
* ``counter_rollup`` — report-style rollups (four bandwidth means plus
  the run MPKI, queried repeatedly per measurement, as the figure
  benches do) via per-call Python ``sum`` walks vs the memoized-array
  path in :class:`CounterSeries`.  Must be >= 2x;
* ``events`` — :meth:`EventLoop.schedule_batch` vs one
  :meth:`schedule_at` call per event (scheduling phase only — the drain
  costs the same either way and would drown the comparison in noise),
  drain order asserted identical untimed, plus a mass-cancellation drain
  exercising lazy-deletion compaction.  Batching must be >= 1.0x or the
  path has regressed;
* ``fig2_mini`` — a short serial ASDB core sweep timed end to end
  (``points_per_second`` is the number the perf-smoke regression check
  tracks across commits).

Thresholds live in :func:`check_report`; ``benchmarks/check_perf_smoke.py``
re-applies them in CI against the committed baseline.
"""

import gc
import json
import time
from pathlib import Path

import numpy as np

try:
    from benchmarks.bench_runner_scaling import effective_cores
except ImportError:  # executed as a script: benchmarks/ is sys.path[0]
    from bench_runner_scaling import effective_cores
from repro.core.sweeps import core_sweep, run_sweep
from repro.hardware.counters import (
    ALL_COUNTERS,
    CounterSeries,
    DRAM_READ_BYTES,
    DRAM_WRITE_BYTES,
    INSTRUCTIONS,
    LLC_MISSES,
    SSD_READ_BYTES,
    SSD_WRITE_BYTES,
)
from repro.sim.events import EventLoop
from repro.units import MIB
from repro.workloads.profiles import execution_profile

_REPO_ROOT = Path(__file__).resolve().parent.parent

#: The four workload MRCs at paper scale factors.
MRC_WORKLOADS = (("asdb", 2000), ("tpce", 5000), ("tpch", 10), ("htap", 5000))
MRC_POINTS = 4000
ROLLUP_TICKS = 100_000      # simulated seconds of counter samples
ROLLUP_PASSES = 50          # report-style repeated queries per series
EVENT_COUNT = 30_000


def _best_of(repeats, fn):
    """Best-of-N wall time with the cyclic GC paused during each run.

    The microbenches allocate hundreds of thousands of small objects per
    run; generational collections triggered mid-run add superlinear,
    scheduling-dependent noise that once made the event-batch comparison
    a coin flip.  Collection cost is paid (and measured) by neither side.
    """
    best = float("inf")
    for _ in range(repeats):
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        finally:
            if gc_was_enabled:
                gc.enable()
            gc.collect()
    return best


def bench_mrc():
    """Scalar vs vectorized miss-ratio-curve evaluation."""
    mrcs = [execution_profile(w, sf).mrc for w, sf in MRC_WORKLOADS]
    allocations = np.linspace(0.5 * MIB, 64 * MIB, MRC_POINTS)
    alloc_list = allocations.tolist()

    def scalar():
        return [[mrc.mpki(a) for a in alloc_list] for mrc in mrcs]

    def vector():
        return [mrc.mpki_array(allocations) for mrc in mrcs]

    scalar_seconds = _best_of(3, scalar)
    vector_seconds = _best_of(3, vector)
    diffs = [
        np.abs(np.asarray(s) - v).max()
        for s, v in zip(scalar(), vector())
    ]
    return {
        "workloads": [f"{w}-{sf}" for w, sf in MRC_WORKLOADS],
        "points": MRC_POINTS,
        "scalar_seconds": round(scalar_seconds, 5),
        "vector_seconds": round(vector_seconds, 5),
        "speedup": round(scalar_seconds / vector_seconds, 1),
        "max_abs_diff": float(max(diffs)),
    }


def bench_counter_rollup():
    """Per-call list walks vs the memoized-array rollup path."""
    series = CounterSeries()
    for k, name in enumerate(ALL_COUNTERS):
        series.rates[name] = [(i % 977) * (k + 1) * 1.37 for i in range(ROLLUP_TICKS)]
    bandwidth = (DRAM_READ_BYTES, DRAM_WRITE_BYTES, SSD_READ_BYTES, SSD_WRITE_BYTES)

    def list_walk():
        out = 0.0
        for _ in range(ROLLUP_PASSES):
            for name in bandwidth:
                values = series.rates[name]
                out += sum(values) / len(values)
            instructions = sum(series.rates[INSTRUCTIONS])
            misses = sum(series.rates[LLC_MISSES])
            out += 1000.0 * misses / instructions
        return out

    def vectorized():
        out = 0.0
        for _ in range(ROLLUP_PASSES):
            for name in bandwidth:
                out += series.mean(name)
            out += series.mean_mpki()
        return out

    list_seconds = _best_of(3, list_walk)
    vector_seconds = _best_of(3, vectorized)
    assert abs(list_walk() - vectorized()) < 1e-6 * abs(list_walk())
    return {
        "ticks": ROLLUP_TICKS,
        "passes": ROLLUP_PASSES,
        "list_walk_seconds": round(list_seconds, 5),
        "vectorized_seconds": round(vector_seconds, 5),
        "speedup": round(list_seconds / vector_seconds, 1),
    }


def _event_times():
    # Deterministic pseudo-shuffled schedule times (no RNG in benches).
    return [((i * 2654435761) % 1000003) / 1000.0 for i in range(EVENT_COUNT)]


def bench_events():
    """Batch scheduling vs one schedule_at per event, plus compaction.

    The timed section is the *scheduling* phase only: draining the heap
    costs the same either way (and dwarfs scheduling), so folding it into
    the timings reduced the batch comparison to coin-flip noise — which
    is how a real batching regression once hid behind a "0.95x, close
    enough" reading.  Drain-order equivalence is asserted separately,
    untimed.
    """
    times = _event_times()

    def _noop(ev):
        return None

    def one_by_one(callback=_noop):
        loop = EventLoop()
        for i, t in enumerate(times):
            loop.schedule_at(t, callback, i)
        return loop

    def batched(callback=_noop):
        loop = EventLoop()
        loop.schedule_batch((t, callback, i) for i, t in enumerate(times))
        return loop

    loop_seconds = _best_of(5, one_by_one)
    batch_seconds = _best_of(5, batched)

    def drain_order(loop):
        fired = []
        while loop.step():
            pass
        return fired

    def record_into(fired):
        return lambda ev: fired.append(ev.payload)

    serial_order: list = []
    batch_order: list = []
    drain_order(one_by_one(record_into(serial_order)))
    drain_order(batched(record_into(batch_order)))
    assert serial_order == batch_order, "batch scheduling changed drain order"

    # Mass cancellation: resource waiters cancel wakeups constantly; the
    # heap must compact instead of carrying the corpses to the end.
    loop = EventLoop()
    events = [loop.schedule_at(t, lambda ev: None) for t in times]
    start = time.perf_counter()
    for event in events[::4]:
        event.cancel()
    for event in events[1::2]:
        event.cancel()
    live_after_cancel = len(loop)
    while loop.step():
        pass
    cancelled_drain_seconds = time.perf_counter() - start

    return {
        "events": EVENT_COUNT,
        "loop_seconds": round(loop_seconds, 5),
        "batch_seconds": round(batch_seconds, 5),
        "batch_speedup": round(loop_seconds / batch_seconds, 2),
        "compactions": loop.compactions,
        "live_after_mass_cancel": live_after_cancel,
        "cancelled_drain_seconds": round(cancelled_drain_seconds, 5),
    }


def bench_fig2_mini(duration_scale):
    """End-to-end serial guard: a short ASDB core sweep (the Fig 2 path)."""
    configs = list(core_sweep("asdb", 2000, duration_scale=duration_scale))
    seconds = _best_of(2, lambda: run_sweep(configs, jobs=1))
    return {
        "points": len(configs),
        "duration_scale": duration_scale,
        "seconds": round(seconds, 4),
        "points_per_second": round(len(configs) / seconds, 3),
    }


def run_kernel_study(duration_scale):
    return {
        "bench": "sim_kernel",
        "effective_cores": effective_cores(),
        "mrc": bench_mrc(),
        "counter_rollup": bench_counter_rollup(),
        "events": bench_events(),
        "fig2_mini": bench_fig2_mini(duration_scale * 0.5),
    }


def check_report(report):
    """Acceptance bars for the vectorized kernel."""
    mrc = report["mrc"]
    assert mrc["speedup"] >= 2.0, (
        f"mpki_array only {mrc['speedup']}x faster than scalar mpki"
    )
    assert mrc["max_abs_diff"] < 1e-9, (
        f"vectorized MRC diverges from scalar by {mrc['max_abs_diff']}"
    )
    rollup = report["counter_rollup"]
    assert rollup["speedup"] >= 2.0, (
        f"counter rollup only {rollup['speedup']}x faster than list walks"
    )
    events = report["events"]
    assert events["compactions"] >= 1, "mass cancellation never compacted"
    assert events["batch_speedup"] >= 1.0, (
        f"schedule_batch slower than per-event scheduling "
        f"({events['batch_speedup']}x) — batching must win or be removed"
    )


def test_sim_kernel(benchmark, emit, duration_scale):
    report = benchmark.pedantic(
        run_kernel_study, args=(duration_scale,), rounds=1, iterations=1,
    )
    check_report(report)
    payload = json.dumps(report, indent=2, sort_keys=True)
    (_REPO_ROOT / "BENCH_sim_kernel.json").write_text(payload + "\n")
    emit("Sim kernel — vectorized MRC / counter rollups / event heap", payload)


def main():
    report = run_kernel_study(0.3)
    check_report(report)
    payload = json.dumps(report, indent=2, sort_keys=True)
    (_REPO_ROOT / "BENCH_sim_kernel.json").write_text(payload + "\n")
    print(payload)


if __name__ == "__main__":
    main()
