#!/usr/bin/env python3
"""The paper's §10 research questions, explored on the simulated testbed.

1. How should resources be partitioned among streams/tenants to meet
   SLAs? — profile two tenants, search the discrete (cores, CAT) space.
2. What predictive models estimate resource impacts? — fit linear and
   roofline models to the bandwidth response and compare.
3. Immediate vs delayed query admission? — run both policies.
"""

from repro.core import ResourceAllocation, run_experiment
from repro.core.admission import compare_admission_policies
from repro.core.models import compare_models
from repro.core.partitioning import TenantProfile, partition_resources
from repro.core.report import format_table
from repro.units import mb_per_s

CORES = (4, 8, 16)
LLC_MB = (4, 8, 16)


def profile_tenant(name: str, workload: str, sf: int, duration: float,
                   slo_fraction: float) -> TenantProfile:
    print(f"Profiling {name} ({workload} SF={sf})...")
    core_curve = {
        c: run_experiment(workload, sf,
                          allocation=ResourceAllocation(logical_cores=c),
                          duration=duration).primary_metric
        for c in CORES
    }
    llc_curve = {
        mb: run_experiment(workload, sf,
                           allocation=ResourceAllocation(llc_mb=mb),
                           duration=duration).primary_metric
        for mb in LLC_MB
    }
    slo = slo_fraction * max(core_curve.values())
    return TenantProfile.from_curves(name, core_curve, llc_curve, slo=slo)


def main() -> None:
    print("== Q1: SLA-driven partitioning " + "=" * 40)
    tenants = [
        profile_tenant("oltp-tenant", "asdb", 2000, 6.0, slo_fraction=0.8),
        profile_tenant("dss-tenant", "tpch", 30, 150.0, slo_fraction=0.6),
    ]
    plan = partition_resources(tenants, total_cores=32, total_llc_mb=40)
    if plan is None:
        print("No feasible partition for these SLOs.")
    else:
        print(format_table(
            ["tenant", "cores", "LLC MB"],
            [(name, alloc[0], alloc[1])
             for name, alloc in plan.assignments.items()],
            title="Chosen partition",
        ))
        print(f"Spare: {plan.spare_cores} cores, {plan.spare_llc_mb} MB LLC")

    print("\n== Q2: predictive models for bandwidth allocation " + "=" * 20)
    limits = [200, 400, 800, 1600, 2500]
    qps = [
        run_experiment("tpch", 300,
                       allocation=ResourceAllocation(read_bw_limit=mb_per_s(l)),
                       duration=1500.0).primary_metric
        for l in limits
    ]
    result = compare_models(limits, qps, target_fraction=0.9)
    print(format_table(
        ["model", "RMSE", "MB/s needed for target"],
        [("linear", result.linear_rmse, result.linear_required),
         ("roofline", result.roofline_rmse, result.roofline_required)],
        title=f"Provisioning for QPS >= {result.target:.3f}",
    ))
    print(f"Linear model overallocates by {result.overallocation_fraction:.0%} "
          "(the paper's Fig 5 point, generalized).")

    print("\n== Q3: immediate vs delayed admission " + "=" * 32)
    for sf in (10, 100):
        cmp = compare_admission_policies(sf, streams=3, duration_scale=0.5)
        winner = "immediate" if cmp.immediate_wins else "serialized"
        print(f"TPC-H SF={sf}: immediate {cmp.immediate_qps:.3f} QPS vs "
              f"serialized {cmp.serialized_qps:.3f} QPS -> {winner} "
              f"(+{cmp.advantage:.0%})")


if __name__ == "__main__":
    main()
