"""Query memory grants and the spill model (§8).

SQL Server reserves each query's estimated memory ("query memory grant")
at start of execution and enforces a per-query maximum so one query cannot
monopolize the pool.  On our modelled testbed: 64 GB server memory, ~80%
to the engine, of which a portion forms the query-memory pool; the default
per-query cap is 25% of the pool — "approx. 9.2 GB on our system".

A query whose requirement exceeds its grant spills: sort runs and hash
partitions are written to tempdb and read back, adding SSD traffic and CPU
work.  That is what degrades Q18 and friends in Fig 8.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.calibration import (
    DEFAULT_GRANT_PERCENT,
    ENGINE_MEMORY_FRACTION,
    QUERY_MEMORY_POOL_FRACTION,
)
from repro.errors import ConfigurationError

#: Bytes written + read back per byte of memory deficit when spilling
#: (write the run once, read it back ~1.5 times across merge passes).
SPILL_IO_AMPLIFICATION = 2.5

#: Extra CPU cost units per spilled row-equivalent (run generation,
#: merge passes); expressed per byte of deficit over a nominal 100 B row.
SPILL_CPU_UNITS_PER_BYTE = 0.05 / 100.0


@dataclass(frozen=True)
class MemoryGrant:
    """Outcome of grant admission for one query."""

    required_bytes: float
    granted_bytes: float

    @property
    def deficit_bytes(self) -> float:
        return max(0.0, self.required_bytes - self.granted_bytes)

    @property
    def spills(self) -> bool:
        return self.deficit_bytes > 0

    @property
    def spill_io_bytes(self) -> float:
        """Total extra SSD bytes (reads + writes) caused by spilling."""
        return self.deficit_bytes * SPILL_IO_AMPLIFICATION

    @property
    def spill_write_bytes(self) -> float:
        return self.deficit_bytes

    @property
    def spill_read_bytes(self) -> float:
        return self.spill_io_bytes - self.spill_write_bytes

    @property
    def spill_cpu_cost(self) -> float:
        """Extra optimizer cost units spent on spill management."""
        return self.deficit_bytes * SPILL_CPU_UNITS_PER_BYTE


class QueryMemoryPool:
    """The engine's query-memory pool and per-query grant policy."""

    def __init__(
        self,
        server_memory_bytes: float,
        grant_percent: float = DEFAULT_GRANT_PERCENT,
    ):
        if server_memory_bytes <= 0:
            raise ConfigurationError("server memory must be positive")
        if not 0 < grant_percent <= 100:
            raise ConfigurationError("grant percent must be in (0, 100]")
        self.server_memory_bytes = server_memory_bytes
        self.grant_percent = grant_percent

    @property
    def pool_bytes(self) -> float:
        return (
            self.server_memory_bytes
            * ENGINE_MEMORY_FRACTION
            * QUERY_MEMORY_POOL_FRACTION
        )

    @property
    def per_query_cap_bytes(self) -> float:
        """The per-query maximum (the §8 knob, default ~9.2 GB)."""
        return self.pool_bytes * self.grant_percent / 100.0

    def admit(self, required_bytes: float) -> MemoryGrant:
        """Grant as much as the cap allows; the rest will spill."""
        if required_bytes < 0:
            raise ConfigurationError("negative memory requirement")
        return MemoryGrant(
            required_bytes=required_bytes,
            granted_bytes=min(required_bytes, self.per_query_cap_bytes),
        )
