"""The experiment runner: one (workload, allocation) -> one Measurement.

Follows the paper's §3 methodology: build the machine, apply the resource
allocation (cpuset + CAT + blkio), start the engine, run the workload's
closed-loop clients for the measurement interval while PCM/iostat-style
counters sample every second, then gather throughput, wait breakdowns,
and plan signatures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.backends import (
    DEFAULT_BACKEND,
    DEFAULT_ROUTER_BACKENDS,
    build_routed_engine,
    make_backend,
)
from repro.calibration import DEFAULT_MEASUREMENT_SECONDS
from repro.core.knobs import ResourceAllocation
from repro.core.measurement import Measurement
from repro.engine.engine import SqlEngine
from repro.engine.locks import WaitType
from repro.errors import ConfigurationError
from repro.faults.spec import FaultSpec, simulation_faults
from repro.hardware.counters import CounterSampler
from repro.hardware.machine import Machine, MachineSpec
from repro.workloads import make_workload
from repro.workloads.arrivals import ArrivalSpec, OpenLoopDriver
from repro.workloads.base import ThroughputTracker, Workload
from repro.workloads.htap import HtapWorkload
from repro.workloads.oltp import OltpWorkloadBase
from repro.workloads.tpch import TPCH_QUERIES, tpch_query


@dataclass(frozen=True)
class ExperimentConfig:
    """A fully-specified experiment.

    ``faults`` is a tuple of :class:`~repro.faults.spec.FaultSpec`:
    simulation-level specs are injected into the run by a
    :class:`~repro.faults.injector.FaultInjector`; harness-level specs
    (worker crash/stall) are interpreted by the supervised sweep runner.
    Faults are part of the config — and therefore of the result-cache
    key — so a faulted run never aliases a fault-free one.

    ``backend`` names the engine personality to run on
    (:mod:`repro.backends`); ``router`` switches the run to a routed
    multi-backend fleet under the named placement policy, over
    ``router_backends`` (the default fleet when empty).  Both are part
    of the result-cache key, so cross-backend runs can never collide.

    ``arrival`` switches the run from closed-loop clients to an
    open-loop arrival process
    (:class:`~repro.workloads.arrivals.ArrivalSpec`).  Because it is a
    config field it enters the result-cache digest, so open-loop points
    cache and resume through the supervised runner like any other grid
    point — and never alias the closed-loop run of the same allocation.
    """

    workload: str
    scale_factor: int
    allocation: ResourceAllocation = ResourceAllocation()
    duration: float = DEFAULT_MEASUREMENT_SECONDS
    seed: int = 0
    machine_spec: MachineSpec = MachineSpec()
    workload_kwargs: Dict = field(default_factory=dict)
    faults: Tuple[FaultSpec, ...] = ()
    backend: str = DEFAULT_BACKEND
    router: Optional[str] = None
    router_backends: Tuple[str, ...] = ()
    arrival: Optional[ArrivalSpec] = None

    @property
    def routed(self) -> bool:
        return self.router is not None

    @property
    def effective_router_backends(self) -> Tuple[str, ...]:
        return self.router_backends or DEFAULT_ROUTER_BACKENDS


class Experiment:
    """Runs one configuration end to end."""

    def __init__(self, config: ExperimentConfig):
        self.config = config

    def _build_machine(self) -> Machine:
        machine = Machine(spec=self.config.machine_spec, seed=self.config.seed)
        self.config.allocation.apply_to(machine)
        return machine

    def _build_engine(self, machine: Machine, workload: Workload) -> SqlEngine:
        config = self.config
        if config.routed:
            return build_routed_engine(
                machine,
                workload,
                config.allocation,
                config.effective_router_backends,
                config.router,
            )
        backend = make_backend(config.backend)
        return backend.build_engine(machine, workload, config.allocation)

    def run(self) -> Measurement:
        config = self.config
        workload = make_workload(
            config.workload, config.scale_factor, **config.workload_kwargs
        )
        machine = self._build_machine()
        engine = self._build_engine(machine, workload)
        injector = None
        sim_faults = simulation_faults(config.faults)
        if sim_faults:
            if config.routed:
                raise ConfigurationError(
                    "simulation fault injection targets one engine "
                    "instance; routed multi-backend runs do not support it"
                )
            from repro.faults.injector import FaultInjector

            injector = FaultInjector(machine, engine, faults=sim_faults)
            injector.install()
        tracker = ThroughputTracker()
        sampler = CounterSampler(machine.sim, engine)
        driver = None
        if config.arrival is not None:
            if not isinstance(workload, OltpWorkloadBase):
                raise ConfigurationError(
                    "open-loop arrivals need a transactional workload; "
                    f"{config.workload!r} has no demand generator"
                )
            driver = OpenLoopDriver.from_spec(
                workload, engine, config.arrival, config.duration,
                tracker=tracker,
            )
            driver.start(until=config.duration)
        else:
            workload.spawn_clients(engine, tracker, until=config.duration)
        machine.sim.run(until=config.duration)
        sampler.stop()
        if driver is not None:
            driver.result.finalize(config.duration)

        plan_signatures = self._collect_plan_signatures(engine, workload)
        semaphore = engine.semaphore.summary()
        secondary = None
        if isinstance(workload, HtapWorkload):
            secondary = workload.analytics_qph(tracker, config.duration)
        if config.routed:
            routing = engine.router.summary()
            backend_label = "router:" + config.router
        else:
            routing = {}
            backend_label = config.backend
        return Measurement(
            workload=config.workload,
            scale_factor=config.scale_factor,
            allocation=config.allocation,
            duration=config.duration,
            primary_metric=workload.primary_metric(tracker, config.duration),
            counters=sampler.series,
            tracker=tracker,
            wait_times=dict(engine.locks.accounting.wait_time),
            plan_signatures=plan_signatures,
            secondary_metric=secondary,
            smt_multiplier=engine.sqlos.smt_multiplier,
            mpki_model=engine.sqlos.mpki,
            fault_summary=injector.summary() if injector is not None else None,
            grant_waits=semaphore["grant_waits"],
            grant_wait_seconds=semaphore["grant_wait_seconds"],
            grant_timeouts=semaphore["grant_timeouts"],
            grant_degrades=semaphore["grant_degrades"],
            grant_bypasses=semaphore["grant_bypasses"],
            grant_throttles=semaphore["grant_throttles"],
            grant_queue_peak=semaphore["grant_queue_peak"],
            backend=backend_label,
            router_policy=config.router,
            router_decisions=dict(routing.get("router_decisions", {})),
            router_fallbacks=int(routing.get("router_fallbacks", 0)),
            router_reroutes=int(routing.get("router_reroutes", 0)),
            offered_tps=(config.arrival.offered_tps
                         if config.arrival is not None else 0.0),
            arrival_sheds=(driver.result.dropped if driver is not None else 0),
            sheds_by_tenant=(dict(driver.result.dropped_by_tenant)
                             if driver is not None else {}),
        )

    def _collect_plan_signatures(
        self, engine: SqlEngine, workload: Workload
    ) -> Dict[str, str]:
        """Record the plan shape chosen for each query under this
        allocation — §9 pitfall #6 says analyses must watch for plan
        changes across resource settings.

        ``tpch_query`` returns the per-scale-factor cached spec objects
        (the same ones the client streams planned with), and
        ``engine.optimize`` memoizes on ``(spec, effective DOP)`` — so
        for every query that ran during the measurement window this loop
        is a plan-cache hit, not a fresh optimization.  Allocation
        changes that *can* flip plans (MAXDOP via the governor, cores via
        the cpuset) land in a different engine instance with its own
        cache, which is exactly how Fig 7's Q20 flip stays observable.
        """
        signatures: Dict[str, str] = {}
        if self.config.workload == "tpch":
            for number in TPCH_QUERIES:
                spec = tpch_query(number, self.config.scale_factor)
                optimized = engine.optimize(spec)
                signatures[spec.name] = optimized.plan.signature()
        return signatures


def run_experiment(
    workload: str,
    scale_factor: int,
    allocation: Optional[ResourceAllocation] = None,
    duration: float = DEFAULT_MEASUREMENT_SECONDS,
    seed: int = 0,
    faults: Tuple[FaultSpec, ...] = (),
    backend: str = DEFAULT_BACKEND,
    router: Optional[str] = None,
    router_backends: Tuple[str, ...] = (),
    **workload_kwargs,
) -> Measurement:
    """Convenience wrapper: run one experiment and return its measurement."""
    config = ExperimentConfig(
        workload=workload,
        scale_factor=scale_factor,
        allocation=allocation or ResourceAllocation(),
        duration=duration,
        seed=seed,
        workload_kwargs=dict(workload_kwargs),
        faults=tuple(faults),
        backend=backend,
        router=router,
        router_backends=tuple(router_backends),
    )
    return Experiment(config).run()
