"""Crash recovery: WAL replay + checkpoint, with durability invariants.

A crash freezes what is actually on stable storage: the WAL's durable
record list (commits whose group-commit batch completed) and the
checkpoint LSN (transactions whose data-page effects the checkpoint
writer has flushed).  Everything in flight — the accumulating batch, the
batch being written when the crash hit — is lost, and *by design no
client was ever told those transactions committed* (the WAL only
acknowledges after a successful flush).

:func:`recover` rebuilds post-crash state ARIES-style in miniature:
start from the data files (every record at or below the checkpoint LSN)
and replay the durable log tail above it.  Replay is **idempotent** —
an LSN already applied is skipped, mirroring page-LSN checks in a real
engine — so recovering an already-recovered image, or a conservative
checkpoint that overlaps the tail, never double-applies.  Violations of
the two invariants (no durable-committed transaction lost, nothing
applied twice) raise :class:`~repro.errors.RecoveryError`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Optional, Tuple

from repro.engine.wal import WalRecord, WriteAheadLog
from repro.errors import RecoveryError


@dataclass(frozen=True)
class WalImage:
    """What survives a crash: the durable log and the checkpoint LSN."""

    durable_records: Tuple[WalRecord, ...]
    durable_lsn: int
    checkpoint_lsn: int
    #: Records that were appended but not durable at the crash — lost,
    #: and legitimately so (their commits were never acknowledged).
    lost_records: Tuple[WalRecord, ...] = ()

    @staticmethod
    def capture(wal: WriteAheadLog, checkpoint_lsn: int = 0) -> "WalImage":
        """Freeze the durable image of *wal* at this instant."""
        if checkpoint_lsn > wal.durable_lsn:
            raise RecoveryError(
                f"checkpoint LSN {checkpoint_lsn} ahead of durable LSN "
                f"{wal.durable_lsn}: checkpoint claims undurable work"
            )
        return WalImage(
            durable_records=tuple(wal.durable_records),
            durable_lsn=wal.durable_lsn,
            checkpoint_lsn=checkpoint_lsn,
            lost_records=wal.in_flight_records,
        )


@dataclass
class RecoveredState:
    """The rebuilt database state: which LSNs are applied, how often.

    ``apply`` *is* the page-LSN check: re-applying a present LSN is a
    skip (the write is not performed), mirroring how a real engine's
    redo pass consults the page LSN before touching the page.  A count
    above one therefore only happens if something bypasses the check —
    which is exactly what ``double_applied`` exists to catch.
    """

    apply_counts: Dict[int, int] = field(default_factory=dict)
    skipped: int = 0

    def apply(self, record: WalRecord) -> bool:
        """Apply one record; returns False when skipped (already there)."""
        if record.lsn in self.apply_counts:
            self.skipped += 1
            return False
        self.apply_counts[record.lsn] = 1
        return True

    @property
    def applied_lsns(self) -> FrozenSet[int]:
        return frozenset(self.apply_counts)

    @property
    def double_applied(self) -> Tuple[int, ...]:
        return tuple(sorted(l for l, n in self.apply_counts.items() if n > 1))


@dataclass(frozen=True)
class RecoveryResult:
    """Outcome of one recovery pass."""

    recovered_lsns: FrozenSet[int]
    recovered_txn_ids: FrozenSet[int]
    replayed: int          # records replayed from the log tail
    from_checkpoint: int   # records already covered by the data files
    lost_uncommitted: int  # in-flight records dropped (never acknowledged)


def recover(image: WalImage, state: Optional[RecoveredState] = None) -> RecoveryResult:
    """Replay *image* into *state* (a fresh one by default) and verify.

    Invariants checked (each violation raises
    :class:`~repro.errors.RecoveryError`):

    * durable LSNs are strictly increasing and end at ``durable_lsn``;
    * after replay, **every** durable record is applied exactly once —
      no committed transaction lost, none double-applied;
    * no lost (unacknowledged) record sneaks into the recovered state.
    """
    if state is None:
        state = RecoveredState()
    _check_monotone(image.durable_records, image.durable_lsn)

    from_checkpoint = 0
    replayed = 0
    for record in image.durable_records:
        if record.lsn <= image.checkpoint_lsn:
            # Already in the data files; loading them "applies" it.
            state.apply(record)
            from_checkpoint += 1
        else:
            if state.apply(record):
                replayed += 1
    doubles = state.double_applied
    if doubles:
        raise RecoveryError(
            f"replay applied LSNs {doubles[:5]} more than once "
            f"({len(doubles)} total)"
        )
    durable_lsns = {r.lsn for r in image.durable_records}
    missing = durable_lsns - state.applied_lsns
    if missing:
        raise RecoveryError(
            f"recovery lost {len(missing)} committed records "
            f"(LSNs {sorted(missing)[:5]}...)"
        )
    leaked = {r.lsn for r in image.lost_records} & state.applied_lsns
    if leaked:
        raise RecoveryError(
            f"recovery applied {len(leaked)} unacknowledged in-flight "
            f"records (LSNs {sorted(leaked)[:5]}...)"
        )
    return RecoveryResult(
        recovered_lsns=frozenset(state.applied_lsns),
        recovered_txn_ids=frozenset(
            r.txn_id for r in image.durable_records if r.txn_id >= 0
        ),
        replayed=replayed,
        from_checkpoint=from_checkpoint,
        lost_uncommitted=len(image.lost_records),
    )


def _check_monotone(records: Tuple[WalRecord, ...], durable_lsn: int) -> None:
    previous = 0
    for record in records:
        if record.lsn <= previous:
            raise RecoveryError(
                f"non-monotone durable log: LSN {record.lsn} after {previous}"
            )
        previous = record.lsn
    if records and previous != durable_lsn:
        raise RecoveryError(
            f"durable LSN {durable_lsn} disagrees with last record {previous}"
        )


def verify_committed_durable(
    committed_txn_ids: Iterable[int], result: RecoveryResult
) -> None:
    """Assert every client-acknowledged transaction was recovered.

    *committed_txn_ids* is the client-side ground truth: transactions
    whose ``commit()`` generator returned before the crash.  Raises
    :class:`~repro.errors.RecoveryError` naming the lost transactions
    otherwise.
    """
    lost = set(committed_txn_ids) - set(result.recovered_txn_ids)
    if lost:
        raise RecoveryError(
            f"{len(lost)} acknowledged transactions lost by recovery: "
            f"{sorted(lost)[:10]}"
        )
