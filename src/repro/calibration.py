"""Central calibration constants, each tied to a paper statement.

The simulator replaces the authors' testbed (SQL Server 2017 on a Lenovo
P710), so model parameters must come from somewhere.  Everything tuned to
reproduce a specific number or shape from the paper lives here, with the
paper reference spelled out.  Mechanistic constants (cache line size, page
size) live in :mod:`repro.units`.
"""

from __future__ import annotations

import functools
import sys
from typing import Any, Dict

from repro.units import GIB


@functools.lru_cache(maxsize=1)
def constants() -> Dict[str, Any]:
    """Every module-level calibration constant, by name.

    This is what the result cache's calibration token hashes; it is
    memoized because the constants are process-lifetime-stable but used
    to be re-collected per cache/journal construction.  Anything that
    mutates a constant at runtime (tests, notebooks) must call
    ``constants.cache_clear()`` — and
    ``resultcache.calibration_token.cache_clear()`` — afterwards.
    """
    module = sys.modules[__name__]
    return {
        name: getattr(module, name)
        for name in sorted(dir(module))
        if name.isupper()
    }

# ---------------------------------------------------------------------------
# Table 2 — database scale factors and initial sizes (GB).
# The paper loaded real benchmark kits; we size the synthetic catalogs to
# the published numbers, interpolating linearly between published scale
# factors and extrapolating beyond them.
# ---------------------------------------------------------------------------

TABLE2_SIZES_GB = {
    # workload: {scale_factor: (data_gb, index_gb)}
    "asdb": {2000: (51.13, 0.21), 6000: (153.36, 0.64)},
    "tpce": {5000: (31.99, 8.15), 15000: (96.45, 24.61)},
    "htap": {5000: (31.99, 10.44), 15000: (96.45, 31.74)},
    "tpch": {10: (5.54, 0.13), 30: (12.93, 0.23), 100: (41.95, 0.75), 300: (127.94, 2.25)},
}


def interpolate_table2(workload: str, scale_factor: int) -> tuple:
    """(data_bytes, index_bytes) for any scale factor of a workload."""
    points = sorted(TABLE2_SIZES_GB[workload].items())
    sfs = [sf for sf, _ in points]
    if scale_factor <= sfs[0]:
        lo_sf, (lo_d, lo_i) = points[0]
        scale = scale_factor / lo_sf
        return lo_d * scale * GIB, lo_i * scale * GIB
    for (sf0, (d0, i0)), (sf1, (d1, i1)) in zip(points, points[1:]):
        if scale_factor <= sf1:
            t = (scale_factor - sf0) / (sf1 - sf0)
            return (d0 + t * (d1 - d0)) * GIB, (i0 + t * (i1 - i0)) * GIB
    # Extrapolate from the last two points.
    (sf0, (d0, i0)), (sf1, (d1, i1)) = points[-2], points[-1]
    slope_d = (d1 - d0) / (sf1 - sf0)
    slope_i = (i1 - i0) / (sf1 - sf0)
    extra = scale_factor - sf1
    return (d1 + slope_d * extra) * GIB, (i1 + slope_i * extra) * GIB


# ---------------------------------------------------------------------------
# §3 — experiment durations and client populations.
# ---------------------------------------------------------------------------

#: "We run other workloads for one hour for each experiment."  Simulating a
#: full hour is unnecessary once throughput is stationary; experiments use
#: this default simulated duration (seconds) unless asked for more.
DEFAULT_MEASUREMENT_SECONDS = 30.0

ASDB_CLIENT_THREADS = 128        # §3: "ASDB runs with 128 client threads"
TPCE_USERS = 100                 # §3: "TPC-E runs with 100 users"
HTAP_OLTP_USERS = 99             # §3: 99 transactional users...
HTAP_DSS_USERS = 1               # ...and 1 analytical user
TPCH_QUERY_STREAMS = 3           # §3: three concurrent query streams

# ---------------------------------------------------------------------------
# §8 — memory allocation policy.
# ---------------------------------------------------------------------------

#: "about 80% of server memory is allocated to SQL Server"
ENGINE_MEMORY_FRACTION = 0.80
#: Of the engine's memory, the portion set aside for shared structures
#: (buffer pool etc.); the remainder is the query-memory pool from which
#: per-query grants are carved.  Chosen so the default 25% grant is
#: "approx. 9.2 GB on our system" (§8) with 64 GB of RAM:
#: 64 * 0.8 * query_pool_fraction * 0.25 = 9.2  =>  query_pool_fraction ~ 0.72.
QUERY_MEMORY_POOL_FRACTION = 0.72
#: Default per-query memory grant percentage (§8 baseline).
DEFAULT_GRANT_PERCENT = 25.0

# ---------------------------------------------------------------------------
# Engine cost model scale.  One "cost unit" in the optimizer equals this
# many retired instructions in the executor.
# ---------------------------------------------------------------------------

INSTRUCTIONS_PER_COST_UNIT = 1.0e3

# ---------------------------------------------------------------------------
# §7 — the optimizer's cost threshold for parallelism.  SQL Server's
# default "cost threshold for parallelism" is 5 (cost units of estimated
# seconds); our cost units differ, so the threshold is calibrated so that
# TPC-H queries 2, 6, 14, 15, 20 choose serial plans at SF=10 (Fig 6a)
# while almost all queries go parallel at SF >= 100.
# ---------------------------------------------------------------------------

PARALLELISM_COST_THRESHOLD = 8.0e6
