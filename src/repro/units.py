"""Unit helpers for sizes, times, and rates.

Everything inside the library is expressed in base SI-ish units:

* sizes in **bytes** (``int`` where possible),
* times in **seconds** (``float``),
* rates in **bytes per second** (``float``).

The paper reports cache sizes in MB (decimal MB is used loosely by the
paper; CAT way granularity on the test machine is 2 MB = 2 * 2^20 bytes),
storage bandwidths in MB/sec, and memory bandwidths in GB/sec.  The helpers
here keep the conversions in one place so that magic multipliers never
appear in experiment code.
"""

from __future__ import annotations

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB
TIB = 1024 * GIB

KB = 1000
MB = 1000 * KB
GB = 1000 * MB

#: Cache line size used for DRAM traffic accounting (bytes).
CACHE_LINE = 64

#: Database page size used by the engine model (SQL Server uses 8 KiB pages).
PAGE_SIZE = 8 * KIB

MICROSECOND = 1e-6
MILLISECOND = 1e-3
SECOND = 1.0
MINUTE = 60.0
HOUR = 3600.0


def mib(n: float) -> int:
    """Return *n* mebibytes expressed in bytes."""
    return int(n * MIB)


def gib(n: float) -> int:
    """Return *n* gibibytes expressed in bytes."""
    return int(n * GIB)


def mb_per_s(n: float) -> float:
    """Return *n* MB/sec expressed in bytes/sec (decimal, as iostat does)."""
    return n * MB


def gb_per_s(n: float) -> float:
    """Return *n* GB/sec expressed in bytes/sec."""
    return n * GB


def to_mb_per_s(rate_bytes_per_s: float) -> float:
    """Convert bytes/sec to (decimal) MB/sec for reporting."""
    return rate_bytes_per_s / MB


def to_gb_per_s(rate_bytes_per_s: float) -> float:
    """Convert bytes/sec to (decimal) GB/sec for reporting."""
    return rate_bytes_per_s / GB


def to_gib(size_bytes: float) -> float:
    """Convert bytes to GiB for reporting (Table 2 uses GB ~ GiB loosely)."""
    return size_bytes / GIB


def pages(size_bytes: float) -> int:
    """Number of 8 KiB database pages needed to hold *size_bytes*."""
    return max(1, int(round(size_bytes / PAGE_SIZE)))
