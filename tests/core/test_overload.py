"""Overload-protection tests across the engine/harness boundary:
invariance with the seed, GrantTimeoutError handling in the supervised
runner, the concurrency circuit breaker, the admission-policy sweep, and
the GrantStorm fault (ISSUE: robustness tentpole).

All contended scenarios use TPC-H SF100: its large sorts/joins request
multi-GB grants against the default 36.9 GB query-memory pool, whose 25%
per-query cap admits exactly four cap-sized grants — so four streams are
the pool's natural concurrency and 16x oversubscription is 64 streams.
"""

import pytest

from repro.core.admission import (
    ADMISSION_POLICIES,
    AdmissionPolicySweep,
    BASE_STREAMS,
    allocation_for_policy,
    sweep_admission_policies,
)
from repro.core.experiment import Experiment, ExperimentConfig
from repro.core.journal import SweepJournal
from repro.core.knobs import ResourceAllocation
from repro.core.runner import (
    SupervisionPolicy,
    _CircuitBreaker,
    run_supervised,
)
from repro.errors import (
    ConfigurationError,
    FaultInjectionError,
    GrantTimeoutError,
)
from repro.faults import GrantStorm


def tpch_config(streams, duration=600.0, seed=0, allocation=None, faults=()):
    return ExperimentConfig(
        workload="tpch", scale_factor=100, duration=duration, seed=seed,
        allocation=allocation or ResourceAllocation(),
        workload_kwargs={"streams": streams}, faults=tuple(faults),
    )


def fingerprint(measurement):
    """Everything timing-sensitive a run produces."""
    return (
        measurement.primary_metric,
        dict(measurement.wait_times),
        dict(measurement.plan_signatures),
        measurement.ssd_read_mb,
        measurement.ssd_write_mb,
        measurement.dram_read_mb,
        measurement.mpki,
    )


class TestSeedInvariance:
    def test_uncontended_protection_is_bit_identical_to_seed(self):
        """Satellite: overload protection enabled but never contended
        must reproduce the seed run bit-identically — the semaphore's
        uncontended path never suspends a process."""
        seed = Experiment(tpch_config(streams=2, duration=300.0,
                                      seed=2)).run()
        protected = Experiment(tpch_config(
            streams=2, duration=300.0, seed=2,
            allocation=ResourceAllocation(grant_timeout_s=30.0),
        )).run()
        assert fingerprint(protected) == fingerprint(seed)
        assert protected.mean_query_latency("Q18") == \
            seed.mean_query_latency("Q18")
        # The layer was live (counters exist) but nothing ever queued:
        assert protected.grant_waits == 0
        assert protected.grant_timeouts == 0
        assert protected.grant_degrades == 0
        assert not protected.degraded_gracefully

    def test_protection_off_reports_no_grant_activity(self):
        measurement = Experiment(tpch_config(streams=2,
                                             duration=300.0)).run()
        assert measurement.grant_waits == 0
        assert measurement.grant_queue_peak == 0


class TestContendedRun:
    def test_surge_degrades_gracefully_with_counters(self):
        """16x oversubscription completes without an unhandled exception
        and every overload counter is live."""
        measurement = Experiment(tpch_config(
            streams=16 * BASE_STREAMS, seed=0,
            allocation=ResourceAllocation(grant_timeout_s=1.0),
        )).run()
        assert measurement.grant_waits > 0
        assert measurement.grant_wait_seconds > 0
        assert measurement.grant_timeouts > 0
        assert measurement.grant_degrades > 0
        assert measurement.grant_queue_peak > 0
        assert measurement.degraded_gracefully


class TestGrantTimeoutFailure:
    def test_fail_policy_raises_from_experiment(self):
        config = tpch_config(
            streams=64, seed=7,
            allocation=ResourceAllocation(grant_timeout_s=1.0,
                                          on_grant_timeout="fail"),
        )
        with pytest.raises(GrantTimeoutError) as excinfo:
            Experiment(config).run()
        assert excinfo.value.waited == pytest.approx(1.0)
        assert excinfo.value.query      # names its victim

    def test_fail_policy_collects_as_failed_measurement(self):
        """Satellite: a grant timeout surfaces as a structured
        FailedMeasurement under on_error='collect', not a lost sweep."""
        config = tpch_config(
            streams=64, seed=7,
            allocation=ResourceAllocation(grant_timeout_s=1.0,
                                          on_grant_timeout="fail"),
        )
        report = run_supervised(
            [config],
            policy=SupervisionPolicy(on_error="collect", retries=2,
                                     backoff=0.01),
        )
        assert not report.ok
        assert report.measurements == [None]
        failure = report.failures[0]
        assert failure.kind == "error"
        assert failure.error_type == "GrantTimeoutError"
        # Deterministic simulation errors are not retried.
        assert failure.attempts == 1


class TestCircuitBreakerUnit:
    def policy(self, **overrides):
        defaults = dict(breaker_threshold=0.5, breaker_window=4,
                        breaker_min_jobs=1, breaker_recovery_successes=2)
        defaults.update(overrides)
        return SupervisionPolicy(**defaults)

    def test_disabled_breaker_never_moves(self):
        breaker = _CircuitBreaker(SupervisionPolicy(), jobs=8)
        assert not breaker.enabled
        for _ in range(20):
            assert breaker.observe(True) is None
        assert breaker.jobs == 8

    def test_trips_only_on_a_full_window(self):
        breaker = _CircuitBreaker(self.policy(), jobs=8)
        assert breaker.observe(True) is None   # window 1/4
        assert breaker.observe(True) is None   # 2/4
        assert breaker.observe(True) is None   # 3/4
        assert breaker.observe(True) == "trip"
        assert breaker.jobs == 4

    def test_halves_repeatedly_down_to_min_jobs(self):
        breaker = _CircuitBreaker(self.policy(), jobs=8)
        transitions = [breaker.observe(True) for _ in range(12)]
        # One trip per full window of bad outcomes: 8 -> 4 -> 2 -> 1.
        assert transitions.count("trip") == 3
        assert breaker.jobs == 1
        # At the floor the breaker stays put no matter how bad it gets.
        for _ in range(8):
            assert breaker.observe(True) is None
        assert breaker.jobs == 1

    def test_additive_increase_recovery(self):
        breaker = _CircuitBreaker(self.policy(), jobs=4)
        for _ in range(4):
            breaker.observe(True)
        assert breaker.jobs == 2
        assert breaker.observe(False) is None       # streak 1
        assert breaker.observe(False) == "recover"  # streak 2: +1 job
        assert breaker.jobs == 3
        assert breaker.observe(False) is None
        assert breaker.observe(False) == "recover"
        assert breaker.jobs == 4
        # Never exceeds the configured ceiling.
        for _ in range(6):
            assert breaker.observe(False) is None
        assert breaker.jobs == 4

    def test_bad_outcome_resets_the_recovery_streak(self):
        breaker = _CircuitBreaker(self.policy(), jobs=4)
        for _ in range(4):
            breaker.observe(True)
        assert breaker.jobs == 2
        breaker.observe(False)
        breaker.observe(True)    # streak broken
        assert breaker.observe(False) is None   # streak 1 again
        assert breaker.jobs == 2

    def test_mixed_window_respects_threshold(self):
        breaker = _CircuitBreaker(self.policy(breaker_threshold=0.75),
                                  jobs=4)
        # 2 bad / 4 = 0.5 < 0.75: no trip.
        for bad in (True, False, True, False):
            assert breaker.observe(bad) is None
        assert breaker.jobs == 4


class TestCircuitBreakerIntegration:
    def test_degrade_storm_trips_breaker_and_journals_it(self, tmp_path):
        """Four all-degrading grid points at jobs=2 with a window of 2
        trip the breaker exactly once (2 -> 1 job); the transition is
        journaled and survives a journal reload."""
        configs = [
            tpch_config(streams=64, seed=seed,
                        allocation=ResourceAllocation(grant_timeout_s=1.0))
            for seed in range(4)
        ]
        journal_path = tmp_path / "sweep-journal.jsonl"
        policy = SupervisionPolicy(
            breaker_threshold=1.0, breaker_window=2, breaker_min_jobs=1,
            breaker_recovery_successes=2,
        )
        report = run_supervised(configs, jobs=2, policy=policy,
                                journal=SweepJournal(journal_path))
        assert report.ok
        assert len(report.successes()) == 4
        assert all(m.grant_degrades > 0 for m in report.successes())
        assert report.breaker_trips == 1
        assert "breaker tripped 1x" in report.summary()
        events = SweepJournal(journal_path).events("breaker")
        assert events
        assert events[0]["transition"] == "trip"
        assert events[0]["jobs"] == 1

    def test_serial_supervision_keeps_breaker_inert(self):
        """jobs=1 is already the floor: the breaker observes but can
        never trip, so serial sweeps are unaffected."""
        configs = [
            tpch_config(streams=64, seed=seed,
                        allocation=ResourceAllocation(grant_timeout_s=1.0))
            for seed in range(2)
        ]
        policy = SupervisionPolicy(breaker_threshold=0.5, breaker_window=1)
        report = run_supervised(configs, jobs=1, policy=policy)
        assert report.ok
        assert report.breaker_trips == 0


class TestAdmissionSweep:
    def test_queued_policy_acceptance_ladder(self):
        """The headline acceptance: 1x/4x/16x with a 30s grant timeout
        completes cleanly, shows real queueing at 16x, and per-stream
        throughput degrades monotonically."""
        sweep = sweep_admission_policies(
            scale_factor=100, oversubscription=(1, 4, 16),
            policies=("queued",), duration_scale=0.4, seed=0,
            grant_timeout_s=30.0,
        )
        ladder = sweep.points_for("queued")
        assert [p.oversubscription for p in ladder] == [1, 4, 16]
        assert [p.streams for p in ladder] == [4, 16, 64]
        assert all(p.qps > 0 for p in ladder)
        top = ladder[-1]
        assert top.grant_waits > 0
        assert top.grant_wait_seconds > 0
        assert top.grant_timeouts > 0
        assert top.grant_degrades > 0
        assert top.grant_queue_peak > 0
        assert sweep.monotone_degradation("queued")
        per_stream = [p.per_stream_qps for p in ladder]
        assert per_stream == sorted(per_stream, reverse=True)

    def test_all_policies_small_grid_monotone(self):
        sweep = sweep_admission_policies(
            scale_factor=100, oversubscription=(1, 4),
            duration_scale=0.2, seed=0,
        )
        assert isinstance(sweep, AdmissionPolicySweep)
        assert len(sweep.points) == len(ADMISSION_POLICIES) * 2
        assert sweep.monotone_degradation()
        # The immediate policy is the seed: no semaphore activity ever.
        for point in sweep.points_for("immediate"):
            assert point.grant_waits == 0
            assert point.grant_timeouts == 0

    def test_policy_allocations(self):
        assert allocation_for_policy("immediate") == ResourceAllocation()
        serialized = allocation_for_policy("serialized")
        assert serialized.grant_percent == 100.0
        assert serialized.max_queue_depth is not None
        queued = allocation_for_policy("queued", grant_timeout_s=5.0)
        assert queued.grant_timeout_s == 5.0
        with pytest.raises(ConfigurationError):
            allocation_for_policy("bogus")

    def test_invalid_grid_rejected(self):
        with pytest.raises(ConfigurationError):
            sweep_admission_policies(oversubscription=())
        with pytest.raises(ConfigurationError):
            sweep_admission_policies(oversubscription=(0, 1))
        with pytest.raises(ConfigurationError):
            sweep_admission_policies(policies=("nope",))


class TestGrantStorm:
    def test_spec_validation(self):
        with pytest.raises(FaultInjectionError):
            GrantStorm(at=-1.0)
        with pytest.raises(FaultInjectionError):
            GrantStorm(at=0.0, queries=0)
        with pytest.raises(FaultInjectionError):
            GrantStorm(at=0.0, pool_fraction=0.0)
        with pytest.raises(FaultInjectionError):
            GrantStorm(at=0.0, pool_fraction=1.5)
        with pytest.raises(FaultInjectionError):
            GrantStorm(at=0.0, hold_seconds=0.0)

    def test_storm_drives_real_queries_into_the_queue(self):
        storm = GrantStorm(at=10.0, queries=8, pool_fraction=0.25,
                           hold_seconds=60.0)
        measurement = Experiment(tpch_config(
            streams=4, duration=300.0,
            allocation=ResourceAllocation(grant_timeout_s=30.0),
            faults=(storm,),
        )).run()
        assert measurement.fault_summary["storm_grants"] == 8
        assert measurement.grant_waits > 0
        assert measurement.grant_queue_peak > 0

    def test_storm_is_invisible_without_protection(self):
        """With admission unconditional nothing is charged, so the storm
        changes nothing — the baseline fingerprint survives."""
        storm = GrantStorm(at=10.0, queries=8, pool_fraction=0.25,
                           hold_seconds=60.0)
        baseline = Experiment(tpch_config(streams=4, duration=300.0)).run()
        stormed = Experiment(tpch_config(streams=4, duration=300.0,
                                         faults=(storm,))).run()
        assert stormed.fault_summary["storm_grants"] == 8
        assert stormed.grant_waits == 0
        assert fingerprint(stormed) == fingerprint(baseline)
