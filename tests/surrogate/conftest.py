"""Shared fixtures: one seeded cache + trained surrogate per session.

The training sweep is the expensive part (a 16-point ASDB grid), so it
runs once and every surrogate test module reads from it."""

import pytest

from repro.core.experiment import ExperimentConfig
from repro.core.knobs import ResourceAllocation
from repro.core.resultcache import ResultCache
from repro.core.runner import run_supervised
from repro.surrogate import SurrogateModel, harvest

GRID_CORES = (1, 2, 4, 8)
GRID_LLC_MB = (2, 8, 16, 32)
DURATION = 1.0


def grid_config(cores=4, llc_mb=8, **overrides):
    base = dict(
        workload="asdb", scale_factor=2000,
        allocation=ResourceAllocation(logical_cores=cores, llc_mb=llc_mb),
        duration=DURATION, seed=0,
    )
    base.update(overrides)
    return ExperimentConfig(**base)


def training_grid():
    return [grid_config(cores=c, llc_mb=l)
            for c in GRID_CORES for l in GRID_LLC_MB]


@pytest.fixture(scope="session")
def seeded_cache(tmp_path_factory):
    cache = ResultCache(tmp_path_factory.mktemp("surrogate-cache"))
    report = run_supervised(training_grid(), cache=cache)
    assert not report.failures
    return cache


@pytest.fixture(scope="session")
def corpus(seeded_cache):
    return harvest(seeded_cache)


@pytest.fixture(scope="session")
def model(corpus):
    return SurrogateModel().fit(corpus)
