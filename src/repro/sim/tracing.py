"""Event tracing for debugging simulation runs.

A :class:`Tracer` hooks an :class:`~repro.sim.events.EventLoop` and
records every fired event (time, sequence, callback owner) into a bounded
ring buffer, optionally filtered by a predicate.  Useful when a model
change produces an unexpected throughput shift and the question is
"what was the machine doing at t=3483.9?" — exactly the kind of question
that located this project's token-bucket starvation bug.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, List, Optional

from repro.errors import SimulationError
from repro.sim.events import Event, EventLoop


@dataclass(frozen=True)
class TraceRecord:
    """One fired event."""

    time: float
    label: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.time:12.6f}] {self.label}"


def _describe(event: Event) -> str:
    callback = event.callback
    owner = getattr(callback, "__self__", None)
    if owner is not None:
        name = getattr(owner, "name", owner.__class__.__name__)
        return f"{owner.__class__.__name__}({name}).{callback.__name__}"
    return getattr(callback, "__qualname__", repr(callback))


class Tracer:
    """Bounded ring-buffer tracer over an event loop.

    Use as a context manager::

        with Tracer(machine.sim.loop, capacity=10_000) as tracer:
            machine.sim.run(until=30.0)
        print(tracer.dump(last=50))
    """

    def __init__(
        self,
        loop: EventLoop,
        capacity: int = 100_000,
        predicate: Optional[Callable[[float, str], bool]] = None,
    ):
        if capacity < 1:
            raise SimulationError("tracer capacity must be positive")
        self._loop = loop
        self._records: Deque[TraceRecord] = deque(maxlen=capacity)
        self._predicate = predicate
        self._original_step = None
        self.total_fired = 0

    # -- lifecycle ---------------------------------------------------------------

    def attach(self) -> "Tracer":
        if self._original_step is not None:
            raise SimulationError("tracer already attached")
        self._original_step = self._loop.step
        tracer = self

        def traced_step() -> bool:
            next_time = tracer._loop.peek_time()
            if next_time is None:
                return tracer._original_step()
            # Peek at the head event for labelling before it fires.
            head = tracer._loop._heap[0][2]
            label = _describe(head)
            fired = tracer._original_step()
            if fired:
                tracer.total_fired += 1
                if tracer._predicate is None or tracer._predicate(next_time, label):
                    tracer._records.append(TraceRecord(next_time, label))
            return fired

        self._loop.step = traced_step  # type: ignore[method-assign]
        return self

    def detach(self) -> None:
        if self._original_step is None:
            return
        self._loop.step = self._original_step  # type: ignore[method-assign]
        self._original_step = None

    def __enter__(self) -> "Tracer":
        return self.attach()

    def __exit__(self, *exc) -> None:
        self.detach()

    # -- inspection ----------------------------------------------------------------

    @property
    def records(self) -> List[TraceRecord]:
        return list(self._records)

    def dump(self, last: Optional[int] = None) -> str:
        records = self.records
        if last is not None:
            records = records[-last:]
        return "\n".join(str(r) for r in records)

    def histogram_by_label(self) -> dict:
        """Event counts per label — the 'what is the hot path' view."""
        counts: dict = {}
        for record in self._records:
            counts[record.label] = counts.get(record.label, 0) + 1
        return dict(sorted(counts.items(), key=lambda kv: -kv[1]))
