"""Command-line interface: run experiments and regenerate paper artifacts.

Usage::

    python -m repro run tpch 100 --cores 16 --llc-mb 12 --duration 300
    python -m repro sweep cores tpch 10
    python -m repro sweep llc asdb 2000 --jobs 4 --cache-dir ~/.cache/repro
    python -m repro sweep cores tpce 5000 --timeout 600 --on-error collect
    python -m repro faults --cache-dir /tmp/faults-demo
    python -m repro admission --oversub 1,4,16 --grant-timeout 30
    python -m repro run tpch 10 --backend columnstore-dss
    python -m repro run tpch 10 --router cost-scored
    python -m repro route fig2 --policy rule-based
    python -m repro route admission
    python -m repro chaos --seed 1 --scenario failover
    python -m repro chaos --seeds 1,2,3 --scenario hedging --compare-hedging
    python -m repro backends
    python -m repro figure table2
    python -m repro figure fig7
    python -m repro corpus export --cache-dir ~/.cache/repro -o corpus.jsonl
    python -m repro corpus train --cache-dir ~/.cache/repro --model-out m.json
    python -m repro sweep llc asdb 2000 --adaptive --cache-dir ~/.cache/repro
    python -m repro whatif asdb 2000 --cores 4,8 --llc-mb 8 --cache-dir DIR
    python -m repro list

``--jobs N`` fans independent experiments over N worker processes
(results are identical to serial).  ``--cache-dir DIR`` enables the
content-addressed result cache so re-runs are disk reads;
``$REPRO_CACHE_DIR`` sets a default directory and ``--no-cache``
overrides both.

The CLI is a thin veneer over :mod:`repro.core`; anything it prints can
be produced programmatically from the same functions.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.experiment import run_experiment
from repro.core.knobs import CORE_SWEEP, LLC_SWEEP_MB, ResourceAllocation
from repro.core.report import format_series, format_table
from repro.core.resultcache import ResultCache, default_cache_dir
from repro.core.sweeps import (
    STUDY_MATRIX,
    core_sweep,
    duration_for,
    llc_sweep,
    run_sweep,
    run_sweep_report,
)
from repro.units import mb_per_s
from repro.workloads import WORKLOADS


def _job_count(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError("job count must be >= 1")
    return value


def _add_cache_options(parser: argparse.ArgumentParser) -> None:
    """The result-cache knobs (also used alone by corpus/whatif)."""
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="directory for the content-addressed result cache "
        "(default: $REPRO_CACHE_DIR if set, else caching is off)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the result cache even if --cache-dir or "
        "$REPRO_CACHE_DIR is set",
    )


def _add_runner_options(parser: argparse.ArgumentParser) -> None:
    """The runner knobs shared by every multi-experiment command."""
    parser.add_argument(
        "--jobs", type=_job_count, default=1, metavar="N",
        help="worker processes for independent experiments (default: 1, "
        "in-process; results are identical at any job count)",
    )
    parser.add_argument(
        "--chunk", type=_job_count, default=None, metavar="K",
        help="grid points dispatched per worker round-trip (default: "
        "auto, about four chunks per job; ignored at --jobs 1 and with "
        "--timeout; never changes results)",
    )
    _add_cache_options(parser)


def _add_supervision_options(parser: argparse.ArgumentParser) -> None:
    """Supervisor knobs for commands that run many experiments."""
    parser.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-experiment wall-clock budget; a timed-out attempt kills "
        "and rebuilds the worker pool (default: unlimited)",
    )
    parser.add_argument(
        "--retries", type=int, default=2, metavar="N",
        help="extra attempts after a crashed worker, with exponential "
        "backoff (default: 2; deterministic errors are never retried)",
    )
    parser.add_argument(
        "--on-error", choices=("raise", "skip", "collect"), default="raise",
        help="what to do when a grid point exhausts its attempts: abort "
        "the sweep (raise), or keep going and report the holes "
        "(skip/collect; collect returns structured failure records)",
    )


def _add_backend_options(parser: argparse.ArgumentParser) -> None:
    """Engine-personality knobs shared by run/sweep/route."""
    from repro.backends import DEFAULT_BACKEND, backend_names

    parser.add_argument(
        "--backend", choices=backend_names(), default=DEFAULT_BACKEND,
        help="engine personality to run on (default: %(default)s)",
    )
    parser.add_argument(
        "--router", choices=("rule-based", "cost-scored"), default=None,
        metavar="POLICY",
        help="route queries across a multi-backend fleet with this policy "
        "(rule-based or cost-scored) instead of a single --backend; "
        "also accepts always-<backend> programmatically",
    )
    parser.add_argument(
        "--router-backends", default=None, metavar="B1,B2,...",
        help="comma-separated fleet for --router (default: all registered "
        "personalities)",
    )


def _resolve_backend_spec(args):
    """(backend, router, router_backends) tuple from the shared flags."""
    fleet = ()
    if getattr(args, "router_backends", None):
        fleet = tuple(
            name.strip() for name in args.router_backends.split(",")
            if name.strip()
        )
    return args.backend, args.router, fleet


def _resolve_policy(args):
    from repro.core.runner import SupervisionPolicy

    return SupervisionPolicy(
        timeout=getattr(args, "timeout", None),
        retries=getattr(args, "retries", 2),
        on_error=getattr(args, "on_error", "raise"),
    )


def _resolve_cache(args) -> Optional[ResultCache]:
    """Build the result cache implied by --cache-dir/--no-cache/env."""
    if getattr(args, "no_cache", False):
        return None
    directory = getattr(args, "cache_dir", None) or default_cache_dir()
    if directory is None:
        return None
    return ResultCache(directory)


def _print_cache_stats(cache: Optional[ResultCache]) -> None:
    if cache is not None:
        stats = cache.stats()
        print(f"cache: {stats['hits']} hits, {stats['misses']} misses "
              f"({cache.directory})")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Resource-sensitivity experiments on the simulated testbed",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one experiment")
    run.add_argument("workload", choices=sorted(WORKLOADS))
    run.add_argument("scale_factor", type=int)
    run.add_argument("--cores", type=int, default=32)
    run.add_argument("--llc-mb", type=int, default=40)
    run.add_argument("--maxdop", type=int, default=None)
    run.add_argument("--read-limit-mb", type=float, default=None)
    run.add_argument("--write-limit-mb", type=float, default=None)
    run.add_argument("--grant-percent", type=float, default=25.0)
    run.add_argument("--duration", type=float, default=None,
                     help="simulated seconds (default: per-workload)")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--grant-timeout", type=float, default=None,
                     metavar="SECONDS",
                     help="RESOURCE_SEMAPHORE grant-queue timeout; enables "
                     "overload protection (default: off)")
    run.add_argument("--small-query-bypass-mb", type=float, default=0.0,
                     metavar="MB",
                     help="grants at or below this size skip the grant "
                     "queue (default: 0, bypass off)")
    run.add_argument("--max-queue-depth", type=int, default=None, metavar="N",
                     help="throttle admission once N requests are queued "
                     "for grants (default: unbounded)")
    run.add_argument("--on-grant-timeout", choices=("degrade", "fail"),
                     default="degrade",
                     help="timed-out/throttled grants shrink to free memory "
                     "and spill (degrade) or raise (fail)")
    _add_backend_options(run)

    sweep = sub.add_parser("sweep", help="run a one-axis sweep")
    sweep.add_argument("axis", choices=("cores", "llc"))
    sweep.add_argument("workload", choices=sorted(WORKLOADS))
    sweep.add_argument("scale_factor", type=int)
    sweep.add_argument("--duration-scale", type=float, default=0.5)
    sweep.add_argument(
        "--adaptive", action="store_true",
        help="surrogate-guided sweep: simulate only anchor, knee-adjacent "
        "and high-uncertainty grid points; backfill the rest from the "
        "surrogate with source=predicted provenance (needs --model or a "
        "cache with at least 2 harvestable entries to train from)",
    )
    sweep.add_argument(
        "--model", default=None, metavar="PATH",
        help="serialized surrogate model for --adaptive (default: train "
        "one from the result cache)",
    )
    sweep.add_argument(
        "--budget-fraction", type=float, default=0.4, metavar="F",
        help="fraction of the grid --adaptive may simulate (default: 0.4)",
    )
    _add_backend_options(sweep)
    _add_runner_options(sweep)
    _add_supervision_options(sweep)

    faults = sub.add_parser(
        "faults",
        help="demonstrate fault injection and supervised recovery",
        description="Runs a small ASDB grid where every point carries a "
        "different injected fault (storage brownout, transient write "
        "errors, crash/recover, worker crash, worker stall) under the "
        "supervised runner.  With --cache-dir, a second invocation "
        "resumes from the journal and re-runs only the failed points.",
    )
    faults.add_argument("--duration", type=float, default=1.0,
                        help="simulated seconds per grid point (default: 1)")
    faults.add_argument("--stall-seconds", type=float, default=120.0,
                        help="wall-clock sleep of the stalled worker "
                        "(default: 120; must exceed --timeout)")
    _add_runner_options(faults)
    _add_supervision_options(faults)
    faults.set_defaults(jobs=2, timeout=60.0, on_error="collect")

    admission = sub.add_parser(
        "admission",
        help="sweep §10 admission policies under stream oversubscription",
        description="Runs the overload-protection demo: three admission "
        "policies (immediate, serialized, queued-with-timeout) across "
        "stream oversubscription levels, reporting per-stream throughput "
        "and the RESOURCE_SEMAPHORE counters, and checking the "
        "monotone-degradation invariant (per-stream throughput never "
        "increases with oversubscription).",
    )
    admission.add_argument("--scale-factor", type=int, default=100)
    admission.add_argument(
        "--oversub", default="1,4,16", metavar="L1,L2,...",
        help="comma-separated oversubscription levels relative to the "
        "pool's natural concurrency (default: 1,4,16)",
    )
    admission.add_argument(
        "--admission-policy",
        choices=("immediate", "serialized", "queued", "all"), default="all",
        help="which policy to sweep (default: all three)",
    )
    admission.add_argument("--base-streams", type=int, default=4,
                           help="streams at 1x oversubscription (default: 4, "
                           "the default pool's concurrent-grant capacity)")
    admission.add_argument("--grant-timeout", type=float, default=30.0,
                           metavar="SECONDS",
                           help="grant-queue timeout for the queued policy "
                           "(default: 30)")
    admission.add_argument("--duration-scale", type=float, default=0.4)
    admission.add_argument("--seed", type=int, default=0)

    route = sub.add_parser(
        "route",
        help="cross-backend comparison: every personality plus the router",
        description="Re-runs a paper grid once per engine personality and "
        "once through the resource-aware router, printing the side-by-side "
        "comparison.  'fig2' sweeps the core-count axis; 'admission' "
        "re-runs the §10 overload grid and checks the router floor "
        "(the routed fleet must never do worse than the worst single "
        "backend on per-stream throughput).",
    )
    route.add_argument("target", choices=("fig2", "admission"))
    route.add_argument("--workload", choices=sorted(WORKLOADS), default="tpch",
                       help="workload for fig2 (default: tpch)")
    route.add_argument("--scale-factor", type=int, default=10)
    route.add_argument("--policy", choices=("rule-based", "cost-scored"),
                       default="rule-based",
                       help="router policy to compare (default: rule-based)")
    route.add_argument("--backends", default=None, metavar="B1,B2,...",
                       help="comma-separated fleet (default: all registered "
                       "personalities)")
    route.add_argument("--cores", default=None, metavar="C1,C2,...",
                       help="fig2 core axis (default: 4,8,16,32; routed runs "
                       "need one core and 2 MB LLC per backend)")
    route.add_argument("--oversub", default="1,4", metavar="L1,L2,...",
                       help="admission oversubscription levels (default: 1,4)")
    route.add_argument(
        "--admission-policy", choices=("immediate", "serialized", "queued"),
        action="append", default=None, dest="admission_policies",
        help="admission policy to include (repeatable; default: "
        "immediate and queued)",
    )
    route.add_argument("--duration-scale", type=float, default=None,
                       help="measurement-window scale (default: 0.25 for "
                       "fig2, 0.1 for admission)")
    route.add_argument("--seed", type=int, default=0)
    route.add_argument("--grant-timeout", type=float, default=30.0,
                       metavar="SECONDS",
                       help="grant-queue timeout for the queued admission "
                       "policy (default: 30)")
    _add_runner_options(route)
    _add_supervision_options(route)

    chaos = sub.add_parser(
        "chaos",
        help="run a seeded chaos schedule against a replicated fleet",
        description="Builds a replicated shard group (N engine replicas on "
        "one simulated clock with heartbeat failure detection and hedged "
        "reads), composes a reproducible fault schedule from the seed, "
        "drives writer/reader clients through it, and audits the four "
        "resilience invariants: no acknowledged durable write lost, "
        "unavailability bounded by the detection+promotion budget, hedged "
        "p99 no worse than unhedged under the same schedule (with "
        "--compare-hedging), and bit-identical replay digests (checked "
        "automatically when the schedule is empty, or with "
        "--check-determinism).  Exits 1 if any invariant is violated.",
    )
    from repro.faults.chaos import SCENARIOS

    chaos.add_argument("--seed", type=int, default=0,
                       help="schedule seed (default: 0)")
    chaos.add_argument("--seeds", default=None, metavar="S1,S2,...",
                       help="comma-separated seeds for a soak; overrides "
                       "--seed")
    chaos.add_argument("--duration", type=float, default=3.0,
                       help="simulated seconds per run (default: 3)")
    chaos.add_argument("--scenario", "--faults", dest="scenario",
                       choices=sorted(SCENARIOS), default="mixed",
                       help="fault mix to schedule (default: mixed; 'none' "
                       "runs fault-free and checks determinism)")
    chaos.add_argument("--episodes", type=int, default=3,
                       help="fault episodes per run (default: 3)")
    chaos.add_argument("--replicas", type=int, default=3,
                       help="replica-group size (default: 3)")
    chaos.add_argument("--no-hedging", action="store_true",
                       help="disable hedged reads in the primary run")
    chaos.add_argument("--compare-hedging", action="store_true",
                       help="re-run the identical schedule with hedging off "
                       "and gate on the p99 comparison")
    chaos.add_argument("--check-determinism", action="store_true",
                       help="replay the run and require a bit-identical "
                       "report digest (always on for empty schedules)")
    chaos.add_argument("--journal", default=None, metavar="PATH",
                       help="append schedule/episode/failover/report events "
                       "to this JSONL journal")

    fleet = sub.add_parser(
        "fleet",
        help="drive open-loop traffic through a sharded multi-tenant fleet",
        description="Builds a sharded cluster of engine personalities on "
        "one simulated clock, feeds it an open-loop arrival trace "
        "(diurnal / MMPP burst / flash-crowd) attributed to weighted, "
        "prioritized tenants, and sweeps oversubscription while checking "
        "the graceful-degradation contract: every most-protected tenant's "
        "p99 stays inside its SLO at every load level, per-tenant goodput "
        "degrades monotonically, and sheds land on low-priority traffic "
        "first.  Optionally autoscales (queue/grant-wait/shed signals, "
        "serverless cold-start cost) and composes with seeded chaos "
        "schedules.  Exits 1 if any contract is violated.",
    )
    from repro.workloads.arrivals import TRACE_KINDS

    fleet.add_argument("--shards", type=int, default=2,
                       help="initial shard count (default: 2)")
    fleet.add_argument("--tenants", type=int, default=4,
                       help="tenant count; priorities cycle 0/1/2 "
                       "(default: 4)")
    fleet.add_argument("--trace", choices=TRACE_KINDS, default="diurnal",
                       help="arrival trace shape (default: diurnal)")
    fleet.add_argument("--offered-tps", type=float, default=300.0,
                       help="base offered rate before oversubscription "
                       "(default: 300)")
    fleet.add_argument("--oversub", default="1,4,16", metavar="F1,F2,...",
                       help="oversubscription multipliers (default: 1,4,16)")
    fleet.add_argument("--duration", type=float, default=6.0,
                       help="simulated seconds per point (default: 6)")
    fleet.add_argument("--capacity", type=int, default=32,
                       help="concurrent transactions per shard (default: 32)")
    fleet.add_argument("--slo-ms", type=float, default=250.0,
                       help="per-tenant p99 SLO in ms (default: 250)")
    fleet.add_argument("--replication", type=int, default=1,
                       help="replicas per shard (default: 1)")
    fleet.add_argument("--autoscale", action="store_true",
                       help="enable the deterministic autoscaler")
    fleet.add_argument("--max-shards", type=int, default=16,
                       help="autoscaler ceiling (default: 16)")
    fleet.add_argument("--chaos", default=None, metavar="SCENARIO",
                       help="compose a seeded chaos schedule of this "
                       "scenario into every point")
    fleet.add_argument("--seed", type=int, default=0)
    fleet.add_argument("--jobs", type=_job_count, default=1,
                       help="sweep points simulated in parallel")
    fleet.add_argument("--journal", default=None, metavar="PATH",
                       help="append fleet-traffic events (spec digest + "
                       "full report) for resume")

    sub.add_parser(
        "backends", help="list engine personalities and their profiles"
    )

    corpus = sub.add_parser(
        "corpus",
        help="harvest a surrogate training corpus from the result cache",
        description="Walks the content-addressed result cache, turning "
        "each simulated entry into a (features -> metrics) training pair "
        "('export' writes them as JSON-lines; 'train' fits the ridge+kNN "
        "surrogate and prints its leave-one-out Q-error report).  Faulted "
        "and predicted entries are skipped; quarantined .corrupt-* files "
        "are counted, not fatal.",
    )
    corpus.add_argument("action", choices=("export", "train"))
    corpus.add_argument("-o", "--output", default=None, metavar="PATH",
                        help="corpus JSONL destination for 'export' "
                        "(default: corpus.jsonl)")
    corpus.add_argument("--model-out", default=None, metavar="PATH",
                        help="also serialize the fitted model ('train')")
    corpus.add_argument("--include-faulted", action="store_true",
                        help="keep fault-injected entries (excluded by "
                        "default: they measure recovery, not response)")
    _add_cache_options(corpus)

    whatif = sub.add_parser(
        "whatif",
        help="answer sizing queries from surrogate-or-cache interactively",
        description="Answers 'what would throughput be at these knobs?' "
        "without a sweep: cache hit if the exact config was measured, "
        "surrogate prediction when the model is confident, simulation "
        "fallback otherwise.  --cores/--llc-mb accept comma lists; the "
        "cross product is answered concurrently through the async API.",
    )
    whatif.add_argument("workload", choices=sorted(WORKLOADS))
    whatif.add_argument("scale_factor", type=int)
    whatif.add_argument("--cores", default="32", metavar="C1,C2,...")
    whatif.add_argument("--llc-mb", default="40", metavar="M1,M2,...")
    whatif.add_argument("--maxdop", type=int, default=None)
    whatif.add_argument("--grant-percent", type=float, default=25.0)
    whatif.add_argument("--duration", type=float, default=None,
                        help="simulated seconds (default: per-workload)")
    whatif.add_argument("--seed", type=int, default=0)
    whatif.add_argument("--model", default=None, metavar="PATH",
                        help="serialized surrogate model (default: train "
                        "from the result cache when possible)")
    whatif.add_argument("--uncertainty-threshold", type=float, default=0.35,
                        metavar="U",
                        help="surrogate answers above this uncertainty "
                        "fall through to simulation (default: 0.35)")
    whatif.add_argument("--no-simulation", action="store_true",
                        help="refuse rather than simulate when neither "
                        "cache nor surrogate can answer")
    _add_cache_options(whatif)

    figure = sub.add_parser("figure", help="regenerate a paper artifact")
    figure.add_argument(
        "name",
        choices=("table2", "table3", "fig5", "fig7"),
    )
    figure.add_argument("--duration-scale", type=float, default=0.3)
    _add_runner_options(figure)

    report = sub.add_parser(
        "report", help="run a reduced study and print a calibration report"
    )
    report.add_argument("--duration-scale", type=float, default=0.3)

    sub.add_parser("list", help="list workloads and scale factors")
    return parser


def _cmd_run(args) -> int:
    allocation = ResourceAllocation(
        logical_cores=args.cores,
        llc_mb=args.llc_mb,
        max_dop=args.maxdop,
        read_bw_limit=mb_per_s(args.read_limit_mb) if args.read_limit_mb else None,
        write_bw_limit=mb_per_s(args.write_limit_mb) if args.write_limit_mb else None,
        grant_percent=args.grant_percent,
        grant_timeout_s=args.grant_timeout,
        small_query_bypass_bytes=args.small_query_bypass_mb * 1024.0 * 1024.0,
        max_queue_depth=args.max_queue_depth,
        on_grant_timeout=args.on_grant_timeout,
    )
    duration = args.duration or duration_for(args.workload, args.scale_factor)
    backend, router, fleet = _resolve_backend_spec(args)
    m = run_experiment(args.workload, args.scale_factor, allocation=allocation,
                       duration=duration, seed=args.seed,
                       backend=backend, router=router, router_backends=fleet)
    rows = [
        ("primary metric", m.primary_metric),
        ("MPKI", m.mpki),
        ("SSD read MB/s", m.ssd_read_mb),
        ("SSD write MB/s", m.ssd_write_mb),
        ("DRAM read MB/s", m.dram_read_mb),
        ("SMT multiplier", m.smt_multiplier),
    ]
    if m.secondary_metric is not None:
        rows.insert(1, ("analytics QPH", m.secondary_metric))
    protection_on = (args.grant_timeout is not None
                     or args.small_query_bypass_mb > 0
                     or args.max_queue_depth is not None)
    if protection_on:
        rows += [
            ("grant waits", m.grant_waits),
            ("grant wait s", m.grant_wait_seconds),
            ("grant timeouts", m.grant_timeouts),
            ("grant degrades", m.grant_degrades),
            ("grant bypasses", m.grant_bypasses),
            ("grant queue peak", m.grant_queue_peak),
        ]
    print(format_table(
        ["metric", "value"], rows,
        title=f"{args.workload} SF={args.scale_factor} on {m.backend} "
        f"({duration:.0f}s simulated)",
    ))
    if m.router_policy is not None:
        placements = ", ".join(
            f"{name}={count}" for name, count in sorted(m.router_decisions.items())
        )
        print(f"router decisions: {placements} "
              f"(fallbacks: {m.router_fallbacks})")
    return 0


def _cmd_sweep(args) -> int:
    backend, router, fleet = _resolve_backend_spec(args)
    if args.axis == "cores":
        configs = core_sweep(args.workload, args.scale_factor,
                             duration_scale=args.duration_scale,
                             backend=backend, router=router,
                             router_backends=fleet)
        xs = list(CORE_SWEEP)
        x_label = "cores"
    else:
        configs = llc_sweep(args.workload, args.scale_factor,
                            duration_scale=args.duration_scale,
                            backend=backend, router=router,
                            router_backends=fleet)
        xs = list(LLC_SWEEP_MB)
        x_label = "llc_mb"
    cache = _resolve_cache(args)
    policy = _resolve_policy(args)
    if args.adaptive:
        from repro.surrogate import run_adaptive_sweep

        model = _resolve_surrogate_model(args, cache)
        if model is None:
            print("sweep --adaptive: no surrogate available (pass --model, "
                  "or --cache-dir with at least 2 harvestable entries)",
                  file=sys.stderr)
            return 2
        result = run_adaptive_sweep(
            configs, model, jobs=args.jobs, cache=cache, policy=policy,
            chunk=args.chunk, budget_fraction=args.budget_fraction,
        )
        measurements = result.measurements
        _print_cache_stats(cache)
        print(format_series(
            x_label, xs,
            {
                "perf": [m.primary_metric for m in measurements],
                "mpki": [m.mpki_model for m in measurements],
                "ssd_rd_MB/s": [m.ssd_read_mb for m in measurements],
            },
            title=f"{args.workload} SF={args.scale_factor}: {args.axis} "
            "sweep (adaptive)",
        ))
        marks = "".join("P" if m.is_predicted else "S" for m in measurements)
        print(f"provenance: {marks} (S=simulated, P=predicted)")
        print(f"adaptive-sweep: {result.summary()}")
        return 0
    if policy.on_error == "raise":
        measurements = run_sweep(configs, jobs=args.jobs, cache=cache,
                                 policy=policy, chunk=args.chunk)
    else:
        report = run_sweep_report(configs, jobs=args.jobs, cache=cache,
                                  policy=policy, chunk=args.chunk)
        xs = [x for x, m in zip(xs, report.measurements) if m is not None]
        measurements = report.successes()
        for failure in report.failures:
            print(f"failure: {failure.describe()}")
        print(f"sweep: {report.summary()}")
    _print_cache_stats(cache)
    print(format_series(
        x_label, xs,
        {
            "perf": [m.primary_metric for m in measurements],
            "mpki": [m.mpki_model for m in measurements],
            "ssd_rd_MB/s": [m.ssd_read_mb for m in measurements],
            "p99_ms": [m.p99_latency_ms for m in measurements],
            "p999_ms": [m.p999_latency_ms for m in measurements],
        },
        title=f"{args.workload} SF={args.scale_factor}: {args.axis} sweep",
    ))
    return 0


def _resolve_surrogate_model(args, cache):
    """A fitted surrogate from --model, else trained from the cache."""
    from repro.surrogate import SurrogateModel, harvest

    if getattr(args, "model", None):
        return SurrogateModel.load(args.model)
    if cache is None:
        return None
    corpus = harvest(cache)
    if len(corpus) < 2:
        return None
    model = SurrogateModel().fit(corpus)
    print(f"surrogate: trained on {model.trained_on} cached entries "
          f"({corpus.stats.summary()})")
    return model


def _cmd_corpus(args) -> int:
    """Corpus harvest/export/train (greppable: ``corpus-export:`` /
    ``corpus-train:`` markers; the CI whatif job asserts on them)."""
    from repro.surrogate import SurrogateModel, harvest

    cache = _resolve_cache(args)
    if cache is None:
        print("corpus: a result cache is required (--cache-dir or "
              "$REPRO_CACHE_DIR)", file=sys.stderr)
        return 2
    corpus = harvest(cache, include_faulted=args.include_faulted)
    print(f"corpus: {corpus.stats.summary()}")
    if args.action == "export":
        path = corpus.save(args.output or "corpus.jsonl")
        print(f"corpus-export: {len(corpus)} entries -> {path}")
        return 0
    if len(corpus) < 2:
        print("corpus train: need at least 2 harvested entries, got "
              f"{len(corpus)}", file=sys.stderr)
        return 1
    model = SurrogateModel().fit(corpus)
    report = model.q_error_report(corpus)
    print(format_table(
        ["target", "q50", "q90", "qmax"],
        [(name, f"{s['median']:.3f}", f"{s['p90']:.3f}", f"{s['max']:.3f}")
         for name, s in report.items()],
        title=f"Leave-one-out Q-error ({model.trained_on} entries)",
    ))
    top = model.coefficient_report()[:5]
    print("top coefficients: "
          + ", ".join(f"{name}={weight:.3f}" for name, weight in top))
    if args.model_out:
        print(f"model-saved: {model.save(args.model_out)}")
    print(f"corpus-train: {model.trained_on} entries, overall median "
          f"q-error {report['overall']['median']:.3f}")
    return 0


def _cmd_whatif(args) -> int:
    """Interactive sizing answers (greppable: ``whatif:`` per answer and
    a ``whatif-complete:`` source tally)."""
    import asyncio

    from repro.core.experiment import ExperimentConfig
    from repro.errors import ConfigurationError
    from repro.surrogate import WhatIfServer

    try:
        cores_axis = [int(c) for c in args.cores.split(",") if c.strip()]
        llc_axis = [int(m) for m in args.llc_mb.split(",") if m.strip()]
    except ValueError:
        print(f"invalid --cores/--llc-mb list: {args.cores!r} / "
              f"{args.llc_mb!r}", file=sys.stderr)
        return 2
    cache = _resolve_cache(args)
    model = _resolve_surrogate_model(args, cache)
    duration = args.duration or duration_for(args.workload, args.scale_factor)
    configs = [
        ExperimentConfig(
            workload=args.workload, scale_factor=args.scale_factor,
            allocation=ResourceAllocation(
                logical_cores=cores, llc_mb=llc, max_dop=args.maxdop,
                grant_percent=args.grant_percent,
            ),
            duration=duration, seed=args.seed,
        )
        for cores in cores_axis for llc in llc_axis
    ]
    try:
        server = WhatIfServer(
            model=model, cache=cache,
            uncertainty_threshold=args.uncertainty_threshold,
            allow_simulation=not args.no_simulation,
        )
        answers = asyncio.run(server.answer_many_async(configs))
    except ConfigurationError as exc:
        print(f"whatif: {exc}", file=sys.stderr)
        return 1
    for answer in answers:
        print("whatif: " + answer.describe())
    print(f"whatif-complete: {server.stats.summary()}")
    return 0


def _cmd_faults(args) -> int:
    """Fault-injection demo: one grid, five failure modes, one report.

    Output is line-oriented and greppable on purpose — the CI fault
    matrix asserts on ``sweep-complete:`` and ``resumed:`` markers.
    """
    from repro.core.experiment import ExperimentConfig
    from repro.core.runner import run_supervised
    from repro.faults import (
        CrashPoint,
        StorageBrownout,
        TransientWriteErrors,
        WorkerCrash,
        WorkerStall,
    )

    d = args.duration
    # At the default jobs=2 the worker crash breaks the pool in the very
    # first pair, exercising quarantine + rebuild up front; the stall runs
    # last so every other point is already measured when its timeout hits.
    grid = [
        ("worker-crash", (WorkerCrash(attempts=1),)),
        ("clean", ()),
        ("brownout", (StorageBrownout(start=0.25 * d, duration=0.5 * d,
                                      write_factor=0.01),)),
        ("io-errors", (TransientWriteErrors(start=0.25 * d, duration=0.25 * d),)),
        ("crash-recover", (CrashPoint(at=0.5 * d),)),
        ("worker-stall", (WorkerStall(seconds=args.stall_seconds, attempts=1),)),
    ]
    configs = [
        ExperimentConfig(workload="asdb", scale_factor=2000, duration=d,
                         seed=seed, faults=faults)
        for seed, (_, faults) in enumerate(grid)
    ]
    cache = _resolve_cache(args)
    policy = _resolve_policy(args)
    report = run_supervised(configs, jobs=args.jobs, cache=cache, policy=policy,
                            chunk=args.chunk)
    resumed = cache is not None and report.cache_hits > 0
    print(f"supervision: {report.summary()}")
    for failure in report.failures:
        print(f"failure: {failure.describe()}")
    for (label, _), measurement in zip(grid, report.measurements):
        if measurement is None:
            print(f"point {label}: no measurement")
            continue
        line = f"point {label}: tps={measurement.primary_metric:.2f}"
        summary = measurement.fault_summary
        if summary:
            line += (f" wal_retries={summary['wal_flush_retries']:.0f}"
                     f" recoveries={summary['crash_recoveries']:.0f}"
                     f" io_faults={summary['write_faults_injected']:.0f}")
        print(line)
    _print_cache_stats(cache)
    if resumed:
        print(f"resumed: {report.cache_hits} points served from cache")
    print(f"sweep-complete: {len(report.successes())}/{len(configs)}")
    return 0


def _cmd_admission(args) -> int:
    """Overload-protection demo: §10 policies under oversubscription.

    Output is line-oriented and greppable on purpose — the CI overload
    matrix asserts on ``admission-complete:`` and
    ``monotone-degradation:`` markers.
    """
    from repro.core.admission import ADMISSION_POLICIES, sweep_admission_policies

    try:
        levels = tuple(int(x) for x in args.oversub.split(",") if x.strip())
    except ValueError:
        print(f"invalid --oversub list: {args.oversub!r}", file=sys.stderr)
        return 2
    policies = (ADMISSION_POLICIES if args.admission_policy == "all"
                else (args.admission_policy,))
    sweep = sweep_admission_policies(
        scale_factor=args.scale_factor,
        oversubscription=levels,
        policies=policies,
        base_streams=args.base_streams,
        duration_scale=args.duration_scale,
        seed=args.seed,
        grant_timeout_s=args.grant_timeout,
    )
    print(format_table(
        ["policy", "oversub", "streams", "QPS", "QPS/stream", "waits",
         "wait s", "timeouts", "degrades", "queue peak"],
        [(p.policy, f"{p.oversubscription}x", p.streams,
          f"{p.qps:.4f}", f"{p.per_stream_qps:.5f}", p.grant_waits,
          f"{p.grant_wait_seconds:.0f}", p.grant_timeouts, p.grant_degrades,
          p.grant_queue_peak) for p in sweep.points],
        title=f"Admission policies, TPC-H SF={sweep.scale_factor} "
        f"({sweep.duration:.0f}s simulated per point)",
    ))
    for policy in policies:
        ladder = sweep.points_for(policy)
        marker = "ok" if sweep.monotone_degradation(policy) else "VIOLATED"
        print(f"policy {policy}: per-stream "
              + " -> ".join(f"{p.per_stream_qps:.5f}" for p in ladder)
              + f" [{marker}]")
    monotone = sweep.monotone_degradation()
    print(f"admission-complete: {len(sweep.points)} points")
    print(f"monotone-degradation: {'ok' if monotone else 'VIOLATED'}")
    return 0 if monotone else 1


def _cmd_route(args) -> int:
    """Cross-backend comparison tables (greppable, like faults/admission).

    The CI router matrix asserts on ``route-complete:`` and
    ``router-floor:`` markers.
    """
    from repro.backends import DEFAULT_ROUTER_BACKENDS
    from repro.backends.compare import (
        ROUTE_CORE_AXIS,
        compare_admission,
        compare_fig2,
    )

    fleet = DEFAULT_ROUTER_BACKENDS
    if args.backends:
        fleet = tuple(b.strip() for b in args.backends.split(",") if b.strip())

    if args.target == "fig2":
        cores = ROUTE_CORE_AXIS
        if args.cores:
            try:
                cores = tuple(int(c) for c in args.cores.split(",") if c.strip())
            except ValueError:
                print(f"invalid --cores list: {args.cores!r}", file=sys.stderr)
                return 2
        cache = _resolve_cache(args)
        figure = compare_fig2(
            workload=args.workload,
            scale_factor=args.scale_factor,
            cores=cores,
            duration_scale=args.duration_scale or 0.25,
            backends=fleet,
            policy=args.policy,
            jobs=args.jobs,
            cache=cache,
            supervision=_resolve_policy(args),
        )
        print(format_series(
            "cores", list(figure.xs),
            {label: [m.primary_metric for m in figure.series[label]]
             for label in figure.labels},
            title=f"{figure.workload} SF={figure.scale_factor}: core sweep "
            f"per backend (primary metric)",
        ))
        for label, totals in figure.routing_summary().items():
            placements = ", ".join(f"{n}={c}" for n, c in sorted(totals.items()))
            fallbacks = sum(m.router_fallbacks for m in figure.series[label])
            print(f"{label} decisions: {placements} (fallbacks: {fallbacks})")
        _print_cache_stats(cache)
        points = len(figure.xs) * len(figure.labels)
        print(f"route-complete: fig2 {points} points")
        return 0

    policies = tuple(args.admission_policies or ("immediate", "queued"))
    try:
        levels = tuple(int(x) for x in args.oversub.split(",") if x.strip())
    except ValueError:
        print(f"invalid --oversub list: {args.oversub!r}", file=sys.stderr)
        return 2
    comparison = compare_admission(
        scale_factor=args.scale_factor,
        oversubscription=levels,
        policies=policies,
        duration_scale=args.duration_scale or 0.1,
        seed=args.seed,
        grant_timeout_s=args.grant_timeout,
        backends=fleet,
        policy=args.policy,
    )
    rows = []
    for label in comparison.labels:
        for p in comparison.sweeps[label].points:
            rows.append((label, p.policy, f"{p.oversubscription}x", p.streams,
                         f"{p.qps:.4f}", f"{p.per_stream_qps:.5f}",
                         p.grant_waits, p.grant_degrades))
    print(format_table(
        ["backend", "policy", "oversub", "streams", "QPS", "QPS/stream",
         "waits", "degrades"],
        rows,
        title=f"Admission policies per backend, TPC-H "
        f"SF={args.scale_factor}",
    ))
    for violation in comparison.floor_violations():
        print(f"floor violation: {violation}")
    total = sum(len(s.points) for s in comparison.sweeps.values())
    print(f"route-complete: admission {total} points")
    print(f"router-floor: {'ok' if comparison.router_floor_ok else 'VIOLATED'}")
    return 0 if comparison.router_floor_ok else 1


def _cmd_backends(_args) -> int:
    from repro.backends import backend_names, make_backend

    rows = []
    for name in backend_names():
        profile = make_backend(name).resource_profile()
        rows.append((
            name,
            f"{profile.scan_bandwidth_score:.2f}",
            f"{profile.point_lookup_score:.2f}",
            f"{profile.parallel_efficiency:.2f}",
            f"{profile.memory_elasticity:.2f}",
            f"{profile.startup_seconds:.2f}",
        ))
    print(format_table(
        ["backend", "scan", "point", "parallel", "elastic", "startup s"],
        rows,
        title="Engine personalities (resource profiles)",
    ))
    print("router policies: rule-based, cost-scored, always-<backend>")
    return 0


def _cmd_figure(args) -> int:
    from repro.core import figures
    cache = _resolve_cache(args)
    if args.name == "table2":
        rows = figures.table2()
        print(format_table(
            ["workload", "SF", "data GB", "paper", "index GB", "paper", "fits"],
            [(r.workload, r.scale_factor, r.data_gb, r.paper_data_gb,
              r.index_gb, r.paper_index_gb, r.fits_in_memory) for r in rows],
            title="Table 2",
        ))
    elif args.name == "table3":
        result = figures.table3(duration_scale=args.duration_scale,
                                jobs=args.jobs, cache=cache)
        _print_cache_stats(cache)
        print(format_table(
            ["wait type", "ratio 15000/5000"],
            sorted(result.ratios.items()),
            title="Table 3 (paper: LOCK 0.15, PAGELATCH 0.56, PAGEIOLATCH 74.61)",
        ))
    elif args.name == "fig5":
        result = figures.fig5_read_limits(duration_scale=args.duration_scale,
                                          jobs=args.jobs, cache=cache)
        _print_cache_stats(cache)
        print(format_series("limit_MB/s", result.limits_mb, {"qps": result.qps},
                            title="Fig 5"))
        print(f"linear-model savings: {result.comparison.savings_fraction:.0%}")
    elif args.name == "fig7":
        result = figures.fig7_q20_plans()
        print("Fig 7a — serial plan:\n" + result.serial_plan_text)
        print("\nFig 7b — MAXDOP=32 plan:\n" + result.parallel_plan_text)
        print("\n" + result.diff_summary)
    return 0


def _cmd_report(args) -> int:
    """A one-command paper-vs-measured summary (the headline numbers)."""
    scale = args.duration_scale
    rows = []

    def ratio(workload, sf, duration):
        hi = run_experiment(workload, sf,
                            allocation=ResourceAllocation(logical_cores=16),
                            duration=duration)
        full = run_experiment(workload, sf, duration=duration)
        return hi.primary_metric / full.primary_metric, full

    for sf, paper in ((10, 1.72), (30, 1.27), (100, 0.93), (300, 0.82)):
        measured, _ = ratio("tpch", sf, duration_for("tpch", sf, scale))
        rows.append((f"TPC-H SF={sf} perf16/perf32", f"{measured:.2f}", paper))

    asdb16 = run_experiment("asdb", 2000,
                            allocation=ResourceAllocation(logical_cores=16),
                            duration=duration_for("asdb", 2000, scale))
    asdb32 = run_experiment("asdb", 2000,
                            duration=duration_for("asdb", 2000, scale))
    rows.append(("ASDB HT gain",
                 f"{(asdb32.primary_metric / asdb16.primary_metric - 1):.1%}",
                 "5-6.8%"))

    tpce = {sf: run_experiment("tpce", sf,
                               duration=duration_for("tpce", sf, scale))
            for sf in (5000, 15000)}
    rows.append(("TPC-E TPS(15000) > TPS(5000)",
                 tpce[15000].primary_metric > tpce[5000].primary_metric, True))
    from repro.engine.locks import WaitType
    lock_ratio = (tpce[15000].wait_times[WaitType.LOCK]
                  / max(1e-9, tpce[5000].wait_times[WaitType.LOCK]))
    rows.append(("Table 3 LOCK ratio", f"{lock_ratio:.2f}", 0.15))
    print(format_table(["check", "measured", "paper"], rows,
                       title="Calibration report (reduced durations)"))
    return 0


def _cmd_list(_args) -> int:
    print(format_table(
        ["workload", "scale factors", "default duration (s)"],
        [
            (w, ", ".join(str(sf) for ww, sf in STUDY_MATRIX if ww == w),
             duration_for(w, next(sf for ww, sf in STUDY_MATRIX if ww == w)))
            for w in sorted(WORKLOADS)
        ],
        title="Available workloads (paper study matrix)",
    ))
    return 0


def _cmd_chaos(args) -> int:
    from repro.core.journal import SweepJournal
    from repro.faults.chaos import ChaosConfig, run_chaos

    if args.seeds:
        seeds = [int(s) for s in args.seeds.split(",") if s.strip()]
    else:
        seeds = [args.seed]
    journal = SweepJournal(args.journal) if args.journal else None
    violations = 0
    for seed in seeds:
        config = ChaosConfig(
            seed=seed,
            duration=args.duration,
            replicas=args.replicas,
            scenario=args.scenario,
            episodes=args.episodes,
            hedging=not args.no_hedging,
        )
        report = run_chaos(
            config,
            journal=journal,
            compare_hedging=args.compare_hedging,
            check_determinism=True if args.check_determinism else None,
        )
        print(f"chaos-schedule: seed={seed} scenario={args.scenario} "
              f"episodes={len(report.schedule)}")
        for episode in report.schedule:
            print(f"  t={episode.at:7.3f}s {episode.kind:<9} "
                  f"replica={episode.replica} duration={episode.duration:.3f}s")
        fleet = report.fleet
        print(f"  writes acked={int(fleet.get('writes_acked', 0))} "
              f"failovers={int(fleet.get('failovers', 0))} "
              f"epoch={int(fleet.get('epoch', 0))} "
              f"unavailable={fleet.get('unavailable_seconds', 0.0):.3f}s")
        hedging = report.hedging
        print(f"  reads={int(hedging.get('reads', 0))} "
              f"hedges={int(hedging.get('hedges', 0))} "
              f"hedge_wins={int(hedging.get('hedge_wins', 0))}")
        if report.failover_windows:
            worst = max(report.failover_windows)
            print(f"  failover windows: worst={worst:.3f}s "
                  f"bound={report.availability_bound:.3f}s")
        if report.read_p99 is not None:
            line = f"  read p99: {report.read_p99 * 1000.0:.2f}ms"
            if report.unhedged_read_p99 is not None:
                line += f" (unhedged {report.unhedged_read_p99 * 1000.0:.2f}ms)"
            print(line)
        for line in report.summary_lines():
            print(line)
        print(f"chaos-complete: seed={seed} ok={report.ok} "
              f"digest={report.digest[:16]}")
        if not report.ok:
            violations += 1
            print(f"chaos-violation: seed={seed} "
                  f"invariants={','.join(report.violations())}",
                  file=sys.stderr)
    return 1 if violations else 0


def _cmd_fleet(args) -> int:
    """Fleet-traffic sweep with the graceful-degradation contract.

    Output is line-oriented and greppable on purpose — the CI SLO
    matrix asserts on ``fleet-complete:``, ``slo-invariant:``,
    ``monotone-degradation:``, and ``shed-fairness:`` markers.
    """
    from repro.engine.statistics import dm_fleet_slo
    from repro.fleet.autoscale import AutoscalePolicy
    from repro.fleet.cluster import (
        FleetSpec,
        default_tenants,
        fleet_oversubscription_sweep,
    )
    from repro.workloads.arrivals import ArrivalSpec

    try:
        levels = tuple(float(x) for x in args.oversub.split(",") if x.strip())
    except ValueError:
        print(f"invalid --oversub list: {args.oversub!r}", file=sys.stderr)
        return 2
    autoscale = None
    if args.autoscale:
        autoscale = AutoscalePolicy(min_shards=args.shards,
                                    max_shards=args.max_shards,
                                    cooldown_s=2.0)
    spec = FleetSpec(
        shards=args.shards,
        duration=args.duration,
        seed=args.seed,
        arrival=ArrivalSpec(offered_tps=args.offered_tps, trace=args.trace),
        tenants=default_tenants(args.tenants, slo_p99_ms=args.slo_ms),
        capacity_per_shard=args.capacity,
        replication=args.replication,
        autoscale=autoscale,
    )
    schedule = ()
    if args.chaos:
        from repro.faults.chaos import SCENARIOS, generate_schedule

        if args.chaos not in SCENARIOS:
            print(f"unknown chaos scenario: {args.chaos!r} "
                  f"(choose from {', '.join(sorted(SCENARIOS))})",
                  file=sys.stderr)
            return 2
        kinds = SCENARIOS[args.chaos]
        if kinds:
            schedule = generate_schedule(
                seed=args.seed, duration=args.duration, kinds=kinds,
                replicas=args.shards, episodes=3,
            )
    sweep = fleet_oversubscription_sweep(
        spec, oversubscription=levels, jobs=args.jobs,
        journal=args.journal, schedule=schedule,
    )
    for oversub, report in zip(sweep.oversubscription, sweep.reports):
        rows = [
            (row.tenant, row.priority, row.arrivals, row.shed, row.governed,
             f"{row.goodput_tps:.1f}", f"{row.p50_ms:.1f}",
             f"{row.p99_ms:.1f}", f"{row.p999_ms:.1f}",
             "ok" if row.slo_ok else "VIOLATED")
            for row in dm_fleet_slo(report)
        ]
        print(format_table(
            ["tenant", "prio", "arrivals", "shed", "governed", "tps",
             "p50ms", "p99ms", "p999ms", "slo"],
            rows,
            title=f"{oversub:g}x oversubscription: "
            f"{report.offered_tps:.0f} tps offered over {report.trace}, "
            f"{report.shards_initial}->{report.shards_peak} shards",
        ))
        scaling = report.scaling
        if scaling.get("decisions"):
            print(f"  autoscaler: {scaling['scale_outs']} out / "
                  f"{scaling['scale_ins']} in, reaction "
                  f"{report.reaction_seconds:.3f}s"
                  if report.reaction_seconds is not None else
                  f"  autoscaler: {scaling['scale_outs']} out / "
                  f"{scaling['scale_ins']} in")
        for episode in report.episodes:
            print(f"  chaos t={episode['at']:7.3f}s {episode['kind']:<9} "
                  f"shard={episode['shard']}")
    if sweep.resumed:
        print(f"  resumed {sweep.resumed} point(s) from journal")
    slo_ok = sweep.slo_invariant()
    monotone = sweep.monotone_degradation()
    fairness = sweep.shed_fairness()
    for line in sweep.slo_violations():
        print(f"slo-violation: {line}", file=sys.stderr)
    print(f"fleet-complete: {len(sweep.reports)} points seed={args.seed} "
          f"trace={args.trace}")
    print(f"slo-invariant: {'ok' if slo_ok else 'VIOLATED'}")
    print(f"monotone-degradation: {'ok' if monotone else 'VIOLATED'}")
    print(f"shed-fairness: {'ok' if fairness else 'VIOLATED'}")
    return 0 if (slo_ok and monotone and fairness) else 1


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    handlers = {
        "run": _cmd_run,
        "sweep": _cmd_sweep,
        "faults": _cmd_faults,
        "admission": _cmd_admission,
        "route": _cmd_route,
        "chaos": _cmd_chaos,
        "fleet": _cmd_fleet,
        "backends": _cmd_backends,
        "corpus": _cmd_corpus,
        "whatif": _cmd_whatif,
        "figure": _cmd_figure,
        "report": _cmd_report,
        "list": _cmd_list,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
