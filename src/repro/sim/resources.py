"""Shared resources with queueing for the simulation kernel.

Three resource disciplines cover everything the hardware and engine models
need:

* :class:`FcfsServer` — *c* identical servers with a FIFO queue (used for
  lock grants and admission control),
* :class:`ProcessorSharingServer` — a fluid capacity shared equally among
  active jobs (used for cores and for bandwidth-shared devices),
* :class:`TokenBucket` — a rate limiter (used for cgroup blkio read/write
  bandwidth caps and DRAM channel limits).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Generator, Optional

from repro.errors import SimulationError
from repro.sim.process import Simulator, Timeout, WaitEvent


class FcfsServer:
    """*capacity* identical servers with a FIFO wait queue.

    Usage from a process generator::

        yield from server.acquire()
        ...  # hold
        server.release()
    """

    def __init__(self, sim: Simulator, capacity: int, name: str = "fcfs"):
        if capacity < 1:
            raise SimulationError(f"{name}: capacity must be >= 1, got {capacity}")
        self._sim = sim
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._queue: Deque[WaitEvent] = deque()
        # Accounting for wait-time analyses (e.g. Table 3 lock waits).
        self.total_wait_time = 0.0
        self.total_acquisitions = 0

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    def set_capacity(self, capacity: int) -> None:
        """Change the server count at runtime (e.g. core offlining).

        Shrinking never preempts holders: ``in_use`` may exceed the new
        capacity until enough releases drain it, after which grants
        follow the new limit.  Growing wakes queued waiters immediately.
        """
        if capacity < 1:
            raise SimulationError(f"{self.name}: capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        # Wake one queued waiter per newly-free slot (each increments
        # in_use itself when it resumes, so count the grants locally).
        for _ in range(min(len(self._queue), max(0, self.capacity - self._in_use))):
            self._queue.popleft().trigger()

    def acquire(self) -> Generator:
        """Generator: suspends until a server slot is free."""
        start = self._sim.now
        if self._in_use < self.capacity and not self._queue:
            self._in_use += 1
        else:
            gate = self._sim.event()
            self._queue.append(gate)
            yield gate
            self._in_use += 1
        self.total_wait_time += self._sim.now - start
        self.total_acquisitions += 1
        return None

    def release(self) -> None:
        if self._in_use <= 0:
            raise SimulationError(f"{self.name}: release without acquire")
        self._in_use -= 1
        if self._queue and self._in_use < self.capacity:
            self._queue.popleft().trigger()


class ProcessorSharingServer:
    """A fluid resource of fixed total capacity shared equally by jobs.

    A job submits an amount of *work* (in capacity-units × seconds at full
    speed).  While *n* jobs are active each receives ``capacity / n`` of the
    rate.  Completion times are recomputed whenever the active set changes,
    which makes the model exact for egalitarian processor sharing.
    """

    class _Job:
        __slots__ = ("remaining", "gate", "event")

        def __init__(self, remaining: float, gate: WaitEvent):
            self.remaining = remaining
            self.gate = gate
            self.event = None

    def __init__(self, sim: Simulator, capacity: float, name: str = "ps"):
        if capacity <= 0:
            raise SimulationError(f"{name}: capacity must be positive")
        self._sim = sim
        self.capacity = capacity
        self.name = name
        self._jobs: Dict[int, ProcessorSharingServer._Job] = {}
        self._next_id = 0
        self._last_update = 0.0
        self.total_work_done = 0.0

    @property
    def active_jobs(self) -> int:
        return len(self._jobs)

    def _rate_per_job(self) -> float:
        n = len(self._jobs)
        return self.capacity / n if n else 0.0

    def _advance(self) -> None:
        """Drain elapsed progress into every active job."""
        now = self._sim.now
        elapsed = now - self._last_update
        if elapsed > 0 and self._jobs:
            rate = self._rate_per_job()
            for job in self._jobs.values():
                done = rate * elapsed
                job.remaining = max(0.0, job.remaining - done)
                self.total_work_done += done
        self._last_update = now

    def _reschedule(self) -> None:
        """Re-arm each job's completion event for the new sharing rate."""
        rate = self._rate_per_job()
        for job_id, job in list(self._jobs.items()):
            if job.event is not None:
                job.event.cancel()
            delay = job.remaining / rate if rate > 0 else float("inf")
            job.event = self._sim.loop.schedule_after(
                delay, lambda ev, jid=job_id: self._complete(jid)
            )

    def _complete(self, job_id: int) -> None:
        self._advance()
        job = self._jobs.pop(job_id, None)
        if job is None:
            return
        self._reschedule()
        job.gate.trigger()

    def submit(self, work: float) -> Generator:
        """Generator: suspends until *work* capacity-seconds are served."""
        if work < 0:
            raise SimulationError(f"{self.name}: negative work {work}")
        if work == 0:
            return None
        self._advance()
        gate = self._sim.event()
        job = ProcessorSharingServer._Job(work, gate)
        self._jobs[self._next_id] = job
        self._next_id += 1
        self._reschedule()
        yield gate
        return None


class TokenBucket:
    """A byte-rate limiter with optional burst capacity.

    ``consume(nbytes)`` suspends the calling process until *nbytes* of
    tokens have accumulated.  With ``rate=None`` the bucket is unlimited and
    never blocks — this models an uncapped cgroup.
    Requests are served FIFO, so a large request cannot be starved.
    """

    def __init__(
        self,
        sim: Simulator,
        rate: Optional[float],
        burst: float = 0.0,
        name: str = "bucket",
    ):
        if rate is not None and rate <= 0:
            raise SimulationError(f"{name}: rate must be positive or None")
        self._sim = sim
        self.rate = rate
        self.burst = max(0.0, burst)
        self.name = name
        self._tokens = self.burst
        self._last_refill = 0.0
        self._queue: Deque = deque()
        self._timer = None
        self.total_consumed = 0.0
        # In-flight head request, for smooth consumption accounting:
        # (start_time, finish_time, nbytes).
        self._in_flight = None

    def set_rate(self, rate: Optional[float]) -> None:
        """Change the cap at runtime (models rewriting the cgroup limit)."""
        self._refill()
        if rate is not None and rate <= 0:
            raise SimulationError(f"{self.name}: rate must be positive or None")
        self.rate = rate
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        self._kick()

    def _refill(self) -> None:
        now = self._sim.now
        if self.rate is not None:
            self._tokens += self.rate * (now - self._last_refill)
            # The burst cap only applies while the bucket is idle; a pending
            # request may accumulate an arbitrarily large budget (it will be
            # consumed in full the moment it is served).
            if not self._queue:
                self._tokens = min(self.burst, self._tokens)
        self._last_refill = now

    @property
    def served_bytes(self) -> float:
        """Bytes served so far, with the in-flight request interpolated
        linearly — keeps 1-second counter sampling smooth without having
        to split large transfers into many events."""
        total = self.total_consumed
        if self._in_flight is not None:
            start, finish, nbytes = self._in_flight
            span = finish - start
            if span > 0:
                progress = min(1.0, max(0.0, (self._sim.now - start) / span))
                total += nbytes * progress
        return total

    def consume(self, nbytes: float) -> Generator:
        """Generator: suspends until *nbytes* of budget is available.

        ``total_consumed`` is credited when the request is *served*, not
        when it is enqueued, so per-interval rates derived from it never
        exceed the configured cap.
        """
        if nbytes < 0:
            raise SimulationError(f"{self.name}: negative consume {nbytes}")
        if self.rate is None or nbytes == 0:
            self.total_consumed += nbytes
            return None
        # Apply the idle burst cap *before* enqueuing: once a request is
        # pending, accumulated tokens are uncapped (they'll be consumed),
        # so an idle period must not bank unlimited credit.
        self._refill()
        gate = self._sim.event()
        self._queue.append((nbytes, gate))
        self._kick()
        yield gate
        self.total_consumed += nbytes
        return None

    def _kick(self) -> None:
        if self._timer is None:
            self._drain()

    def _drain(self) -> None:
        self._refill()
        while self._queue:
            nbytes, gate = self._queue[0]
            if self.rate is None:
                self._queue.popleft()
                gate.trigger()
                continue
            # Tolerate float rounding: a sub-byte deficit (or one below a
            # relative epsilon) is considered satisfied — otherwise the
            # timer delay can fall below the clock's representable
            # resolution and the drain loop would never advance time.
            if self._tokens >= nbytes - max(1.0, nbytes * 1e-9):
                self._tokens = max(0.0, self._tokens - nbytes)
                self._queue.popleft()
                gate.trigger()
                continue
            deficit = nbytes - self._tokens
            # Clamp the delay to something the simulation clock can
            # resolve at any plausible magnitude of `now`.
            delay = max(deficit / self.rate, 1e-9)
            self._in_flight = (self._sim.now, self._sim.now + delay, nbytes)
            self._timer = self._sim.loop.schedule_after(delay, self._on_timer)
            return
        self._in_flight = None

    def _on_timer(self, _event) -> None:
        self._timer = None
        self._in_flight = None
        self._drain()
