"""The fault injector: turns fault specs into scheduled simulator events.

One :class:`FaultInjector` is built per experiment (when the config
carries simulation-level faults), bound to the run's machine and engine.
``install()`` spawns one driver process per fault; every driver is
deterministic — timings come from the spec, and any randomness (the
transient-error coin flips) draws from the machine's seeded
``faults.io`` stream, so a faulted run is exactly reproducible and
cacheable.

The injector keeps a human-readable event log plus a counter summary
that the experiment attaches to its
:class:`~repro.core.measurement.Measurement`, making fault activity an
observable of the run rather than a side effect.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Sequence, Tuple

from repro.engine.engine import SqlEngine
from repro.errors import FaultInjectionError
from repro.faults.recovery import WalImage, recover, verify_committed_durable
from repro.faults.spec import (
    CoreOffline,
    CrashPoint,
    GrantStorm,
    SimulationFault,
    StorageBrownout,
    TransientWriteErrors,
)
from repro.hardware.machine import Machine
from repro.sim.process import Timeout


class FaultInjector:
    """Drives a set of simulation-level faults against one live run."""

    def __init__(
        self,
        machine: Machine,
        engine: Optional[SqlEngine] = None,
        faults: Sequence[SimulationFault] = (),
    ):
        self.machine = machine
        self.engine = engine
        self.faults = tuple(faults)
        self.events: List[Tuple[float, str]] = []
        self.crash_recoveries = 0
        self.replayed_records = 0
        self.storm_grants = 0
        self.storm_rejections = 0
        self._error_windows = 0
        self._rng = machine.streams.get("faults.io")

    # -- lifecycle ------------------------------------------------------------

    def install(self) -> None:
        """Spawn one driver process per fault spec."""
        for fault in self.faults:
            if isinstance(fault, StorageBrownout):
                self.machine.sim.spawn(self._drive_brownout(fault),
                                       name="fault-brownout")
            elif isinstance(fault, TransientWriteErrors):
                self.machine.sim.spawn(self._drive_write_errors(fault),
                                       name="fault-io-errors")
            elif isinstance(fault, CoreOffline):
                self.machine.sim.spawn(self._drive_core_offline(fault),
                                       name="fault-core-offline")
            elif isinstance(fault, CrashPoint):
                self.machine.sim.spawn(self._drive_crash(fault),
                                       name="fault-crash")
            elif isinstance(fault, GrantStorm):
                self.machine.sim.spawn(self._drive_grant_storm(fault),
                                       name="fault-grant-storm")
            else:
                raise FaultInjectionError(
                    f"no driver for simulation fault {type(fault).__name__}"
                )

    def _log(self, message: str) -> None:
        self.events.append((self.machine.sim.now, message))

    # -- drivers ---------------------------------------------------------------

    def _drive_brownout(self, fault: StorageBrownout) -> Generator:
        yield Timeout(fault.start)
        self.machine.ssd.apply_brownout(fault.read_factor, fault.write_factor,
                                        fault.latency_factor)
        self._log(f"brownout on: read x{fault.read_factor}, "
                  f"write x{fault.write_factor}")
        yield Timeout(fault.duration)
        self.machine.ssd.clear_brownout()
        self._log("brownout cleared")
        return None

    def _drive_write_errors(self, fault: TransientWriteErrors) -> Generator:
        yield Timeout(fault.start)
        device = self.machine.ssd
        window_end = self.machine.sim.now + fault.duration

        def should_fail() -> bool:
            if self.machine.sim.now >= window_end:
                return False
            if fault.failure_rate >= 1.0:
                return True
            return bool(self._rng.random() < fault.failure_rate)

        device.set_write_error_predicate(should_fail)
        self._error_windows += 1
        self._log(f"write-error window open (rate {fault.failure_rate})")
        yield Timeout(fault.duration)
        device.set_write_error_predicate(None)
        self._log("write-error window closed")
        return None

    def _drive_core_offline(self, fault: CoreOffline) -> Generator:
        if self.engine is None:
            raise FaultInjectionError("core offlining needs an engine")
        yield Timeout(fault.at)
        original = frozenset(self.machine.cpuset.cpus)
        if fault.remaining_logical >= len(original):
            raise FaultInjectionError(
                f"cannot offline to {fault.remaining_logical} CPUs: "
                f"cpuset already has {len(original)}"
            )
        self.machine.cpuset.set_paper_allocation(fault.remaining_logical)
        self.engine.sqlos.rebind_cpuset()
        self._log(f"cores offlined: {len(original)} -> {fault.remaining_logical}")
        if fault.duration > 0:
            yield Timeout(fault.duration)
            self.machine.cpuset.set_cpus(original)
            self.engine.sqlos.rebind_cpuset()
            self._log(f"cores restored: {len(original)}")
        return None

    def _drive_crash(self, fault: CrashPoint) -> Generator:
        if self.engine is None:
            raise FaultInjectionError("crash recovery needs an engine")
        yield Timeout(fault.at)
        wal = self.engine.wal
        checkpoint = self.engine.checkpoint
        image = WalImage.capture(wal, checkpoint_lsn=checkpoint.checkpoint_lsn)
        result = recover(image)
        # WAL-level ground truth: a commit is acknowledged exactly when
        # its record becomes durable, so the durable set *is* the
        # committed set — recovery must cover it (recover() enforces
        # this; verify_committed_durable re-checks via txn ids).
        verify_committed_durable(
            (r.txn_id for r in image.durable_records if r.txn_id >= 0), result
        )
        self.crash_recoveries += 1
        self.replayed_records += result.replayed
        self._log(
            f"crash/recover: {len(image.durable_records)} durable, "
            f"{result.replayed} replayed past checkpoint LSN "
            f"{image.checkpoint_lsn}, {result.lost_uncommitted} in-flight dropped"
        )
        return None

    def _drive_grant_storm(self, fault: GrantStorm) -> Generator:
        if self.engine is None:
            raise FaultInjectionError("a grant storm needs an engine")
        yield Timeout(fault.at)
        semaphore = self.engine.semaphore
        nbytes = semaphore.pool_bytes * fault.pool_fraction
        for index in range(fault.queries):
            self.machine.sim.spawn(
                self._storm_query(semaphore, nbytes, fault.hold_seconds, index),
                name=f"storm-query-{index}",
            )
        self._log(
            f"grant storm: {fault.queries} requests x {nbytes:.0f} B, "
            f"held {fault.hold_seconds}s"
        )
        return None

    def _storm_query(self, semaphore, nbytes: float, hold: float,
                     index: int) -> Generator:
        """One storm participant: acquire, hold, release.

        Goes through the same acquire path as real queries, so storm
        requests queue, time out, and degrade under the governor's
        policy like any other — and always release what they charged.
        """
        try:
            ticket = yield from semaphore.acquire(nbytes, name=f"storm-{index}")
        except Exception:
            self.storm_rejections += 1
            self._log(f"storm-{index}: rejected at admission")
            return None
        self.storm_grants += 1
        try:
            yield Timeout(hold)
        finally:
            semaphore.release(ticket)
        return None

    # -- reporting -------------------------------------------------------------

    def summary(self) -> Dict[str, float]:
        """Counters for the measurement's fault summary."""
        wal_retries = self.engine.wal.total_flush_retries if self.engine else 0
        return {
            "faults_installed": float(len(self.faults)),
            "write_faults_injected": float(self.machine.ssd.write_faults_injected),
            "wal_flush_retries": float(wal_retries),
            "crash_recoveries": float(self.crash_recoveries),
            "replayed_records": float(self.replayed_records),
            "storm_grants": float(self.storm_grants),
            "storm_rejections": float(self.storm_rejections),
            "events": float(len(self.events)),
        }
