"""Table 2: database scale factors and initial sizes."""

from repro.core.figures import table2
from repro.core.report import format_table


def test_table2_sizes(benchmark, emit):
    rows = benchmark(table2)
    body = format_table(
        ["workload", "SF", "data GB", "paper", "index GB", "paper", "fits in 64 GB"],
        [
            (r.workload, r.scale_factor, r.data_gb, r.paper_data_gb,
             r.index_gb, r.paper_index_gb, r.fits_in_memory)
            for r in rows
        ],
    )
    emit("Table 2 — database sizes (measured vs paper)", body)
    for r in rows:
        assert abs(r.data_gb - r.paper_data_gb) / r.paper_data_gb < 0.02
        assert abs(r.index_gb - r.paper_index_gb) / r.paper_index_gb < 0.02
