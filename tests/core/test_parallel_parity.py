"""Property test: parallel chunked dispatch is bit-identical to serial.

The tentpole's contract — warm pools, chunking, and delta encoding are
*dispatch* changes only.  For every backend personality, a supervised
sweep with faults firing and the circuit breaker armed must produce
byte-for-byte the same pickled measurements at ``jobs=4`` (chunked, warm
pool, real worker crashes) as at ``jobs=1`` (the historical in-process
path with simulated crashes).
"""

import hashlib
import pickle

import pytest

from repro.core.experiment import ExperimentConfig
from repro.core.knobs import ResourceAllocation
from repro.core.runner import SupervisionPolicy, run_supervised
from repro.faults.spec import WorkerCrash

BACKENDS = ("rowstore-oltp", "columnstore-dss", "elastic-serverless")


def grid(backend):
    """Four points: two core steps, a reseeded point, and a crasher."""
    base = dict(workload="asdb", scale_factor=2000, duration=0.3,
                backend=backend)
    return [
        ExperimentConfig(allocation=ResourceAllocation(logical_cores=8),
                         **base),
        ExperimentConfig(allocation=ResourceAllocation(logical_cores=32),
                         **base),
        ExperimentConfig(seed=5, **base),
        ExperimentConfig(faults=(WorkerCrash(attempts=1),), **base),
    ]


def policy():
    """Retries on, backoff tiny, breaker armed with a small window."""
    return SupervisionPolicy(
        retries=2, backoff=0.01, backoff_factor=2.0,
        breaker_threshold=0.5, breaker_window=4,
        breaker_recovery_successes=1,
    )


def fingerprints(report):
    assert report.ok, f"sweep failed: {report.failures}"
    return [
        hashlib.sha256(pickle.dumps(m)).hexdigest()
        for m in report.measurements
    ]


@pytest.mark.parametrize("backend", BACKENDS)
def test_parallel_chunked_matches_serial_bit_for_bit(backend):
    configs = grid(backend)
    serial = fingerprints(run_supervised(configs, jobs=1, policy=policy()))
    parallel = fingerprints(
        run_supervised(configs, jobs=4, policy=policy())
    )
    assert parallel == serial

    # And again with chunking forced wider than the default, so multiple
    # points genuinely share one worker round-trip.
    chunked = fingerprints(
        run_supervised(configs, jobs=2, chunk=2, policy=policy())
    )
    assert chunked == serial
