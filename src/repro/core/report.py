"""Fixed-width text rendering of tables and figure series.

The benchmark harness prints the same rows/series the paper reports;
these helpers keep the formatting consistent and dependency-free.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render rows as a fixed-width table with a rule under the header."""
    cells = [[_fmt(value) for value in row] for row in rows]
    widths = [
        max(len(str(headers[i])), *(len(row[i]) for row in cells)) if cells
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    header = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value == float("inf"):
            return "inf"
        if abs(value) >= 1000 or (abs(value) < 0.01 and value != 0):
            return f"{value:.3g}"
        return f"{value:.2f}"
    return str(value)


def format_series(
    x_label: str,
    xs: Sequence[float],
    series: Dict[str, Sequence[float]],
    title: Optional[str] = None,
) -> str:
    """Render one or more y-series against a shared x axis."""
    headers = [x_label] + list(series.keys())
    rows = [
        [x] + [series[name][i] for name in series]
        for i, x in enumerate(xs)
    ]
    return format_table(headers, rows, title=title)


def sparkline(values: Sequence[float], width: int = 40) -> str:
    """A coarse text sparkline for quick shape inspection in logs."""
    if not values:
        return ""
    blocks = " .:-=+*#%@"
    lo, hi = min(values), max(values)
    span = hi - lo or 1.0
    indices = [int((v - lo) / span * (len(blocks) - 1)) for v in values]
    return "".join(blocks[i] for i in indices)
