"""Fig 6: per-query TPC-H speedup with limited MAXDOP and cores,
relative to the MAXDOP=32 baseline."""

import pytest

from repro.core.figures import fig6_maxdop
from repro.core.report import format_table

MAXDOPS = (1, 2, 4, 8, 16, 32)

#: §7: queries completely insensitive to parallelism at SF=10.
INSENSITIVE_AT_SF10 = ("Q2", "Q6", "Q14", "Q15", "Q20")


@pytest.mark.parametrize("scale_factor", (10, 30, 100, 300))
def test_fig6_maxdop_speedups(scale_factor, benchmark, duration_scale, emit):
    def run():
        return fig6_maxdop(scale_factor, maxdops=MAXDOPS,
                           duration_scale=duration_scale)
    speedups = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [name] + [f"{v:.2f}" for v in series]
        for name, series in sorted(speedups.items(),
                                   key=lambda kv: int(kv[0][1:]))
    ]
    emit(
        f"Fig 6 — TPC-H SF={scale_factor} per-query speedup vs MAXDOP=32 "
        f"(columns: MAXDOP {MAXDOPS})",
        format_table(["query"] + [f"dop{d}" for d in MAXDOPS], rows),
    )
    if scale_factor == 10:
        for name in INSENSITIVE_AT_SF10:
            if name in speedups:
                for value in speedups[name]:
                    assert value == pytest.approx(1.0, rel=0.35), (name, value)
    if scale_factor >= 100:
        # Almost all queries improve clearly between serial and parallel.
        improved = sum(1 for s in speedups.values() if s[0] < 0.7)
        assert improved >= len(speedups) * 0.7
    if scale_factor == 300 and "Q20" in speedups:
        # §7: Q20 shows up to ~10x between MAXDOP=1 and MAXDOP=32.
        assert speedups["Q20"][0] < 0.25
