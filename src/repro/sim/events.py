"""Event heap and simulation clock.

The :class:`EventLoop` is a classic calendar: events are ``(time, seq)``
ordered in a binary heap, where ``seq`` is a monotonically increasing tie
breaker so that events scheduled at the same instant fire in FIFO order and
runs are fully deterministic.

Cancelled events are removed lazily: :meth:`Event.cancel` only sets a flag,
and the loop skips flagged entries as they surface at the heap top.  Reschedule-
heavy servers (the waterfill bandwidth model re-plans every active job on
every change) can flood the heap with corpses, so the loop counts live
cancellations and *compacts* — rebuilds and re-heapifies the live entries —
once corpses outnumber half the heap.  :meth:`EventLoop.schedule_batch`
amortizes bulk scheduling (N client start-ups, a tick train) into one
heapify instead of N pushes where that is cheaper.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Iterable, List, Optional, Tuple

from repro.errors import SimulationError

#: Compaction trigger: corpses must outnumber both this floor and half the
#: heap.  The floor keeps tiny heaps from compacting constantly; the
#: fraction bounds wasted heap memory and pop work at a constant factor.
COMPACT_MIN_CANCELLED = 64
COMPACT_FRACTION = 0.5


class Event:
    """A schedulable occurrence with an optional payload.

    An event may be *cancelled* before it fires; cancelled events stay in
    the heap but are skipped by the loop (lazy deletion).
    """

    __slots__ = ("time", "callback", "payload", "cancelled", "fired", "_loop")

    def __init__(self, time: float, callback: Callable[["Event"], None], payload: Any = None):
        self.time = time
        self.callback = callback
        self.payload = payload
        self.cancelled = False
        self.fired = False
        self._loop: Optional["EventLoop"] = None

    def cancel(self) -> None:
        """Prevent this event from firing.  Idempotent."""
        if self.cancelled or self.fired:
            return
        self.cancelled = True
        if self._loop is not None:
            self._loop._note_cancelled()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else ("fired" if self.fired else "pending")
        return f"Event(t={self.time:.6f}, {state})"


class EventLoop:
    """A deterministic discrete-event calendar.

    >>> loop = EventLoop()
    >>> out = []
    >>> _ = loop.schedule_at(2.0, lambda ev: out.append("b"))
    >>> _ = loop.schedule_at(1.0, lambda ev: out.append("a"))
    >>> loop.run()
    >>> out
    ['a', 'b']
    """

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Event]] = []
        self._seq = 0
        self._now = 0.0
        self._running = False
        self._cancelled = 0    # cancelled events still sitting in the heap
        self.compactions = 0   # lifetime compaction sweeps (observability)

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    def __len__(self) -> int:
        """Heap entries, including not-yet-collected cancelled ones."""
        return len(self._heap)

    def schedule_at(self, time: float, callback: Callable[[Event], None], payload: Any = None) -> Event:
        """Schedule *callback* to fire at absolute simulation time *time*."""
        if time < self._now:
            raise SimulationError(f"cannot schedule event in the past: {time} < {self._now}")
        event = Event(time, callback, payload)
        event._loop = self
        heapq.heappush(self._heap, (time, self._seq, event))
        self._seq += 1
        self._maybe_compact()
        return event

    def schedule_after(self, delay: float, callback: Callable[[Event], None], payload: Any = None) -> Event:
        """Schedule *callback* to fire *delay* seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self.schedule_at(self._now + delay, callback, payload)

    def schedule_batch(
        self,
        entries: Iterable[Tuple[float, Callable[[Event], None], Any]],
    ) -> List[Event]:
        """Schedule many ``(time, callback, payload)`` entries at once.

        Equivalent to ``schedule_at`` per entry — same FIFO tie-breaking,
        in iteration order — but amortized: the loop-invariant lookups
        (clock, sequence counter, heap) are hoisted out of the per-entry
        path, the compaction check runs once per batch instead of once
        per entry, and a batch larger than the live heap is folded in
        with one O(n) heapify instead of per-entry pushes.
        """
        events = list(itertools.starmap(Event, entries))
        if not events:
            return events
        earliest = min(event.time for event in events)
        if earliest < self._now:
            raise SimulationError(
                f"cannot schedule event in the past: {earliest} < {self._now}"
            )
        for event in events:
            event._loop = self
        seq = self._seq
        self._seq = seq + len(events)
        staged = [(event.time, number, event)
                  for number, event in enumerate(events, seq)]
        heap = self._heap
        if len(staged) > len(heap):
            heap.extend(staged)
            heapq.heapify(heap)
        else:
            push = heapq.heappush
            for entry in staged:
                push(heap, entry)
        self._maybe_compact()
        return events

    def _note_cancelled(self) -> None:
        self._cancelled += 1
        self._maybe_compact()

    def _maybe_compact(self) -> None:
        """Purge cancelled entries once they dominate the heap."""
        if (
            self._cancelled > COMPACT_MIN_CANCELLED
            and self._cancelled > COMPACT_FRACTION * len(self._heap)
        ):
            self._heap = [e for e in self._heap if not e[2].cancelled]
            heapq.heapify(self._heap)
            self._cancelled = 0
            self.compactions += 1

    def peek_time(self) -> Optional[float]:
        """Time of the next pending (non-cancelled) event, or ``None``."""
        while self._heap and self._heap[0][2].cancelled:
            heapq.heappop(self._heap)
            self._cancelled -= 1
        if not self._heap:
            return None
        return self._heap[0][0]

    def step(self) -> bool:
        """Fire the next pending event.  Returns ``False`` if none remain."""
        while self._heap:
            time, _, event = heapq.heappop(self._heap)
            if event.cancelled:
                self._cancelled -= 1
                continue
            self._now = time
            event.fired = True
            event.callback(event)
            return True
        return False

    def run(self, until: Optional[float] = None) -> None:
        """Run events until the heap drains or the clock passes *until*.

        When *until* is given the clock is advanced to exactly *until* at
        the end of the run, even if the last event fired earlier.
        """
        if self._running:
            raise SimulationError("event loop is not reentrant")
        self._running = True
        try:
            while True:
                next_time = self.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    break
                self.step()
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False
