#!/usr/bin/env python3
"""HTAP consolidation study (§2.3 + §4).

Compares three deployments of a brokerage workload at SF=5000:

1. OLTP alone (plain TPC-E) — the dedicated operational store;
2. HTAP — the same transactional load plus one analytics user running
   real-time queries on the same database, using the §2.3.1 design
   (updateable non-clustered columnstore indexes);
3. the same HTAP mix at SF=15000 to show how the balance between the two
   components shifts with database size.

Output: transactional TPS, analytics QPH, and the interference cost of
running analytics in-place (what you pay for killing the ETL pipeline).
"""

from repro.core import run_experiment
from repro.core.report import format_table


def main() -> None:
    duration = 25.0
    print("Running OLTP-only baseline (TPC-E SF=5000)...")
    oltp_only = run_experiment("tpce", 5000, duration=duration)

    print("Running HTAP (99 OLTP users + 1 analytics user)...")
    htap_small = run_experiment("htap", 5000, duration=duration)
    print("Running HTAP at SF=15000...")
    htap_large = run_experiment("htap", 15000, duration=duration)

    interference = 1 - htap_small.primary_metric / oltp_only.primary_metric
    rows = [
        ("TPC-E alone, SF=5000", f"{oltp_only.primary_metric:.0f}", "-", "-"),
        (
            "HTAP, SF=5000",
            f"{htap_small.primary_metric:.0f}",
            f"{htap_small.secondary_metric:.0f}",
            f"{interference:.0%}",
        ),
        (
            "HTAP, SF=15000",
            f"{htap_large.primary_metric:.0f}",
            f"{htap_large.secondary_metric:.0f}",
            "-",
        ),
    ]
    print(format_table(
        ["deployment", "TPS", "analytics QPH", "OLTP interference"],
        rows, title="\nHTAP consolidation summary",
    ))

    print(
        "\nReading the results the paper's way (§4): running analytics on\n"
        "the operational store costs some transactional throughput, but\n"
        "eliminates the ETL pipeline entirely — analytics sees live data.\n"
        "At the larger scale factor the analytical component becomes\n"
        "IO-bound (QPH drops) while the transactional component actually\n"
        "improves thanks to reduced hot-row contention."
    )


if __name__ == "__main__":
    main()
