"""Tests for the lock/latch manager and wait accounting."""

import pytest

from repro.engine.locks import HotSlotArray, LockManager, WaitAccounting, WaitType
from repro.errors import ConfigurationError
from repro.sim.process import Simulator, Timeout


class TestWaitAccounting:
    def test_charge_and_totals(self):
        acct = WaitAccounting()
        acct.charge(WaitType.LOCK, 1.0)
        acct.charge(WaitType.PAGELATCH, 0.5)
        acct.charge(WaitType.LATCH, 0.25)
        acct.charge(WaitType.PAGEIOLATCH, 9.0)
        assert acct.lock_latch_pagelatch_total() == pytest.approx(1.75)
        assert acct.wait_count[WaitType.LOCK] == 1

    def test_negative_charge_rejected(self):
        with pytest.raises(ConfigurationError):
            WaitAccounting().charge(WaitType.LOCK, -1.0)


class TestHotSlotArray:
    def test_same_slot_serializes(self):
        sim = Simulator()
        array = HotSlotArray(sim, num_slots=4, name="locks")
        times = []
        def worker():
            yield from array.acquire(0)
            yield Timeout(1.0)
            array.release(0)
            times.append(sim.now)
        sim.spawn(worker())
        sim.spawn(worker())
        sim.run()
        assert times == [1.0, 2.0]

    def test_different_slots_concurrent(self):
        sim = Simulator()
        array = HotSlotArray(sim, num_slots=4, name="locks")
        times = []
        def worker(slot):
            yield from array.acquire(slot)
            yield Timeout(1.0)
            array.release(slot)
            times.append(sim.now)
        sim.spawn(worker(0))
        sim.spawn(worker(1))
        sim.run()
        assert times == [1.0, 1.0]

    def test_slot_index_wraps(self):
        sim = Simulator()
        array = HotSlotArray(sim, num_slots=3, name="locks")
        def worker():
            yield from array.acquire(7)  # 7 % 3 == slot 1
            array.release(7)
        sim.spawn(worker())
        sim.run()

    def test_zero_slots_rejected(self):
        with pytest.raises(ConfigurationError):
            HotSlotArray(Simulator(), num_slots=0, name="x")


class TestLockManager:
    def test_critical_section_accounts_queueing_only(self):
        sim = Simulator()
        manager = LockManager(sim, hot_rows=2, hot_pages=2)
        def worker():
            yield from manager.critical_section(WaitType.LOCK, 0, hold_seconds=1.0)
        sim.spawn(worker())
        sim.spawn(worker())
        sim.run()
        # Second worker queued exactly one hold period; the first none.
        assert manager.accounting.wait_time[WaitType.LOCK] == pytest.approx(1.0)

    def test_acquire_release_spans_arbitrary_work(self):
        sim = Simulator()
        manager = LockManager(sim, hot_rows=2, hot_pages=2)
        order = []
        def holder():
            yield from manager.acquire(WaitType.LOCK, 0)
            yield Timeout(2.0)  # commit work while holding
            manager.release(WaitType.LOCK, 0)
            order.append(("holder", sim.now))
        def waiter():
            yield Timeout(0.1)
            yield from manager.acquire(WaitType.LOCK, 0)
            manager.release(WaitType.LOCK, 0)
            order.append(("waiter", sim.now))
        sim.spawn(holder())
        sim.spawn(waiter())
        sim.run()
        assert order == [("holder", 2.0), ("waiter", 2.0)]
        assert manager.accounting.wait_time[WaitType.LOCK] == pytest.approx(1.9)

    def test_io_latch_charging(self):
        sim = Simulator()
        manager = LockManager(sim, hot_rows=1, hot_pages=1)
        manager.charge_io_latch(0.5)
        assert manager.accounting.wait_time[WaitType.PAGEIOLATCH] == 0.5

    def test_pageiolatch_is_not_slot_based(self):
        sim = Simulator()
        manager = LockManager(sim, hot_rows=1, hot_pages=1)
        with pytest.raises(ConfigurationError):
            manager._array_for(WaitType.PAGEIOLATCH)

    def test_more_slots_less_contention(self):
        """The Table 3 mechanism in isolation: same load, more slots."""
        def total_wait(num_slots):
            sim = Simulator()
            manager = LockManager(sim, hot_rows=num_slots, hot_pages=4)
            def worker(i):
                yield from manager.critical_section(
                    WaitType.LOCK, i % num_slots, hold_seconds=1.0
                )
            for i in range(8):
                sim.spawn(worker(i))
            sim.run()
            return manager.accounting.wait_time[WaitType.LOCK]
        assert total_wait(8) < total_wait(2)
