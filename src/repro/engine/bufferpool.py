"""Buffer pool model: residency, hit probabilities, and page IO volumes.

The model is analytic rather than page-by-page: what the experiments need
is (a) whether a database fits in memory — the axis Table 2 shades — and
(b) the *rate* of SSD reads implied by misses, which feeds the storage
bandwidth sensitivity analyses (§6).

Residency policy mirrors an LRU-ish pool: each table's *hot set* (its
``hot_fraction``) is kept resident first, in order of access temperature;
whatever capacity remains holds a fraction of the cold data.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.calibration import ENGINE_MEMORY_FRACTION
from repro.engine.catalog import Database, Table
from repro.errors import ConfigurationError
from repro.units import PAGE_SIZE


@dataclass
class BufferPool:
    """Analytic buffer pool bound to one database.

    Attributes:
        database: the database served by this pool.
        server_memory_bytes: physical memory of the machine.
        reserved_grant_bytes: memory currently promised to query grants
            (shrinks the pool, coupling §8's memory-grant knob to IO).
        hot_access_fraction: fraction of point accesses that touch hot
            sets (OLTP skew).
    """

    database: Database
    server_memory_bytes: float
    reserved_grant_bytes: float = 0.0
    hot_access_fraction: float = 0.85

    def __post_init__(self):
        if self.server_memory_bytes <= 0:
            raise ConfigurationError("server memory must be positive")
        if self.reserved_grant_bytes < 0:
            raise ConfigurationError("reserved grants cannot be negative")

    @property
    def capacity_bytes(self) -> float:
        """Pool capacity: the engine's share of memory minus query grants."""
        engine = self.server_memory_bytes * ENGINE_MEMORY_FRACTION
        return max(0.0, engine - self.reserved_grant_bytes)

    # -- residency ---------------------------------------------------------------

    def _hot_bytes_total(self) -> float:
        return sum(
            (t.data_bytes + t.index_bytes) * t.hot_fraction
            for t in self.database.tables.values()
        )

    def resident_fraction(self) -> float:
        """Overall fraction of the database resident in the pool."""
        total = self.database.total_bytes
        if total <= 0:
            return 1.0
        return min(1.0, self.capacity_bytes / total)

    def cold_resident_fraction(self) -> float:
        """Fraction of the *cold* data that still fits after hot sets."""
        hot = self._hot_bytes_total()
        cold = self.database.total_bytes - hot
        if cold <= 0:
            return 1.0
        spare = self.capacity_bytes - hot
        if spare <= 0:
            return 0.0
        return min(1.0, spare / cold)

    # -- access-path hit probabilities -------------------------------------------

    #: Even a fully-resident database misses occasionally (first touches,
    #: page splits, checkpoint-evicted pages) — this keeps the baseline
    #: PAGEIOLATCH wait small but nonzero, as in the paper's Table 3.
    MAX_POINT_HIT = 0.997

    def point_hit_probability(self, table: Table) -> float:
        """Hit probability for a skewed point access (OLTP row lookup)."""
        hot = self._hot_bytes_total()
        hot_resident = min(1.0, self.capacity_bytes / hot) if hot > 0 else 1.0
        cold_resident = self.cold_resident_fraction()
        hit = (
            self.hot_access_fraction * hot_resident
            + (1.0 - self.hot_access_fraction) * cold_resident
        )
        return min(self.MAX_POINT_HIT, hit)

    def scan_hit_fraction(self, table: Table) -> float:
        """Fraction of a sequential scan served from memory.

        Scans of a table larger than the pool evict themselves; the model
        charges the non-resident fraction as SSD reads.
        """
        size = table.data_bytes
        if size <= 0:
            return 1.0
        return min(1.0, self.resident_fraction())

    # -- IO volume ------------------------------------------------------------------

    def scan_read_bytes(self, table: Table, scanned_fraction: float = 1.0) -> float:
        """SSD bytes read for scanning *scanned_fraction* of a table."""
        if not 0.0 <= scanned_fraction <= 1.0:
            raise ConfigurationError("scanned_fraction must be in [0, 1]")
        return table.data_bytes * scanned_fraction * (1.0 - self.scan_hit_fraction(table))

    def point_read_bytes(self, table: Table, accesses: float) -> float:
        """SSD bytes read for *accesses* point lookups against a table."""
        miss = 1.0 - self.point_hit_probability(table)
        return accesses * miss * PAGE_SIZE
