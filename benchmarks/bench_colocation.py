"""Extension bench: CAT-partitioned co-location (§10's cache question,
Heracles-style isolation [47] on the simulated testbed).

Scenario: a latency-sensitive OLTP tenant shares the box with an
analytical tenant.  CPU and LLC are partitioned (cpuset + CAT); the SSD
is shared.  The bench quantifies (a) how close partitioned co-location
gets to standalone performance, and (b) the residual storage
interference an IO-hungry neighbour causes — the resource CAT cannot
fence.
"""

from repro.core.colocation import TenantSpec, run_colocated
from repro.core.experiment import run_experiment
from repro.core.knobs import ResourceAllocation
from repro.core.report import format_table

DURATION = 12.0


def test_colocation_isolation_and_interference(benchmark, emit):
    def run():
        alone = run_experiment(
            "asdb", 2000,
            allocation=ResourceAllocation(logical_cores=16, llc_mb=10),
            duration=DURATION,
        ).primary_metric
        quiet = run_colocated(
            [TenantSpec("oltp", "asdb", 2000, 16, 10, memory_fraction=0.8),
             TenantSpec("dss", "tpch", 10, 16, 30)],
            duration=DURATION,
        )
        noisy = run_colocated(
            [TenantSpec("oltp", "asdb", 2000, 16, 10, memory_fraction=0.8),
             TenantSpec("dss", "tpch", 300, 16, 30, memory_fraction=0.2)],
            duration=DURATION,
        )
        return alone, quiet, noisy
    alone, quiet, noisy = benchmark.pedantic(run, rounds=1, iterations=1)
    tps = {
        "standalone (16 cores, 10 MB)": alone,
        "co-located, in-memory DSS neighbour": next(
            r for r in quiet if r.name == "oltp").primary_metric,
        "co-located, IO-hungry DSS neighbour": next(
            r for r in noisy if r.name == "oltp").primary_metric,
    }
    emit(
        "Co-location — ASDB TPS under CAT/cpuset partitioning, shared SSD",
        format_table(
            ["configuration", "TPS", "vs standalone"],
            [(k, f"{v:.0f}", f"{v / alone:.0%}") for k, v in tps.items()],
        ),
    )
    quiet_tps = tps["co-located, in-memory DSS neighbour"]
    noisy_tps = tps["co-located, IO-hungry DSS neighbour"]
    # CAT + cpuset isolation works: a compute-only neighbour costs little.
    assert quiet_tps > 0.75 * alone
    # The shared SSD does not: an IO-hungry neighbour costs throughput.
    assert noisy_tps < quiet_tps
