"""Database catalog: tables, indexes, cardinalities, and byte sizes.

The catalog carries exactly what the optimizer and buffer pool need:
row counts, row widths, storage formats, and index footprints.  Sizing is
calibrated so that the built-in benchmark databases reproduce the paper's
Table 2 (data and index GB at each scale factor).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.engine.types import (
    COLUMNSTORE_COMPRESSION,
    IndexKind,
    StorageFormat,
    WorkloadClass,
)
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Index:
    """An index over a table.

    ``bytes_per_row`` covers key + row locator (B-tree) or the compressed
    column segments (columnstore).
    """

    name: str
    kind: IndexKind
    bytes_per_row: float

    def size_bytes(self, rows: int) -> float:
        return rows * self.bytes_per_row


@dataclass
class Table:
    """A base table with optional secondary indexes.

    Byte sizes are memoized: table shapes are effectively immutable after
    schema construction, yet the buffer pool re-derives residency from
    these sums on every point access and scan — the single hottest loop
    of an OLTP run.  The memo re-keys on ``(rows, row_bytes, storage,
    compression_ratio, len(indexes))``, so bulk-load-style mutations of
    any of those invalidate it automatically.
    """

    name: str
    rows: int
    row_bytes: float
    storage: StorageFormat = StorageFormat.ROW
    indexes: List[Index] = field(default_factory=list)
    #: Fraction of the table that is "hot" for point accesses (drives
    #: buffer-pool locality and lock contention for OLTP tables).
    hot_fraction: float = 0.1
    #: Columnstore compression achieved for this table.  Small scale
    #: factors compress worse (dictionary and segment overheads), so the
    #: schema builders override the default where needed.
    compression_ratio: Optional[float] = None
    _size_key: Optional[tuple] = field(
        default=None, init=False, repr=False, compare=False
    )
    _sizes: Tuple[float, float] = field(
        default=(0.0, 0.0), init=False, repr=False, compare=False
    )

    def __post_init__(self):
        if self.rows < 0 or self.row_bytes <= 0:
            raise ConfigurationError(f"table {self.name}: bad shape")
        if not 0.0 < self.hot_fraction <= 1.0:
            raise ConfigurationError(f"table {self.name}: hot_fraction in (0,1]")
        if self.compression_ratio is not None and self.compression_ratio < 1.0:
            raise ConfigurationError(f"table {self.name}: compression must be >= 1")

    def _size_pair(self) -> Tuple[float, float]:
        key = (self.rows, self.row_bytes, self.storage,
               self.compression_ratio, len(self.indexes))
        if key != self._size_key:
            raw = self.rows * self.row_bytes
            if self.storage is StorageFormat.COLUMN:
                data = raw / (self.compression_ratio or COLUMNSTORE_COMPRESSION)
            else:
                data = raw
            index = sum(ix.size_bytes(self.rows) for ix in self.indexes)
            self._sizes = (data, index)
            self._size_key = key
        return self._sizes

    @property
    def data_bytes(self) -> float:
        """On-disk bytes of the base data (after columnstore compression)."""
        return self._size_pair()[0]

    @property
    def uncompressed_bytes(self) -> float:
        return self.rows * self.row_bytes

    @property
    def index_bytes(self) -> float:
        return self._size_pair()[1]

    def index(self, name: str) -> Index:
        for index in self.indexes:
            if index.name == name:
                return index
        raise ConfigurationError(f"table {self.name}: no index {name!r}")

    def has_index_kind(self, kind: IndexKind) -> bool:
        return any(index.kind is kind for index in self.indexes)


@dataclass
class Database:
    """A named database at a specific scale factor."""

    name: str
    scale_factor: int
    workload_class: WorkloadClass
    tables: Dict[str, Table] = field(default_factory=dict)
    #: Bumped whenever the schema (and so the size sums) may have
    #: changed; buffer pools key their derived-residency memos on it.
    sizes_version: int = field(default=0, init=False, repr=False,
                               compare=False)
    _sizes_cache: Optional[Tuple[float, float]] = field(
        default=None, init=False, repr=False, compare=False
    )

    def add_table(self, table: Table) -> None:
        if table.name in self.tables:
            raise ConfigurationError(f"duplicate table {table.name!r}")
        self.tables[table.name] = table
        self.invalidate_sizes()
        self._check_design(table)

    def invalidate_sizes(self) -> None:
        """Drop the memoized size sums (call after mutating a table
        in place — :meth:`add_table` calls it automatically)."""
        self.sizes_version += 1
        self._sizes_cache = None

    def _check_design(self, table: Table) -> None:
        """Warn on the paper's pitfall #2: wrong storage layout for the
        workload class (§9)."""
        if (
            self.workload_class is WorkloadClass.DSS
            and table.storage is StorageFormat.ROW
            and not table.has_index_kind(IndexKind.COLUMNSTORE_CLUSTERED)
        ):
            warnings.warn(
                f"{self.name}.{table.name}: row-store table in a decision "
                "support database (performance-analysis pitfall #2)",
                stacklevel=3,
            )
        if self.workload_class is WorkloadClass.OLTP and table.storage is StorageFormat.COLUMN:
            warnings.warn(
                f"{self.name}.{table.name}: column-store table in a "
                "transactional database (performance-analysis pitfall #2)",
                stacklevel=3,
            )

    def table(self, name: str) -> Table:
        table = self.tables.get(name)
        if table is None:
            raise ConfigurationError(f"{self.name}: no table {name!r}")
        return table

    def _size_sums(self) -> Tuple[float, float]:
        """Memoized (data, index) byte totals over every table.

        These sums back every buffer-pool residency probe — per point
        access on the OLTP path — so they are computed once per schema
        version, not per call.
        """
        if self._sizes_cache is None:
            self._sizes_cache = (
                sum(t.data_bytes for t in self.tables.values()),
                sum(t.index_bytes for t in self.tables.values()),
            )
        return self._sizes_cache

    @property
    def data_bytes(self) -> float:
        return self._size_sums()[0]

    @property
    def index_bytes(self) -> float:
        return self._size_sums()[1]

    @property
    def total_bytes(self) -> float:
        data, index = self._size_sums()
        return data + index

    def fits_in_memory(self, memory_bytes: float, engine_fraction: float = 0.8) -> bool:
        """Whether data + indexes fit in the buffer pool's share of memory.

        ``engine_fraction`` mirrors §8: about 80% of server memory goes to
        the engine.
        """
        return self.total_bytes <= memory_bytes * engine_fraction

    def largest_table(self) -> Optional[Table]:
        if not self.tables:
            return None
        return max(self.tables.values(), key=lambda t: t.data_bytes)
