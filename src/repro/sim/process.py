"""Generator-based cooperating processes on top of the event loop.

A *process* is a Python generator that yields *commands*:

* :class:`Timeout` — suspend for a simulated duration,
* :class:`WaitEvent` — suspend until another process triggers a condition,
* another :class:`Process` — suspend until that process terminates.

This mirrors the SimPy programming model but is self-contained (no external
dependencies) and deterministic.
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional, Sequence

from repro.errors import SimulationError
from repro.sim.events import EventLoop


class Timeout:
    """Yield target: suspend the process for *delay* simulated seconds."""

    __slots__ = ("delay",)

    def __init__(self, delay: float):
        if delay < 0:
            raise SimulationError(f"negative timeout: {delay}")
        self.delay = delay


class WaitEvent:
    """A one-shot condition processes can wait on.

    A process yields the WaitEvent to suspend; another process (or plain
    callback code) calls :meth:`trigger` to resume all waiters with an
    optional value.
    """

    def __init__(self, simulator: "Simulator"):
        self._sim = simulator
        self._triggered = False
        self._value: Any = None
        self._waiters: List["Process"] = []

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def value(self) -> Any:
        return self._value

    def trigger(self, value: Any = None) -> None:
        """Fire the condition, waking every waiting process (FIFO)."""
        if self._triggered:
            raise SimulationError("WaitEvent triggered twice")
        self._triggered = True
        self._value = value
        waiters, self._waiters = self._waiters, []
        for proc in waiters:
            self._sim.loop.schedule_after(0.0, lambda ev, p=proc: p._resume(value))

    def _add_waiter(self, proc: "Process") -> None:
        self._waiters.append(proc)


class Process:
    """A running generator, driven by the simulator's event loop."""

    def __init__(self, simulator: "Simulator", generator: Generator, name: str = "proc"):
        self._sim = simulator
        self._gen = generator
        self.name = name
        self.alive = True
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self._done = WaitEvent(simulator)

    @property
    def done(self) -> WaitEvent:
        """WaitEvent that triggers (with the return value) on termination."""
        return self._done

    @property
    def failed(self) -> bool:
        """True when the process terminated with an uncaught exception."""
        return self.error is not None

    def _start(self) -> None:
        self._sim.loop.schedule_after(0.0, lambda ev: self._resume(None))

    def _resume(self, value: Any) -> None:
        if not self.alive:
            return
        try:
            command = self._gen.send(value)
        except StopIteration as stop:
            self.alive = False
            self.result = stop.value
            self._done.trigger(stop.value)
            return
        except BaseException as exc:
            # Record which process died before the exception unwinds the
            # event loop — essential when an injected fault escapes a
            # handler deep inside the engine stack (see repro.faults).
            self.alive = False
            self.error = exc
            exc.__notes__ = getattr(exc, "__notes__", []) + [
                f"raised in simulation process {self.name!r}"
            ]
            raise
        self._dispatch(command)

    def _dispatch(self, command: Any) -> None:
        if isinstance(command, Timeout):
            self._sim.loop.schedule_after(command.delay, lambda ev: self._resume(None))
        elif isinstance(command, WaitEvent):
            if command.triggered:
                self._sim.loop.schedule_after(0.0, lambda ev: self._resume(command.value))
            else:
                command._add_waiter(self)
        elif isinstance(command, Process):
            self._dispatch(command.done)
        else:
            raise SimulationError(f"process {self.name!r} yielded unsupported command: {command!r}")

    def interrupt(self) -> None:
        """Terminate the process without resuming it again."""
        self.alive = False
        self._gen.close()


class Simulator:
    """Facade bundling an event loop with process management.

    >>> sim = Simulator()
    >>> def worker():
    ...     yield Timeout(1.5)
    ...     return "done"
    >>> proc = sim.spawn(worker())
    >>> sim.run()
    >>> (round(sim.now, 6), proc.result)
    (1.5, 'done')
    """

    def __init__(self) -> None:
        self.loop = EventLoop()

    @property
    def now(self) -> float:
        return self.loop.now

    def spawn(self, generator: Generator, name: str = "proc") -> Process:
        """Create and start a process from a generator."""
        proc = Process(self, generator, name=name)
        proc._start()
        return proc

    def spawn_many(
        self, generators: Sequence[Generator], name: str = "proc"
    ) -> List[Process]:
        """Spawn a batch of processes in order, one heap operation.

        Semantically identical to ``[spawn(g) for g in generators]`` —
        start events keep FIFO order at the current instant — but the
        start-up train goes through :meth:`EventLoop.schedule_batch`,
        which matters when a workload spawns hundreds of client processes
        (ASDB starts 128) at every experiment start.  Names get a
        ``-<index>`` suffix.
        """
        procs = [
            Process(self, gen, name=f"{name}-{index}")
            for index, gen in enumerate(generators)
        ]
        now = self.loop.now
        self.loop.schedule_batch(
            (now, lambda ev, p=proc: p._resume(None), None) for proc in procs
        )
        return procs

    def event(self) -> WaitEvent:
        """Create a fresh one-shot wait event."""
        return WaitEvent(self)

    def run(self, until: Optional[float] = None) -> None:
        """Run the event loop until it drains or the clock passes *until*."""
        self.loop.run(until=until)
