"""Delta-encoded, chunked task dispatch for the sweep runner.

Two IPC costs dominate a sweep of cheap grid points:

* **Per-point pickling.**  Every :class:`ExperimentConfig` carries the
  full machine spec, workload kwargs, and fault tuple, yet within one
  sweep the points differ in one or two fields (the swept axis and maybe
  the seed).  A :class:`ChunkTask` therefore ships the *base* config once
  per chunk plus a per-point **delta** — the dict of fields that differ —
  and workers rebuild each point with :func:`dataclasses.replace`.  The
  rebuilt config is field-for-field equal to the original, so its
  :func:`~repro.core.resultcache.config_digest` (and hence its cache
  entry and journal key) is identical; ``tests/core/test_dispatch.py``
  pins that equivalence.

* **Per-point round-trips.**  One future per point means one executor
  round-trip per point; dozens of sub-second points serialize on the
  dispatch path.  A chunk batches consecutive points into one future and
  returns per-point outcomes, so the supervisor keeps per-point journal
  records, retry policy, and circuit-breaker accounting while paying one
  round-trip per *chunk*.

The worker entry points live here (module level, picklable) so both the
runner and the warm pool's initializer can import them without cycles.
"""

from __future__ import annotations

import dataclasses
import math
import os
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Sequence, Tuple

from repro.core.experiment import Experiment, ExperimentConfig
from repro.core.measurement import Measurement
from repro.errors import SimulatedWorkerCrash
from repro.faults.spec import WorkerCrash, WorkerStall, harness_faults

#: Outcome tags inside a chunk result.
OUTCOME_OK = "ok"
OUTCOME_ERROR = "error"

#: Dispatch-tuning defaults: a sweep is split into roughly
#: ``jobs * DISPATCH_SLICES`` chunks (so stragglers still interleave),
#: each at most ``CHUNK_MAX`` points (so one chunk never monopolizes a
#: worker for the whole sweep).
DISPATCH_SLICES = 4
CHUNK_MAX = 32


def run_one(config: ExperimentConfig) -> Measurement:
    """Execute one config.  Module-level so process pools can pickle it."""
    return Experiment(config).run()


def run_attempt(config: ExperimentConfig, attempt: int, in_pool: bool) -> Measurement:
    """Apply harness faults for this attempt, then run the experiment.

    ``attempt`` is the global attempt number (journal-seeded, so it
    survives resume); ``in_pool`` selects between a hard ``os._exit``
    (real worker death, observed by the supervisor as
    ``BrokenProcessPool``) and the in-process stand-in
    :class:`~repro.errors.SimulatedWorkerCrash`.
    """
    for fault in harness_faults(config.faults):
        if isinstance(fault, WorkerCrash) and fault.fires_on(attempt):
            if in_pool:
                os._exit(fault.exit_code)
            raise SimulatedWorkerCrash(
                f"worker crash fault fired on attempt {attempt}"
            )
        if isinstance(fault, WorkerStall) and fault.fires_on(attempt):
            time.sleep(fault.seconds)
    return run_one(config)


# -- delta encoding ------------------------------------------------------------


def encode_delta(base: ExperimentConfig, config: ExperimentConfig) -> Dict[str, Any]:
    """The fields of *config* that differ from *base*.

    ``apply_delta(base, encode_delta(base, config)) == config`` for any
    pair of configs — the delta is exact, not approximate.
    """
    delta: Dict[str, Any] = {}
    for field in dataclasses.fields(ExperimentConfig):
        value = getattr(config, field.name)
        if value != getattr(base, field.name):
            delta[field.name] = value
    return delta


def apply_delta(base: ExperimentConfig, delta: Dict[str, Any]) -> ExperimentConfig:
    """Rebuild a full config from a base plus its delta."""
    if not delta:
        return base
    return dataclasses.replace(base, **delta)


@dataclass(frozen=True)
class ChunkTask:
    """One executor round-trip: a base config plus per-point work items.

    ``entries`` holds ``(delta, attempt)`` pairs in dispatch order;
    ``in_pool`` tells the fault interpreter whether a crash fault should
    hard-exit the process (pool workers) or raise the in-process
    stand-in.
    """

    base: ExperimentConfig
    entries: Tuple[Tuple[Dict[str, Any], int], ...]
    in_pool: bool = True

    def __len__(self) -> int:
        return len(self.entries)


def make_chunk(
    configs: Sequence[ExperimentConfig],
    attempts: Sequence[int],
    in_pool: bool = True,
) -> ChunkTask:
    """Delta-encode a batch of configs against the first as base."""
    if not configs:
        raise ValueError("empty chunk")
    base = configs[0]
    entries = tuple(
        (encode_delta(base, config), attempt)
        for config, attempt in zip(configs, attempts)
    )
    return ChunkTask(base=base, entries=entries, in_pool=in_pool)


def run_chunk(task: ChunkTask) -> List[Tuple[str, Any]]:
    """Worker entry point: run every point of a chunk sequentially.

    Returns one ``(tag, payload)`` outcome per entry, in order:
    ``("ok", Measurement)`` or ``("error", exception)``.  A point's
    failure never poisons its chunk-mates — each is attempted
    regardless — while a *crash* fault still kills the whole worker
    (that is the point of a crash).
    """
    outcomes: List[Tuple[str, Any]] = []
    for delta, attempt in task.entries:
        config = apply_delta(task.base, delta)
        try:
            outcomes.append((OUTCOME_OK, run_attempt(config, attempt, task.in_pool)))
        except Exception as exc:  # noqa: BLE001 - reported per point
            outcomes.append((OUTCOME_ERROR, exc))
    return outcomes


def auto_chunk(points: int, jobs: int) -> int:
    """Default chunk size: ``points`` split into ``jobs * 4`` slices.

    Mirrors :func:`multiprocessing.pool.Pool.map`'s heuristic — big
    enough to amortize a round-trip over several cheap points, small
    enough that slow points still interleave across workers — capped at
    :data:`CHUNK_MAX`.
    """
    if points <= 0 or jobs <= 0:
        return 1
    return max(1, min(CHUNK_MAX, math.ceil(points / (jobs * DISPATCH_SLICES))))
