"""Write-ahead log with group commit.

Transactional workloads "experience significant (blocking) logging
activity and data updates that contribute to their sensitivity to write
bandwidth" (§6).  The model captures exactly that: every commit appends
log records and blocks until its batch is durable on the SSD, so a cgroup
write-bandwidth cap back-pressures transaction latency and hence TPS.

Group commit batches concurrent commits into one flush, bounded by a batch
byte size and a flush interval — without it, write IOPS rather than
bandwidth would dominate and the §6 write-cap results would not reproduce.
"""

from __future__ import annotations

from typing import Generator, List

from repro.errors import ConfigurationError
from repro.hardware.storage import NvmeDevice
from repro.sim.process import Simulator, WaitEvent
from repro.units import KIB


class WriteAheadLog:
    """Group-commit log writer on top of an :class:`NvmeDevice`."""

    def __init__(
        self,
        sim: Simulator,
        device: NvmeDevice,
        batch_bytes: int = 64 * KIB,
        flush_interval: float = 0.001,
    ):
        if batch_bytes <= 0 or flush_interval <= 0:
            raise ConfigurationError("bad WAL batching parameters")
        self._sim = sim
        self._device = device
        self.batch_bytes = batch_bytes
        self.flush_interval = flush_interval
        self._pending_bytes = 0.0
        self._waiters: List[WaitEvent] = []
        self._flusher_armed = False
        self._flush_in_progress = False
        self.total_log_bytes = 0.0
        self.total_flushes = 0

    def commit(self, log_bytes: float) -> Generator:
        """Generator: append *log_bytes* and suspend until durable."""
        if log_bytes < 0:
            raise ConfigurationError("negative log size")
        self.total_log_bytes += log_bytes
        self._pending_bytes += log_bytes
        gate = self._sim.event()
        self._waiters.append(gate)
        if self._pending_bytes >= self.batch_bytes:
            self._start_flush()
        elif not self._flusher_armed and not self._flush_in_progress:
            self._flusher_armed = True
            self._sim.loop.schedule_after(self.flush_interval, self._on_timer)
        yield gate
        return None

    def _on_timer(self, _event) -> None:
        self._flusher_armed = False
        if self._waiters and not self._flush_in_progress:
            self._start_flush()

    def _start_flush(self) -> None:
        if self._flush_in_progress:
            return
        batch_bytes = self._pending_bytes
        waiters, self._waiters = self._waiters, []
        self._pending_bytes = 0.0
        if not waiters:
            return
        self._flush_in_progress = True
        self.total_flushes += 1
        self._sim.spawn(self._flush(batch_bytes, waiters), name="wal-flush")

    def _flush(self, nbytes: float, waiters: List[WaitEvent]) -> Generator:
        yield from self._device.write(nbytes)
        self._flush_in_progress = False
        for gate in waiters:
            gate.trigger()
        # If commits queued up while flushing, service them immediately.
        if self._pending_bytes >= self.batch_bytes or self._waiters:
            self._start_flush()
        return None
