"""Structural validation of physical plans.

The optimizer builds plans greedily; this module checks the invariants
every well-formed plan must satisfy, independent of how it was built.
Tests run the validator over every TPC-H template at every scale factor
and MAXDOP, so optimizer changes that produce malformed trees fail fast
with a named violation instead of a mysterious downstream number.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.engine.plan.operators import OpKind, PlanNode

#: Expected child counts per operator kind (None = any).
_CHILD_COUNTS = {
    OpKind.COLUMNSTORE_SCAN: 0,
    OpKind.TABLE_SCAN: 0,
    OpKind.INDEX_SEEK: 0,
    OpKind.HASH_JOIN: 2,
    OpKind.NESTED_LOOPS: 2,
    OpKind.MERGE_JOIN: 2,
    OpKind.HASH_AGGREGATE: 1,
    OpKind.STREAM_AGGREGATE: 1,
    OpKind.SORT: 1,
    OpKind.TOP: 1,
    OpKind.EXCHANGE_GATHER: 1,
    OpKind.EXCHANGE_REPARTITION: 1,
    OpKind.SPOOL: 1,
    OpKind.FILTER: 1,
}

_LEAF_KINDS = (OpKind.COLUMNSTORE_SCAN, OpKind.TABLE_SCAN, OpKind.INDEX_SEEK)
_MEMORY_KINDS = (OpKind.HASH_JOIN, OpKind.MERGE_JOIN, OpKind.HASH_AGGREGATE,
                 OpKind.SORT)


@dataclass(frozen=True)
class Violation:
    """One broken invariant."""

    rule: str
    node: str
    detail: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.rule} at {self.node}: {self.detail}"


def validate_plan(plan: PlanNode) -> List[Violation]:
    """Return all invariant violations in a plan tree (empty = valid)."""
    violations: List[Violation] = []
    for node in plan.walk():
        label = node.op.name + (f"[{node.table}]" if node.table else "")

        expected = _CHILD_COUNTS.get(node.op)
        if expected is not None and len(node.children) != expected:
            violations.append(Violation(
                "child-count", label,
                f"expected {expected} children, found {len(node.children)}",
            ))

        if node.op in _LEAF_KINDS and node.table is None:
            violations.append(Violation(
                "leaf-table", label, "scan/seek without a table reference",
            ))

        if node.rows_out < 0 or node.cpu_cost < 0 or node.memory_bytes < 0:
            violations.append(Violation(
                "negative-estimate", label, "negative cardinality/cost/memory",
            ))

        if node.memory_bytes > 0 and node.op not in _MEMORY_KINDS:
            violations.append(Violation(
                "memory-holder", label,
                f"{node.op.value} should not hold a memory grant",
            ))

        if node.scan_bytes > 0 and node.op not in _LEAF_KINDS:
            violations.append(Violation(
                "scan-bytes", label, "scan bytes on a non-scan operator",
            ))

        # A serial node must not sit below a parallel one except the
        # final gather (which is the serial/parallel boundary itself) or
        # a Top (the serial row-goal tail the engine runs on the
        # coordinator).
        if node.parallel:
            for child in node.children:
                if not child.parallel and child.op not in (
                    OpKind.TOP,
                ) and not _subtree_serial_ok(child):
                    violations.append(Violation(
                        "parallel-boundary", label,
                        f"parallel {node.op.value} has serial child "
                        f"{child.op.value}",
                    ))
    return violations


def _subtree_serial_ok(node: PlanNode) -> bool:
    """A fully-serial subtree under a parallel parent is acceptable when
    it is a tiny build side (the broadcast case)."""
    return all(not n.parallel for n in node.walk()) and node.rows_out <= 1e6


def assert_valid(plan: PlanNode) -> None:
    """Raise ``AssertionError`` listing every violation (test helper)."""
    violations = validate_plan(plan)
    assert not violations, "\n".join(str(v) for v in violations)
