"""Tests for fault specs and simulation-level fault injection: storage
brownouts, transient write errors with WAL retry, core offlining, and
crash/recover — all observable through ``Measurement.fault_summary``."""

import pytest

from repro.core.experiment import ExperimentConfig, run_experiment
from repro.core.resultcache import ResultCache
from repro.errors import FaultInjectionError
from repro.faults import (
    CoreOffline,
    CrashPoint,
    StorageBrownout,
    TransientWriteErrors,
    WorkerCrash,
    WorkerStall,
    harness_faults,
    simulation_faults,
)
from repro.hardware.storage import NvmeDevice
from repro.sim.process import Simulator
from repro.units import mb_per_s


def run_asdb(faults=(), duration=1.5, seed=3):
    return run_experiment("asdb", 2000, duration=duration, seed=seed,
                          faults=tuple(faults))


class TestFaultSpecs:
    def test_validation(self):
        with pytest.raises(FaultInjectionError):
            StorageBrownout(start=-1.0, duration=1.0)
        with pytest.raises(FaultInjectionError):
            StorageBrownout(start=0.0, duration=1.0, write_factor=0.0)
        with pytest.raises(FaultInjectionError):
            TransientWriteErrors(start=0.0, duration=1.0, failure_rate=1.5)
        with pytest.raises(FaultInjectionError):
            CoreOffline(at=0.5, remaining_logical=0)
        with pytest.raises(FaultInjectionError):
            CrashPoint(at=-0.1)
        with pytest.raises(FaultInjectionError):
            WorkerCrash(attempts=0)
        with pytest.raises(FaultInjectionError):
            WorkerStall(seconds=-1.0)

    def test_layer_filters(self):
        faults = (StorageBrownout(start=0.1, duration=0.1),
                  WorkerCrash(attempts=1),
                  CrashPoint(at=0.5),
                  WorkerStall(seconds=5.0))
        assert [type(f).__name__ for f in simulation_faults(faults)] == \
            ["StorageBrownout", "CrashPoint"]
        assert [type(f).__name__ for f in harness_faults(faults)] == \
            ["WorkerCrash", "WorkerStall"]

    def test_fires_on_attempt_bound(self):
        crash = WorkerCrash(attempts=2)
        assert crash.fires_on(0) and crash.fires_on(1)
        assert not crash.fires_on(2)

    def test_faults_participate_in_cache_key(self, tmp_path):
        cache = ResultCache(tmp_path, token="t")
        base = ExperimentConfig(workload="asdb", scale_factor=2000,
                                duration=1.0)
        faulted = ExperimentConfig(
            workload="asdb", scale_factor=2000, duration=1.0,
            faults=(StorageBrownout(start=0.1, duration=0.2),),
        )
        assert cache.digest(base) != cache.digest(faulted)


class TestDeviceFaultHooks:
    def test_brownout_scales_effective_bandwidth(self):
        sim = Simulator()
        device = NvmeDevice(sim, read_bw=mb_per_s(1000),
                            write_bw=mb_per_s(1000))
        device.apply_brownout(read_factor=0.5, write_factor=0.1)
        assert device.browned_out
        assert device.effective_read_bw == pytest.approx(mb_per_s(500))
        assert device.effective_write_bw == pytest.approx(mb_per_s(100))
        device.clear_brownout()
        assert not device.browned_out
        assert device.effective_write_bw == pytest.approx(mb_per_s(1000))

    def test_brownout_factors_validated(self):
        device = NvmeDevice(Simulator())
        with pytest.raises(FaultInjectionError):
            device.apply_brownout(write_factor=0.0)
        with pytest.raises(FaultInjectionError):
            device.apply_brownout(read_factor=1.5)


class TestInjectedExperiments:
    """End-to-end: each fault type through a real (short) experiment."""

    def test_fault_free_run_has_no_summary(self):
        assert run_asdb().fault_summary is None

    def test_brownout_lowers_throughput(self):
        # asdb pushes ~54 MB/s of dirty pages + WAL; a 99% write brownout
        # makes the device the bottleneck for most of the run.
        clean = run_asdb()
        browned = run_asdb(faults=[
            StorageBrownout(start=0.25, duration=1.0, write_factor=0.01),
        ])
        assert browned.fault_summary["faults_installed"] == 1.0
        assert browned.primary_metric < 0.8 * clean.primary_metric

    def test_transient_errors_retried_by_wal(self):
        m = run_asdb(faults=[
            TransientWriteErrors(start=0.25, duration=0.5),
        ])
        assert m.fault_summary["write_faults_injected"] > 0
        assert m.fault_summary["wal_flush_retries"] > 0
        # Retries delay commits but never lose them: still a live run.
        assert m.primary_metric > 0

    def test_core_offline_lowers_throughput(self):
        clean = run_asdb()
        offlined = run_asdb(faults=[CoreOffline(at=0.3, remaining_logical=4)])
        assert offlined.primary_metric < clean.primary_metric

    def test_crash_point_recovers_and_counts(self):
        m = run_asdb(faults=[CrashPoint(at=0.75)])
        assert m.fault_summary["crash_recoveries"] == 1.0
        assert m.fault_summary["replayed_records"] > 0

    def test_injection_is_deterministic(self):
        spec = [TransientWriteErrors(start=0.25, duration=0.5,
                                     failure_rate=0.5)]
        first = run_asdb(faults=spec)
        second = run_asdb(faults=spec)
        assert first.primary_metric == second.primary_metric
        assert first.fault_summary == second.fault_summary

    def test_harness_faults_ignored_by_simulation(self):
        """Worker-level specs are interpreted by the runner, not the
        experiment: running directly, they must not change the result."""
        clean = run_asdb()
        tagged = run_asdb(faults=[WorkerStall(seconds=30.0, attempts=1)])
        assert tagged.primary_metric == clean.primary_metric
        assert tagged.fault_summary is None
