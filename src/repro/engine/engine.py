"""The :class:`SqlEngine` facade: one configured database engine instance.

Construction wires the whole engine stack to a machine: buffer pool, WAL,
lock manager, query memory pool, optimizer, SQLOS runtime, and executor.
An engine instance is built per experiment run (like restarting the server
between the paper's experiments) so that runtime state — CAT allocation,
cpuset shape, counters — is frozen consistently.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.engine.bufferpool import BufferPool
from repro.engine.catalog import Database
from repro.engine.checkpoint import CheckpointWriter
from repro.engine.executor import ExecutionResult, Executor, TransactionDemand
from repro.engine.locks import LockManager
from repro.engine.memory_grants import MemoryGrant, QueryMemoryPool
from repro.engine.optimizer.cost_model import CostModel
from repro.engine.optimizer.optimizer import OptimizedQuery, Optimizer, PlanningContext
from repro.engine.optimizer.queryspec import QuerySpec
from repro.engine.plancache import DEFAULT_PLAN_CACHE_SIZE, PlanCache
from repro.engine.resource_governor import ResourceGovernor
from repro.engine.semaphore import ResourceSemaphore
from repro.engine.sqlos import ExecutionCharacteristics, SqlOs
from repro.engine.wal import WriteAheadLog
from repro.hardware.machine import Machine


class SqlEngine:
    """A database engine bound to a machine and one database."""

    def __init__(
        self,
        machine: Machine,
        database: Database,
        execution: ExecutionCharacteristics,
        governor: ResourceGovernor = ResourceGovernor(),
        hot_lock_rows: int = 1024,
        hot_latch_pages: int = 256,
        reserved_grant_bytes: float = 0.0,
        concurrent_grant_slots: int = 0,
        share_cpu_pool: bool = False,
        cost_model: Optional[CostModel] = None,
        search_strategy: str = "greedy",
        plan_cache_size: int = DEFAULT_PLAN_CACHE_SIZE,
        backend_name: str = "rowstore-oltp",
    ):
        self.machine = machine
        self.database = database
        self.governor = governor
        self.backend_name = backend_name
        self.memory_pool = QueryMemoryPool(
            server_memory_bytes=machine.dram.capacity_bytes,
            grant_percent=governor.grant_percent,
        )
        # RESOURCE_SEMAPHORE: grant queueing + graceful degradation under
        # saturation.  Disabled (exact pass-through) unless the governor
        # carries an overload knob.
        self.semaphore = ResourceSemaphore(
            sim=machine.sim, pool=self.memory_pool, governor=governor
        )
        # Memory promised to concurrently-running queries is unavailable
        # to the buffer pool — this couples §8's grant knob to IO volume.
        reserved = reserved_grant_bytes + (
            concurrent_grant_slots * self.memory_pool.per_query_cap_bytes
        )
        self.buffer_pool = BufferPool(
            database=database,
            server_memory_bytes=machine.dram.capacity_bytes,
            reserved_grant_bytes=reserved,
        )
        self.wal = WriteAheadLog(machine.sim, machine.ssd)
        self.checkpoint = CheckpointWriter(machine.sim, machine.ssd, wal=self.wal)
        self.locks = LockManager(
            machine.sim, hot_rows=hot_lock_rows, hot_pages=hot_latch_pages
        )
        self.sqlos = SqlOs(machine, execution, shared_cpu_pool=share_cpu_pool)
        self.executor = Executor(
            sim=machine.sim,
            machine=machine,
            sqlos=self.sqlos,
            buffer_pool=self.buffer_pool,
            lock_manager=self.locks,
            wal=self.wal,
            checkpoint=self.checkpoint,
        )
        self._planning = PlanningContext(
            database=database,
            buffer_pool=self.buffer_pool,
            cost_model=cost_model or CostModel(),
            max_dop=governor.max_dop,
            search_strategy=search_strategy,
        )
        self.optimizer = Optimizer(self._planning)
        self.plan_cache = PlanCache(maxsize=plan_cache_size, namespace=backend_name)

    # -- planning and admission ----------------------------------------------------

    def optimize(self, spec: QuerySpec, dop_hint: int = 0) -> OptimizedQuery:
        """Optimize under the governor's DOP cap and the current cpuset.

        Results are memoized in an LRU plan cache.  Within one engine the
        plan is fully determined by the spec (which encodes query name
        and scale factor) and the effective DOP; everything else that
        could change it — the database, buffer-pool residency, the
        governor's MAXDOP and grant percentage — is frozen at engine
        construction, so a hit is exact.  Plans are immutable
        (:class:`OptimizedQuery` and every ``PlanNode`` are frozen
        dataclasses), making the shared object safe to execute repeatedly.
        """
        dop = self.governor.effective_dop(len(self.machine.cpuset), hint=dop_hint)
        key = (self.plan_cache.namespace, spec, dop)
        cached = self.plan_cache.get(key)
        if cached is not None:
            return cached
        optimized = self.optimizer.optimize(spec, max_dop=dop)
        self.plan_cache.put(key, optimized)
        return optimized

    def admit(self, optimized: OptimizedQuery) -> MemoryGrant:
        return self.memory_pool.admit(optimized.required_memory_bytes)

    # -- execution ------------------------------------------------------------------

    def run_query(self, spec: QuerySpec, dop_hint: int = 0) -> Generator:
        """Generator: optimize, admit through the semaphore, and execute.

        Admission may suspend (RESOURCE_SEMAPHORE queueing), time out
        into a degraded grant that spills, or raise
        :class:`~repro.errors.GrantTimeoutError`, depending on the
        governor's overload policy; with protection off it is the
        historical instant admission.  Returns an
        :class:`~repro.engine.executor.ExecutionResult`.
        """
        optimized = self.optimize(spec, dop_hint=dop_hint)
        ticket = yield from self.semaphore.acquire(
            optimized.required_memory_bytes, name=spec.name
        )
        try:
            demand = self.executor.demand_for_query(optimized, ticket.grant)
            result = yield from self.executor.execute_query(demand)
        finally:
            self.semaphore.release(ticket)
        result.grant_wait = ticket.waited
        return result

    def run_transaction(self, demand: TransactionDemand) -> Generator:
        """Generator: execute one OLTP transaction.  Returns its result."""
        result = yield from self.executor.execute_transaction(demand)
        return result

    # -- counters -------------------------------------------------------------------

    def counter_totals(self):
        return self.sqlos.counter_totals()
