"""Tests for the parallel sweep runner: ordering, determinism, caching,
seed derivation, and measurement picklability (what the cache and the
process pool both depend on)."""

import pickle

import pytest

from repro.core.colocation import ColocationScenario, TenantSpec, run_colocated_scenarios
from repro.core.experiment import ExperimentConfig, run_experiment
from repro.core.knobs import ResourceAllocation
from repro.core.resultcache import ResultCache
from repro.core.runner import map_ordered, run_configs, run_one, with_seeds
from repro.core.sweeps import run_sweep
from repro.errors import ConfigurationError
from repro.hardware.machine import MachineSpec
from repro.workloads.base import ThroughputTracker


def mixed_sweep():
    """A small mixed TPC-H/TPC-E grid with distinct shapes per point."""
    return [
        ExperimentConfig(workload="tpch", scale_factor=10, duration=20.0,
                         seed=3),
        ExperimentConfig(workload="tpce", scale_factor=5000, duration=3.0,
                         allocation=ResourceAllocation(logical_cores=8),
                         seed=5),
        ExperimentConfig(workload="asdb", scale_factor=2000, duration=3.0,
                         allocation=ResourceAllocation(llc_mb=6), seed=7),
    ]


def fingerprint(measurement):
    return (
        measurement.workload,
        measurement.primary_metric,
        dict(measurement.wait_times),
        dict(measurement.plan_signatures),
    )


class TestMapOrdered:
    def test_serial_preserves_order(self):
        assert map_ordered(lambda x: x * x, [3, 1, 2]) == [9, 1, 4]

    def test_parallel_preserves_order(self):
        assert map_ordered(abs, [-5, 2, -1, 4], jobs=2) == [5, 2, 1, 4]

    def test_rejects_bad_job_count(self):
        with pytest.raises(ConfigurationError):
            map_ordered(abs, [1], jobs=0)

    def test_empty_input(self):
        assert map_ordered(abs, [], jobs=4) == []


class TestDeterminism:
    def test_parallel_identical_to_serial(self):
        """jobs=4 must be bit-identical to jobs=1 on a mixed sweep."""
        configs = mixed_sweep()
        serial = run_sweep(configs, jobs=1)
        parallel = run_sweep(configs, jobs=4)
        assert [fingerprint(m) for m in serial] == \
            [fingerprint(m) for m in parallel]

    def test_order_matches_input_order(self):
        configs = mixed_sweep()
        measurements = run_sweep(configs, jobs=2)
        assert [m.workload for m in measurements] == \
            [c.workload for c in configs]
        assert [m.scale_factor for m in measurements] == \
            [c.scale_factor for c in configs]

    def test_run_one_matches_run_experiment(self):
        config = ExperimentConfig(workload="asdb", scale_factor=2000,
                                  duration=3.0, seed=9)
        direct = run_experiment("asdb", 2000, duration=3.0, seed=9)
        assert run_one(config).primary_metric == direct.primary_metric

    def test_colocation_scenarios_parallel_identical(self):
        scenarios = [
            ColocationScenario(
                name=f"split-{cores}",
                tenants=(
                    TenantSpec("oltp", "asdb", 2000,
                               logical_cores=cores, llc_mb=20),
                    TenantSpec("olap", "tpch", 10,
                               logical_cores=32 - cores, llc_mb=20),
                ),
                duration=3.0,
            )
            for cores in (8, 24)
        ]
        serial = run_colocated_scenarios(scenarios, jobs=1)
        parallel = run_colocated_scenarios(scenarios, jobs=2)
        assert list(serial) == ["split-8", "split-24"]
        for name in serial:
            assert [t.primary_metric for t in serial[name]] == \
                [t.primary_metric for t in parallel[name]]

    def test_colocation_duplicate_names_rejected(self):
        scenario = ColocationScenario(
            name="dup",
            tenants=(TenantSpec("a", "asdb", 2000,
                                logical_cores=8, llc_mb=10),),
            duration=1.0,
        )
        with pytest.raises(ConfigurationError):
            run_colocated_scenarios([scenario, scenario])


class TestCachedRuns:
    def test_second_run_is_all_hits_and_identical(self, tmp_path):
        configs = mixed_sweep()
        cache = ResultCache(tmp_path)
        cold = run_configs(configs, cache=cache)
        assert cache.stats() == {"hits": 0, "misses": 3, "stores": 3,
                                 "store_errors": 0, "corrupt": 0}
        warm = run_configs(configs, cache=cache)
        assert cache.stats() == {"hits": 3, "misses": 3, "stores": 3,
                                 "store_errors": 0, "corrupt": 0}
        assert [fingerprint(m) for m in cold] == \
            [fingerprint(m) for m in warm]

    def test_cached_results_match_uncached(self, tmp_path):
        configs = mixed_sweep()
        cache = ResultCache(tmp_path)
        run_configs(configs, cache=cache)
        warm = run_configs(configs, cache=cache)
        plain = run_configs(configs)
        assert [fingerprint(m) for m in warm] == \
            [fingerprint(m) for m in plain]

    def test_partial_hits_fill_only_the_gaps(self, tmp_path):
        configs = mixed_sweep()
        cache = ResultCache(tmp_path)
        run_configs(configs[:2], cache=cache)
        results = run_configs(configs, cache=cache, jobs=2)
        assert cache.stats()["hits"] == 2
        assert cache.stats()["stores"] == 3
        assert [m.workload for m in results] == ["tpch", "tpce", "asdb"]

    def test_seed_change_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        config = mixed_sweep()[0]
        run_configs([config], cache=cache)
        reseeded = ExperimentConfig(
            workload=config.workload, scale_factor=config.scale_factor,
            duration=config.duration, seed=config.seed + 1,
        )
        assert cache.get(reseeded) is None

    def test_machine_spec_change_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        config = mixed_sweep()[0]
        run_configs([config], cache=cache)
        other_box = ExperimentConfig(
            workload=config.workload, scale_factor=config.scale_factor,
            duration=config.duration, seed=config.seed,
            machine_spec=MachineSpec(cores_per_socket=16),
        )
        assert cache.get(other_box) is None

    def test_calibration_token_change_misses(self, tmp_path):
        config = mixed_sweep()[0]
        cache = ResultCache(tmp_path, token="model-v1")
        run_configs([config], cache=cache)
        retuned = ResultCache(tmp_path, token="model-v2")
        assert retuned.get(config) is None


class TestWithSeeds:
    def test_seeds_follow_base_and_stride(self):
        configs = [ExperimentConfig(workload="asdb", scale_factor=2000,
                                    duration=1.0)] * 3
        seeded = with_seeds(configs, base_seed=100, stride=10)
        assert [c.seed for c in seeded] == [100, 110, 120]
        assert all(c.workload == "asdb" for c in seeded)

    def test_originals_untouched(self):
        config = ExperimentConfig(workload="asdb", scale_factor=2000,
                                  duration=1.0, seed=0)
        with_seeds([config], base_seed=42)
        assert config.seed == 0


class TestPickleRoundTrip:
    """The cache and the worker pool both ship Measurements through
    pickle; a lossy or unstable round trip corrupts every figure."""

    def test_measurement_round_trip_preserves_results(self):
        m = run_experiment("tpch", 10, duration=20.0, seed=3)
        clone = pickle.loads(pickle.dumps(m))
        assert clone.primary_metric == m.primary_metric
        assert clone.wait_times == m.wait_times
        assert clone.plan_signatures == m.plan_signatures
        assert clone.mpki == m.mpki
        assert clone.counters.series("instructions_retired") == \
            m.counters.series("instructions_retired")

    def test_tracker_round_trip(self):
        tracker = ThroughputTracker()
        for latency in (0.5, 0.1, 0.9):
            tracker.record("txn", latency)
        clone = pickle.loads(pickle.dumps(tracker))
        assert clone.counts == tracker.counts
        assert clone.percentile_latency("txn", 50.0) == \
            tracker.percentile_latency("txn", 50.0)

    def test_cdf_pickle_is_canonical(self):
        """Two Cdfs with the same samples in different insertion order
        serialize identically, so cache bytes are reproducible."""
        from repro.sim.stats import Cdf

        a, b = Cdf(), Cdf()
        for x in (3.0, 1.0, 2.0):
            a.add(x)
        for x in (1.0, 2.0, 3.0):
            b.add(x)
        assert pickle.dumps(a) == pickle.dumps(b)
        assert pickle.loads(pickle.dumps(a)).percentile(50.0) == \
            a.percentile(50.0)
