"""Tests for the event loop."""

import pytest

from repro.errors import SimulationError
from repro.sim.events import EventLoop


def test_events_fire_in_time_order():
    loop = EventLoop()
    order = []
    loop.schedule_at(3.0, lambda ev: order.append(3))
    loop.schedule_at(1.0, lambda ev: order.append(1))
    loop.schedule_at(2.0, lambda ev: order.append(2))
    loop.run()
    assert order == [1, 2, 3]


def test_simultaneous_events_fire_fifo():
    loop = EventLoop()
    order = []
    for i in range(5):
        loop.schedule_at(1.0, lambda ev, i=i: order.append(i))
    loop.run()
    assert order == [0, 1, 2, 3, 4]


def test_clock_advances_to_event_time():
    loop = EventLoop()
    seen = []
    loop.schedule_at(2.5, lambda ev: seen.append(loop.now))
    loop.run()
    assert seen == [2.5]
    assert loop.now == 2.5


def test_schedule_after_is_relative():
    loop = EventLoop()
    times = []
    def chain(ev):
        times.append(loop.now)
        if len(times) < 3:
            loop.schedule_after(1.0, chain)
    loop.schedule_after(1.0, chain)
    loop.run()
    assert times == [1.0, 2.0, 3.0]


def test_cancelled_event_does_not_fire():
    loop = EventLoop()
    fired = []
    event = loop.schedule_at(1.0, lambda ev: fired.append(1))
    event.cancel()
    loop.run()
    assert fired == []


def test_run_until_stops_before_later_events():
    loop = EventLoop()
    fired = []
    loop.schedule_at(1.0, lambda ev: fired.append(1))
    loop.schedule_at(10.0, lambda ev: fired.append(10))
    loop.run(until=5.0)
    assert fired == [1]
    assert loop.now == 5.0


def test_run_until_then_resume():
    loop = EventLoop()
    fired = []
    loop.schedule_at(10.0, lambda ev: fired.append(10))
    loop.run(until=5.0)
    loop.run()
    assert fired == [10]


def test_scheduling_in_past_raises():
    loop = EventLoop()
    loop.schedule_at(5.0, lambda ev: None)
    loop.run()
    with pytest.raises(SimulationError):
        loop.schedule_at(1.0, lambda ev: None)


def test_negative_delay_raises():
    loop = EventLoop()
    with pytest.raises(SimulationError):
        loop.schedule_after(-1.0, lambda ev: None)


def test_peek_time_skips_cancelled():
    loop = EventLoop()
    first = loop.schedule_at(1.0, lambda ev: None)
    loop.schedule_at(2.0, lambda ev: None)
    first.cancel()
    assert loop.peek_time() == 2.0


def test_events_scheduled_during_run_are_processed():
    loop = EventLoop()
    fired = []
    def outer(ev):
        fired.append("outer")
        loop.schedule_after(0.5, lambda ev2: fired.append("inner"))
    loop.schedule_at(1.0, outer)
    loop.run()
    assert fired == ["outer", "inner"]
    assert loop.now == 1.5
