"""Tests for the content-addressed result cache: canonical hashing,
calibration tokens, atomic storage, and corruption healing."""

import hashlib
import pickle

import pytest

from repro.core.experiment import ExperimentConfig, run_experiment
from repro.core.knobs import ResourceAllocation
from repro.core.resultcache import (
    CACHE_DIR_ENV,
    ResultCache,
    calibration_token,
    canonical_json,
    config_digest,
    default_cache_dir,
)
from repro.errors import ConfigurationError
from repro.hardware.machine import MachineSpec
from repro.units import mb_per_s


def make_config(**overrides):
    base = dict(workload="asdb", scale_factor=2000, duration=3.0, seed=0)
    base.update(overrides)
    return ExperimentConfig(**base)


class TestCanonicalJson:
    def test_stable_across_calls(self):
        config = make_config()
        assert canonical_json(config) == canonical_json(config)

    def test_equal_configs_render_identically(self):
        assert canonical_json(make_config()) == canonical_json(make_config())

    def test_dict_key_order_irrelevant(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json({"a": 2, "b": 1})

    def test_nested_allocation_included(self):
        with_limit = make_config(
            allocation=ResourceAllocation(read_bw_limit=mb_per_s(200)))
        assert canonical_json(with_limit) != canonical_json(make_config())

    def test_machine_spec_included(self):
        other = make_config(machine_spec=MachineSpec(smt=1))
        assert canonical_json(other) != canonical_json(make_config())

    def test_unhashable_type_rejected(self):
        with pytest.raises(ConfigurationError):
            canonical_json(object())


class TestDigests:
    def test_digest_diversity(self):
        token = "t"
        variants = [
            make_config(),
            make_config(seed=1),
            make_config(duration=4.0),
            make_config(workload="tpce", scale_factor=5000),
            make_config(allocation=ResourceAllocation(logical_cores=4)),
            make_config(machine_spec=MachineSpec(cores_per_socket=16)),
            make_config(workload_kwargs={"streams": 1}),
        ]
        digests = {config_digest(v, token) for v in variants}
        assert len(digests) == len(variants)

    def test_token_is_part_of_the_address(self):
        config = make_config()
        assert config_digest(config, "a") != config_digest(config, "b")

    def test_backend_and_router_are_part_of_the_address(self):
        """Regression: a columnstore run and a routed run must never be
        served from a rowstore entry for the same knobs."""
        token = "t"
        variants = [
            make_config(),
            make_config(backend="columnstore-dss"),
            make_config(backend="elastic-serverless"),
            make_config(router="rule-based"),
            make_config(router="cost-scored"),
            make_config(router="rule-based",
                        router_backends=("rowstore-oltp",
                                         "columnstore-dss")),
        ]
        digests = {config_digest(v, token) for v in variants}
        assert len(digests) == len(variants)

    def test_backend_entries_do_not_collide(self, tmp_path):
        cache = ResultCache(tmp_path)
        rowstore = make_config()
        columnstore = make_config(backend="columnstore-dss")
        cache.put(rowstore, run_experiment("asdb", 2000, duration=3.0))
        assert cache.get(columnstore) is None
        assert cache.get(rowstore) is not None

    def test_calibration_token_is_stable(self):
        assert calibration_token() == calibration_token()
        assert len(calibration_token()) == 16


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        config = make_config()
        assert cache.get(config) is None
        measurement = run_experiment("asdb", 2000, duration=3.0)
        cache.put(config, measurement)
        hit = cache.get(config)
        assert hit is not None
        assert hit.primary_metric == measurement.primary_metric
        assert cache.stats() == {"hits": 1, "misses": 1, "stores": 1,
                                 "store_errors": 0, "corrupt": 0}
        assert len(cache) == 1

    def test_corrupt_entry_is_a_miss_and_heals(self, tmp_path):
        cache = ResultCache(tmp_path)
        config = make_config()
        measurement = run_experiment("asdb", 2000, duration=3.0)
        path = cache.put(config, measurement)
        path.write_bytes(b"torn write from a killed process")
        assert cache.get(config) is None
        assert not path.exists()
        cache.put(config, measurement)
        assert cache.get(config).primary_metric == measurement.primary_metric

    @pytest.mark.parametrize("junk", [
        b"garbage\n",                      # raises ValueError inside pickle
        b"\x80\x05garbage",                # truncated frame, UnpicklingError
        b"",                               # empty file, EOFError
    ])
    def test_any_undecodable_entry_is_a_miss(self, tmp_path, junk):
        cache = ResultCache(tmp_path)
        config = make_config()
        path = cache.put(config, run_experiment("asdb", 2000, duration=3.0))
        path.write_bytes(junk)
        assert cache.get(config) is None
        assert not path.exists()

    def test_truncated_pickle_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        config = make_config()
        path = cache.put(config, run_experiment("asdb", 2000, duration=3.0))
        payload = path.read_bytes()
        path.write_bytes(payload[: len(payload) // 2])
        assert cache.get(config) is None

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        measurement = run_experiment("asdb", 2000, duration=3.0)
        for seed in range(3):
            cache.put(make_config(seed=seed), measurement)
        assert len(cache) == 3
        assert cache.clear() == 3
        assert len(cache) == 0

    def test_no_temp_droppings(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(make_config(), run_experiment("asdb", 2000, duration=3.0))
        leftovers = [p for p in tmp_path.iterdir()
                     if p.name.startswith(".tmp-")]
        assert leftovers == []

    def test_disk_errors_degrade_to_warning(self, tmp_path, monkeypatch,
                                            caplog):
        """A full disk (or revoked permissions) mid-sweep must not throw
        away the just-computed measurement: put() logs and returns None."""
        import errno
        import logging

        cache = ResultCache(tmp_path)
        measurement = run_experiment("asdb", 2000, duration=3.0)

        def no_space(*args, **kwargs):
            raise OSError(errno.ENOSPC, "No space left on device")

        monkeypatch.setattr("repro.core.resultcache.tempfile.mkstemp",
                            no_space)
        with caplog.at_level(logging.WARNING, logger="repro.core.resultcache"):
            result = cache.put(make_config(), measurement)
        assert result is None
        assert cache.store_errors == 1
        assert cache.stores == 0
        assert any("could not store" in r.message for r in caplog.records)
        # The cache object remains usable once the disk recovers.
        monkeypatch.undo()
        assert cache.put(make_config(), measurement) is not None
        assert cache.get(make_config()).primary_metric == \
            measurement.primary_metric

    def test_rename_failure_cleans_temp_file(self, tmp_path, monkeypatch):
        import errno

        cache = ResultCache(tmp_path)
        measurement = run_experiment("asdb", 2000, duration=3.0)

        def no_rename(*args, **kwargs):
            raise OSError(errno.EACCES, "Permission denied")

        monkeypatch.setattr("repro.core.resultcache.os.replace", no_rename)
        assert cache.put(make_config(), measurement) is None
        leftovers = [p for p in tmp_path.iterdir()
                     if p.name.startswith(".tmp-")]
        assert leftovers == []

    def test_entries_survive_a_new_cache_object(self, tmp_path):
        first = ResultCache(tmp_path)
        config = make_config()
        measurement = run_experiment("asdb", 2000, duration=3.0)
        first.put(config, measurement)
        second = ResultCache(tmp_path)
        assert second.get(config).primary_metric == measurement.primary_metric


class TestDefaultCacheDir:
    def test_unset_means_no_caching(self, monkeypatch):
        monkeypatch.delenv(CACHE_DIR_ENV, raising=False)
        assert default_cache_dir() is None

    def test_env_sets_the_directory(self, monkeypatch, tmp_path):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path))
        assert default_cache_dir() == tmp_path


class TestQuarantine:
    """Satellite: corrupt entries are preserved for post-mortem, not
    deleted — renamed to ``.corrupt-<name>`` beside the cache."""

    def test_corrupt_entry_is_quarantined_not_deleted(self, tmp_path):
        cache = ResultCache(tmp_path)
        config = make_config()
        path = cache.put(config, run_experiment("asdb", 2000, duration=3.0))
        garbage = b"torn write from a killed process"
        path.write_bytes(garbage)
        assert cache.get(config) is None
        assert not path.exists()
        quarantined = tmp_path / f".corrupt-{path.name}"
        assert quarantined.exists()
        assert quarantined.read_bytes() == garbage
        assert cache.corrupt == 1
        assert cache.stats()["corrupt"] == 1

    def test_checksum_catches_a_valid_but_wrong_pickle(self, tmp_path):
        """A flipped payload that still unpickles cleanly is caught by
        the sha256 header, not by the unpickler."""
        cache = ResultCache(tmp_path)
        config = make_config()
        path = cache.put(config, run_experiment("asdb", 2000, duration=3.0))
        header, _, _ = path.read_bytes().partition(b"\n")
        path.write_bytes(header + b"\n" + pickle.dumps({"not": "it"}))
        assert cache.get(config) is None
        assert (tmp_path / f".corrupt-{path.name}").exists()
        assert cache.stats()["corrupt"] == 1

    def test_entries_carry_a_sha256_payload_header(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache.put(make_config(),
                         run_experiment("asdb", 2000, duration=3.0))
        header, _, payload = path.read_bytes().partition(b"\n")
        assert header == hashlib.sha256(payload).hexdigest().encode("ascii")

    def test_quarantined_files_are_invisible_to_the_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        config = make_config()
        measurement = run_experiment("asdb", 2000, duration=3.0)
        path = cache.put(config, measurement)
        path.write_bytes(b"junk")
        assert cache.get(config) is None   # quarantines
        cache.put(config, measurement)     # heals
        assert len(cache) == 1             # .corrupt-* not counted
        assert cache.clear() == 1          # ... and not cleared
        assert (tmp_path / f".corrupt-{path.name}").exists()


class TestGetManyHardening:
    """Satellite: a corrupt entry in a batch probe is a per-key miss —
    the good hits in the same batch are unaffected."""

    def test_mixed_batch_good_hits_survive_corrupt_neighbors(self, tmp_path):
        cache = ResultCache(tmp_path)
        configs = [make_config(seed=s) for s in range(3)]
        measurement = run_experiment("asdb", 2000, duration=3.0)
        paths = [cache.put(c, measurement) for c in configs]
        paths[1].write_bytes(b"torn write from a killed process")

        results = cache.get_many(configs)
        assert len(results) == 3
        hits = {digest: hit for digest, hit in results}
        assert results[0][1] is not None
        assert results[1][1] is None       # corrupt: per-key miss
        assert results[2][1] is not None
        assert len(hits) == 3              # three distinct digests
        # The damaged entry was quarantined, not left to fail again.
        assert (tmp_path / f".corrupt-{paths[1].name}").exists()
        assert cache.stats()["corrupt"] == 1

    def test_wrong_type_entry_is_quarantined_in_batch(self, tmp_path):
        """A checksum-valid pickle of the wrong type must not leak out
        of the batch probe as a 'measurement'."""
        cache = ResultCache(tmp_path)
        config = make_config()
        path = cache.put(config, run_experiment("asdb", 2000, duration=3.0))
        payload = pickle.dumps({"not": "a measurement"})
        header = hashlib.sha256(payload).hexdigest().encode("ascii")
        path.write_bytes(header + b"\n" + payload)

        [(digest, hit)] = cache.get_many([config])
        assert hit is None
        assert (tmp_path / f".corrupt-{path.name}").exists()

    def test_batch_misses_then_heal(self, tmp_path):
        cache = ResultCache(tmp_path)
        configs = [make_config(seed=s) for s in range(2)]
        assert all(hit is None for _, hit in cache.get_many(configs))
        measurement = run_experiment("asdb", 2000, duration=3.0)
        for config in configs:
            cache.put(config, measurement)
        assert all(hit is not None for _, hit in cache.get_many(configs))


class TestIterEntries:
    """Satellite: whole-cache scans (the corpus harvest path) tolerate
    quarantined neighbors and report them."""

    def test_yields_every_entry_in_digest_order(self, tmp_path):
        cache = ResultCache(tmp_path)
        configs = [make_config(seed=s) for s in range(4)]
        measurement = run_experiment("asdb", 2000, duration=3.0)
        digests = {cache.digest(c) for c in configs}
        for config in configs:
            cache.put(config, measurement)
        scanned = list(cache.iter_entries())
        assert {digest for digest, _ in scanned} == digests
        assert [digest for digest, _ in scanned] == sorted(digests)
        assert all(m.primary_metric == measurement.primary_metric
                   for _, m in scanned)

    def test_corrupt_entry_is_skipped_and_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path)
        configs = [make_config(seed=s) for s in range(3)]
        measurement = run_experiment("asdb", 2000, duration=3.0)
        paths = [cache.put(c, measurement) for c in configs]
        paths[1].write_bytes(b"torn write")
        scanned = list(cache.iter_entries())
        assert len(scanned) == 2
        assert paths[1].stem not in {digest for digest, _ in scanned}
        assert cache.quarantined_entries() == 1

    def test_quarantined_entries_counts_corpses(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.quarantined_entries() == 0
        (tmp_path / ".corrupt-aaaa").write_bytes(b"x")
        (tmp_path / ".corrupt-bbbb").write_bytes(b"x")
        assert cache.quarantined_entries() == 2
        assert len(cache) == 0

    def test_empty_cache_iterates_nothing(self, tmp_path):
        assert list(ResultCache(tmp_path).iter_entries()) == []
