"""HTAP: TPC-E transactions plus concurrent analytics (§2.3).

100 users total: 99 run the TPC-E transactional mix; 1 runs four
analytical queries sequentially, over and over, against the same database
(which carries updateable non-clustered columnstore indexes on the large
fast-growing tables per §2.3.1).  Reported metrics: OLTP TPS and
analytics queries (QPH in the paper; we track per-second rates and let
the reporting layer scale).
"""

from __future__ import annotations

from typing import Dict, Generator, List, Tuple

from repro.engine.catalog import Database
from repro.engine.engine import SqlEngine
from repro.engine.optimizer.queryspec import JoinEdge, QuerySpec, TableRef
from repro.engine.schemas import build_htap
from repro.engine.sqlos import ExecutionCharacteristics
from repro.workloads.base import ThroughputTracker
from repro.workloads.oltp import OltpWorkloadBase, TransactionType
from repro.workloads.profiles import execution_profile
from repro.workloads.tpce import TPCE_MIX

_T = TableRef
_J = JoinEdge


def htap_queries(scale_factor: int) -> Tuple[QuerySpec, ...]:
    """The four analytical queries over the TPC-E schema (§2.3): large
    scans, joins, and aggregations over the fast-growing tables."""
    sf = scale_factor
    return (
        QuerySpec(
            name="H1-trade-volume",
            tables=(
                _T("trade", "t", selectivity=0.4, column_fraction=0.3),
                _T("security", "sec", column_fraction=0.4),
            ),
            joins=(_J("t", "sec", key_side="sec"),),
            group_rows=min(1000.0, 0.685 * sf),
            sort_rows=min(1000.0, 0.685 * sf),
            optimizer_cost_scale=4.0,  # large scans always go parallel
        ),
        QuerySpec(
            name="H2-settlement-aging",
            tables=(
                _T("trade", "t", selectivity=0.6, column_fraction=0.25),
                _T("settlement", "se", column_fraction=0.3),
            ),
            joins=(_J("se", "t", key_side="t"),),
            group_rows=30,
            sort_rows=30,
            optimizer_cost_scale=4.0,
        ),
        QuerySpec(
            name="H3-history-scan",
            tables=(_T("trade_history", "th", selectivity=0.8, column_fraction=0.35),),
            group_rows=50,
            sort_rows=50,
            optimizer_cost_scale=4.0,
        ),
        QuerySpec(
            name="H4-customer-activity",
            tables=(
                _T("trade", "t", selectivity=0.5, column_fraction=0.3),
                _T("customer_account", "ca", column_fraction=0.4),
                _T("customer", "c", column_fraction=0.3),
            ),
            joins=(
                _J("t", "ca", key_side="ca"),
                _J("ca", "c", key_side="c"),
            ),
            group_rows=1000.0,
            sort_rows=1000.0,
            top=100,
            optimizer_cost_scale=4.0,
        ),
    )


class HtapWorkload(OltpWorkloadBase):
    """99 transactional users + 1 analytical user (§3)."""

    primary_kind = "txn"

    def __init__(self, scale_factor: int, oltp_clients: int = 99, dss_clients: int = 1):
        super().__init__(scale_factor, clients=oltp_clients)
        self.dss_clients = dss_clients

    @property
    def name(self) -> str:
        return "htap"

    def build_database(self) -> Database:
        return build_htap(self.scale_factor)

    def execution_characteristics(self) -> ExecutionCharacteristics:
        return execution_profile("htap", self.scale_factor)

    def transaction_types(self) -> Tuple[TransactionType, ...]:
        return TPCE_MIX

    def engine_parameters(self) -> Dict:
        params = super().engine_parameters()
        params["concurrent_grant_slots"] = self.dss_clients
        # OLTP and DSS components must contend for the same cores.
        params["share_cpu_pool"] = True
        return params

    def spawn_clients(
        self, engine: SqlEngine, tracker: ThroughputTracker, until: float
    ) -> List:
        procs = super().spawn_clients(engine, tracker, until)
        sim = engine.machine.sim
        procs.extend(
            sim.spawn_many(
                [
                    self._analytics_user(engine, tracker, until)
                    for _ in range(self.dss_clients)
                ],
                name="htap-dss",
            )
        )
        return procs

    def _analytics_user(self, engine, tracker, until) -> Generator:
        """The analytical component: four queries, sequentially, repeated
        until the end of the run (§3)."""
        sim = engine.machine.sim
        queries = htap_queries(self.scale_factor)
        while sim.now < until:
            for spec in queries:
                if sim.now >= until:
                    break
                result = yield from engine.run_query(spec)
                tracker.record("query", result.client_latency)
                tracker.record(spec.name, result.client_latency)
        return None

    def analytics_qph(self, tracker: ThroughputTracker, elapsed: float) -> float:
        """Queries per hour of the analytical component (§2.3 metric)."""
        return tracker.rate("query", elapsed) * 3600.0
