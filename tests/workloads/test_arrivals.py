"""Tests for the open-loop arrival driver."""

import pytest

from repro.core.knobs import ResourceAllocation
from repro.engine.engine import SqlEngine
from repro.engine.resource_governor import ResourceGovernor
from repro.errors import WorkloadError
from repro.hardware.machine import Machine
from repro.workloads.arrivals import OpenLoopDriver, latency_curve
from repro.workloads.asdb import AsdbWorkload


def make_pair(seed=0):
    workload = AsdbWorkload(2000, clients=1)  # clients unused open-loop
    machine = Machine(seed=seed)
    ResourceAllocation().apply_to(machine)
    engine = SqlEngine(
        machine, workload.database, workload.execution_characteristics(),
        governor=ResourceGovernor(), **workload.engine_parameters(),
    )
    return workload, engine


class TestOpenLoopDriver:
    def test_low_load_completes_offered_rate(self):
        workload, engine = make_pair()
        driver = OpenLoopDriver(workload, engine, offered_tps=100.0)
        result = driver.run(duration=10.0)
        assert result.completed_tps == pytest.approx(100.0, rel=0.2)
        assert result.dropped == 0

    def test_overload_saturates_below_offered(self):
        workload, engine = make_pair()
        driver = OpenLoopDriver(workload, engine, offered_tps=50_000.0,
                                max_in_flight=500)
        result = driver.run(duration=5.0)
        assert result.completed_tps < 0.5 * result.offered_tps
        assert result.dropped > 0

    def test_latency_grows_with_utilization(self):
        """The queueing knee: p99 latency at high load >> at low load."""
        tails = {}
        for rate in (100.0, 1700.0):
            workload, engine = make_pair()
            driver = OpenLoopDriver(workload, engine, offered_tps=rate)
            result = driver.run(duration=10.0)
            tails[rate] = result.percentile_ms(99)
        assert tails[1700.0] > 2.0 * tails[100.0]

    def test_deterministic_arrivals(self):
        workload, engine = make_pair()
        driver = OpenLoopDriver(workload, engine, offered_tps=50.0,
                                deterministic=True)
        result = driver.run(duration=4.0)
        # Deterministic gaps: exactly rate*duration arrivals (minus edge).
        assert abs(result.completed - 200) <= 2

    def test_invalid_parameters(self):
        workload, engine = make_pair()
        with pytest.raises(WorkloadError):
            OpenLoopDriver(workload, engine, offered_tps=0.0)
        with pytest.raises(WorkloadError):
            OpenLoopDriver(workload, engine, offered_tps=1.0, max_in_flight=0)

    def test_latency_curve_helper(self):
        results = latency_curve(
            workload_factory=lambda: AsdbWorkload(2000, clients=1),
            engine_factory=lambda w: make_pair()[1],
            offered_rates=[50.0, 200.0],
            duration=4.0,
        )
        assert len(results) == 2
        assert results[0].offered_tps == 50.0
        assert all(r.completed > 0 for r in results)
