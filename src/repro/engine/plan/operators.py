"""Physical plan operators.

A plan is a tree of :class:`PlanNode`.  Every node carries the estimates
the executor needs: output cardinality, CPU cost (in optimizer cost units,
see :data:`repro.calibration.INSTRUCTIONS_PER_COST_UNIT`), the bytes of
base data it scans (for buffer-pool/SSD accounting), the memory it needs
(hash tables, sort runs — the §8 grant), and whether it runs in parallel
(rendered as the "double arrow" the paper describes in Fig 7).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Iterator, Optional, Tuple

from repro.errors import PlanningError


class OpKind(enum.Enum):
    COLUMNSTORE_SCAN = "Columnstore Index Scan"
    TABLE_SCAN = "Table Scan"
    INDEX_SEEK = "Index Seek"
    FILTER = "Filter"
    HASH_JOIN = "Hash Match (Join)"
    NESTED_LOOPS = "Nested Loops"
    MERGE_JOIN = "Merge Join"
    HASH_AGGREGATE = "Hash Match (Aggregate)"
    STREAM_AGGREGATE = "Stream Aggregate"
    SORT = "Sort"
    TOP = "Top"
    EXCHANGE_GATHER = "Parallelism (Gather Streams)"
    EXCHANGE_REPARTITION = "Parallelism (Repartition Streams)"
    SPOOL = "Table Spool"


class JoinAlgorithm(enum.Enum):
    HASH = "hash"
    NESTED_LOOPS = "nested_loops"
    MERGE = "merge"

    @property
    def op_kind(self) -> OpKind:
        return {
            JoinAlgorithm.HASH: OpKind.HASH_JOIN,
            JoinAlgorithm.NESTED_LOOPS: OpKind.NESTED_LOOPS,
            JoinAlgorithm.MERGE: OpKind.MERGE_JOIN,
        }[self]


@dataclass(frozen=True)
class PlanNode:
    """One physical operator in a plan tree."""

    op: OpKind
    children: Tuple["PlanNode", ...] = ()
    table: Optional[str] = None
    rows_out: float = 0.0
    cpu_cost: float = 0.0
    scan_bytes: float = 0.0
    memory_bytes: float = 0.0
    parallel: bool = False
    detail: str = ""

    def __post_init__(self):
        if self.rows_out < 0 or self.cpu_cost < 0 or self.scan_bytes < 0:
            raise PlanningError(f"negative estimate on {self.op}")
        if self.memory_bytes < 0:
            raise PlanningError(f"negative memory on {self.op}")

    # -- tree traversal --------------------------------------------------------

    def walk(self) -> Iterator["PlanNode"]:
        """Pre-order traversal of the subtree rooted here."""
        yield self
        for child in self.children:
            yield from child.walk()

    def total_cpu_cost(self) -> float:
        return sum(node.cpu_cost for node in self.walk())

    def total_scan_bytes(self) -> float:
        return sum(node.scan_bytes for node in self.walk())

    def total_memory_bytes(self) -> float:
        """Peak memory grant estimate: sum of memory-consuming operators.

        SQL Server sizes the grant for concurrently-active memory
        consumers; summing is the conservative model the grant follows.
        """
        return sum(node.memory_bytes for node in self.walk())

    def operator_count(self) -> int:
        return sum(1 for _ in self.walk())

    def join_count(self) -> int:
        join_kinds = (OpKind.HASH_JOIN, OpKind.NESTED_LOOPS, OpKind.MERGE_JOIN)
        return sum(1 for node in self.walk() if node.op in join_kinds)

    def uses(self, op: OpKind) -> bool:
        return any(node.op is op for node in self.walk())

    def tables_touched(self) -> Tuple[str, ...]:
        return tuple(
            node.table for node in self.walk() if node.table is not None
        )

    def is_parallel_plan(self) -> bool:
        return any(node.parallel for node in self.walk())

    def signature(self) -> str:
        """A compact structural fingerprint, used to detect optimizer
        adaptation across resource settings (pitfall #6)."""
        parts = []
        for node in self.walk():
            tag = node.op.name
            if node.table:
                tag += f":{node.table}"
            if node.parallel:
                tag += "*"
            parts.append(tag)
        return "|".join(parts)

    def with_parallelism(self, parallel: bool) -> "PlanNode":
        """A copy of the subtree with the parallel flag forced."""
        return replace(
            self,
            parallel=parallel,
            children=tuple(c.with_parallelism(parallel) for c in self.children),
        )
