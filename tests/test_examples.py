"""Smoke tests for the runnable examples (the fast ones run fully; the
long sweeps are exercised through their underlying library calls in
tests/core instead)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, *args, timeout=240):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


def test_plan_explorer_q20():
    out = run_example("plan_explorer.py", "20", "300")
    assert "Optimizer decisions" in out
    assert "Nested Loops" in out          # the Fig 7 flip is visible
    assert "same shape: False" in out


def test_plan_explorer_custom_query():
    out = run_example("plan_explorer.py", "6", "10")
    assert "TPC-H Q6" in out
    assert "Columnstore Index Scan" in out


def test_quickstart():
    out = run_example("quickstart.py")
    assert "TPS" in out
    assert "Smallest allocation within 90%" in out


def test_htap_consolidation():
    out = run_example("htap_consolidation.py")
    assert "HTAP consolidation summary" in out
    assert "analytics QPH" in out
