"""TPC-E: the brokerage OLTP workload (§2.1).

The mix approximates the TPC-E transaction blend: trade processing
(updates, heavy logging, hot-row locks on securities and accounts),
market feed (very hot last_trade updates), and read-mostly inquiries.
100 users by default (§3).

Latch/lock hold times and probabilities, together with scale-dependent
hot-slot counts from :class:`~repro.workloads.oltp.OltpWorkloadBase`,
produce Table 3's behaviour: LOCK and PAGELATCH waits shrink at SF=15000
while PAGEIOLATCH waits explode because the database no longer fits in
memory.
"""

from __future__ import annotations

from typing import Tuple

from repro.calibration import TPCE_USERS
from repro.engine.catalog import Database
from repro.engine.schemas import build_tpce
from repro.engine.sqlos import ExecutionCharacteristics
from repro.units import KIB
from repro.workloads.oltp import OltpWorkloadBase, TransactionType
from repro.workloads.profiles import execution_profile

#: The TPC-E-like transaction mix.  Weights loosely follow the benchmark's
#: transaction blend; resource shapes are model calibrations.
TPCE_MIX: Tuple[TransactionType, ...] = (
    TransactionType(
        name="trade_order",
        weight=10.1,
        instructions=28e6,
        page_accesses=30.0,
        log_bytes=24 * KIB,
        main_table="trade",
        lock_probability=0.65,
        lock_hold_ms=1.2,
        pagelatch_probability=0.8,
        pagelatch_hold_ms=0.35,
        dirty_page_writes=10.0,
    ),
    TransactionType(
        name="trade_result",
        weight=10.0,
        instructions=32e6,
        page_accesses=35.0,
        log_bytes=32 * KIB,
        main_table="trade",
        lock_probability=0.7,
        lock_hold_ms=1.4,
        pagelatch_probability=0.8,
        pagelatch_hold_ms=0.4,
        dirty_page_writes=14.0,
    ),
    TransactionType(
        name="market_feed",
        weight=1.0,
        instructions=18e6,
        page_accesses=12.0,
        log_bytes=12 * KIB,
        main_table="last_trade",
        lock_probability=0.95,
        lock_hold_ms=0.9,
        pagelatch_probability=0.6,
        pagelatch_hold_ms=0.3,
        dirty_page_writes=6.0,
    ),
    TransactionType(
        name="trade_lookup",
        weight=8.0,
        instructions=24e6,
        page_accesses=40.0,
        log_bytes=0.0,
        main_table="trade_history",
        lock_probability=0.05,
        lock_hold_ms=0.3,
    ),
    TransactionType(
        name="customer_position",
        weight=13.0,
        instructions=16e6,
        page_accesses=22.0,
        log_bytes=0.0,
        main_table="holding",
        lock_probability=0.05,
        lock_hold_ms=0.3,
    ),
    TransactionType(
        name="market_watch",
        weight=18.0,
        instructions=12e6,
        page_accesses=15.0,
        log_bytes=0.0,
        main_table="security",
    ),
    TransactionType(
        name="security_detail",
        weight=14.0,
        instructions=10e6,
        page_accesses=12.0,
        log_bytes=0.0,
        main_table="company",
    ),
    TransactionType(
        name="trade_status",
        weight=19.0,
        instructions=9e6,
        page_accesses=10.0,
        log_bytes=0.0,
        main_table="trade",
        lock_probability=0.1,
        lock_hold_ms=0.2,
    ),
    TransactionType(
        name="trade_update",
        weight=2.0,
        instructions=30e6,
        page_accesses=30.0,
        log_bytes=28 * KIB,
        main_table="trade",
        lock_probability=0.6,
        lock_hold_ms=1.2,
        pagelatch_probability=0.5,
        pagelatch_hold_ms=0.35,
        dirty_page_writes=10.0,
    ),
)


class TpceWorkload(OltpWorkloadBase):
    """TPC-E with 100 users (§3)."""

    def __init__(self, scale_factor: int, clients: int = TPCE_USERS):
        super().__init__(scale_factor, clients=clients)

    @property
    def name(self) -> str:
        return "tpce"

    def build_database(self) -> Database:
        return build_tpce(self.scale_factor)

    def execution_characteristics(self) -> ExecutionCharacteristics:
        return execution_profile("tpce", self.scale_factor)

    def transaction_types(self) -> Tuple[TransactionType, ...]:
        return TPCE_MIX
