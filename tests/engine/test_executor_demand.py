"""Tests for demand derivation and optimizer scaling invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.knobs import ResourceAllocation
from repro.engine.engine import SqlEngine
from repro.engine.memory_grants import MemoryGrant
from repro.engine.resource_governor import ResourceGovernor
from repro.engine.schemas import build_tpch
from repro.hardware.machine import Machine
from repro.workloads.profiles import execution_profile
from repro.workloads.tpch import TPCH_QUERIES, tpch_query


def make_engine(sf=10, grant_slots=0):
    machine = Machine()
    ResourceAllocation().apply_to(machine)
    return SqlEngine(
        machine, build_tpch(sf), execution_profile("tpch", sf),
        governor=ResourceGovernor(max_dop=32),
        concurrent_grant_slots=grant_slots,
    )


class TestDemandDerivation:
    def test_in_memory_query_has_no_scan_io(self):
        engine = make_engine(sf=10)
        optimized = engine.optimize(tpch_query(1, 10))
        demand = engine.executor.demand_for_query(
            optimized, engine.admit(optimized)
        )
        assert demand.seq_read_bytes == 0.0
        assert demand.instructions > 0

    def test_oversized_database_scans_cold_bytes(self):
        engine = make_engine(sf=300)
        optimized = engine.optimize(tpch_query(1, 300))
        demand = engine.executor.demand_for_query(
            optimized, engine.admit(optimized)
        )
        assert demand.seq_read_bytes > 0

    def test_grant_reservation_creates_io(self):
        """§8/§9 coupling: reserving 3 stream grants pushes TPC-H SF=100
        out of memory."""
        resident = make_engine(sf=100, grant_slots=0)
        squeezed = make_engine(sf=100, grant_slots=3)
        def scan_bytes(engine):
            optimized = engine.optimize(tpch_query(1, 100))
            return engine.executor.demand_for_query(
                optimized, engine.admit(optimized)
            ).seq_read_bytes
        assert scan_bytes(squeezed) > scan_bytes(resident)

    def test_spill_bytes_flow_from_grant(self):
        engine = make_engine(sf=100)
        optimized = engine.optimize(tpch_query(18, 100))
        grant = engine.admit(optimized)
        assert grant.spills
        demand = engine.executor.demand_for_query(optimized, grant)
        assert demand.spill_write_bytes == pytest.approx(grant.spill_write_bytes)
        assert demand.spill_read_bytes == pytest.approx(grant.spill_read_bytes)

    def test_correlated_passes_multiply_io_and_cpu(self):
        engine = make_engine(sf=300)
        spec = tpch_query(17, 300)  # correlated_passes = 2.0
        optimized = engine.optimize(spec)
        grant = MemoryGrant(required_bytes=0.0, granted_bytes=0.0)
        demand = engine.executor.demand_for_query(optimized, grant)
        single_pass_cpu = (
            optimized.plan.total_cpu_cost() * 1000  # cost units -> instr
        )
        assert demand.instructions == pytest.approx(
            single_pass_cpu * spec.correlated_passes, rel=0.01
        )


class TestOptimizerScalingInvariants:
    @pytest.mark.parametrize("number", [1, 3, 6, 9, 18, 20])
    def test_cost_grows_with_scale_factor(self, number):
        small = make_engine(sf=10)
        large = make_engine(sf=100)
        cost_small = small.optimize(tpch_query(number, 10)).plan.total_cpu_cost()
        cost_large = large.optimize(tpch_query(number, 100)).plan.total_cpu_cost()
        assert cost_large > cost_small

    def test_all_queries_planable_at_all_scale_factors(self):
        for sf in (10, 30, 100, 300):
            engine = make_engine(sf=sf)
            for number in TPCH_QUERIES:
                optimized = engine.optimize(tpch_query(number, sf))
                assert optimized.plan.operator_count() >= 1
                assert optimized.required_memory_bytes >= 0
                assert optimized.estimated_elapsed_cost > 0

    @given(st.sampled_from([1, 3, 6, 18]), st.sampled_from([1, 2, 4, 8, 16, 32]))
    @settings(max_examples=20, deadline=None)
    def test_parallel_memory_monotone_in_dop(self, number, dop):
        engine = make_engine(sf=100)
        spec = tpch_query(number, 100)
        low = engine.optimizer.optimize(spec, max_dop=max(1, dop // 2))
        high = engine.optimizer.optimize(spec, max_dop=dop)
        if low.plan.signature() == high.plan.signature():
            assert high.required_memory_bytes >= low.required_memory_bytes - 1e-6
