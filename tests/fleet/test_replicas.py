"""Replicated shard groups: quorum acks, fencing, crash/rejoin, audits."""

import pytest

from repro.engine.statistics import dm_fleet_replicas
from repro.engine.wal import WalRecord
from repro.errors import FaultInjectionError
from repro.fleet.replicas import ROLE_PRIMARY, ROLE_SECONDARY, ReplicaGroup

from tests.fleet.conftest import WRITE_BYTES, build_fleet, run_writes, spawn_writes


class TestGroupConstruction:
    def test_first_replica_starts_primary(self):
        _, group = build_fleet(replicas=3)
        assert group.primary is group.replicas[0]
        assert [r.role for r in group.replicas] == [
            ROLE_PRIMARY, ROLE_SECONDARY, ROLE_SECONDARY]

    def test_quorum_is_majority(self):
        assert build_fleet(replicas=3)[1].quorum == 2
        assert build_fleet(replicas=5)[1].quorum == 3

    def test_empty_group_rejected(self):
        sim, group = build_fleet(replicas=2)
        with pytest.raises(FaultInjectionError):
            ReplicaGroup(sim, [])


class TestQuorumWrites:
    def test_acked_writes_are_durable_on_a_majority(self):
        sim, group = build_fleet(replicas=3)
        records = run_writes(sim, group, 10)
        assert len(records) == 10
        assert group.writes_acked == 10
        for record in records:
            copies = sum(
                1 for r in group.replicas
                if any(d.lsn == record.lsn for d in r.wal.durable_records)
            )
            assert copies >= group.quorum

    def test_audit_clean_after_fault_free_writes(self):
        sim, group = build_fleet(replicas=3)
        run_writes(sim, group, 8)
        audit = group.audit_durability()
        assert audit["acked"] == 8
        assert audit["lost"] == []

    def test_lsns_acknowledged_in_order(self):
        sim, group = build_fleet(replicas=3)
        records = run_writes(sim, group, 6)
        lsns = [r.lsn for r in records]
        assert lsns == sorted(lsns)

    def test_counters_track_shipping(self):
        sim, group = build_fleet(replicas=3)
        run_writes(sim, group, 5)
        summary = group.summary()
        assert summary["writes_acked"] == 5.0
        # Each ack shipped to both secondaries.
        assert summary["records_shipped"] == 10.0
        assert summary["unavailable_seconds"] == 0.0


class TestPrimaryFailure:
    def test_group_unwritable_without_primary(self):
        sim, group = build_fleet(replicas=3)
        group.primary.crash()
        assert not group.writable

    def test_writes_block_then_resume_after_promotion(self):
        sim, group = build_fleet(replicas=3)
        run_writes(sim, group, 3, until=1.0)
        group.primary.crash()
        records = spawn_writes(sim, group, 2, start_txn=100)
        sim.run(until=1.2)
        assert records == []  # blocked: no writable primary
        group.install_primary(group.replicas[1])
        sim.run(until=2.0)
        assert len(records) == 2
        # The outage the client saw is accounted.
        assert group.summary()["unavailable_seconds"] > 0.0

    def test_promotion_bumps_epoch_and_fences_the_old_primary(self):
        sim, group = build_fleet(replicas=3)
        old = group.primary
        group.install_primary(group.replicas[2])
        assert group.epoch == 1
        assert group.primary is group.replicas[2]
        assert old.fenced
        assert old.role == ROLE_SECONDARY
        assert len(group.failovers) == 1

    def test_reinstalling_the_same_primary_is_a_noop(self):
        _, group = build_fleet(replicas=3)
        group.install_primary(group.primary)
        assert group.epoch == 0
        assert group.failovers == []

    def test_fenced_primary_never_acks(self):
        sim, group = build_fleet(replicas=3)
        group.primary.fence()
        records = spawn_writes(sim, group, 1)
        sim.run(until=0.5)
        assert records == []
        assert group.writes_acked == 0


class TestRejoin:
    def test_crashed_secondary_catches_up_on_rejoin(self):
        sim, group = build_fleet(replicas=3)
        run_writes(sim, group, 4, until=1.0)
        secondary = group.replicas[2]
        secondary.crash()
        run_writes(sim, group, 6, until=2.0, start_txn=10)
        assert group.writes_acked == 10
        behind = group.primary.durable_lsn - secondary.durable_lsn
        assert behind > 0
        secondary.restart()
        sim.spawn(group.rejoin(secondary), name="test-rejoin")
        sim.run(until=3.0)
        assert secondary.durable_lsn == group.primary.durable_lsn
        assert not secondary.fenced
        assert secondary.role == ROLE_SECONDARY
        assert group.catchup_records >= behind
        assert secondary.recoveries == 1

    def test_rejoin_uses_checkpoint_bulk_restore(self):
        sim, group = build_fleet(replicas=3)
        secondary = group.replicas[1]
        secondary.crash()
        run_writes(sim, group, 30, until=4.0, interval=0.01)
        # Dirty some pages so the primary's checkpoint writer publishes a
        # checkpoint LSN covering the missed records (direct WAL commits
        # do not dirty data pages by themselves).
        checkpoint = group.primary.engine.checkpoint
        sim.spawn(checkpoint.mark_dirty(64.0), name="dirty")
        sim.run(until=6.0)
        assert group.primary.checkpoint_lsn > 0
        secondary.restart()
        sim.spawn(group.rejoin(secondary), name="test-rejoin")
        sim.run(until=8.0)
        assert group.checkpoint_catchups == 1
        assert secondary.durable_lsn == group.primary.durable_lsn

    def test_divergent_tail_is_truncated(self):
        sim, group = build_fleet(replicas=3)
        run_writes(sim, group, 3, until=1.0)
        deposed = group.primary
        # A record that exists only on the deposed primary's history:
        # committed locally, never replicated, never acknowledged.
        orphan_lsn = deposed.durable_lsn + 1

        def orphan_commit():
            yield from deposed.wal.apply_shipped(
                [WalRecord(lsn=orphan_lsn, nbytes=WRITE_BYTES, txn_id=999)]
            )

        sim.spawn(orphan_commit(), name="orphan")
        sim.run(until=1.5)
        assert deposed.durable_lsn == orphan_lsn
        group.install_primary(group.replicas[1])
        sim.spawn(group.rejoin(deposed), name="test-rejoin")
        sim.run(until=2.5)
        assert group.log_truncations == 1
        assert all(r.lsn != orphan_lsn or r.txn_id != 999
                   for r in deposed.wal.durable_records)

    def test_rejoin_of_the_primary_itself_just_unfences(self):
        sim, group = build_fleet(replicas=3)
        primary = group.primary
        primary.fenced = True
        sim.spawn(group.rejoin(primary), name="test-rejoin")
        sim.run(until=0.5)
        assert not primary.fenced
        assert primary.role == ROLE_PRIMARY


class TestCrashSemantics:
    def test_restart_discards_ghost_records(self):
        sim, group = build_fleet(replicas=3)
        run_writes(sim, group, 3, until=1.0)
        victim = group.replicas[1]
        at_crash = victim.durable_lsn
        victim.crash()

        # A shipped apply that completes after the crash instant: on real
        # hardware that write never became durable.
        def ghost():
            yield from victim.wal.apply_shipped(
                [WalRecord(lsn=at_crash + 1, nbytes=WRITE_BYTES, txn_id=7)]
            )

        sim.spawn(ghost(), name="ghost")
        sim.run(until=1.5)
        victim.restart()
        assert victim.durable_lsn == at_crash

    def test_crash_verifies_recovery_of_committed_transactions(self):
        sim, group = build_fleet(replicas=3)
        run_writes(sim, group, 5, until=1.0)
        committed = {r.txn_id for r in group.primary.wal.durable_records
                     if r.txn_id >= 0}
        result = group.primary.crash()
        # Every durably-committed transaction survived replay.
        assert committed <= set(result.recovered_txn_ids)

    def test_crashed_replica_is_not_eligible(self):
        _, group = build_fleet(replicas=3)
        replica = group.replicas[1]
        replica.crash()
        assert not replica.reachable
        assert not replica.eligible
        assert replica not in group.eligible_candidates()

    def test_partitioned_replica_is_not_eligible(self):
        _, group = build_fleet(replicas=3)
        replica = group.replicas[1]
        replica.partitioned = True
        assert not replica.reachable
        assert replica not in group.eligible_candidates()


class TestAudit:
    def test_audit_reports_a_lost_acknowledged_write(self):
        sim, group = build_fleet(replicas=3)
        run_writes(sim, group, 3, until=1.0)
        # Fabricate an acknowledged record no replica holds: the audit
        # must flag it, not paper over it.
        group.acked_records[10 ** 9] = WalRecord(
            lsn=10 ** 9, nbytes=WRITE_BYTES, txn_id=-1)
        audit = group.audit_durability()
        assert audit["lost"] == [10 ** 9]

    def test_audit_only_counts_surviving_replicas(self):
        sim, group = build_fleet(replicas=3)
        run_writes(sim, group, 3, until=1.0)
        group.replicas[1].up = False
        audit = group.audit_durability()
        assert audit["survivors"] == [0, 2]
        assert audit["lost"] == []


class TestFleetDmv:
    def test_dm_fleet_replicas_rows(self):
        sim, group = build_fleet(replicas=3)
        run_writes(sim, group, 2, until=1.0)
        rows = dm_fleet_replicas(group)
        assert [row.replica for row in rows] == [0, 1, 2]
        assert rows[0].role == ROLE_PRIMARY
        assert all(row.up for row in rows)
        assert rows[0].durable_lsn == group.primary.durable_lsn
        # Without a monitor the health columns are neutral.
        assert all(row.suspicion == 0.0 and not row.suspected for row in rows)
