"""Extension benches for the paper's §10 research questions.

Not paper artifacts, but the follow-on analyses the paper proposes:
SLA-driven partitioning, predictive provisioning models, and admission
policy comparison, all on the same simulated testbed.
"""

from repro.core import ResourceAllocation, run_experiment
from repro.core.admission import compare_admission_policies
from repro.core.models import compare_models
from repro.core.partitioning import TenantProfile, partition_resources
from repro.core.report import format_table
from repro.units import mb_per_s


def test_q1_partitioning_meets_slos(benchmark, duration_scale, emit):
    def run():
        def profile(name, workload, sf, duration, slo_fraction):
            cores_curve = {
                c: run_experiment(
                    workload, sf,
                    allocation=ResourceAllocation(logical_cores=c),
                    duration=duration,
                ).primary_metric
                for c in (4, 8, 16)
            }
            llc_curve = {
                mb: run_experiment(
                    workload, sf, allocation=ResourceAllocation(llc_mb=mb),
                    duration=duration,
                ).primary_metric
                for mb in (4, 8, 16)
            }
            slo = slo_fraction * max(cores_curve.values())
            return TenantProfile.from_curves(name, cores_curve, llc_curve, slo)
        tenants = [
            profile("oltp", "asdb", 2000, 6.0 * duration_scale + 3.0, 0.8),
            profile("dss", "tpch", 30, 200.0 * duration_scale + 50.0, 0.6),
        ]
        return tenants, partition_resources(tenants)
    tenants, plan = benchmark.pedantic(run, rounds=1, iterations=1)
    assert plan is not None
    emit(
        "§10 Q1 — SLA partitioning of 32 cores / 40 MB LLC",
        format_table(
            ["tenant", "cores", "llc MB"],
            [(n, a[0], a[1]) for n, a in plan.assignments.items()],
        ),
    )
    for tenant in tenants:
        assert tenant.meets_slo(*plan.assignments[tenant.name])
    # Consolidation leaves headroom on at least one resource dimension.
    assert plan.spare_cores + plan.spare_llc_mb > 0


def test_q2_roofline_beats_linear(benchmark, duration_scale, emit):
    def run():
        limits = [200, 400, 800, 1600, 2500]
        qps = [
            run_experiment(
                "tpch", 300,
                allocation=ResourceAllocation(read_bw_limit=mb_per_s(l)),
                duration=4000.0 * duration_scale,
            ).primary_metric
            for l in limits
        ]
        return compare_models(limits, qps, target_fraction=0.9)
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "§10 Q2 — provisioning model comparison (TPC-H SF=300 read BW)",
        format_table(
            ["model", "rmse", "MB/s for target"],
            [("linear", result.linear_rmse, result.linear_required),
             ("roofline", result.roofline_rmse, result.roofline_required)],
        ),
    )
    assert result.roofline_wins
    assert result.overallocation_fraction > 0


def test_q3_admission_policy(benchmark, duration_scale, emit):
    def run():
        return {
            sf: compare_admission_policies(sf, streams=3,
                                           duration_scale=duration_scale)
            for sf in (10, 100)
        }
    results = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "§10 Q3 — immediate vs serialized stream admission (TPC-H)",
        format_table(
            ["SF", "immediate QPS", "serialized QPS", "winner"],
            [
                (sf, r.immediate_qps, r.serialized_qps,
                 "immediate" if r.immediate_wins else "serialized")
                for sf, r in results.items()
            ],
        ),
    )
    # In-memory, CPU-bound analytics benefits from concurrency.
    assert results[10].immediate_wins
