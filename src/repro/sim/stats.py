"""Statistics accumulators used by counters and measurements.

The paper reports averages over 1-second intervals (PCM/iostat style),
cumulative distributions of bandwidth samples (Fig 4), and tail latencies
(the ASDB 99th-percentile remark in §5).  These accumulators provide that
surface with O(1) or O(n log n) cost and no dependency on pandas.
"""

from __future__ import annotations

import bisect
import math
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import SimulationError


class WelfordStat:
    """Streaming mean / variance / min / max (Welford's algorithm)."""

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def add(self, value: float) -> None:
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.add(value)

    @property
    def mean(self) -> float:
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        return self._m2 / (self.count - 1) if self.count > 1 else 0.0

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)


class TimeWeightedStat:
    """Time-weighted average of a piecewise-constant signal.

    Record level changes with :meth:`update`; the mean weights each level by
    how long it was held.  Used for utilization-style metrics (active cores,
    queue depths, buffer-pool occupancy).
    """

    def __init__(self, initial: float = 0.0, start_time: float = 0.0):
        self._level = initial
        self._last_time = start_time
        self._area = 0.0
        self._duration = 0.0
        self.minimum = initial
        self.maximum = initial

    @property
    def level(self) -> float:
        return self._level

    def update(self, time: float, level: float) -> None:
        if time < self._last_time:
            raise SimulationError(f"time went backwards: {time} < {self._last_time}")
        dt = time - self._last_time
        self._area += self._level * dt
        self._duration += dt
        self._last_time = time
        self._level = level
        self.minimum = min(self.minimum, level)
        self.maximum = max(self.maximum, level)

    def mean(self, end_time: Optional[float] = None) -> float:
        area, duration = self._area, self._duration
        if end_time is not None:
            if end_time < self._last_time:
                raise SimulationError("end_time before last update")
            dt = end_time - self._last_time
            area += self._level * dt
            duration += dt
        return area / duration if duration > 0 else self._level


class Histogram:
    """Fixed-bin histogram with overflow tracking."""

    def __init__(self, bin_width: float, num_bins: int):
        if bin_width <= 0 or num_bins < 1:
            raise SimulationError("bad histogram shape")
        self.bin_width = bin_width
        self.counts = np.zeros(num_bins, dtype=np.int64)
        self.overflow = 0
        self.total = 0

    def add(self, value: float) -> None:
        index = int(value / self.bin_width)
        if 0 <= index < len(self.counts):
            self.counts[index] += 1
        else:
            self.overflow += 1
        self.total += 1

    def fraction_below(self, value: float) -> float:
        """Empirical CDF evaluated at *value* (bin-resolution)."""
        if self.total == 0:
            return 0.0
        full_bins = int(value / self.bin_width)
        below = int(self.counts[: max(0, min(full_bins, len(self.counts)))].sum())
        return below / self.total


class Cdf:
    """Exact empirical CDF over collected samples (Fig 4 series)."""

    def __init__(self, samples: Optional[Sequence[float]] = None):
        self._samples: List[float] = sorted(samples) if samples else []
        self._dirty = False

    def add(self, value: float) -> None:
        self._samples.append(value)
        self._dirty = True

    def _ensure_sorted(self) -> None:
        if self._dirty:
            self._samples.sort()
            self._dirty = False

    def __getstate__(self) -> dict:
        # Pickle the canonical (sorted) form: measurements that cross
        # process-pool or result-cache boundaries serialize identically
        # no matter what order samples arrived in.
        self._ensure_sorted()
        return {"samples": self._samples}

    def __setstate__(self, state: dict) -> None:
        self._samples = list(state["samples"])
        self._dirty = False

    def __len__(self) -> int:
        return len(self._samples)

    def percentile(self, p: float) -> float:
        """Value at percentile *p* in [0, 100] (linear interpolation)."""
        if not self._samples:
            raise SimulationError("empty CDF")
        if not 0 <= p <= 100:
            raise SimulationError(f"percentile out of range: {p}")
        self._ensure_sorted()
        return float(np.percentile(self._samples, p))

    def fraction_below(self, value: float) -> float:
        if not self._samples:
            return 0.0
        self._ensure_sorted()
        return bisect.bisect_right(self._samples, value) / len(self._samples)

    def mean(self) -> float:
        return float(np.mean(self._samples)) if self._samples else 0.0

    def series(self, num_points: int = 100) -> List[Tuple[float, float]]:
        """(value, cumulative fraction) pairs suitable for plotting Fig 4."""
        if not self._samples:
            return []
        self._ensure_sorted()
        n = len(self._samples)
        points = []
        for i in range(num_points):
            idx = min(n - 1, int(round(i * (n - 1) / max(1, num_points - 1))))
            points.append((self._samples[idx], (idx + 1) / n))
        return points
