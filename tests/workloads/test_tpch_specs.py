"""Tests for the 22 TPC-H query specs and the stream workload."""

import pytest

from repro.engine.optimizer.queryspec import JoinKind
from repro.engine.types import WorkloadClass
from repro.errors import WorkloadError
from repro.workloads.tpch import TPCH_QUERIES, TpchWorkload, tpch_query


class TestSpecs:
    def test_all_22_queries_exist(self):
        for number in TPCH_QUERIES:
            spec = tpch_query(number, 10)
            assert spec.name == f"Q{number}"

    def test_invalid_query_number(self):
        with pytest.raises(WorkloadError):
            tpch_query(0, 10)
        with pytest.raises(WorkloadError):
            tpch_query(23, 10)

    def test_specs_cached_per_scale_factor(self):
        assert tpch_query(1, 10) is tpch_query(1, 10)
        assert tpch_query(1, 10) is not tpch_query(1, 30)

    def test_every_spec_references_catalog_tables(self):
        from repro.engine.schemas import build_tpch
        db = build_tpch(10)
        for number in TPCH_QUERIES:
            for ref in tpch_query(number, 10).tables:
                assert ref.table in db.tables, (number, ref.table)

    def test_q1_is_single_table_scan(self):
        spec = tpch_query(1, 100)
        assert len(spec.tables) == 1
        assert not spec.joins

    def test_q13_uses_outer_join(self):
        spec = tpch_query(13, 100)
        assert any(e.kind is JoinKind.OUTER for e in spec.joins)

    def test_q16_and_q22_use_anti_joins(self):
        for number in (16, 22):
            spec = tpch_query(number, 100)
            assert any(e.kind is JoinKind.ANTI for e in spec.joins), number

    def test_q20_is_a_semi_join_chain(self):
        spec = tpch_query(20, 100)
        semis = [e for e in spec.joins if e.kind is JoinKind.SEMI]
        assert len(semis) >= 3

    def test_q18_has_the_giant_aggregation(self):
        """Q18 groups lineitem by orderkey — the largest group count."""
        groups = {n: tpch_query(n, 100).group_rows for n in TPCH_QUERIES}
        assert max(groups, key=groups.get) == 18

    def test_sort_sizes_scale_with_sf(self):
        assert tpch_query(3, 300).sort_rows == 30 * tpch_query(3, 10).sort_rows

    def test_correlated_queries_marked(self):
        assert tpch_query(17, 10).correlated_passes > 1.0
        assert tpch_query(2, 10).correlated_passes > 1.0


class TestWorkload:
    def test_database_matches_scale_factor(self):
        workload = TpchWorkload(scale_factor=30)
        assert workload.database.scale_factor == 30
        assert workload.database.workload_class is WorkloadClass.DSS

    def test_streams_validated(self):
        with pytest.raises(WorkloadError):
            TpchWorkload(scale_factor=10, streams=0)

    def test_engine_parameters_reserve_grants(self):
        workload = TpchWorkload(scale_factor=10, streams=3)
        assert workload.engine_parameters()["concurrent_grant_slots"] == 3

    def test_primary_metric_is_qps(self):
        from repro.workloads.base import ThroughputTracker
        workload = TpchWorkload(scale_factor=10)
        tracker = ThroughputTracker()
        tracker.record("query", 1.0)
        tracker.record("query", 2.0)
        assert workload.primary_metric(tracker, elapsed=10.0) == pytest.approx(0.2)
