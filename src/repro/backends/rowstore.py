"""The ``rowstore-oltp`` personality: the seed engine, unchanged.

This is the monolithic engine the repository grew up with — B-tree point
access, row-at-a-time execution, the calibrated default cost model, and
the allocation's own RESOURCE_SEMAPHORE knobs (off by default).  Every
hook inherits the :class:`~repro.backends.base.EngineBackend` default, so
construction is bit-identical to the historical
``Experiment._build_engine`` path; the property test in
``tests/backends/test_rowstore_identity.py`` holds it to that.
"""

from __future__ import annotations

from repro.backends.base import (
    BackendResourceProfile,
    EngineBackend,
    register_backend,
)


@register_backend
class RowstoreOltpBackend(EngineBackend):
    """The seed engine: balanced scans, strong point access."""

    name = "rowstore-oltp"
    description = (
        "the seed engine: B-tree point access, row-mode scans, "
        "calibrated default cost model"
    )

    def resource_profile(self) -> BackendResourceProfile:
        return BackendResourceProfile(
            scan_bandwidth_score=1.0,
            point_lookup_score=1.0,
            parallel_efficiency=0.6,
            memory_elasticity=0.3,
            startup_seconds=0.0,
        )
