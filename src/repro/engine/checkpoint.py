"""Background checkpoint / lazy-writer model.

Transactions dirty pages; a checkpoint writer flushes them to the data
files in the background at a bounded rate.  Two behaviours matter for the
paper's §6 write-bandwidth results:

* checkpoint writes share the SSD write path with the WAL, so a cgroup
  write cap back-pressures both;
* when the dirty backlog outruns the device (tight caps), the writer
  throttles incoming transactions (recovery-interval protection), which
  is the second mechanism — after log-flush latency — behind the 44%
  ASDB TPS collapse at 50 MB/s.

For crash recovery (:mod:`repro.faults.recovery`) the writer also tracks
a **checkpoint LSN**: when a flush round that drains the backlog
completes, every transaction durable *before the round started* has its
data-page effects on disk, so replay after a crash may begin past that
LSN.  The snapshot is taken at round *start* and published at round
*end* — conservative, because pages dirtied mid-round may belong to
later transactions and will be covered by the next round.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.errors import ConfigurationError
from repro.hardware.storage import NvmeDevice
from repro.sim.process import Simulator, Timeout, WaitEvent
from repro.units import MIB, PAGE_SIZE


class CheckpointWriter:
    """Accumulates dirty pages and flushes them in background rounds."""

    def __init__(
        self,
        sim: Simulator,
        device: NvmeDevice,
        flush_interval: float = 0.25,
        max_batch_bytes: float = 64 * MIB,
        backlog_limit_bytes: float = 512 * MIB,
        wal=None,
    ):
        if flush_interval <= 0 or max_batch_bytes <= 0:
            raise ConfigurationError("bad checkpoint parameters")
        self._sim = sim
        self._device = device
        self._wal = wal
        self.flush_interval = flush_interval
        self.max_batch_bytes = max_batch_bytes
        self.backlog_limit_bytes = backlog_limit_bytes
        self._dirty_bytes = 0.0
        self.total_flushed_bytes = 0.0
        self.total_rounds = 0
        self.checkpoint_lsn = 0
        self._stalled: list = []
        self._work_gate: Optional[WaitEvent] = None
        self._process = sim.spawn(self._run(), name="checkpoint-writer")

    def attach_wal(self, wal) -> None:
        """Bind the WAL whose durable LSN bounds each checkpoint."""
        self._wal = wal

    @property
    def dirty_bytes(self) -> float:
        return self._dirty_bytes

    @property
    def backlogged(self) -> bool:
        return self._dirty_bytes >= self.backlog_limit_bytes

    def mark_dirty(self, pages: float) -> Generator:
        """Generator: record dirtied pages; stalls the caller when the
        backlog exceeds the recovery-interval limit (write throttle)."""
        if pages < 0:
            raise ConfigurationError("negative page count")
        self._dirty_bytes += pages * PAGE_SIZE
        if self._work_gate is not None and not self._work_gate.triggered:
            self._work_gate.trigger()
        if self.backlogged:
            gate: WaitEvent = self._sim.event()
            self._stalled.append(gate)
            yield gate
        return None

    def _run(self) -> Generator:
        # Event-driven: sleep on a gate while idle (so an idle writer
        # keeps no timers alive and the event loop can drain), then flush
        # in interval-paced rounds until the backlog clears.
        while True:
            if self._dirty_bytes <= 0:
                self._work_gate = self._sim.event()
                yield self._work_gate
                self._work_gate = None
            yield Timeout(self.flush_interval)
            round_start_lsn = self._wal.durable_lsn if self._wal is not None else 0
            drained = False
            while self._dirty_bytes > 0:
                batch = min(self._dirty_bytes, self.max_batch_bytes)
                yield from self._write_batch(batch)
                self._dirty_bytes -= batch
                self.total_flushed_bytes += batch
                self.total_rounds += 1
                self._release_stalled()
                if self._dirty_bytes < self.max_batch_bytes:
                    drained = self._dirty_bytes <= 0
                    break
            if drained and round_start_lsn > self.checkpoint_lsn:
                self.checkpoint_lsn = round_start_lsn

    def _write_batch(self, batch: float) -> Generator:
        # Checkpoint writes are idempotent page writes: a transient
        # injected error just means the round retries the batch after a
        # short pause (no backoff escalation needed — the writer is
        # already interval-paced and nothing blocks on it directly).
        from repro.errors import TransientIOError

        while True:
            try:
                yield from self._device.write(batch)
                return None
            except TransientIOError:
                yield Timeout(self.flush_interval)

    def _release_stalled(self) -> None:
        if self.backlogged:
            return
        stalled, self._stalled = self._stalled, []
        for gate in stalled:
            gate.trigger()

    def stop(self) -> None:
        self._process.interrupt()
