"""Runner scaling bench: serial vs parallel sweeps, cold vs warm cache.

Times a 10-point mixed core sweep (the ASDB core axis plus four TPC-E
points) through :func:`repro.core.sweeps.run_sweep` at ``jobs`` in
{1, 2, 4}, then re-runs it against a warm result cache.  Emits one
machine-readable JSON document (also written to ``BENCH_runner_scaling.json``
at the repo root) so the perf trajectory of the runner is tracked the
same way the figure benches track fidelity:

* ``serial_seconds`` / ``parallel_seconds[jobs]`` — cold sweep wall time;
* ``speedup[jobs]`` — serial/parallel (only meaningful with >1 CPU);
* ``warm_seconds`` and ``warm_speedup`` — the cache-hit path, which must
  be at least 10x faster than simulating;
* ``hit_latency_seconds`` — mean per-entry cache read cost.

Every run is asserted bit-identical to the serial baseline: performance
must never come at the cost of the paper's numbers.
"""

import json
import os
import time
from pathlib import Path

from repro.core.experiment import ExperimentConfig
from repro.core.knobs import ResourceAllocation
from repro.core.resultcache import ResultCache
from repro.core.sweeps import core_sweep, duration_for, run_sweep

JOB_COUNTS = (1, 2, 4)
_REPO_ROOT = Path(__file__).resolve().parent.parent


def sweep_configs(duration_scale):
    """Ten independent grid points: 6 ASDB core steps + 4 TPC-E ones."""
    configs = list(core_sweep("asdb", 2000, duration_scale=duration_scale))
    tpce_duration = duration_for("tpce", 5000, duration_scale)
    configs.extend(
        ExperimentConfig(
            workload="tpce", scale_factor=5000,
            allocation=ResourceAllocation(logical_cores=cores),
            duration=tpce_duration,
        )
        for cores in (4, 8, 16, 32)
    )
    assert len(configs) == 10
    return configs


def run_scaling_study(duration_scale, cache_dir):
    configs = sweep_configs(duration_scale)

    timings = {}
    metrics = {}
    for jobs in JOB_COUNTS:
        start = time.perf_counter()
        measurements = run_sweep(configs, jobs=jobs)
        timings[jobs] = time.perf_counter() - start
        metrics[jobs] = [m.primary_metric for m in measurements]

    for jobs in JOB_COUNTS[1:]:
        assert metrics[jobs] == metrics[1], (
            f"jobs={jobs} diverged from the serial baseline"
        )

    cache = ResultCache(cache_dir)
    start = time.perf_counter()
    run_sweep(configs, cache=cache)          # cold: simulate + store
    cold_cached_seconds = time.perf_counter() - start
    start = time.perf_counter()
    warm = run_sweep(configs, cache=cache)   # warm: pure disk reads
    warm_seconds = time.perf_counter() - start
    assert cache.stats()["hits"] == len(configs)
    assert [m.primary_metric for m in warm] == metrics[1]

    return {
        "bench": "runner_scaling",
        "points": len(configs),
        "duration_scale": duration_scale,
        "cpu_count": os.cpu_count(),
        "serial_seconds": round(timings[1], 4),
        "parallel_seconds": {
            str(jobs): round(timings[jobs], 4) for jobs in JOB_COUNTS[1:]
        },
        "speedup": {
            str(jobs): round(timings[1] / timings[jobs], 3)
            for jobs in JOB_COUNTS[1:]
        },
        "cold_cached_seconds": round(cold_cached_seconds, 4),
        "warm_seconds": round(warm_seconds, 4),
        "warm_speedup": round(timings[1] / warm_seconds, 1),
        "hit_latency_seconds": round(warm_seconds / len(configs), 6),
    }


def check_report(report):
    """The acceptance bars; parallel speedup needs real CPUs to show."""
    assert report["warm_speedup"] >= 10.0, (
        f"warm cache only {report['warm_speedup']}x faster than simulating"
    )
    if (report["cpu_count"] or 1) > 1:
        best = max(report["speedup"].values())
        assert best > 1.0, f"no parallel speedup on {report['cpu_count']} CPUs"


def test_runner_scaling(benchmark, emit, duration_scale, tmp_path):
    report = benchmark.pedantic(
        run_scaling_study, args=(duration_scale, tmp_path),
        rounds=1, iterations=1,
    )
    check_report(report)
    payload = json.dumps(report, indent=2, sort_keys=True)
    (_REPO_ROOT / "BENCH_runner_scaling.json").write_text(payload + "\n")
    emit("Runner scaling — 10-point sweep, jobs in {1,2,4}, cold vs warm cache",
         payload)


def main():
    import tempfile

    with tempfile.TemporaryDirectory() as cache_dir:
        report = run_scaling_study(0.3, cache_dir)
    check_report(report)
    payload = json.dumps(report, indent=2, sort_keys=True)
    (_REPO_ROOT / "BENCH_runner_scaling.json").write_text(payload + "\n")
    print(payload)


if __name__ == "__main__":
    main()
