#!/usr/bin/env python3
"""Open-loop latency study: where does the SLA break?

The paper's closed-loop benchmarks (§3) measure capacity; a DBaaS
operator also needs the *operating curve*: tail latency versus offered
load at a fixed resource allocation, and how much load a smaller
allocation can carry before violating a latency SLO.

This example drives ASDB with Poisson arrivals at increasing rates on
two allocations (full machine vs half machine) and reports the highest
rate whose p99 stays under the SLO.
"""

from repro.core import ResourceAllocation
from repro.core.report import format_table
from repro.engine.engine import SqlEngine
from repro.engine.resource_governor import ResourceGovernor
from repro.hardware.machine import Machine
from repro.workloads.arrivals import OpenLoopDriver
from repro.workloads.asdb import AsdbWorkload

SLO_P99_MS = 120.0
RATES = [200, 600, 1000, 1400, 1600, 1800]


def engine_for(allocation: ResourceAllocation, workload) -> SqlEngine:
    machine = Machine()
    allocation.apply_to(machine)
    return SqlEngine(
        machine, workload.database, workload.execution_characteristics(),
        governor=ResourceGovernor(), **workload.engine_parameters(),
    )


def operating_curve(allocation: ResourceAllocation, label: str):
    rows = []
    best = None
    for rate in RATES:
        workload = AsdbWorkload(2000, clients=1)
        engine = engine_for(allocation, workload)
        result = OpenLoopDriver(workload, engine, offered_tps=rate).run(10.0)
        p99 = result.percentile_ms(99)
        ok = p99 <= SLO_P99_MS and result.dropped == 0
        if ok:
            best = rate
        rows.append((rate, f"{result.completed_tps:.0f}",
                     f"{p99:.1f}", "yes" if ok else "no"))
    print(format_table(
        ["offered TPS", "completed TPS", "p99 ms", f"meets {SLO_P99_MS:.0f}ms SLO"],
        rows, title=f"\n{label}",
    ))
    return best


def main() -> None:
    full = operating_curve(ResourceAllocation(), "Full machine (32 cores)")
    half = operating_curve(ResourceAllocation(logical_cores=16),
                           "Half machine (16 cores)")
    print(
        f"\nHighest SLO-compliant load: {full} TPS on the full machine vs "
        f"{half} TPS on half — the capacity you actually sell is set by the "
        "latency knee, not by peak throughput."
    )


if __name__ == "__main__":
    main()
