"""Exception hierarchy for the repro library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """An invalid machine, engine, or experiment configuration."""


class AllocationError(ConfigurationError):
    """A resource allocation request that the hardware cannot satisfy.

    Examples: asking for more logical cores than the machine has, a CAT
    bitmask that is not contiguous, or a zero-way LLC allocation.
    """


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class PlanningError(ReproError):
    """The optimizer could not produce a plan for a query specification."""


class WorkloadError(ReproError):
    """A workload was asked to run against an incompatible configuration."""
